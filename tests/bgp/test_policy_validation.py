"""Tests for IRR, RPKI, bogon filtering and the route-server import policy."""

import pytest

from repro.bgp import (
    BogonFilter,
    ImportPolicy,
    IrrDatabase,
    PathAttributes,
    PolicyAction,
    Prefix,
    RejectReason,
    RouteAnnouncement,
    RpkiValidator,
    RpkiValidity,
    announcement,
    permissive_policy,
    rtbh_community,
)


class TestIrrDatabase:
    def test_register_and_authorize_exact(self):
        irr = IrrDatabase()
        irr.register("100.10.10.0/24", 64500)
        assert irr.is_authorized("100.10.10.0/24", 64500)

    def test_more_specific_of_registered_prefix_is_authorized(self):
        irr = IrrDatabase()
        irr.register("100.10.10.0/24", 64500)
        assert irr.is_authorized("100.10.10.10/32", 64500)

    def test_other_asn_is_not_authorized(self):
        irr = IrrDatabase()
        irr.register("100.10.10.0/24", 64500)
        assert not irr.is_authorized("100.10.10.0/24", 64501)

    def test_unregistered_prefix_rejected(self):
        irr = IrrDatabase()
        irr.register("100.10.10.0/24", 64500)
        assert not irr.is_authorized("200.1.1.0/24", 64500)

    def test_less_specific_than_registration_is_not_authorized(self):
        irr = IrrDatabase()
        irr.register("100.10.10.0/24", 64500)
        assert not irr.is_authorized("100.10.0.0/16", 64500)

    def test_register_many_and_objects(self):
        irr = IrrDatabase()
        irr.register_many(["10.0.0.0/8", "11.0.0.0/8"], 64500)
        assert len(irr) == 2
        assert irr.prefixes_for(64500) == {Prefix.parse("10.0.0.0/8"), Prefix.parse("11.0.0.0/8")}

    def test_invalid_asn_rejected(self):
        with pytest.raises(ValueError):
            IrrDatabase().register("10.0.0.0/8", 0)


class TestRpkiValidator:
    def test_not_found_without_roas(self):
        assert RpkiValidator().validate("10.0.0.0/8", 64500) is RpkiValidity.NOT_FOUND

    def test_valid_with_matching_roa(self):
        rpki = RpkiValidator()
        rpki.add_roa("100.10.10.0/24", asn=64500, max_length=32)
        assert rpki.validate("100.10.10.10/32", 64500) is RpkiValidity.VALID

    def test_invalid_when_origin_differs(self):
        rpki = RpkiValidator()
        rpki.add_roa("100.10.10.0/24", asn=64500)
        assert rpki.validate("100.10.10.0/24", 64999) is RpkiValidity.INVALID

    def test_invalid_when_too_specific(self):
        rpki = RpkiValidator()
        rpki.add_roa("100.10.10.0/24", asn=64500)  # max_length defaults to 24
        assert rpki.validate("100.10.10.10/32", 64500) is RpkiValidity.INVALID

    def test_as0_roa_only_invalidates(self):
        rpki = RpkiValidator()
        rpki.add_roa("100.10.10.0/24", asn=0, max_length=32)
        assert rpki.validate("100.10.10.0/24", 0) is RpkiValidity.INVALID

    def test_max_length_validation(self):
        with pytest.raises(ValueError):
            RpkiValidator().add_roa("100.10.10.0/24", asn=1, max_length=16)


class TestBogonFilter:
    def test_rfc1918_is_bogon(self):
        bogons = BogonFilter()
        assert bogons.is_bogon("10.1.2.0/24")
        assert bogons.is_bogon("192.168.1.0/24")

    def test_public_space_is_not_bogon(self):
        assert not BogonFilter().is_bogon("100.10.10.0/24")

    def test_covering_prefix_of_bogon_is_rejected(self):
        assert BogonFilter().is_bogon("0.0.0.0/0")

    def test_ipv6_bogons(self):
        bogons = BogonFilter()
        assert bogons.is_bogon("2001:db8::/48")
        assert not bogons.is_bogon("2600::/32")

    def test_custom_list_and_add(self):
        bogons = BogonFilter(bogons=["203.0.113.0/24"])
        assert not bogons.is_bogon("10.0.0.0/8")
        bogons.add("10.0.0.0/8")
        assert "10.0.0.0/8" in bogons


def _make_policy():
    policy = ImportPolicy()
    policy.irr.register("100.10.10.0/24", 64500)
    return policy


class TestImportPolicy:
    def test_accepts_registered_prefix(self):
        policy = _make_policy()
        result = policy.evaluate(announcement("100.10.10.0/24", 64500, next_hop="10.0.0.1"))
        assert result.accepted

    def test_rejects_empty_as_path(self):
        policy = _make_policy()
        route = RouteAnnouncement(
            prefix=Prefix.parse("100.10.10.0/24"), attributes=PathAttributes(next_hop="10.0.0.1")
        )
        assert policy.evaluate(route).reason is RejectReason.EMPTY_AS_PATH

    def test_rejects_missing_next_hop(self):
        policy = _make_policy()
        route = RouteAnnouncement(
            prefix=Prefix.parse("100.10.10.0/24"), attributes=PathAttributes(as_path=(64500,))
        )
        assert policy.evaluate(route).reason is RejectReason.MISSING_NEXT_HOP

    def test_rejects_bogon(self):
        policy = _make_policy()
        result = policy.evaluate(announcement("10.1.0.0/16", 64500, next_hop="10.0.0.1"))
        assert result.reason is RejectReason.BOGON

    def test_rejects_unregistered_origin(self):
        policy = _make_policy()
        result = policy.evaluate(announcement("104.99.0.0/16", 64500, next_hop="10.0.0.1"))
        assert result.reason is RejectReason.IRR_UNAUTHORIZED

    def test_rejects_too_long_prefix_without_blackhole(self):
        policy = _make_policy()
        result = policy.evaluate(announcement("100.10.10.10/32", 64500, next_hop="10.0.0.1"))
        assert result.reason is RejectReason.PREFIX_TOO_LONG

    def test_accepts_host_route_with_blackhole_community(self):
        policy = _make_policy()
        route = announcement("100.10.10.10/32", 64500, next_hop="10.0.0.1")
        tagged = RouteAnnouncement(
            prefix=route.prefix,
            attributes=route.attributes.with_communities(rtbh_community(6695)),
        )
        assert policy.evaluate(tagged).accepted

    def test_accepts_host_route_with_extended_communities(self):
        from repro.bgp import ExtendedCommunity

        policy = _make_policy()
        route = announcement("100.10.10.10/32", 64500, next_hop="10.0.0.1")
        tagged = RouteAnnouncement(
            prefix=route.prefix,
            attributes=route.attributes.with_extended_communities(
                ExtendedCommunity(0x80, 0x01, 64700, 123)
            ),
        )
        assert policy.evaluate(tagged).accepted

    def test_rejects_too_short_prefix(self):
        policy = _make_policy()
        policy.irr.register("104.0.0.0/6", 64500)
        result = policy.evaluate(announcement("104.0.0.0/6", 64500, next_hop="10.0.0.1"))
        assert result.reason is RejectReason.PREFIX_TOO_SHORT

    def test_rejects_rpki_invalid(self):
        policy = _make_policy()
        policy.rpki.add_roa("100.10.10.0/24", asn=65000)
        result = policy.evaluate(announcement("100.10.10.0/24", 64500, next_hop="10.0.0.1"))
        assert result.reason is RejectReason.RPKI_INVALID

    def test_accepts_rpki_valid_more_specific_with_blackhole(self):
        policy = _make_policy()
        policy.rpki.add_roa("100.10.10.0/24", asn=64500, max_length=32)
        route = announcement("100.10.10.10/32", 64500, next_hop="10.0.0.1")
        tagged = RouteAnnouncement(
            prefix=route.prefix,
            attributes=route.attributes.with_communities(rtbh_community(6695)),
        )
        assert policy.evaluate(tagged).accepted

    def test_rejects_overlong_as_path(self):
        policy = _make_policy()
        attrs = PathAttributes(as_path=tuple([64500] * 40), next_hop="10.0.0.1")
        route = RouteAnnouncement(prefix=Prefix.parse("100.10.10.0/24"), attributes=attrs)
        assert policy.evaluate(route).reason is RejectReason.AS_PATH_TOO_LONG

    def test_permissive_policy_skips_irr_and_rpki(self):
        policy = permissive_policy()
        result = policy.evaluate(announcement("104.99.0.0/16", 64500, next_hop="10.0.0.1"))
        assert result.action is PolicyAction.ACCEPT

    def test_ipv6_prefix_length_limits(self):
        policy = permissive_policy()
        accepted = policy.evaluate(announcement("2001:db8:1::/48", 64500, next_hop="10.0.0.1"))
        # 2001:db8::/32 is documentation space (bogon), so use another block.
        assert accepted.reason in (RejectReason.BOGON, RejectReason.NONE)
        ok = policy.evaluate(announcement("2620:1:2::/48", 64500, next_hop="10.0.0.1"))
        assert ok.accepted
        too_long = policy.evaluate(announcement("2620:1:2::1/128", 64500, next_hop="10.0.0.1"))
        assert too_long.reason is RejectReason.PREFIX_TOO_LONG
