"""Tests for BGP sessions, the route server and Flowspec."""

import pytest

from repro.bgp import (
    BgpSession,
    FlowspecActionType,
    FlowspecComponentType,
    ImportPolicy,
    OpenMessage,
    PolicyControl,
    Prefix,
    RouteAnnouncement,
    RouteServer,
    SessionError,
    SessionState,
    SessionType,
    UpdateMessage,
    announcement,
    drop_rule,
    rate_limit_rule,
    rtbh_community,
)


class TestBgpSession:
    def test_ebgp_requires_distinct_asns(self):
        with pytest.raises(ValueError):
            BgpSession(local_asn=1, peer_asn=1)

    def test_ibgp_requires_same_asn(self):
        with pytest.raises(ValueError):
            BgpSession(local_asn=1, peer_asn=2, session_type=SessionType.IBGP)

    def test_deliver_requires_established(self):
        session = BgpSession(local_asn=1, peer_asn=2)
        with pytest.raises(SessionError):
            session.deliver(UpdateMessage(sender_asn=2))

    def test_open_and_deliver(self):
        received = []
        session = BgpSession(local_asn=1, peer_asn=2, on_update=received.append)
        session.open()
        update = UpdateMessage(sender_asn=2)
        session.deliver(update)
        assert received == [update]
        assert session.updates_received == 1

    def test_addpath_negotiation_requires_both_sides(self):
        session = BgpSession(local_asn=1, peer_asn=2, add_path=True)
        session.open(OpenMessage(sender_asn=2, add_path=False))
        assert session.add_path is False

    def test_close_prevents_reopen(self):
        session = BgpSession(local_asn=1, peer_asn=2)
        session.open()
        session.close()
        assert session.state is SessionState.CLOSED
        with pytest.raises(SessionError):
            session.open()

    def test_keepalive_counts(self):
        session = BgpSession(local_asn=1, peer_asn=2)
        session.open()
        session.keepalive()
        assert session.keepalives_received == 1


def _route_server(require_irr=False):
    if require_irr:
        policy = ImportPolicy()
        policy.irr.register("100.10.10.0/24", 64501)
        server = RouteServer(ixp_asn=64700, policy=policy)
    else:
        server = RouteServer(ixp_asn=64700)
    for asn in (64501, 64502, 64503):
        server.connect_member(asn)
    return server


class TestRouteServer:
    def test_member_cannot_use_ixp_asn(self):
        server = RouteServer(ixp_asn=64700)
        with pytest.raises(ValueError):
            server.connect_member(64700)

    def test_accepted_announcement_is_stored_and_propagated(self):
        server = _route_server()
        result = server.announce(announcement("100.10.10.0/24", 64501, next_hop="10.0.0.1"))
        assert result.accepted
        assert len(server.rib) == 1
        # The other two members received the update; the sender did not.
        assert server.session_for(64502).updates_received == 1
        assert server.session_for(64503).updates_received == 1
        assert server.session_for(64501).updates_received == 0

    def test_rejected_announcement_is_logged(self):
        server = _route_server(require_irr=True)
        result = server.announce(announcement("200.1.1.0/24", 64501, next_hop="10.0.0.1"))
        assert not result.accepted
        assert len(server.rejections()) == 1
        assert len(server.rib) == 0

    def test_blackhole_next_hop_rewrite_towards_members(self):
        server = _route_server()
        route = announcement("100.10.10.10/32", 64501, next_hop="10.0.0.1")
        tagged = RouteAnnouncement(
            prefix=route.prefix,
            attributes=route.attributes.with_communities(rtbh_community(64700)),
        )
        server.announce(tagged)
        delivered = server.session_for(64502).history[-1]
        assert delivered.announcements[0].attributes.next_hop == server.blackhole_next_hop

    def test_stellar_signals_are_not_reflected_to_members(self):
        from repro.bgp import ExtendedCommunity

        server = _route_server()
        route = announcement("100.10.10.10/32", 64501, next_hop="10.0.0.1")
        tagged = RouteAnnouncement(
            prefix=route.prefix,
            attributes=route.attributes.with_extended_communities(
                ExtendedCommunity(0x80, 0x01, 64700, (2 << 24) | 123)
            ),
        )
        southbound = []
        server.register_consumer(southbound.append)
        server.announce(tagged)
        assert server.session_for(64502).updates_received == 0
        assert len(southbound) == 1

    def test_policy_control_except_list(self):
        server = _route_server()
        control = PolicyControl(announce_to_all=True, except_asns=frozenset({64502}))
        server.announce(
            announcement("100.10.10.0/24", 64501, next_hop="10.0.0.1"), control
        )
        assert server.session_for(64502).updates_received == 0
        assert server.session_for(64503).updates_received == 1

    def test_policy_control_only_list(self):
        server = _route_server()
        control = PolicyControl(announce_to_all=False, only_asns=frozenset({64503}))
        server.announce(
            announcement("100.10.10.0/24", 64501, next_hop="10.0.0.1"), control
        )
        assert server.session_for(64502).updates_received == 0
        assert server.session_for(64503).updates_received == 1

    def test_policy_control_categories(self):
        assert PolicyControl().category == "All"
        assert PolicyControl(except_asns=frozenset({1, 2})).category == "All-2"
        assert PolicyControl(announce_to_all=False, only_asns=frozenset({1, 2, 3})).category == "3"

    def test_implicit_withdraw_on_reannouncement(self):
        server = _route_server()
        server.announce(announcement("100.10.10.0/24", 64501, next_hop="10.0.0.1"))
        server.announce(announcement("100.10.10.0/24", 64501, next_hop="10.0.0.2"))
        routes = server.rib.routes_for(Prefix.parse("100.10.10.0/24"))
        assert len(routes) == 1
        assert routes[0].attributes.next_hop == "10.0.0.2"

    def test_withdrawal_removes_route_and_notifies(self):
        server = _route_server()
        server.announce(announcement("100.10.10.0/24", 64501, next_hop="10.0.0.1"))
        server.withdraw(Prefix.parse("100.10.10.0/24"), 64501)
        assert len(server.rib) == 0
        last = server.session_for(64502).history[-1]
        assert len(last.withdrawals) == 1

    def test_southbound_consumer_receives_all_paths(self):
        server = _route_server()
        southbound = []
        server.register_consumer(southbound.append)
        server.announce(announcement("100.10.10.0/24", 64501, next_hop="10.0.0.1"))
        server.announce(announcement("100.10.10.0/24", 64502, next_hop="10.0.0.2"))
        assert len(southbound) == 2
        path_ids = {update.announcements[0].path_id for update in southbound}
        assert len(path_ids) == 2

    def test_disconnect_member_flushes_routes(self):
        server = _route_server()
        server.announce(announcement("100.10.10.0/24", 64501, next_hop="10.0.0.1"))
        removed = server.disconnect_member(64501)
        assert removed == 1
        assert 64501 not in server.member_asns

    def test_unknown_sender_is_auto_connected(self):
        server = _route_server()
        server.announce(announcement("100.10.10.0/24", 64999, next_hop="10.0.0.1"))
        assert 64999 in server.member_asns

    def test_announce_requires_as_path(self):
        server = _route_server()
        route = RouteAnnouncement(
            prefix=Prefix.parse("100.10.10.0/24"),
            attributes=__import__("repro.bgp", fromlist=["PathAttributes"]).PathAttributes(),
        )
        with pytest.raises(ValueError):
            server.announce(route)


class TestFlowspec:
    def test_drop_rule_matches_and_discards(self):
        rule = drop_rule("100.10.10.10/32", source_port=123, ip_protocol=17)
        assert rule.is_discard
        assert rule.matches(dst_ip="100.10.10.10", protocol=17, src_port=123)
        assert not rule.matches(dst_ip="100.10.10.10", protocol=17, src_port=53)
        assert not rule.matches(dst_ip="100.10.10.11", protocol=17, src_port=123)

    def test_rate_limit_rule(self):
        rule = rate_limit_rule("100.10.10.0/24", rate_bytes_per_second=1000.0)
        assert not rule.is_discard
        assert rule.actions[0].action_type is FlowspecActionType.TRAFFIC_RATE

    def test_rate_limit_rejects_negative(self):
        with pytest.raises(ValueError):
            rate_limit_rule("10.0.0.0/8", -1.0)

    def test_components_listing(self):
        rule = drop_rule("100.10.10.10/32", source_port=123, ip_protocol=17)
        components = rule.components()
        assert FlowspecComponentType.DEST_PREFIX in components
        assert FlowspecComponentType.SOURCE_PORT in components
        assert FlowspecComponentType.IP_PROTOCOL in components

    def test_packet_length_match(self):
        from repro.bgp import FlowspecRule

        rule = FlowspecRule(packet_length_max=500)
        assert rule.matches(dst_ip="1.2.3.4", packet_length=400)
        assert not rule.matches(dst_ip="1.2.3.4", packet_length=900)
        assert not rule.matches(dst_ip="1.2.3.4")

    def test_invalid_port_rejected(self):
        from repro.bgp import FlowspecRule

        with pytest.raises(ValueError):
            FlowspecRule(source_port=70000)
