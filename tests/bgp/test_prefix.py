"""Tests for prefix handling."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp import Prefix, parse_prefix


class TestParsing:
    def test_parse_ipv4_prefix(self):
        prefix = Prefix.parse("100.10.10.0/24")
        assert prefix.version == 4
        assert prefix.length == 24
        assert str(prefix) == "100.10.10.0/24"

    def test_parse_bare_address_becomes_host_route(self):
        prefix = Prefix.parse("100.10.10.10")
        assert prefix.length == 32
        assert prefix.is_host_route

    def test_parse_non_strict_normalises_host_bits(self):
        prefix = Prefix.parse("100.10.10.10/24")
        assert prefix.address == "100.10.10.0"

    def test_parse_ipv6(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert prefix.version == 6
        assert prefix.length == 32

    def test_host_constructor_ipv4(self):
        assert Prefix.host("10.0.0.1").length == 32

    def test_host_constructor_ipv6(self):
        assert Prefix.host("2001:db8::1").length == 128

    def test_parse_prefix_passthrough(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert parse_prefix(prefix) is prefix

    def test_parse_prefix_from_string(self):
        assert parse_prefix("10.0.0.0/8") == Prefix.parse("10.0.0.0/8")

    def test_invalid_string_raises(self):
        with pytest.raises(ValueError):
            Prefix.parse("not-an-ip")


class TestRelations:
    def test_contains_more_specific(self):
        parent = Prefix.parse("100.10.10.0/24")
        child = Prefix.parse("100.10.10.10/32")
        assert parent.contains(child)
        assert not child.contains(parent)

    def test_contains_self(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains(prefix)

    def test_contains_rejects_cross_family(self):
        v4 = Prefix.parse("10.0.0.0/8")
        v6 = Prefix.parse("2001:db8::/32")
        assert not v4.contains(v6)

    def test_contains_address(self):
        prefix = Prefix.parse("100.10.10.0/24")
        assert prefix.contains_address("100.10.10.55")
        assert not prefix.contains_address("100.10.11.1")

    def test_contains_address_cross_family(self):
        assert not Prefix.parse("10.0.0.0/8").contains_address("2001:db8::1")

    def test_is_more_specific_than(self):
        child = Prefix.parse("100.10.10.0/25")
        parent = Prefix.parse("100.10.10.0/24")
        assert child.is_more_specific_than(parent)
        assert not parent.is_more_specific_than(child)
        assert not parent.is_more_specific_than(parent)

    def test_supernet(self):
        assert Prefix.parse("100.10.10.0/24").supernet(16) == Prefix.parse("100.10.0.0/16")

    def test_supernet_rejects_longer_length(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/8").supernet(16)

    def test_ordering_is_by_address_then_length(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert sorted([c, b, a]) == [a, b, c]

    def test_hashable_and_equal(self):
        assert len({Prefix.parse("10.0.0.0/8"), Prefix.parse("10.0.0.0/8")}) == 1


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=8, max_value=32))
def test_property_prefix_contains_its_own_network_address(address_int, length):
    import ipaddress

    address = str(ipaddress.IPv4Address(address_int))
    prefix = Prefix.parse(f"{address}/{length}")
    assert prefix.contains_address(prefix.address)
    assert prefix.contains(Prefix.host(prefix.address))


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=9, max_value=32))
def test_property_supernet_contains_original(address_int, length):
    import ipaddress

    address = str(ipaddress.IPv4Address(address_int))
    prefix = Prefix.parse(f"{address}/{length}")
    assert prefix.supernet(length - 1).contains(prefix)
