"""Tests for BGP communities and path attributes."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp import (
    ExtendedCommunity,
    LargeCommunity,
    Origin,
    PathAttributes,
    StandardCommunity,
    blackhole_community,
    rtbh_community,
)


class TestStandardCommunity:
    def test_parse_round_trip(self):
        community = StandardCommunity.parse("6695:666")
        assert (community.asn, community.value) == (6695, 666)
        assert str(community) == "6695:666"

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            StandardCommunity.parse("no-colon")

    def test_rejects_values_over_16_bits(self):
        with pytest.raises(ValueError):
            StandardCommunity(70000, 1)
        with pytest.raises(ValueError):
            StandardCommunity(1, 70000)

    def test_is_blackhole_for_666_value(self):
        assert StandardCommunity(6695, 666).is_blackhole

    def test_is_blackhole_for_rfc7999(self):
        assert blackhole_community().is_blackhole
        assert blackhole_community() == StandardCommunity(65535, 666)

    def test_ordinary_community_is_not_blackhole(self):
        assert not StandardCommunity(6695, 100).is_blackhole

    def test_rtbh_community_builder(self):
        assert rtbh_community(6695) == StandardCommunity(6695, 666)


class TestExtendedCommunity:
    def test_pack_unpack_round_trip(self):
        community = ExtendedCommunity(type=0x80, subtype=0x01, global_admin=6695, local_admin=123)
        assert ExtendedCommunity.unpack(community.pack()) == community

    def test_field_range_validation(self):
        with pytest.raises(ValueError):
            ExtendedCommunity(type=256, subtype=0, global_admin=0, local_admin=0)
        with pytest.raises(ValueError):
            ExtendedCommunity(type=0, subtype=300, global_admin=0, local_admin=0)
        with pytest.raises(ValueError):
            ExtendedCommunity(type=0, subtype=0, global_admin=2**16, local_admin=0)
        with pytest.raises(ValueError):
            ExtendedCommunity(type=0, subtype=0, global_admin=0, local_admin=2**32)

    def test_unpack_rejects_oversized(self):
        with pytest.raises(ValueError):
            ExtendedCommunity.unpack(2**64)

    @given(
        st.integers(min_value=0, max_value=0xFF),
        st.integers(min_value=0, max_value=0xFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_property_pack_unpack(self, type_, subtype, global_admin, local_admin):
        community = ExtendedCommunity(type_, subtype, global_admin, local_admin)
        assert ExtendedCommunity.unpack(community.pack()) == community


class TestLargeCommunity:
    def test_parse_round_trip(self):
        community = LargeCommunity.parse("64500:1:2")
        assert str(community) == "64500:1:2"

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            LargeCommunity.parse("1:2")

    def test_range_validation(self):
        with pytest.raises(ValueError):
            LargeCommunity(2**32, 0, 0)


class TestPathAttributes:
    def test_defaults(self):
        attrs = PathAttributes()
        assert attrs.origin is Origin.IGP
        assert attrs.local_pref == 100
        assert attrs.as_path == ()
        assert attrs.origin_asn is None
        assert attrs.neighbor_asn is None

    def test_as_path_accessors(self):
        attrs = PathAttributes(as_path=(100, 200, 300))
        assert attrs.neighbor_asn == 100
        assert attrs.origin_asn == 300
        assert attrs.as_path_length == 3

    def test_prepend(self):
        attrs = PathAttributes(as_path=(200,)).prepend(100, times=2)
        assert attrs.as_path == (100, 100, 200)

    def test_prepend_rejects_zero_times(self):
        with pytest.raises(ValueError):
            PathAttributes().prepend(100, times=0)

    def test_with_communities_is_additive_and_pure(self):
        original = PathAttributes()
        tagged = original.with_communities(rtbh_community(6695))
        assert rtbh_community(6695) in tagged.communities
        assert original.communities == frozenset()

    def test_with_extended_communities(self):
        community = ExtendedCommunity(0x80, 0x01, 6695, 1)
        attrs = PathAttributes().with_extended_communities(community)
        assert community in attrs.extended_communities

    def test_with_large_communities(self):
        community = LargeCommunity(64500, 1, 2)
        attrs = PathAttributes().with_large_communities(community)
        assert community in attrs.large_communities

    def test_with_next_hop(self):
        assert PathAttributes().with_next_hop("192.0.2.1").next_hop == "192.0.2.1"

    def test_has_blackhole_community(self):
        attrs = PathAttributes().with_communities(rtbh_community(6695))
        assert attrs.has_blackhole_community
        assert not PathAttributes().has_blackhole_community

    def test_has_community(self):
        community = StandardCommunity(6695, 100)
        assert PathAttributes().with_communities(community).has_community(community)
