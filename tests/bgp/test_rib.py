"""Tests for the RIB, best-path selection and RIB diffs."""

import pytest

from repro.bgp import (
    Origin,
    PathAttributes,
    Prefix,
    RouteAnnouncement,
    RouteWithdrawal,
    RoutingInformationBase,
    announcement,
    best_path,
)


def make_route(prefix, asn, path_id=0, local_pref=100, as_path=None, med=0):
    attrs = PathAttributes(
        as_path=tuple(as_path) if as_path else (asn,),
        next_hop=f"10.0.0.{asn % 250}",
        local_pref=local_pref,
        med=med,
    )
    return RouteAnnouncement(prefix=Prefix.parse(prefix), attributes=attrs, path_id=path_id)


class TestRibBasics:
    def test_add_and_lookup(self):
        rib = RoutingInformationBase()
        route = make_route("100.10.10.0/24", 64500)
        rib.add(route)
        assert len(rib) == 1
        assert route in rib.routes_for(Prefix.parse("100.10.10.0/24"))
        assert Prefix.parse("100.10.10.0/24") in rib

    def test_add_replaces_same_key(self):
        rib = RoutingInformationBase()
        rib.add(make_route("100.10.10.0/24", 64500, local_pref=100))
        rib.add(make_route("100.10.10.0/24", 64500, local_pref=200))
        assert len(rib) == 1
        assert rib.routes_for(Prefix.parse("100.10.10.0/24"))[0].attributes.local_pref == 200

    def test_add_path_keeps_multiple_paths(self):
        rib = RoutingInformationBase()
        rib.add(make_route("100.10.10.0/24", 64500, path_id=1))
        rib.add(make_route("100.10.10.0/24", 64500, path_id=2))
        assert len(rib.routes_for(Prefix.parse("100.10.10.0/24"))) == 2

    def test_routes_from_neighbor(self):
        rib = RoutingInformationBase()
        rib.add(make_route("10.0.0.0/8", 1))
        rib.add(make_route("11.0.0.0/8", 2))
        assert len(rib.routes_from(1)) == 1

    def test_withdraw(self):
        rib = RoutingInformationBase()
        rib.add(make_route("10.0.0.0/8", 1))
        removed = rib.withdraw(RouteWithdrawal(prefix=Prefix.parse("10.0.0.0/8")), neighbor_asn=1)
        assert removed
        assert len(rib) == 0

    def test_withdraw_missing_returns_false(self):
        rib = RoutingInformationBase()
        assert not rib.withdraw(RouteWithdrawal(prefix=Prefix.parse("10.0.0.0/8")), 1)

    def test_remove_neighbor_flushes_all_routes(self):
        rib = RoutingInformationBase()
        rib.add(make_route("10.0.0.0/8", 1))
        rib.add(make_route("11.0.0.0/8", 1))
        rib.add(make_route("12.0.0.0/8", 2))
        assert rib.remove_neighbor(1) == 2
        assert len(rib) == 1

    def test_empty_as_path_rejected(self):
        rib = RoutingInformationBase()
        route = RouteAnnouncement(prefix=Prefix.parse("10.0.0.0/8"), attributes=PathAttributes())
        with pytest.raises(ValueError):
            rib.add(route)

    def test_prefixes_set(self):
        rib = RoutingInformationBase()
        rib.add(make_route("10.0.0.0/8", 1))
        rib.add(make_route("10.0.0.0/8", 2))
        assert rib.prefixes() == {Prefix.parse("10.0.0.0/8")}

    def test_clear(self):
        rib = RoutingInformationBase()
        rib.add(make_route("10.0.0.0/8", 1))
        rib.clear()
        assert len(rib) == 0


class TestLongestMatch:
    def test_prefers_more_specific(self):
        rib = RoutingInformationBase()
        rib.add(make_route("100.10.0.0/16", 1))
        rib.add(make_route("100.10.10.0/24", 2))
        match = rib.longest_match("100.10.10.5")
        assert match.prefix == Prefix.parse("100.10.10.0/24")

    def test_no_match_returns_none(self):
        rib = RoutingInformationBase()
        rib.add(make_route("100.10.0.0/16", 1))
        assert rib.longest_match("8.8.8.8") is None

    def test_covering_routes(self):
        rib = RoutingInformationBase()
        rib.add(make_route("100.10.0.0/16", 1))
        rib.add(make_route("100.10.10.0/24", 2))
        rib.add(make_route("200.0.0.0/8", 3))
        covering = rib.covering_routes(Prefix.parse("100.10.10.10/32"))
        assert len(covering) == 2


class TestBestPath:
    def test_empty_returns_none(self):
        assert best_path([]) is None

    def test_highest_local_pref_wins(self):
        low = make_route("10.0.0.0/8", 1, local_pref=100)
        high = make_route("10.0.0.0/8", 2, local_pref=200)
        assert best_path([low, high]) is high

    def test_shorter_as_path_wins(self):
        short = make_route("10.0.0.0/8", 1, as_path=[1])
        long = make_route("10.0.0.0/8", 2, as_path=[2, 3, 4])
        assert best_path([long, short]) is short

    def test_lower_med_wins_when_rest_equal(self):
        low_med = make_route("10.0.0.0/8", 1, med=5)
        high_med = make_route("10.0.0.0/8", 1, med=50, path_id=1)
        assert best_path([high_med, low_med]) is low_med

    def test_lower_origin_wins(self):
        igp = make_route("10.0.0.0/8", 1)
        incomplete = RouteAnnouncement(
            prefix=Prefix.parse("10.0.0.0/8"),
            attributes=PathAttributes(as_path=(2,), next_hop="10.0.0.2", origin=Origin.INCOMPLETE),
        )
        assert best_path([incomplete, igp]) is igp

    def test_tie_break_by_neighbor_asn(self):
        a = make_route("10.0.0.0/8", 10)
        b = make_route("10.0.0.0/8", 20)
        assert best_path([b, a]) is a


class TestRibDiff:
    def test_added_and_removed(self):
        rib = RoutingInformationBase()
        before = rib.snapshot()
        route = make_route("10.0.0.0/8", 1)
        rib.add(route)
        after = rib.snapshot()
        diff = RoutingInformationBase.diff(before, after)
        assert diff.added == (route,)
        assert diff.removed == ()
        reverse = RoutingInformationBase.diff(after, before)
        assert reverse.removed == (route,)

    def test_changed_routes(self):
        rib = RoutingInformationBase()
        rib.add(make_route("10.0.0.0/8", 1, local_pref=100))
        before = rib.snapshot()
        rib.add(make_route("10.0.0.0/8", 1, local_pref=300))
        diff = RoutingInformationBase.diff(before, rib.snapshot())
        assert len(diff.changed) == 1
        assert diff.is_empty is False
        assert len(diff) == 1

    def test_identical_snapshots_produce_empty_diff(self):
        rib = RoutingInformationBase()
        rib.add(make_route("10.0.0.0/8", 1))
        diff = RoutingInformationBase.diff(rib.snapshot(), rib.snapshot())
        assert diff.is_empty

    def test_announcement_helper(self):
        route = announcement("100.10.10.10/32", 64500, next_hop="10.0.0.1")
        assert route.attributes.as_path == (64500,)
        assert route.attributes.next_hop == "10.0.0.1"
        assert route.origin_asn == 64500
