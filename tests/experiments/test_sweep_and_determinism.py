"""Sweep layer tests + the cross-experiment determinism guarantee."""

import json

import pytest

from repro.experiments import ResultStore, Sweep, all_experiments, get_experiment, run_sweep

#: A small, cheap sweep used by several tests.
QUICK_SWEEP = Sweep(
    experiment="fig10b",
    grid={"burst_count": (2, 3), "base_arrival_rate": (0.05, 0.1)},
    base={"duration_seconds": 2 * 3600.0},
    quick=True,
)


class TestSweepPoints:
    def test_cartesian_product_in_deterministic_order(self):
        points = QUICK_SWEEP.points()
        assert points == [
            {"duration_seconds": 7200.0, "burst_count": 2, "base_arrival_rate": 0.05},
            {"duration_seconds": 7200.0, "burst_count": 2, "base_arrival_rate": 0.1},
            {"duration_seconds": 7200.0, "burst_count": 3, "base_arrival_rate": 0.05},
            {"duration_seconds": 7200.0, "burst_count": 3, "base_arrival_rate": 0.1},
        ]

    def test_unknown_grid_field_rejected(self):
        with pytest.raises(ValueError, match="unknown config field"):
            Sweep(experiment="fig3c", grid={"bogus": (1, 2)}).points()

    def test_seed_derivation_is_deterministic_and_distinct(self):
        sweep = Sweep(experiment="fig3c", grid={"peer_count": (10, 20, 30)}, seed=123)
        seeds = [point["seed"] for point in sweep.points()]
        assert len(set(seeds)) == 3
        assert seeds == [point["seed"] for point in sweep.points()]  # stable
        different_base = Sweep(
            experiment="fig3c", grid={"peer_count": (10, 20, 30)}, seed=124
        )
        assert seeds != [point["seed"] for point in different_base.points()]

    def test_grid_extension_keeps_existing_point_seeds(self):
        # Seeds are keyed by point content, not enumeration index: extending
        # any axis must not change the seed (nor the cached artifact) of an
        # unchanged logical point.
        small = Sweep(
            experiment="fig3c",
            grid={"peer_count": (10, 20), "attack_peak_bps": (5e8,)},
            seed=42,
        )
        extended = Sweep(
            experiment="fig3c",
            grid={"peer_count": (10, 20), "attack_peak_bps": (5e8, 1e9)},
            seed=42,
        )
        def keyed(sweep):
            return {
                (p["peer_count"], p["attack_peak_bps"]): p["seed"]
                for p in sweep.points()
            }
        small_seeds, extended_seeds = keyed(small), keyed(extended)
        for point, seed in small_seeds.items():
            assert extended_seeds[point] == seed

    def test_explicit_seed_in_grid_wins_over_derivation(self):
        sweep = Sweep(experiment="fig3c", grid={"seed": (1, 2)}, seed=999)
        assert [point["seed"] for point in sweep.points()] == [1, 2]

    def test_seed_base_requires_seed_field(self):
        with pytest.raises(ValueError, match="no 'seed' field"):
            Sweep(experiment="fig9", seed=1).points()


class TestRunSweep:
    def test_parallel_results_equal_serial_point_for_point(self):
        serial = run_sweep(QUICK_SWEEP, jobs=1)
        parallel = run_sweep(QUICK_SWEEP, jobs=2)
        assert serial.points == parallel.points
        assert len(serial.results) == 4
        for point_serial, point_parallel in zip(serial.results, parallel.results):
            assert json.dumps(point_serial, sort_keys=True) == json.dumps(
                point_parallel, sort_keys=True
            )

    def test_store_makes_reruns_incremental(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_sweep(QUICK_SWEEP, jobs=1, store=store)
        assert first.cached_points == 0
        assert len(store) == 4

        again = run_sweep(QUICK_SWEEP, jobs=1, store=store)
        assert again.cached_points == 4
        assert again.results == first.results

        # Extending one grid axis only computes the new points.
        extended = Sweep(
            experiment=QUICK_SWEEP.experiment,
            grid={"burst_count": (2, 3, 4), "base_arrival_rate": (0.05, 0.1)},
            base=QUICK_SWEEP.base,
            quick=True,
        )
        third = run_sweep(extended, jobs=1, store=store)
        assert third.cached_points == 4
        assert len(third.results) == 6
        assert len(store) == 6

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(QUICK_SWEEP, jobs=0)

    def test_interrupted_sweep_keeps_finished_artifacts(self, tmp_path, monkeypatch):
        # Points are persisted as they complete: a failure mid-sweep must not
        # discard the artifacts of already-finished points.
        import repro.experiments.sweep as sweep_module

        store = ResultStore(tmp_path)
        real_run_point = sweep_module._run_point
        calls = {"count": 0}

        def failing_run_point(experiment, overrides, quick):
            calls["count"] += 1
            if calls["count"] == 3:
                raise RuntimeError("boom")
            return real_run_point(experiment, overrides, quick)

        monkeypatch.setattr(sweep_module, "_run_point", failing_run_point)
        with pytest.raises(RuntimeError, match="boom"):
            run_sweep(QUICK_SWEEP, jobs=1, store=store)
        assert len(store) == 2  # the two finished points survived

        monkeypatch.setattr(sweep_module, "_run_point", real_run_point)
        resumed = run_sweep(QUICK_SWEEP, jobs=1, store=store)
        assert resumed.cached_points == 2
        assert len(resumed.results) == 4

    def test_sweep_result_serializes(self):
        result = run_sweep(
            Sweep(experiment="fig10a", grid={"samples_per_rate": (5,)}, quick=True)
        )
        payload = json.loads(result.to_json())
        assert payload["experiment"] == "fig10a"
        assert payload["summary"]["points"] == 1.0
        assert result.summaries()[0]["slope_percent_per_update"] > 0


class TestDeterminism:
    """Same seed + config ⇒ byte-identical serialized results, per experiment."""

    @pytest.mark.parametrize(
        "name", [spec.name for spec in all_experiments()]
    )
    def test_quick_run_is_byte_identical(self, name):
        spec = get_experiment(name)
        first = spec.run(quick=True).to_dict()
        second = spec.run(quick=True).to_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    @pytest.mark.parametrize(
        "name", [spec.name for spec in all_experiments()]
    )
    def test_quick_run_json_round_trips(self, name):
        spec = get_experiment(name)
        payload = spec.run(quick=True).to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert "summary" in payload
