"""Integration tests: every experiment driver reproduces the paper's shape.

These tests run scaled-down versions of the per-figure experiments and
assert the qualitative findings of the paper (who wins, by roughly what
factor, where the crossovers are) rather than exact numbers.
"""

import pytest

from repro.experiments import (
    ChangeQueueingConfig,
    CollateralDamageConfig,
    CpuUpdateRateConfig,
    FunctionalityConfig,
    PAPER_FIG9,
    PolicyControlConfig,
    PortDistributionConfig,
    RtbhAttackConfig,
    StellarAttackConfig,
    build_attack_scenario,
    build_table1,
    run_change_queueing_experiment,
    run_collateral_damage_experiment,
    run_cpu_update_rate_experiment,
    run_functionality_experiment,
    run_policy_control_experiment,
    run_port_distribution_experiment,
    run_quantitative_comparison,
    run_rtbh_attack_experiment,
    run_scaling_experiment,
    run_stellar_attack_experiment,
)
from repro.ixp import TcamStatus


class TestScenarioBuilder:
    def test_builds_consistent_scenario(self):
        scenario = build_attack_scenario(peer_count=10, seed=1)
        assert len(scenario.peers) == 10
        assert scenario.victim.asn in scenario.fabric.member_asns
        assert set(scenario.peer_asns) <= scenario.fabric.member_asns
        assert scenario.attack.vector.source_port == 123

    def test_requires_two_peers(self):
        with pytest.raises(ValueError):
            build_attack_scenario(peer_count=1)


class TestTable1:
    def test_matches_paper_matrix(self):
        assert build_table1().matches_paper()

    def test_quantitative_comparison_ordering(self):
        result = run_quantitative_comparison(seed=3)
        residual = result.residual_attack_fraction
        # RTBH leaves most attack traffic (low compliance); Advanced
        # Blackholing and ACL filters remove essentially all of it.
        assert residual["RTBH"] > 0.3
        assert residual["Advanced Blackholing"] < 0.05
        assert residual["ACL filters"] < 0.05
        # Fine-grained techniques cause no collateral damage on this workload.
        assert result.collateral_damage_fraction["Advanced Blackholing"] == 0.0


class TestFig2cCollateralDamage:
    @pytest.fixture(scope="class")
    def result(self):
        config = CollateralDamageConfig(duration=1800.0, attack_start=600.0, peer_count=10, seed=5)
        return run_collateral_damage_experiment(config)

    def test_web_ports_dominate_before_attack(self, result):
        assert result.share_before_attack(443) > 0.3
        assert result.share_before_attack(11211) < 0.01

    def test_memcached_dominates_during_attack(self, result):
        assert result.share_during_attack(11211) > 0.7

    def test_rtbh_causes_full_collateral_damage(self, result):
        assert result.rtbh_report.collateral_damage_fraction == pytest.approx(1.0)

    def test_fine_grained_filter_removes_attack_without_collateral(self, result):
        assert result.fine_grained_potential["attack_removed_fraction"] > 0.95
        assert result.fine_grained_potential["legitimate_removed_fraction"] < 0.05

    def test_summary_keys(self, result):
        summary = result.summary()
        assert "memcached_share_during" in summary
        assert "rtbh_collateral_damage_fraction" in summary


class TestFig3aPortDistribution:
    @pytest.fixture(scope="class")
    def result(self):
        config = PortDistributionConfig(
            member_count=30, duration=3600.0, interval=300.0, rtbh_event_count=10, seed=17
        )
        return run_port_distribution_experiment(config)

    def test_blackholed_traffic_is_udp_dominated(self, result):
        assert result.blackholed_udp_share > 0.98
        assert result.blackholed_tcp_share < 0.01

    def test_other_traffic_is_tcp_dominated(self, result):
        assert result.other_tcp_share > 0.7

    def test_amplification_ports_significant(self, result):
        # All six paper ports show significantly higher shares in blackholed
        # traffic at the 0.02 level.
        assert set(result.significant_ports()) == {0, 123, 389, 11211, 53, 19}

    def test_port_0_has_largest_blackholed_share(self, result):
        shares = {port: ci.mean for port, ci in result.blackholed_shares.items()}
        assert max(shares, key=shares.get) == 0

    def test_blackholed_share_exceeds_other_share_per_port(self, result):
        for port in result.config.ports:
            assert result.blackholed_shares[port].mean > result.other_shares[port].mean


class TestFig3bPolicyControl:
    @pytest.fixture(scope="class")
    def result(self):
        return run_policy_control_experiment(
            PolicyControlConfig(announcement_count=4000, member_count=100)
        )

    def test_all_category_dominates(self, result):
        assert result.share_of("All") > 0.9

    def test_restricted_categories_are_rare(self, result):
        assert result.share_of("All-1") < 0.1
        assert result.share_of("20") < 0.01

    def test_distribution_sums_to_one(self, result):
        assert sum(result.distribution.shares().values()) == pytest.approx(1.0)

    def test_events_processed(self, result):
        assert result.events == 4000


class TestFig3cRtbhAttack:
    @pytest.fixture(scope="class")
    def result(self):
        return run_rtbh_attack_experiment(RtbhAttackConfig(duration=700.0, interval=10.0, seed=7))

    def test_attack_reaches_roughly_one_gbps(self, result):
        assert 800.0 <= result.peak_attack_mbps <= 1200.0

    def test_rtbh_leaves_most_attack_traffic(self, result):
        # Paper: traffic only drops to 600-800 Mbps out of ~1 Gbps.
        assert 500.0 <= result.residual_mbps <= 850.0
        assert result.traffic_reduction_fraction < 0.5

    def test_peer_count_drops_by_roughly_a_quarter(self, result):
        assert 0.1 <= result.peer_reduction_fraction <= 0.45
        assert result.peers_before_blackhole > 30

    def test_compliance_is_minority(self, result):
        assert result.summary()["compliance_rate"] < 0.5


class TestFig10cStellarAttack:
    @pytest.fixture(scope="class")
    def result(self):
        return run_stellar_attack_experiment(
            StellarAttackConfig(duration=700.0, interval=10.0, peer_count=40, seed=11)
        )

    def test_attack_peak(self, result):
        assert 800.0 <= result.peak_attack_mbps <= 1200.0

    def test_shaping_phase_sits_at_shape_rate(self, result):
        assert result.shaped_phase_mbps == pytest.approx(
            result.config.shape_rate_bps / 1e6, rel=0.3
        )

    def test_peers_constant_during_shaping(self, result):
        assert result.peers_during_shaping == pytest.approx(
            result.peers_before_mitigation, rel=0.15
        )

    def test_drop_phase_near_zero(self, result):
        assert result.dropped_phase_mbps < 0.1 * result.peak_attack_mbps
        assert result.peers_after_drop < 0.3 * result.peers_before_mitigation

    def test_stellar_beats_rtbh(self, result):
        rtbh = run_rtbh_attack_experiment(RtbhAttackConfig(duration=700.0, interval=10.0, seed=7))
        assert result.dropped_phase_mbps < rtbh.residual_mbps / 3


class TestFig9Scaling:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scaling_experiment()

    def test_matches_paper_matrices(self, result):
        for rate, expected in PAPER_FIG9.items():
            matrix = result.matrix(rate)
            for cell, status in expected.items():
                assert matrix.status(*cell).value == status, (rate, cell)

    def test_feasible_region_shrinks_with_adoption(self, result):
        fractions = result.summary()
        assert fractions[0.2] > fractions[0.6] > fractions[1.0]

    def test_20_percent_adoption_has_no_limits(self, result):
        assert result.matrix(0.2).ok_fraction() == 1.0

    def test_render_contains_statuses(self, result):
        text = result.matrix(1.0).render((0, 2, 4, 6, 8, 10), (0, 1, 2, 3, 4))
        assert "F1" in text and "F2" in text and "OK" in text

    def test_invalid_adoption_rate(self):
        from repro.experiments import ScalingConfig

        with pytest.raises(ValueError):
            run_scaling_experiment(ScalingConfig(adoption_rates=(0.0,)))


class TestFig10aCpu:
    @pytest.fixture(scope="class")
    def result(self):
        return run_cpu_update_rate_experiment(CpuUpdateRateConfig(samples_per_rate=20, seed=23))

    def test_relationship_is_linear_and_increasing(self, result):
        assert result.regression.slope > 0
        assert result.regression.r_value > 0.9

    def test_budget_reached_near_paper_median_rate(self, result):
        assert result.max_update_rate == pytest.approx(4.33, rel=0.1)

    def test_cpu_at_median_rate_close_to_budget(self, result):
        assert result.cpu_at_paper_median_rate == pytest.approx(15.0, abs=1.0)

    def test_mean_usage_increases_with_rate(self, result):
        means = result.mean_usage_by_rate()
        rates = sorted(means)
        assert means[rates[0]] < means[rates[-1]]


class TestFig10bQueueing:
    @pytest.fixture(scope="class")
    def result(self):
        return run_change_queueing_experiment(ChangeQueueingConfig(seed=31))

    def test_majority_of_changes_wait_less_than_a_second(self, result):
        assert result.fraction_below(4.0, 1.0) >= 0.65

    def test_p95_below_100_seconds(self, result):
        assert result.percentile(4.0, 0.95) < 100.0
        assert result.percentile(5.0, 0.95) < 100.0

    def test_higher_rate_gives_lower_delays(self, result):
        assert result.percentile(5.0, 0.95) <= result.percentile(4.0, 0.95)

    def test_cdf_shapes(self, result):
        values, probabilities = result.cdf(4.0)
        assert probabilities[-1] == pytest.approx(1.0)
        assert len(values) == len(result.arrival_times)

    def test_waiting_times_non_negative(self, result):
        assert all(wait >= 0 for wait in result.waiting_times[4.0])


class TestFunctionalityValidation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_functionality_experiment(FunctionalityConfig())

    def test_baseline_port_is_congested(self, result):
        assert result.baseline_delivered_bps == pytest.approx(1e9, rel=0.05)

    def test_drop_rules_remove_attack_traffic_per_target(self, result):
        for rate in result.dropped_phase_attack_bps.values():
            assert rate == 0.0

    def test_benign_traffic_survives_dropping(self, result):
        for ip, delivered in result.dropped_phase_delivered_bps.items():
            assert delivered > 0

    def test_shaped_attack_respects_rate_limit(self, result):
        # Two shaping rules (NTP + DNS) per target, each at shape_rate_bps.
        limit = 2 * result.config.shape_rate_bps
        for rate in result.shaped_phase_attack_bps.values():
            assert rate <= limit * 1.05
            assert rate > 0
