"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig2c", "fig3a", "fig3b", "fig3c", "fig9",
                     "fig10a", "fig10b", "fig10c", "functionality",
                     "pulse", "carpet", "multivector", "fine_grained",
                     "paper_scale", "city_scale", "rule_churn"):
            assert name in out

    def test_json_listing(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 17
        fig3c = next(entry for entry in payload if entry["name"] == "fig3c")
        assert "peer_count" in fig3c["config_fields"]
        assert "rtbh" in fig3c["aliases"]


class TestRun:
    def test_run_with_overrides_and_json(self, capsys, tmp_path):
        out_path = tmp_path / "out.json"
        code = main([
            "run", "fig10a", "--samples-per-rate", "5", "--seed", "42",
            "--json", str(out_path),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "samples_per_rate=5" in printed
        payload = json.loads(out_path.read_text())
        assert payload["config"]["samples_per_rate"] == 5
        assert payload["config"]["seed"] == 42
        assert payload["summary"]["slope_percent_per_update"] > 0

    def test_run_by_alias_with_quick(self, capsys):
        assert main(["run", "scaling", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "summary:" in out

    def test_equals_style_options(self, capsys):
        assert main(["run", "fig10a", "--samples-per-rate=5"]) == 0
        assert "samples_per_rate=5" in capsys.readouterr().out

    def test_unknown_experiment_fails(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_unknown_option_fails(self):
        with pytest.raises(SystemExit, match="unknown option"):
            main(["run", "fig9", "--bogus", "1"])

    def test_missing_value_fails(self):
        with pytest.raises(SystemExit, match="needs a value"):
            main(["run", "fig10a", "--samples-per-rate"])

    def test_bad_int_value_fails(self):
        with pytest.raises(SystemExit, match="invalid value"):
            main(["run", "fig10a", "--samples-per-rate", "many"])

    def test_scientific_notation_for_int_fields(self, capsys):
        # announcement_count is an int field; 2e3 should be accepted.
        assert main(["run", "fig3b", "--announcement-count", "2e3",
                     "--member-count", "60"]) == 0
        assert "announcement_count=2000" in capsys.readouterr().out


class TestSweep:
    def test_sweep_grid_with_store(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        args = [
            "sweep", "fig10a", "--grid", "samples_per_rate=4,6",
            "--store", str(store_dir), "--quick",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "2 point(s), 0 cached" in out

        assert main(args) == 0
        assert "2 cached" in capsys.readouterr().out

    def test_sweep_json_output(self, capsys, tmp_path):
        out_path = tmp_path / "sweep.json"
        assert main([
            "sweep", "fig10a", "--grid", "samples-per-rate=4,6",
            "--seed-base", "7", "--json", str(out_path), "--quick",
        ]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["experiment"] == "fig10a"
        assert len(payload["results"]) == 2
        seeds = [point["seed"] for point in payload["points"]]
        assert len(set(seeds)) == 2  # per-point derived seeds

    def test_sweep_seed_is_a_config_override_not_seed_base(self, capsys, tmp_path):
        # --seed must reach the config (no argparse abbreviation to --seed-base).
        out_path = tmp_path / "sweep.json"
        assert main([
            "sweep", "fig10a", "--grid", "samples_per_rate=4,6",
            "--seed", "7", "--json", str(out_path), "--quick",
        ]) == 0
        payload = json.loads(out_path.read_text())
        assert all(point["seed"] == 7 for point in payload["points"])

    def test_sweep_rejects_sequence_valued_grid_field(self):
        with pytest.raises(SystemExit, match="sequence-valued"):
            main(["sweep", "fig10b", "--quick", "--grid", "dequeue_rates=4,5"])

    def test_sweep_bad_grid_spec_fails(self):
        with pytest.raises(SystemExit, match="field=v1,v2"):
            main(["sweep", "fig10a", "--grid", "nonsense"])

    def test_sweep_unknown_grid_field_fails(self):
        with pytest.raises(SystemExit, match="unknown grid field"):
            main(["sweep", "fig10a", "--grid", "bogus=1,2"])
