"""Registry, harness and result-serialization layer tests."""

import dataclasses
import json

import pytest

from repro.experiments import (
    RtbhAttackConfig,
    StellarAttackConfig,
    SteppedExperiment,
    all_experiments,
    get_experiment,
)
from repro.experiments.results import JsonResultMixin, ResultStore, to_jsonable
from repro.sim import SimulationEngine


class TestRegistry:
    def test_all_experiments_registered(self):
        names = [spec.name for spec in all_experiments()]
        assert names == [
            "table1",
            "fig2c",
            "fig3a",
            "fig3b",
            "fig3c",
            "fig9",
            "fig10a",
            "fig10b",
            "fig10c",
            "functionality",
            "pulse",
            "carpet",
            "multivector",
            "fine_grained",
            "city_scale",
            "paper_scale",
            "rule_churn",
        ]

    def test_lookup_by_alias_and_case(self):
        assert get_experiment("rtbh").name == "fig3c"
        assert get_experiment("stellar_attack").name == "fig10c"
        assert get_experiment("FIG9").name == "fig9"

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="fig3c"):
            get_experiment("fig99")

    def test_make_config_applies_overrides(self):
        spec = get_experiment("fig3c")
        config = spec.make_config(peer_count=12, seed=99)
        assert isinstance(config, RtbhAttackConfig)
        assert config.peer_count == 12
        assert config.seed == 99

    def test_make_config_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown config field"):
            get_experiment("fig3c").make_config(bogus=1)

    def test_quick_overrides_are_defaults_not_locks(self):
        spec = get_experiment("fig10c")
        config = spec.make_config(quick=True, peer_count=33)
        assert config.peer_count == 33  # explicit override wins
        assert config.duration == spec.quick_overrides["duration"]

    def test_run_rejects_config_plus_overrides(self):
        spec = get_experiment("fig9")
        with pytest.raises(ValueError):
            spec.run(spec.make_config(), quick=True)

    def test_every_spec_has_config_dataclass_and_runner(self):
        for spec in all_experiments():
            assert dataclasses.is_dataclass(spec.config_cls)
            assert callable(spec.runner)
            unknown_quick = set(spec.quick_overrides) - set(spec.config_field_names())
            assert not unknown_quick, (spec.name, unknown_quick)


class TestSteppedExperiment:
    def test_steps_and_phase_events_interleave(self):
        harness = SteppedExperiment(duration=50.0, interval=10.0)
        timeline = []
        harness.at(25.0, lambda: timeline.append(("phase", harness.now)), name="mid")
        harness.run(lambda t, dt: timeline.append(("step", t)))
        assert timeline == [
            ("step", 0.0),
            ("step", 10.0),
            ("step", 20.0),
            ("phase", 25.0),  # fires before the step of its interval ...
            ("step", 30.0),  # ... with the clock at the event's own time
            ("step", 40.0),
        ]

    def test_phase_actions_fire_once_and_are_logged(self):
        harness = SteppedExperiment(duration=30.0, interval=10.0)
        fired = []
        harness.at(10.0, lambda: fired.append(harness.now), name="attack-start")
        harness.run(lambda t, dt: None)
        assert fired == [10.0]
        assert harness.phase_times("attack-start") == [10.0]
        assert [kind for _, kind, _ in harness.events()] == ["attack-start"]

    def test_event_past_last_step_never_fires(self):
        harness = SteppedExperiment(duration=30.0, interval=10.0)
        fired = []
        harness.at(25.0, lambda: fired.append("late"))
        harness.run()
        assert fired == []  # steps are 0/10/20; a 25 s trigger was never polled

    def test_same_time_events_fire_in_scheduling_order(self):
        harness = SteppedExperiment(duration=20.0, interval=10.0)
        fired = []
        harness.at(10.0, lambda: fired.append("first"))
        harness.at(10.0, lambda: fired.append("second"))
        harness.run()
        assert fired == ["first", "second"]

    def test_external_engine_is_used(self):
        engine = SimulationEngine()
        harness = SteppedExperiment(duration=10.0, interval=5.0, engine=engine)
        assert harness.engine is engine
        harness.run()
        assert engine.clock.now == 5.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            SteppedExperiment(duration=10.0, interval=0.0)

    def test_partial_trailing_interval_is_not_stepped(self):
        # Matches the replaced drivers' int(duration/interval) floor: a
        # 915 s run with 10 s intervals observes [900, 910) last, never
        # generating traffic beyond the configured duration.
        times = SteppedExperiment(duration=915.0, interval=10.0).step_times()
        assert len(times) == 91
        assert times[-1] == 900.0
        # Exact multiples are immune to float-division error.
        assert len(SteppedExperiment(duration=0.3, interval=0.1).step_times()) == 3


class TestToJsonable:
    def test_handles_numpy_and_enums(self):
        import enum

        import numpy as np

        class Color(enum.Enum):
            RED = "red"

        payload = to_jsonable(
            {
                "i": np.int64(3),
                "f": np.float64(1.5),
                "b": np.bool_(True),
                "a": np.arange(3),
                "e": Color.RED,
                4.0: "float-key",
                (0, 2): "tuple-key",
            }
        )
        assert payload == {
            "i": 3,
            "f": 1.5,
            "b": True,
            "a": [0, 1, 2],
            "e": "red",
            "4.0": "float-key",
            "(0, 2)": "tuple-key",
        }
        json.dumps(payload)  # round-trippable

    def test_rejects_unencodable_objects(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_mixin_excludes_fields_and_adds_summary(self):
        @dataclasses.dataclass
        class Demo(JsonResultMixin):
            _json_exclude = ("big",)
            value: int
            big: object = None

            def summary(self):
                return {"value": float(self.value)}

        payload = Demo(value=7, big=object()).to_dict()
        assert payload == {"value": 7, "summary": {"value": 7.0}}


class TestResultStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "artifacts")
        key = store.key_for("fig3c", {"seed": 7, "peer_count": 10})
        assert store.load(key) is None
        store.save(key, {"summary": {"x": 1.0}})
        assert store.load(key) == {"summary": {"x": 1.0}}
        assert len(store) == 1

    def test_key_depends_on_config_and_experiment(self):
        key_a = ResultStore.key_for("fig3c", {"seed": 7})
        key_b = ResultStore.key_for("fig3c", {"seed": 8})
        key_c = ResultStore.key_for("fig10c", {"seed": 7})
        assert len({key_a, key_b, key_c}) == 3

    def test_key_is_insertion_order_independent(self):
        assert ResultStore.key_for("x", {"a": 1, "b": 2}) == ResultStore.key_for(
            "x", {"b": 2, "a": 1}
        )

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for("fig9", {})
        store.path_for(key).write_text("{not json", encoding="utf-8")
        assert store.load(key) is None

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(store.key_for("a", {}), {"x": 1})
        store.save(store.key_for("b", {}), {"x": 2})
        assert store.clear() == 2
        assert len(store) == 0
