"""Golden-seed determinism snapshots for the headline scenarios.

The fuzz suite proves the two data-plane engines agree with *each
other*; these tests pin the absolute output.  Each digest is the SHA-256
of the canonical JSON (``sort_keys=True``) of a quick-config scenario's
``to_dict()`` for a fixed seed.  Any behavioural change to the traffic
generators, rule compilation or delivery accounting shows up here as a
digest mismatch — if the change is intentional, re-run the helper below
and update the table in the same commit:

    PYTHONPATH=src python -c "
    from tests.experiments.test_golden_seeds import compute_digest
    print(compute_digest('fine_grained', 3))"

(or simply read the new digest off the pytest failure message).
"""

import hashlib
import json

import pytest

from repro.experiments import get_experiment

GOLDEN = {
    ("fine_grained", 3): "36f1e8eb666f3d777a7ffc7763446a19cd4a2cfa1256c6259a747263ff3270b2",
    ("fine_grained", 11): "01c22e0b38b233eeb6ca3b57a44831670f7d8c504b993767436e9f6becd13c46",
    ("paper_scale", 3): "526d349fd2a2331543209e2004ed41dbc4925eb7529110330c03bffd910a0c1f",
    ("paper_scale", 11): "bf2dfff4ae647effd50554efa221a4c50833245d8a6230a6a70f3724e4a9c6c0",
    ("rule_churn", 3): "c77116be69c903587f44cbbd352a64f3cb90431001b8a2d582717ae69ce76353",
    ("rule_churn", 11): "f8a5558be271028af2f34bc71e69e27656ac36ef6ba21b3b228086c17a099a3b",
}


def compute_digest(name: str, seed: int) -> str:
    result = get_experiment(name).run(quick=True, seed=seed)
    payload = json.dumps(result.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@pytest.mark.parametrize("name,seed", sorted(GOLDEN))
def test_quick_scenario_digest_is_pinned(name, seed):
    assert compute_digest(name, seed) == GOLDEN[(name, seed)], (
        f"{name} quick run with seed {seed} diverged from its golden "
        f"snapshot; if intentional, update GOLDEN with the new digest"
    )


@pytest.mark.parametrize("name", ["fine_grained", "paper_scale", "rule_churn"])
def test_distinct_seeds_produce_distinct_output(name):
    """Guards against the digest accidentally ignoring the seed."""
    assert GOLDEN[(name, 3)] != GOLDEN[(name, 11)]
    assert compute_digest(name, 3) != compute_digest(name, 11)
