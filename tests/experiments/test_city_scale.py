"""End-to-end parity and behaviour of the city-scale sharded pipeline.

The headline guarantee: ``execution="sharded"`` (worker processes +
shared-memory tables) and ``execution="serial"`` (same shard runtimes,
in-process) produce identical results — same per-interval report digest,
same series, same platform accounting.  Everything except the execution
knobs themselves must match bit-for-bit.
"""

import dataclasses

import pytest

from repro.experiments.city_scale import (
    CityScaleConfig,
    plan_city_shards,
    run_city_scale_experiment,
)
from repro.experiments.parallel import iter_shard_intervals
from repro.experiments.registry import get_experiment


def quick_config(**overrides):
    return get_experiment("city_scale").make_config(quick=True, **overrides)


class TestPlan:
    def test_quick_plan_covers_all_members(self):
        config = quick_config()
        plan = plan_city_shards(config)
        assert len(plan) == config.pop_count
        assert sum(len(spec) for spec in plan) == config.member_count
        # The victim (pop-1) is always in the first shard's PoP set.
        assert "pop-1" in plan[0].pops

    def test_plan_respects_shard_count(self):
        plan = plan_city_shards(quick_config(shard_count=3))
        assert len(plan) == 3


class TestValidation:
    def test_unknown_execution_mode(self):
        with pytest.raises(ValueError, match="execution"):
            run_city_scale_experiment(quick_config(execution="threads"))

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            run_city_scale_experiment(quick_config(workers=0))

    def test_member_count_must_cover_peers(self):
        with pytest.raises(ValueError, match="member_count"):
            run_city_scale_experiment(quick_config(member_count=10))

    def test_pipeline_rejects_bad_chunking(self):
        with pytest.raises(ValueError, match="chunk_intervals"):
            list(iter_shard_intervals(dict, [{}], [0.0], 1.0, chunk_intervals=0))


class TestSerialRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run_city_scale_experiment(quick_config(execution="serial"))

    def test_runs_all_intervals(self, result):
        config = result.config
        assert result.intervals == int(config.duration / config.interval)
        assert len(result.series.times) == result.intervals
        assert result.shard_count == config.pop_count

    def test_mitigation_reduces_attack_delivery(self, result):
        assert result.peak_attack_mbps > 0
        assert result.residual_mbps < 0.2 * result.peak_attack_mbps

    def test_platform_accounting_is_populated(self, result):
        assert result.platform_peak_bps > 0
        assert result.connected_capacity_bps > result.platform_peak_bps
        assert result.top_service_ports
        assert result.report_digest
        summary = result.summary()
        assert summary["member_count"] == result.config.member_count

    def test_serial_is_deterministic(self, result):
        again = run_city_scale_experiment(quick_config(execution="serial"))
        assert again.report_digest == result.report_digest
        assert again.to_dict() == result.to_dict()


def comparable(result):
    """to_dict() with the execution-only knobs removed from the config."""
    payload = result.to_dict()
    config = dict(payload["config"])
    for knob in ("execution", "workers", "chunk_intervals"):
        config.pop(knob)
    payload["config"] = config
    return payload


class TestShardedParity:
    def test_sharded_matches_serial_bit_for_bit(self):
        serial = run_city_scale_experiment(quick_config(execution="serial"))
        sharded = run_city_scale_experiment(
            quick_config(execution="sharded", workers=2, chunk_intervals=2)
        )
        assert sharded.report_digest == serial.report_digest
        assert comparable(sharded) == comparable(serial)

    def test_config_dataclass_roundtrip(self):
        config = quick_config(execution="serial")
        assert dataclasses.asdict(CityScaleConfig(**dataclasses.asdict(config))) == (
            dataclasses.asdict(config)
        )
