"""End-to-end behaviour and parity of the ``rule_churn`` scenario.

The headline guarantee mirrors the city-scale suite: the async
control-plane service (``execution="service"``) and the scripted
sequential core (``execution="scripted"``) produce bit-for-bit identical
results — same per-interval report digest, same request-log digest, same
everything except the execution knob itself.  On top of that the applied
request log replayed through :func:`replay_rule_churn` (direct router
calls, one rule at a time) must reproduce the live run's report digest.
"""

import dataclasses

import pytest

from repro.experiments.registry import get_experiment
from repro.experiments.rule_churn import (
    MITIGATION_RULE_ID,
    RuleChurnConfig,
    churn_member_asns,
    generate_churn_requests,
    replay_rule_churn,
    run_rule_churn_experiment,
)


def quick_config(**overrides):
    return get_experiment("rule_churn").make_config(quick=True, **overrides)


class TestValidation:
    def test_unknown_execution_mode(self):
        with pytest.raises(ValueError, match="execution"):
            run_rule_churn_experiment(quick_config(execution="threads"))

    def test_member_count_must_cover_attack_peers(self):
        with pytest.raises(ValueError, match="member_count"):
            run_rule_churn_experiment(quick_config(member_count=5))

    def test_burst_bounds_are_validated(self):
        config = quick_config(burst_min=9, burst_max=4)
        with pytest.raises(ValueError, match="burst"):
            generate_churn_requests(config, [65001])


class TestChurnStream:
    def test_stream_is_a_pure_function_of_config(self):
        config = quick_config()
        asns = [65001, 65002, 65003]
        assert generate_churn_requests(config, asns) == generate_churn_requests(
            config, asns
        )
        assert generate_churn_requests(config, asns) != generate_churn_requests(
            quick_config(seed=99), asns
        )

    def test_one_bucket_per_interval_with_local_arrivals(self):
        config = quick_config()
        stream = generate_churn_requests(config, [65001, 65002])
        assert len(stream) == int(config.duration / config.interval)
        # Burst installs trail their event by millisecond offsets, so a
        # bucket may spill slightly past its interval end — never before
        # its start, and never by more than the largest burst.
        slack = config.burst_max * 1e-3
        for index, bucket in enumerate(stream):
            start = index * config.interval
            for descriptor in bucket:
                assert start <= descriptor["at"] <= start + config.interval + slack

    def test_mitigation_request_is_spliced_in(self):
        config = quick_config()
        stream = generate_churn_requests(config, [65001])
        mitigations = [
            d for bucket in stream for d in bucket if d.get("mitigation")
        ]
        assert len(mitigations) == 1
        assert mitigations[0]["at"] == config.mitigation_time
        assert mitigations[0]["rules"][0].rule_id == MITIGATION_RULE_ID


class TestServiceRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run_rule_churn_experiment(quick_config())

    def test_runs_all_intervals(self, result):
        config = result.config
        assert result.intervals == int(config.duration / config.interval)
        assert len(result.series.times) == result.intervals

    def test_service_actually_churned(self, result):
        assert result.stats["submitted"] > 0
        assert result.stats["applied_requests"] > 0
        assert result.stats["coalesced_batches"] > 0
        assert result.rules_version_bumps > 0
        # Coalescing amortizes: strictly more ops than data-plane calls.
        assert result.ops_per_data_plane_call > 1.0

    def test_latency_percentiles_are_ordered(self, result):
        latency = result.latency
        assert 0.0 < latency["p50"] <= latency["p90"] <= latency["p99"]
        assert latency["p99"] <= latency["max"]

    def test_mitigation_travels_through_the_service(self, result):
        assert result.mitigation_latency is not None
        assert result.mitigation_latency > 0.0
        assert any(
            MITIGATION_RULE_ID in (rule.rule_id for rule in entry.rules)
            for entry in result.request_log
            if entry.op == "install_many"
        )

    def test_summary_keys(self, result):
        summary = result.summary()
        for key in (
            "requests_submitted",
            "applied_requests",
            "rejected_budget",
            "rejected_backpressure",
            "latency_p50_s",
            "latency_p99_s",
            "mitigation_latency_s",
            "rules_version_bumps",
            "ops_per_data_plane_call",
            "peak_attack_mbps",
        ):
            assert key in summary

    def test_request_log_is_excluded_from_json(self, result):
        assert "request_log" not in result.to_dict()
        assert result.request_log

    def test_run_is_deterministic(self, result):
        again = run_rule_churn_experiment(quick_config())
        assert again.report_digest == result.report_digest
        assert again.request_log_digest == result.request_log_digest
        assert again.to_dict() == result.to_dict()

    def test_distinct_seeds_diverge(self, result):
        other = run_rule_churn_experiment(quick_config(seed=99))
        assert other.report_digest != result.report_digest

    def test_replay_oracle_matches_live_digest(self, result):
        assert (
            replay_rule_churn(result.config, result.request_log)
            == result.report_digest
        )


def comparable(result):
    """to_dict() with the execution knob removed from the config."""
    payload = result.to_dict()
    config = dict(payload["config"])
    config.pop("execution")
    payload["config"] = config
    return payload


class TestExecutionParity:
    def test_scripted_matches_service_bit_for_bit(self):
        service = run_rule_churn_experiment(quick_config(execution="service"))
        scripted = run_rule_churn_experiment(quick_config(execution="scripted"))
        assert scripted.report_digest == service.report_digest
        assert scripted.request_log_digest == service.request_log_digest
        assert comparable(scripted) == comparable(service)

    def test_coalescing_changes_amortization_not_semantics(self):
        on = run_rule_churn_experiment(quick_config(coalesce=True))
        off = run_rule_churn_experiment(quick_config(coalesce=False))
        assert off.report_digest == on.report_digest
        assert off.request_log_digest != on.request_log_digest  # batch shapes
        assert off.rules_version_bumps > on.rules_version_bumps
        assert off.stats["data_plane_calls"] > on.stats["data_plane_calls"]

    def test_config_dataclass_roundtrip(self):
        config = quick_config()
        assert dataclasses.asdict(RuleChurnConfig(**dataclasses.asdict(config))) == (
            dataclasses.asdict(config)
        )


class TestChurnMembers:
    def test_fraction_selects_a_prefix_of_the_population(self):
        config = quick_config()
        fabric_members = [
            type("M", (), {"asn": 65000 + i})() for i in range(10)
        ]
        selected = churn_member_asns(config, fabric_members)
        assert len(selected) == max(1, round(config.churn_member_fraction * 10))
        assert selected == [m.asn for m in fabric_members[: len(selected)]]
