"""The scenario-diversity experiments: registry wiring, behaviour, sweeps."""

import pytest

from repro.experiments import (
    CarpetBombingConfig,
    MultiVectorConfig,
    PulseAttackConfig,
    Sweep,
    get_experiment,
    run_carpet_bombing_experiment,
    run_multi_vector_experiment,
    run_pulse_attack_experiment,
    run_sweep,
)

QUICK = dict(duration=500.0, peer_count=10)


class TestRegistryWiring:
    @pytest.mark.parametrize(
        "name,canonical",
        [
            ("pulse", "pulse"),
            ("pulse-attack", "pulse"),
            ("carpet", "carpet"),
            ("carpet_bombing", "carpet"),
            ("multivector", "multivector"),
            ("multi-vector", "multivector"),
        ],
    )
    def test_lookup(self, name, canonical):
        assert get_experiment(name).name == canonical

    def test_quick_run_through_spec(self):
        result = get_experiment("pulse").run(quick=True)
        assert result.summary()["burst_mbps"] > 0

    def test_results_serialize(self):
        result = get_experiment("carpet").run(quick=True)
        payload = result.to_dict()
        assert payload["distinct_target_count"] > 0
        assert "series" in payload


class TestPulseScenario:
    def test_bursts_tower_over_gaps(self):
        result = run_pulse_attack_experiment(PulseAttackConfig(seed=7, **QUICK))
        summary = result.summary()
        # During gaps only the benign floor (50 Mbps) is delivered.
        assert summary["burst_mbps"] > 5 * summary["gap_mbps"]
        assert result.burst_times and result.gap_times

    def test_deterministic_per_seed(self):
        a = run_pulse_attack_experiment(PulseAttackConfig(seed=7, **QUICK))
        b = run_pulse_attack_experiment(PulseAttackConfig(seed=7, **QUICK))
        assert a.to_dict() == b.to_dict()

    def test_duty_cycle_one_never_gaps(self):
        result = run_pulse_attack_experiment(
            PulseAttackConfig(seed=7, duty_cycle=1.0, **QUICK)
        )
        assert not result.gap_times


class TestCarpetScenario:
    def test_host_blackhole_barely_dents_the_attack(self):
        result = run_carpet_bombing_experiment(CarpetBombingConfig(seed=7, **QUICK))
        summary = result.summary()
        # The attack spreads over the /24 …
        assert summary["distinct_target_count"] > 100
        # … so the (fully honoured) /32 blackhole covers a sliver of it …
        assert summary["host_coverage_fraction"] < 0.05
        # … and removes almost nothing.
        assert summary["traffic_reduction_fraction"] < 0.15

    def test_deterministic_per_seed(self):
        a = run_carpet_bombing_experiment(CarpetBombingConfig(seed=7, **QUICK))
        b = run_carpet_bombing_experiment(CarpetBombingConfig(seed=7, **QUICK))
        assert a.to_dict() == b.to_dict()


class TestMultiVectorScenario:
    def test_residual_steps_down_per_rule(self):
        result = run_multi_vector_experiment(
            MultiVectorConfig(seed=11, duration=700.0, peer_count=10)
        )
        summary = result.summary()
        stages = [summary[f"stage{i}_mbps"] for i in (1, 2, 3)]
        assert summary["peak_attack_mbps"] > stages[0] > stages[1] > stages[2]
        # With every vector's rule installed only the benign floor remains.
        assert summary["final_residual_mbps"] < 0.1 * summary["peak_attack_mbps"]

    def test_vector_count_follows_config(self):
        result = run_multi_vector_experiment(
            MultiVectorConfig(seed=11, vectors="ntp,dns", duration=600.0, peer_count=10)
        )
        assert result.summary()["vector_count"] == 2.0


class TestScenarioSweeps:
    def test_pulse_sweepable_over_duty_cycle(self):
        sweep = Sweep(
            experiment="pulse",
            grid={"duty_cycle": (0.25, 0.75)},
            base={"duration": 400.0, "peer_count": 8},
            seed=42,
        )
        result = run_sweep(sweep, jobs=1)
        assert len(result) == 2
        duty = [summary["duty_cycle"] for summary in result.summaries()]
        assert duty == [0.25, 0.75]

    def test_carpet_grid_matches_serial(self):
        sweep = Sweep(
            experiment="carpet",
            grid={"peer_count": (8, 12)},
            base={"duration": 400.0},
            seed=43,
        )
        serial = run_sweep(sweep, jobs=1)
        parallel = run_sweep(sweep, jobs=2)
        assert serial.results == parallel.results


class TestPaperScaleScenario:
    QUICK = dict(
        duration=200.0,
        member_count=60,
        attack_peer_count=15,
        background_rate_bps=1e11,
        background_flows_per_interval=300,
        attack_start=50.0,
        attack_duration=120.0,
        mitigation_time=110.0,
        seed=7,
    )

    def test_registry_lookup(self):
        from repro.experiments import get_experiment

        assert get_experiment("paper_scale").name == "paper_scale"
        assert get_experiment("paper-scale").name == "paper_scale"
        assert get_experiment("platform-scale").name == "paper_scale"

    def test_multi_pop_layout_and_mitigation_effect(self):
        from repro.experiments import PaperScaleConfig, run_paper_scale_experiment

        result = run_paper_scale_experiment(PaperScaleConfig(**self.QUICK))
        summary = result.summary()
        assert result.router_count == 8  # 4 PoPs x 2 edge routers
        assert result.member_count == self.QUICK["member_count"]
        # The Stellar drop rule takes a real bite out of the attack.
        assert summary["residual_mbps"] < 0.6 * summary["peak_attack_mbps"]
        # The 10G victim port is oversubscribed by the 80G attack — the
        # unclamped utilisation ratio is what exposes it.
        assert summary["peak_port_utilisation"] > 1.5
        assert summary["oversubscribed_port_intervals"] > 0
        assert 0.0 < summary["platform_load_fraction"] < 1.0

    def test_batched_and_per_member_engines_agree_end_to_end(self):
        from repro.experiments import PaperScaleConfig, run_paper_scale_experiment

        results = {}
        for engine in ("batched", "per-member"):
            config = PaperScaleConfig(
                **{**self.QUICK, "duration": 120.0}, delivery_engine=engine
            )
            results[engine] = run_paper_scale_experiment(config)
        batched = results["batched"].to_dict()
        fallback = results["per-member"].to_dict()
        # The config (and thus the engine name) is part of the payload;
        # everything the engines *computed* must be identical.
        batched["config"].pop("delivery_engine")
        fallback["config"].pop("delivery_engine")
        assert batched == fallback

    def test_deterministic_per_seed(self):
        from repro.experiments import PaperScaleConfig, run_paper_scale_experiment

        config = PaperScaleConfig(**{**self.QUICK, "duration": 100.0})
        a = run_paper_scale_experiment(config)
        b = run_paper_scale_experiment(config)
        assert a.to_dict() == b.to_dict()


class TestFineGrainedScenario:
    QUICK = dict(
        duration=60.0,
        member_count=50,
        protected_member_count=5,
        rules_per_member=120,
        hosts_per_member=30,
        flows_per_interval=5000,
        late_rule_time=30.0,
        seed=7,
    )

    def test_registry_lookup(self):
        from repro.experiments import get_experiment

        assert get_experiment("fine_grained").name == "fine_grained"
        assert get_experiment("fine-grained").name == "fine_grained"
        assert get_experiment("rule-scale").name == "fine_grained"

    def test_rule_load_and_filtering(self):
        from repro.experiments import FineGrainedConfig, run_fine_grained_experiment

        result = run_fine_grained_experiment(FineGrainedConfig(**self.QUICK))
        summary = result.summary()
        # 5 x (120 + 2 MAC) installed up front, plus the late rule.
        assert result.installed_rule_count == 5 * 122 + 1
        assert summary["exact_rules"] >= 5 * 120
        assert summary["fallback_rules"] == 5 * 2
        # Most of the fine-grained rules actually see matching traffic,
        # and a substantial share of the interval is filtered.
        assert summary["matched_rules"] > 0.9 * 5 * 120
        assert 0.1 < summary["filtered_fraction"] < 0.9

    def test_late_rule_proves_cache_invalidation(self):
        from repro.experiments import FineGrainedConfig, run_fine_grained_experiment

        result = run_fine_grained_experiment(FineGrainedConfig(**self.QUICK))
        # Before the mid-run install the late pair's traffic forwards;
        # after it, the cached plan/index must pick the new rule up.
        assert result.late_bits_before == 0.0
        assert result.late_bits_after > 0.0
        assert [name for _, name, _ in result.events] == ["late-rule-install"]

    def test_classification_engines_agree_end_to_end(self):
        from repro.experiments import FineGrainedConfig, run_fine_grained_experiment

        results = {}
        for engine in ("indexed", "per-rule"):
            config = FineGrainedConfig(**self.QUICK, classification_engine=engine)
            results[engine] = run_fine_grained_experiment(config).to_dict()
        indexed, per_rule = results["indexed"], results["per-rule"]
        # The config (and thus the engine name) is part of the payload;
        # everything the engines *computed* must be identical.
        indexed["config"].pop("classification_engine")
        per_rule["config"].pop("classification_engine")
        assert indexed == per_rule

    def test_delivery_engines_agree_end_to_end(self):
        from repro.experiments import FineGrainedConfig, run_fine_grained_experiment

        results = {}
        for engine in ("batched", "per-member"):
            config = FineGrainedConfig(**self.QUICK, delivery_engine=engine)
            results[engine] = run_fine_grained_experiment(config).to_dict()
        batched, fallback = results["batched"], results["per-member"]
        batched["config"].pop("delivery_engine")
        fallback["config"].pop("delivery_engine")
        assert batched == fallback

    def test_deterministic_per_seed(self):
        from repro.experiments import FineGrainedConfig, run_fine_grained_experiment

        config = FineGrainedConfig(**self.QUICK)
        a = run_fine_grained_experiment(config)
        b = run_fine_grained_experiment(config)
        assert a.to_dict() == b.to_dict()

    def test_sweepable_over_rule_count(self):
        from repro.experiments import Sweep, run_sweep

        sweep = Sweep(
            experiment="fine_grained",
            grid={"rules_per_member": (60, 120)},
            base={**self.QUICK, "duration": 30.0},
            seed=44,
        )
        result = run_sweep(sweep, jobs=1)
        assert len(result) == 2
        installed = [
            summary["installed_rules"] for summary in result.summaries()
        ]
        assert installed[1] - installed[0] == 5 * 60
