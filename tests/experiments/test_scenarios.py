"""The scenario-diversity experiments: registry wiring, behaviour, sweeps."""

import pytest

from repro.experiments import (
    CarpetBombingConfig,
    MultiVectorConfig,
    PulseAttackConfig,
    Sweep,
    get_experiment,
    run_carpet_bombing_experiment,
    run_multi_vector_experiment,
    run_pulse_attack_experiment,
    run_sweep,
)

QUICK = dict(duration=500.0, peer_count=10)


class TestRegistryWiring:
    @pytest.mark.parametrize(
        "name,canonical",
        [
            ("pulse", "pulse"),
            ("pulse-attack", "pulse"),
            ("carpet", "carpet"),
            ("carpet_bombing", "carpet"),
            ("multivector", "multivector"),
            ("multi-vector", "multivector"),
        ],
    )
    def test_lookup(self, name, canonical):
        assert get_experiment(name).name == canonical

    def test_quick_run_through_spec(self):
        result = get_experiment("pulse").run(quick=True)
        assert result.summary()["burst_mbps"] > 0

    def test_results_serialize(self):
        result = get_experiment("carpet").run(quick=True)
        payload = result.to_dict()
        assert payload["distinct_target_count"] > 0
        assert "series" in payload


class TestPulseScenario:
    def test_bursts_tower_over_gaps(self):
        result = run_pulse_attack_experiment(PulseAttackConfig(seed=7, **QUICK))
        summary = result.summary()
        # During gaps only the benign floor (50 Mbps) is delivered.
        assert summary["burst_mbps"] > 5 * summary["gap_mbps"]
        assert result.burst_times and result.gap_times

    def test_deterministic_per_seed(self):
        a = run_pulse_attack_experiment(PulseAttackConfig(seed=7, **QUICK))
        b = run_pulse_attack_experiment(PulseAttackConfig(seed=7, **QUICK))
        assert a.to_dict() == b.to_dict()

    def test_duty_cycle_one_never_gaps(self):
        result = run_pulse_attack_experiment(
            PulseAttackConfig(seed=7, duty_cycle=1.0, **QUICK)
        )
        assert not result.gap_times


class TestCarpetScenario:
    def test_host_blackhole_barely_dents_the_attack(self):
        result = run_carpet_bombing_experiment(CarpetBombingConfig(seed=7, **QUICK))
        summary = result.summary()
        # The attack spreads over the /24 …
        assert summary["distinct_target_count"] > 100
        # … so the (fully honoured) /32 blackhole covers a sliver of it …
        assert summary["host_coverage_fraction"] < 0.05
        # … and removes almost nothing.
        assert summary["traffic_reduction_fraction"] < 0.15

    def test_deterministic_per_seed(self):
        a = run_carpet_bombing_experiment(CarpetBombingConfig(seed=7, **QUICK))
        b = run_carpet_bombing_experiment(CarpetBombingConfig(seed=7, **QUICK))
        assert a.to_dict() == b.to_dict()


class TestMultiVectorScenario:
    def test_residual_steps_down_per_rule(self):
        result = run_multi_vector_experiment(
            MultiVectorConfig(seed=11, duration=700.0, peer_count=10)
        )
        summary = result.summary()
        stages = [summary[f"stage{i}_mbps"] for i in (1, 2, 3)]
        assert summary["peak_attack_mbps"] > stages[0] > stages[1] > stages[2]
        # With every vector's rule installed only the benign floor remains.
        assert summary["final_residual_mbps"] < 0.1 * summary["peak_attack_mbps"]

    def test_vector_count_follows_config(self):
        result = run_multi_vector_experiment(
            MultiVectorConfig(seed=11, vectors="ntp,dns", duration=600.0, peer_count=10)
        )
        assert result.summary()["vector_count"] == 2.0


class TestScenarioSweeps:
    def test_pulse_sweepable_over_duty_cycle(self):
        sweep = Sweep(
            experiment="pulse",
            grid={"duty_cycle": (0.25, 0.75)},
            base={"duration": 400.0, "peer_count": 8},
            seed=42,
        )
        result = run_sweep(sweep, jobs=1)
        assert len(result) == 2
        duty = [summary["duty_cycle"] for summary in result.summaries()]
        assert duty == [0.25, 0.75]

    def test_carpet_grid_matches_serial(self):
        sweep = Sweep(
            experiment="carpet",
            grid={"peer_count": (8, 12)},
            base={"duration": 400.0},
            seed=43,
        )
        serial = run_sweep(sweep, jobs=1)
        parallel = run_sweep(sweep, jobs=2)
        assert serial.results == parallel.results


class TestPaperScaleScenario:
    QUICK = dict(
        duration=200.0,
        member_count=60,
        attack_peer_count=15,
        background_rate_bps=1e11,
        background_flows_per_interval=300,
        attack_start=50.0,
        attack_duration=120.0,
        mitigation_time=110.0,
        seed=7,
    )

    def test_registry_lookup(self):
        from repro.experiments import get_experiment

        assert get_experiment("paper_scale").name == "paper_scale"
        assert get_experiment("paper-scale").name == "paper_scale"
        assert get_experiment("platform-scale").name == "paper_scale"

    def test_multi_pop_layout_and_mitigation_effect(self):
        from repro.experiments import PaperScaleConfig, run_paper_scale_experiment

        result = run_paper_scale_experiment(PaperScaleConfig(**self.QUICK))
        summary = result.summary()
        assert result.router_count == 8  # 4 PoPs x 2 edge routers
        assert result.member_count == self.QUICK["member_count"]
        # The Stellar drop rule takes a real bite out of the attack.
        assert summary["residual_mbps"] < 0.6 * summary["peak_attack_mbps"]
        # The 10G victim port is oversubscribed by the 80G attack — the
        # unclamped utilisation ratio is what exposes it.
        assert summary["peak_port_utilisation"] > 1.5
        assert summary["oversubscribed_port_intervals"] > 0
        assert 0.0 < summary["platform_load_fraction"] < 1.0

    def test_batched_and_per_member_engines_agree_end_to_end(self):
        from repro.experiments import PaperScaleConfig, run_paper_scale_experiment

        results = {}
        for engine in ("batched", "per-member"):
            config = PaperScaleConfig(
                **{**self.QUICK, "duration": 120.0}, delivery_engine=engine
            )
            results[engine] = run_paper_scale_experiment(config)
        batched = results["batched"].to_dict()
        fallback = results["per-member"].to_dict()
        # The config (and thus the engine name) is part of the payload;
        # everything the engines *computed* must be identical.
        batched["config"].pop("delivery_engine")
        fallback["config"].pop("delivery_engine")
        assert batched == fallback

    def test_deterministic_per_seed(self):
        from repro.experiments import PaperScaleConfig, run_paper_scale_experiment

        config = PaperScaleConfig(**{**self.QUICK, "duration": 100.0})
        a = run_paper_scale_experiment(config)
        b = run_paper_scale_experiment(config)
        assert a.to_dict() == b.to_dict()
