"""Shared test configuration: Hypothesis profiles and the fuzz package path.

Two Hypothesis settings profiles are registered here so the same suite can
run at two depths (see docs/TESTING.md):

* ``fast`` — the default.  A bounded example budget with no deadline, so
  the tier-1 ``python -m pytest -x -q`` run stays quick and free of
  timing-induced flakes on loaded machines.
* ``ci`` — the deep run the dedicated CI ``fuzz`` job uses: a much larger
  example budget, still no deadline.  Failures shrink further and the
  ``.hypothesis`` example database is uploaded as a build artifact so a
  red CI run can be reproduced locally (copy the database next to the
  repo root and re-run the failing test).

Select a profile with ``HYPOTHESIS_PROFILE=ci python -m pytest tests/fuzz``.

The ``tests`` directory is also put on ``sys.path`` so every test module
can import the shared strategy library as ``from fuzz import strategies``
— the single source of truth for rule/flow generation.
"""

import os
import sys
from pathlib import Path

from hypothesis import HealthCheck, settings

sys.path.insert(0, str(Path(__file__).resolve().parent))

_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

settings.register_profile("fast", max_examples=25, **_COMMON)
settings.register_profile("ci", max_examples=250, print_blob=True, **_COMMON)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))
