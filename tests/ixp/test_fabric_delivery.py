"""Batched fabric delivery: engine parity, lazy results, IPFIX export.

The batched engine must be indistinguishable from the per-member loop —
same multiset of flow verdicts, same bit accounting, same counters — on
multi-router, multi-PoP topologies with drop/shape/forward rules and
stateful shapers across intervals.  These tests pin that, plus the
export regression: flows whose egress member is unknown never entered
the IXP and must not be exported to the collector on either input path.
"""

import numpy as np
import pytest

from repro.bgp import Prefix
from repro.ixp import (
    EdgeRouter,
    FabricDeliveryPlan,
    FilterAction,
    FlowMatch,
    IxpMember,
    QosRule,
    SwitchingFabric,
    small_ixp_edge_router_profile,
)
from repro.traffic import (
    BenignTrafficSource,
    BooterAttack,
    FiveTuple,
    FlowRecord,
    FlowTable,
    IpProtocol,
)

VICTIM_ASN = 64500
VICTIM_IP = "100.10.10.10"
PEER_ASNS = [65000 + i for i in range(24)]


def build_fabric(with_rules: bool = True, engine: str = "batched") -> SwitchingFabric:
    """Two PoPs x two edge routers, 25 members, rules on three ports."""
    fabric = SwitchingFabric(
        name="test-ixp", platform_capacity_bps=1e12, delivery_engine=engine
    )
    for pop in (1, 2):
        for index in (1, 2):
            fabric.add_edge_router(
                EdgeRouter(
                    f"edge-{pop}-{index}",
                    profile=small_ixp_edge_router_profile(),
                    pop=f"pop-{pop}",
                )
            )
    fabric.connect_member(
        IxpMember(asn=VICTIM_ASN, port_capacity_bps=2e8, pop="pop-1")
    )
    for i, asn in enumerate(PEER_ASNS):
        fabric.connect_member(IxpMember(asn=asn, pop=f"pop-{1 + i % 2}"))
    if not with_rules:
        return fabric
    victim_router = fabric.router_for_member(VICTIM_ASN)
    victim_router.install_rule(
        VICTIM_ASN,
        QosRule(
            match=FlowMatch(
                dst_prefix=Prefix.parse(f"{VICTIM_IP}/32"), src_port=123
            ),
            action=FilterAction.DROP,
            rule_id="drop-ntp",
        ),
    )
    victim_router.install_rule(
        VICTIM_ASN,
        QosRule(
            match=FlowMatch(dst_prefix=Prefix.parse(f"{VICTIM_IP}/32"), src_port=53),
            action=FilterAction.SHAPE,
            shape_rate_bps=1e6,
            rule_id="shape-dns",
        ),
    )
    victim_router.install_rule(
        VICTIM_ASN,
        QosRule(
            match=FlowMatch(dst_prefix=Prefix.parse("100.10.10.0/24")),
            action=FilterAction.FORWARD,
            rule_id="allow-prefix",
        ),
    )
    # A second filtered port on another router/PoP.
    other_router = fabric.router_for_member(65001)
    other_router.install_rule(
        65001,
        QosRule(
            match=FlowMatch(src_port=11211),
            action=FilterAction.DROP,
            rule_id="drop-memcached",
        ),
    )
    return fabric


def interval_table(seed: int = 3, with_unknown: bool = True) -> FlowTable:
    """Attack + benign + cross-member traffic, optionally with unknown egress."""
    attack = BooterAttack(
        victim_ip=VICTIM_IP,
        victim_member_asn=VICTIM_ASN,
        peer_member_asns=PEER_ASNS,
        peak_rate_bps=1e9,
        start=0.0,
        duration=100.0,
        seed=seed,
    )
    benign = BenignTrafficSource(
        dst_ip=VICTIM_IP,
        egress_member_asn=VICTIM_ASN,
        ingress_member_asns=PEER_ASNS[:5],
        rate_bps=5e7,
        seed=seed + 1,
    )
    rng = np.random.default_rng(seed + 2)
    n = 4000
    egress_pool = PEER_ASNS + ([9999, 8888] if with_unknown else [])
    cross = FlowTable(
        src_ip=rng.integers(0, 2**32, n, dtype=np.uint32),
        dst_ip=rng.integers(0, 2**32, n, dtype=np.uint32),
        protocol=np.full(n, int(IpProtocol.UDP)),
        src_port=rng.choice([123, 53, 11211, 443], n),
        dst_port=rng.integers(1024, 60000, n),
        start=np.zeros(n),
        duration=np.full(n, 10.0),
        bytes=rng.integers(100, 10_000, n),
        packets=np.ones(n, dtype=np.int64),
        ingress_asn=rng.choice(PEER_ASNS, n),
        egress_asn=rng.choice(egress_pool, n),
        is_attack=np.zeros(n, dtype=bool),
    )
    return FlowTable.concat(
        [attack.flow_table(10.0, 10.0), benign.flow_table(10.0, 10.0), cross]
    )


def table_multiset(table: FlowTable):
    """Row multiset of a table (order-insensitive verdict comparison)."""
    return sorted(
        zip(
            table.src_ip.tolist(),
            table.dst_ip.tolist(),
            table.src_port.tolist(),
            table.dst_port.tolist(),
            table.bytes.tolist(),
            table.ingress_asn.tolist(),
            table.egress_asn.tolist(),
        )
    )


def assert_reports_equal(fabric_a, fabric_b, report_a, report_b):
    assert list(report_a.results_by_member) == list(report_b.results_by_member)
    for name in (
        "offered_bits",
        "delivered_bits",
        "filtered_bits",
        "congestion_dropped_bits",
    ):
        assert getattr(report_a, name) == getattr(report_b, name), name
    for asn, result_a in report_a.results_by_member.items():
        result_b = report_b.results_by_member[asn]
        for name in (
            "forwarded_bits",
            "dropped_bits",
            "shaped_passed_bits",
            "shaped_dropped_bits",
            "congestion_dropped_bits",
        ):
            assert getattr(result_a, name) == getattr(result_b, name), (asn, name)
        assert result_a.rule_stats == result_b.rule_stats, asn
        for name in ("forwarded_table", "dropped_table", "shaped_table"):
            assert table_multiset(getattr(result_a, name)) == table_multiset(
                getattr(result_b, name)
            ), (asn, name)
        counters_a = fabric_a.port_for_member(asn).counters
        counters_b = fabric_b.port_for_member(asn).counters
        assert vars(counters_a) == vars(counters_b), asn


class TestEngineParity:
    def test_single_interval_parity_multi_router(self):
        fabric_batched = build_fabric()
        fabric_fallback = build_fabric()
        table = interval_table()
        report_batched = fabric_batched.deliver(table, 10.0, 0.0, engine="batched")
        report_fallback = fabric_fallback.deliver(
            table, 10.0, 0.0, engine="per-member"
        )
        assert_reports_equal(
            fabric_batched, fabric_fallback, report_batched, report_fallback
        )

    def test_multi_interval_parity_keeps_shaper_state(self):
        # The shape-dns rule's RateLimiter is stateful; engines must drain
        # the same token stream across consecutive intervals.
        fabric_batched = build_fabric()
        fabric_fallback = build_fabric()
        for step, seed in enumerate((3, 4, 5)):
            table = interval_table(seed=seed)
            report_batched = fabric_batched.deliver(
                table, 10.0, step * 10.0, engine="batched"
            )
            report_fallback = fabric_fallback.deliver(
                table, 10.0, step * 10.0, engine="per-member"
            )
            assert_reports_equal(
                fabric_batched, fabric_fallback, report_batched, report_fallback
            )

    def test_parity_without_any_rules(self):
        fabric_batched = build_fabric(with_rules=False)
        fabric_fallback = build_fabric(with_rules=False)
        table = interval_table()
        assert_reports_equal(
            fabric_batched,
            fabric_fallback,
            fabric_batched.deliver(table, 10.0, engine="batched"),
            fabric_fallback.deliver(table, 10.0, engine="per-member"),
        )

    def test_empty_interval(self):
        fabric = build_fabric()
        report = fabric.deliver(FlowTable.empty(), 10.0, engine="batched")
        assert report.offered_bits == 0.0
        assert report.results_by_member == {}

    def test_default_engine_is_batched(self):
        fabric = build_fabric()
        assert fabric.delivery_engine == "batched"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown delivery engine"):
            SwitchingFabric(delivery_engine="quantum")
        fabric = build_fabric()
        with pytest.raises(ValueError, match="unknown delivery engine"):
            fabric.deliver(FlowTable.empty(), 10.0, engine="quantum")


class TestDeliveryPlan:
    def test_plan_compiles_ports_and_rules(self):
        plan = FabricDeliveryPlan(build_fabric())
        assert plan.port_count == 1 + len(PEER_ASNS)
        assert plan.rule_count == 4
        by_member = {}
        for compiled in plan.compiled_rules():
            by_member.setdefault(compiled.member_asn, []).append(compiled)
        assert set(by_member) == {VICTIM_ASN, 65001}
        # Per-port precedence survives compilation.
        victim_positions = [c.port_rule_index for c in by_member[VICTIM_ASN]]
        assert victim_positions == sorted(victim_positions)

    def test_plan_recompiled_per_interval_sees_new_rules(self):
        fabric = build_fabric(with_rules=False)
        table = interval_table(with_unknown=False)
        report = fabric.deliver(table, 10.0)
        assert report.results_by_member[VICTIM_ASN].dropped_bits == 0.0
        fabric.router_for_member(VICTIM_ASN).install_rule(
            VICTIM_ASN,
            QosRule(
                match=FlowMatch(src_port=123),
                action=FilterAction.DROP,
                rule_id="late-rule",
            ),
        )
        report = fabric.deliver(table, 10.0, 10.0)
        assert report.results_by_member[VICTIM_ASN].dropped_bits > 0.0

    def test_recompile_patches_only_the_touched_port(self):
        # A rule change on one member must rebuild only that member's
        # segment; every other port's compiled rules are adopted from the
        # previous plan by identity (the incremental-plan fast path).
        fabric = build_fabric()
        table = interval_table(with_unknown=False)
        fabric.deliver(table, 10.0)
        before = fabric.current_delivery_plan()
        fabric.router_for_member(65001).install_rule(
            65001,
            QosRule(
                match=FlowMatch(src_port=19),
                action=FilterAction.DROP,
                rule_id="late-chargen",
            ),
        )
        after = fabric.current_delivery_plan()
        assert after is not before
        assert after._segments[VICTIM_ASN] is before._segments[VICTIM_ASN]
        assert after._segments[65001] is not before._segments[65001]
        assert after.rule_count == before.rule_count + 1
        assert "late-chargen" in {
            compiled.rule.rule_id for compiled in after.compiled_rules()
        }
        # The patched plan delivers identically to a from-scratch one.
        report_patched = fabric.deliver(table, 10.0, 10.0)
        fabric._plan_cache = None
        report_fresh = fabric.deliver(table, 10.0, 20.0)
        patched, fresh = report_patched.to_dict(), report_fresh.to_dict()
        patched.pop("interval_start"), fresh.pop("interval_start")
        assert patched == fresh

    def test_passthrough_results_defer_tables(self):
        fabric = build_fabric()
        table = interval_table()
        report = fabric.deliver(table, 10.0, engine="batched")
        peer_result = report.results_by_member[65002]
        assert peer_result._table_source is not None
        forwarded = peer_result.forwarded_table
        assert peer_result._table_source is None
        assert len(forwarded) > 0
        assert set(np.unique(forwarded.egress_asn).tolist()) == {65002}


class TestIpfixExportFilter:
    """Regression: unknown-egress flows never entered the IXP and must not
    be exported (they used to inflate collector/telemetry totals)."""

    def make_record(self, egress: int, bytes_: int = 1000) -> FlowRecord:
        return FlowRecord(
            key=FiveTuple("23.1.1.1", VICTIM_IP, IpProtocol.UDP, 123, 40000),
            start=0.0,
            duration=10.0,
            bytes=bytes_,
            packets=1,
            ingress_member_asn=PEER_ASNS[0],
            egress_member_asn=egress,
            is_attack=True,
        )

    def test_table_path_exports_only_known_egress(self):
        fabric = build_fabric(with_rules=False)
        table = interval_table(with_unknown=True)
        known = int(
            np.isin(table.egress_asn, np.array([VICTIM_ASN, *PEER_ASNS])).sum()
        )
        assert known < len(table)  # the interval really has alien flows
        fabric.deliver(table, 10.0, engine="batched")
        assert len(fabric.collector) == known
        exported = fabric.collector.tables[0].table
        assert set(np.unique(exported.egress_asn).tolist()) <= {
            VICTIM_ASN, *PEER_ASNS
        }

    def test_per_member_table_path_exports_only_known_egress(self):
        fabric = build_fabric(with_rules=False)
        table = interval_table(with_unknown=True)
        known = int(
            np.isin(table.egress_asn, np.array([VICTIM_ASN, *PEER_ASNS])).sum()
        )
        fabric.deliver(table, 10.0, engine="per-member")
        assert len(fabric.collector) == known

    def test_record_path_exports_only_known_egress(self):
        fabric = build_fabric(with_rules=False)
        flows = [
            self.make_record(VICTIM_ASN),
            self.make_record(9999),
            self.make_record(PEER_ASNS[0]),
        ]
        report = fabric.deliver(flows, 10.0)
        assert set(report.results_by_member) == {VICTIM_ASN, PEER_ASNS[0]}
        assert len(fabric.collector) == 2
        assert all(
            record.flow.egress_member_asn != 9999
            for record in fabric.collector.records
        )

    def test_collector_totals_match_carried_traffic(self):
        # The overcount the bug produced: exported bytes > carried bytes.
        fabric = build_fabric(with_rules=False)
        table = interval_table(with_unknown=True)
        report = fabric.deliver(table, 10.0)
        exported_bits = sum(
            batch.table.total_bits for batch in fabric.collector.tables
        )
        assert exported_bits == report.offered_bits
