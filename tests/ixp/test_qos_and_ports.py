"""Tests for the QoS data plane, member ports and the control-plane CPU model."""

import pytest

from repro.bgp import Prefix
from repro.ixp import (
    ControlPlaneCpuModel,
    FilterAction,
    FlowMatch,
    IxpMember,
    MemberPort,
    PortQosPolicy,
    QosRule,
    default_mac,
)
from repro.traffic import FiveTuple, FlowRecord, IpProtocol


def make_flow(src_port=123, protocol=IpProtocol.UDP, bytes_=10_000, dst_ip="100.10.10.10",
              src_mac="", is_attack=True, dst_port=40000):
    return FlowRecord(
        key=FiveTuple("23.1.1.1", dst_ip, protocol, src_port, dst_port),
        start=0.0,
        duration=10.0,
        bytes=bytes_,
        packets=10,
        ingress_member_asn=65001,
        egress_member_asn=64500,
        src_mac=src_mac,
        is_attack=is_attack,
    )


class TestFlowMatch:
    def test_resource_footprint(self):
        match = FlowMatch(
            dst_prefix=Prefix.parse("100.10.10.10/32"),
            protocol=IpProtocol.UDP,
            src_port=123,
        )
        assert match.l3l4_criteria == 3
        assert match.mac_filter_entries == 0
        mac_match = FlowMatch(src_mac="02:00:00:00:00:01")
        assert mac_match.mac_filter_entries == 1
        assert mac_match.l3l4_criteria == 0

    def test_catch_all(self):
        assert FlowMatch().is_catch_all
        assert not FlowMatch(src_port=1).is_catch_all

    def test_matching_by_fields(self):
        match = FlowMatch(
            dst_prefix=Prefix.parse("100.10.10.0/24"), protocol=IpProtocol.UDP, src_port=123
        )
        assert match.matches(make_flow())
        assert not match.matches(make_flow(src_port=53))
        assert not match.matches(make_flow(protocol=IpProtocol.TCP))
        assert not match.matches(make_flow(dst_ip="9.9.9.9"))

    def test_mac_matching_case_insensitive(self):
        match = FlowMatch(src_mac="02:00:AA:BB:CC:DD")
        assert match.matches(make_flow(src_mac="02:00:aa:bb:cc:dd"))
        assert not match.matches(make_flow(src_mac="02:00:aa:bb:cc:de"))

    def test_dst_port_and_src_prefix(self):
        match = FlowMatch(src_prefix=Prefix.parse("23.0.0.0/8"), dst_port=40000)
        assert match.matches(make_flow())
        assert not match.matches(make_flow(dst_port=53))

    def test_specificity_ordering(self):
        broad = FlowMatch(dst_prefix=Prefix.parse("100.10.10.0/24"))
        narrow = FlowMatch(
            dst_prefix=Prefix.parse("100.10.10.10/32"), protocol=IpProtocol.UDP, src_port=123
        )
        assert narrow.specificity > broad.specificity

    def test_invalid_port(self):
        with pytest.raises(ValueError):
            FlowMatch(src_port=-1)


class TestQosRule:
    def test_shape_requires_rate(self):
        with pytest.raises(ValueError):
            QosRule(match=FlowMatch(), action=FilterAction.SHAPE)

    def test_non_shape_must_not_have_rate(self):
        with pytest.raises(ValueError):
            QosRule(match=FlowMatch(), action=FilterAction.DROP, shape_rate_bps=100)


class TestPortQosPolicy:
    def test_default_forwarding_subject_to_port_capacity(self):
        policy = PortQosPolicy(port_capacity_bps=1e6)
        flows = [make_flow(bytes_=10_000_000)]  # 80 Mbit in 10 s >> 1 Mbps port
        result = policy.apply(flows, interval=10.0)
        assert result.delivered_bits == pytest.approx(1e7)  # capacity * interval
        assert result.congestion_dropped_bits > 0

    def test_drop_rule_removes_matching_traffic(self):
        policy = PortQosPolicy(port_capacity_bps=1e9)
        policy.install(
            QosRule(
                match=FlowMatch(protocol=IpProtocol.UDP, src_port=123),
                action=FilterAction.DROP,
                rule_id="r1",
            )
        )
        result = policy.apply([make_flow(), make_flow(src_port=53)], interval=10.0)
        assert len(result.dropped) == 1
        assert len(result.forwarded) == 1

    def test_shape_rule_limits_aggregate(self):
        policy = PortQosPolicy(port_capacity_bps=1e9)
        policy.install(
            QosRule(
                match=FlowMatch(protocol=IpProtocol.UDP, src_port=123),
                action=FilterAction.SHAPE,
                shape_rate_bps=1000.0,
                rule_id="shape",
            )
        )
        flows = [make_flow(bytes_=100_000), make_flow(bytes_=100_000)]
        result = policy.apply(flows, interval=10.0)
        assert result.shaped_passed_bits == pytest.approx(10_000.0)
        assert result.shaped_dropped_bits == pytest.approx(1_600_000 - 10_000)

    def test_most_specific_rule_wins(self):
        policy = PortQosPolicy(port_capacity_bps=1e9)
        policy.install(
            QosRule(
                match=FlowMatch(protocol=IpProtocol.UDP), action=FilterAction.DROP, rule_id="udp"
            )
        )
        policy.install(
            QosRule(
                match=FlowMatch(protocol=IpProtocol.UDP, src_port=123),
                action=FilterAction.SHAPE,
                shape_rate_bps=1e6,
                rule_id="ntp",
            )
        )
        result = policy.apply([make_flow()], interval=10.0)
        assert len(result.shaped) == 1
        assert len(result.dropped) == 0

    def test_install_replaces_rule_with_same_id(self):
        policy = PortQosPolicy(port_capacity_bps=1e9)
        policy.install(QosRule(match=FlowMatch(src_port=1), action=FilterAction.DROP, rule_id="x"))
        policy.install(QosRule(match=FlowMatch(src_port=2), action=FilterAction.DROP, rule_id="x"))
        assert len(policy) == 1
        assert policy.rules()[0].match.src_port == 2

    def test_remove_rule(self):
        policy = PortQosPolicy(port_capacity_bps=1e9)
        policy.install(QosRule(match=FlowMatch(src_port=1), action=FilterAction.DROP, rule_id="x"))
        assert policy.remove("x")
        assert not policy.remove("x")
        assert len(policy) == 0

    def test_classify_returns_none_without_match(self):
        policy = PortQosPolicy(port_capacity_bps=1e9)
        assert policy.classify(make_flow()) is None

    def test_conservation_of_bits(self):
        policy = PortQosPolicy(port_capacity_bps=1e9)
        policy.install(
            QosRule(match=FlowMatch(src_port=123), action=FilterAction.DROP, rule_id="d")
        )
        flows = [make_flow(), make_flow(src_port=53), make_flow(src_port=80)]
        offered = sum(flow.bits for flow in flows)
        result = policy.apply(flows, interval=10.0)
        accounted = result.delivered_bits + result.total_dropped_bits
        assert accounted == pytest.approx(offered)

    def test_invalid_interval_and_capacity(self):
        with pytest.raises(ValueError):
            PortQosPolicy(port_capacity_bps=0)
        with pytest.raises(ValueError):
            PortQosPolicy(port_capacity_bps=1).apply([], 0)


class TestIxpMember:
    def test_defaults(self):
        member = IxpMember(asn=64500)
        assert member.name == "AS64500"
        assert member.mac == default_mac(64500)
        assert not member.honors_rtbh

    def test_validation(self):
        with pytest.raises(ValueError):
            IxpMember(asn=0)
        with pytest.raises(ValueError):
            IxpMember(asn=1, port_capacity_bps=0)

    def test_default_mac_is_deterministic_and_unique(self):
        assert default_mac(64500) == default_mac(64500)
        assert default_mac(64500) != default_mac(64501)
        with pytest.raises(ValueError):
            default_mac(-1)


class TestMemberPort:
    def test_deliver_updates_counters_and_history(self):
        port = MemberPort(member=IxpMember(asn=64500, port_capacity_bps=1e9), port_id=1)
        result = port.deliver([make_flow(bytes_=1000)], interval=10.0, interval_start=5.0)
        assert port.counters.offered_bits == 8000
        assert port.counters.delivered_bits == result.delivered_bits
        assert port.history[0][0] == 5.0

    def test_rule_management_delegation(self):
        port = MemberPort(member=IxpMember(asn=64500), port_id=1)
        port.install_rule(
            QosRule(match=FlowMatch(src_port=1), action=FilterAction.DROP, rule_id="a")
        )
        assert len(port.rules()) == 1
        assert port.remove_rule("a")

    def test_utilisation_reports_true_oversubscription(self):
        # 80 Mbit of demand against a 10 Mbit interval budget: the port is
        # 8x oversubscribed and utilisation must say so (the old behaviour
        # clamped to 1.0, hiding the overload from the paper-scale views).
        port = MemberPort(member=IxpMember(asn=64500, port_capacity_bps=1e6), port_id=1)
        result = port.deliver([make_flow(bytes_=10_000_000)], interval=10.0)
        assert port.utilisation(result, 10.0) == pytest.approx(8.0)
        assert port.display_utilisation(result, 10.0) == pytest.approx(1.0)

    def test_utilisation_below_capacity(self):
        port = MemberPort(member=IxpMember(asn=64500, port_capacity_bps=1e6), port_id=1)
        result = port.deliver([make_flow(bytes_=625_000)], interval=10.0)
        assert port.utilisation(result, 10.0) == pytest.approx(0.5)
        assert port.display_utilisation(result, 10.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            port.utilisation(result, 0.0)

    def test_total_filtered_bits_counter(self):
        member = IxpMember(asn=64500, port_capacity_bps=1e9)
        port = MemberPort(member=member, port_id=1)
        port.install_rule(
            QosRule(match=FlowMatch(src_port=123), action=FilterAction.DROP, rule_id="d")
        )
        port.deliver([make_flow(bytes_=1000)], interval=10.0)
        assert port.counters.total_filtered_bits == 8000


class TestControlPlaneCpuModel:
    def test_linear_expected_usage(self):
        model = ControlPlaneCpuModel(base_percent=1.0, percent_per_update=2.0, noise_std=0.0)
        assert model.expected_usage(0) == 1.0
        assert model.expected_usage(3) == 7.0

    def test_max_update_rate_matches_paper_default(self):
        model = ControlPlaneCpuModel()
        assert model.max_update_rate() == pytest.approx(4.33, abs=0.05)

    def test_within_budget(self):
        model = ControlPlaneCpuModel(base_percent=1.0, percent_per_update=2.0, noise_std=0.0)
        assert model.within_budget(5)
        assert not model.within_budget(10)

    def test_measurements_are_clipped_and_noisy(self):
        model = ControlPlaneCpuModel(seed=1)
        values = [model.measure_usage(3.0) for _ in range(100)]
        assert all(0 <= value <= 100 for value in values)
        assert len(set(values)) > 1

    def test_measure_series_shape(self):
        model = ControlPlaneCpuModel(seed=1)
        observations = model.measure_series([1.0, 2.0], samples_per_rate=5)
        assert len(observations) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ControlPlaneCpuModel(base_percent=-1)
        with pytest.raises(ValueError):
            ControlPlaneCpuModel(cpu_limit_percent=0)
        with pytest.raises(ValueError):
            ControlPlaneCpuModel().expected_usage(-1)
        with pytest.raises(ValueError):
            ControlPlaneCpuModel().measure_series([1.0], samples_per_rate=0)

    def test_budget_below_base_gives_zero_rate(self):
        model = ControlPlaneCpuModel(base_percent=5.0, percent_per_update=1.0)
        assert model.max_update_rate(cpu_limit_percent=4.0) == 0.0
