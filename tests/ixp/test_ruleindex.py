"""The compiled rule-match index: signatures, parity, caching, shapers.

The index must be *verdict-for-verdict* equal to the per-rule pass —
``assign_table`` rank arrays identical — which makes the downstream
accounting bit-for-bit identical.  These tests pin that across mixed
signature groups (exact host rules, broader prefixes shadowing them,
MAC-match rules forcing the fallback path, precedence ties), plus the
rule-set version counter that keeps the cached index (and the fabric's
cached delivery plan) invalidation-safe, and the anonymous-shape-rule
shaper fix.
"""

import numpy as np
import pytest

from repro.bgp import Prefix
from repro.ixp import (
    EdgeRouter,
    FilterAction,
    FlowMatch,
    IxpMember,
    MatchSignature,
    PortQosPolicy,
    QosRule,
    RuleMatchIndex,
    SwitchingFabric,
    l_ixp_edge_router_profile,
)
from repro.sim.rng import make_rng
from repro.traffic import FlowTable
from repro.traffic.flowtable import derived_mac, ip_to_int
from repro.traffic.packet import IpProtocol


def flow_table(n=2000, seed=5, egress=64500, in_prefix_fraction=0.6):
    """A mixed interval: a share inside 10.1.0.0/16, reflection ports."""
    rng = make_rng(seed)
    inside = rng.random(n) < in_prefix_fraction
    dst = np.where(
        inside,
        ip_to_int("10.1.0.0") + rng.integers(0, 64, size=n),
        rng.integers(0x0B000000, 0xDF000000, size=n),
    )
    return FlowTable(
        src_ip=rng.integers(0x0B000000, 0xDF000000, size=n).astype(np.uint32),
        dst_ip=dst.astype(np.uint32),
        protocol=rng.choice([6, 17], size=n).astype(np.uint8),
        src_port=rng.choice([19, 53, 123, 11211, 50000, 51000], size=n).astype(np.int32),
        dst_port=rng.integers(1024, 65536, size=n).astype(np.int32),
        start=np.zeros(n),
        duration=np.full(n, 10.0),
        bytes=rng.integers(100, 20000, size=n).astype(np.int64),
        packets=np.ones(n, dtype=np.int64),
        ingress_asn=rng.choice([65001, 65002, 65003], size=n),
        egress_asn=np.full(n, egress, dtype=np.int64),
        is_attack=np.zeros(n, dtype=bool),
    )


def host_drop(host, port, rule_id, protocol=IpProtocol.UDP):
    return QosRule(
        match=FlowMatch(
            dst_prefix=Prefix.parse(f"{host}/32"), protocol=protocol, src_port=port
        ),
        action=FilterAction.DROP,
        rule_id=rule_id,
    )


def mixed_rules():
    """Rules spanning every signature kind, with deliberate shadowing."""
    return [
        host_drop("10.1.0.1", 123, "exact-ntp"),
        host_drop("10.1.0.1", 53, "exact-dns"),
        host_drop("10.1.0.2", 123, "exact-ntp-2"),
        # Broader prefix rule that shadows the host rules' traffic when
        # they don't match (and is itself shadowed when they do).
        QosRule(
            match=FlowMatch(dst_prefix=Prefix.parse("10.1.0.0/16"), src_port=123),
            action=FilterAction.DROP,
            rule_id="prefix-ntp",
        ),
        # MAC policy-control rule: forces the masked fallback path.
        QosRule(
            match=FlowMatch(
                dst_prefix=Prefix.parse("10.1.0.0/16"), src_mac=derived_mac(65002)
            ),
            action=FilterAction.DROP,
            rule_id="mac-peer",
        ),
        # Named shape rule (exact signature, stateful shaper).
        QosRule(
            match=FlowMatch(
                dst_prefix=Prefix.parse("10.1.0.3/32"),
                protocol=IpProtocol.UDP,
                src_port=11211,
            ),
            action=FilterAction.SHAPE,
            shape_rate_bps=2e6,
            rule_id="shape-memcached",
        ),
        # dst_port-only rule (exact group with a different field set).
        QosRule(
            match=FlowMatch(dst_port=4444),
            action=FilterAction.DROP,
            rule_id="dstport-only",
        ),
        # Catch-all FORWARD rule (fallback, matches everything).
        QosRule(match=FlowMatch(), action=FilterAction.FORWARD, rule_id="catch-all"),
    ]


def make_policy(engine, rules=None):
    policy = PortQosPolicy(port_capacity_bps=100e9, classification_engine=engine)
    for rule in rules if rules is not None else mixed_rules():
        policy.install(rule)
    return policy


def assert_results_identical(a, b):
    """Bit-for-bit equality of two PortQosResults (tables included)."""
    assert a.forwarded_bits == b.forwarded_bits
    assert a.dropped_bits == b.dropped_bits
    assert a.shaped_passed_bits == b.shaped_passed_bits
    assert a.shaped_dropped_bits == b.shaped_dropped_bits
    assert a.congestion_dropped_bits == b.congestion_dropped_bits
    assert a.rule_stats == b.rule_stats
    for name in ("forwarded_table", "dropped_table", "shaped_table"):
        ta, tb = getattr(a, name), getattr(b, name)
        assert len(ta) == len(tb)
        for column in ("src_ip", "dst_ip", "src_port", "bytes", "egress_asn"):
            assert np.array_equal(getattr(ta, column), getattr(tb, column)), (
                name,
                column,
            )


class TestMatchSignature:
    def test_dominant_stellar_shape_is_exact(self):
        match = FlowMatch(
            dst_prefix=Prefix.parse("10.1.0.1/32"),
            protocol=IpProtocol.UDP,
            src_port=123,
        )
        signature = MatchSignature.of(match)
        assert signature.is_exact
        assert signature.exact_fields == ("dst_ip", "protocol", "src_port")
        assert signature.key_bits == 56

    def test_mac_and_broad_prefix_force_fallback(self):
        assert not MatchSignature.of(FlowMatch(src_mac="02:00:00:00:00:01")).is_exact
        assert not MatchSignature.of(
            FlowMatch(dst_prefix=Prefix.parse("10.0.0.0/8"))
        ).is_exact
        assert not MatchSignature.of(FlowMatch()).is_exact

    def test_ipv6_host_falls_back(self):
        assert not MatchSignature.of(
            FlowMatch(dst_prefix=Prefix.parse("2001:db8::1/128"))
        ).is_exact

    def test_key_overflow_falls_back(self):
        match = FlowMatch(
            dst_prefix=Prefix.parse("10.1.0.1/32"),
            src_prefix=Prefix.parse("10.2.0.1/32"),
            protocol=IpProtocol.UDP,
            src_port=1,
            dst_port=2,
        )
        signature = MatchSignature.of(match)
        assert signature.key_bits > 64 and not signature.is_exact

    def test_index_partitions_rules(self):
        index = RuleMatchIndex(make_policy("indexed").sorted_rules())
        stats = index.describe()
        assert stats["rules"] == len(mixed_rules())
        # The broad-prefix rule, the MAC rule and the catch-all fall back.
        assert stats["fallback_rules"] == 3
        assert stats["exact_rules"] == stats["rules"] - 3
        assert stats["exact_groups"] >= 2  # host-shape group + dst_port group


class TestAssignParity:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mixed_signatures(self, seed):
        table = flow_table(seed=seed)
        indexed = make_policy("indexed").assign_table(table)
        per_rule = make_policy("per-rule").assign_table(table)
        assert np.array_equal(indexed, per_rule)
        # The catch-all claims everything unclaimed, so every row has a
        # rank; several distinct rules must actually win rows.
        assert (indexed >= 0).all()
        assert len(np.unique(indexed)) >= 4

    def test_randomized_rule_sets(self):
        rng = make_rng(99)
        for round_index in range(5):
            rules = []
            for i in range(int(rng.integers(5, 40))):
                kind = int(rng.integers(0, 5))
                host = f"10.1.{int(rng.integers(0, 2))}.{int(rng.integers(0, 8))}"
                port = int(rng.choice([19, 53, 123, 11211]))
                if kind == 0:
                    rules.append(host_drop(host, port, f"r{round_index}-{i}"))
                elif kind == 1:
                    rules.append(
                        QosRule(
                            match=FlowMatch(
                                dst_prefix=Prefix.parse(
                                    f"10.1.0.0/{int(rng.choice([8, 16, 24]))}"
                                ),
                                src_port=port,
                            ),
                            action=FilterAction.DROP,
                            rule_id=f"r{round_index}-{i}",
                        )
                    )
                elif kind == 2:
                    rules.append(
                        QosRule(
                            match=FlowMatch(
                                src_mac=derived_mac(int(rng.choice([65001, 65002])))
                            ),
                            action=FilterAction.DROP,
                            rule_id=f"r{round_index}-{i}",
                        )
                    )
                elif kind == 3:
                    rules.append(
                        QosRule(
                            match=FlowMatch(
                                dst_prefix=Prefix.parse(f"{host}/32"),
                                protocol=IpProtocol.UDP,
                                src_port=port,
                            ),
                            action=FilterAction.SHAPE,
                            shape_rate_bps=1e6,
                            rule_id=f"r{round_index}-{i}",
                        )
                    )
                else:
                    rules.append(
                        QosRule(
                            match=FlowMatch(dst_port=int(rng.integers(1024, 2048))),
                            action=FilterAction.DROP,
                            rule_id=f"r{round_index}-{i}",
                        )
                    )
            table = flow_table(seed=100 + round_index)
            assert np.array_equal(
                make_policy("indexed", rules).assign_table(table),
                make_policy("per-rule", rules).assign_table(table),
            )

    def test_full_apply_bit_for_bit(self):
        table = flow_table(seed=8)
        result_indexed = make_policy("indexed").apply(table, interval=10.0)
        result_per_rule = make_policy("per-rule").apply(table, interval=10.0)
        assert result_indexed.rule_stats  # rules matched something
        assert_results_identical(result_indexed, result_per_rule)

    def test_apply_matches_record_path(self):
        table = flow_table(n=400, seed=9)
        columnar = make_policy("indexed").apply(table, interval=10.0)
        per_record = make_policy("indexed").apply(table.to_records(), interval=10.0)
        assert columnar.forwarded_bits == pytest.approx(per_record.forwarded_bits)
        assert columnar.dropped_bits == pytest.approx(per_record.dropped_bits)
        assert set(columnar.rule_stats) == set(per_record.rule_stats)
        for rule_id, stats in per_record.rule_stats.items():
            for key, value in stats.items():
                assert columnar.rule_stats[rule_id][key] == pytest.approx(value)


class TestPrecedence:
    def test_host_rule_beats_broader_prefix(self):
        table = flow_table(seed=3)
        for engine in ("indexed", "per-rule"):
            policy = make_policy(engine)
            ranks = policy.assign_table(table)
            rules = policy.sorted_rules()
            ntp_host = table.select(
                (table.dst_ip == ip_to_int("10.1.0.1"))
                & (table.src_port == 123)
                & (table.protocol == 17)
            )
            if len(ntp_host):
                host_ranks = policy.assign_table(ntp_host)
                assert all(rules[r].rule_id == "exact-ntp" for r in host_ranks.tolist())
            # NTP flows to other 10.1/16 hosts fall through to the prefix
            # rule (regardless of protocol: the prefix rule matches any).
            other = table.select(
                (table.dst_ip == ip_to_int("10.1.0.5")) & (table.src_port == 123)
            )
            if len(other):
                other_ranks = policy.assign_table(other)
                assert all(
                    rules[r].rule_id == "prefix-ntp" for r in other_ranks.tolist()
                )

    def test_fallback_rule_can_shadow_exact_rule(self):
        # A MAC rule with more criteria than a bare host rule outranks it.
        rules = [
            QosRule(
                match=FlowMatch(dst_prefix=Prefix.parse("10.1.0.1/32")),
                action=FilterAction.DROP,
                rule_id="bare-host",
            ),
            QosRule(
                match=FlowMatch(
                    dst_prefix=Prefix.parse("10.1.0.1/32"),
                    protocol=IpProtocol.UDP,
                    src_mac=derived_mac(65002),
                ),
                action=FilterAction.DROP,
                rule_id="mac-udp-host",
            ),
        ]
        table = flow_table(seed=4)
        selector = (
            (table.dst_ip == ip_to_int("10.1.0.1"))
            & (table.protocol == 17)
            & (table.ingress_asn == 65002)
        )
        sub = table.select(selector)
        assert len(sub) > 0
        for engine in ("indexed", "per-rule"):
            policy = make_policy(engine, rules)
            ranks = policy.assign_table(sub)
            sorted_rules = policy.sorted_rules()
            assert all(
                sorted_rules[r].rule_id == "mac-udp-host" for r in ranks.tolist()
            )

    def test_specificity_tie_keeps_install_order(self):
        # Two identical matches, different ids: the earliest install wins.
        rule_a = host_drop("10.1.0.1", 123, "first")
        rule_b = host_drop("10.1.0.1", 123, "second")
        table = flow_table(seed=6)
        for engine in ("indexed", "per-rule"):
            policy = make_policy(engine, [rule_a, rule_b])
            ranks = policy.assign_table(table)
            rules = policy.sorted_rules()
            winners = {rules[r].rule_id for r in ranks[ranks >= 0].tolist()}
            assert "second" not in winners


class TestVersionCounterAndCaching:
    def test_mutations_bump_version(self):
        policy = PortQosPolicy(port_capacity_bps=10e9)
        v0 = policy.rules_version
        policy.install(host_drop("10.1.0.1", 123, "a"))
        v1 = policy.rules_version
        assert v1 > v0
        policy.install_many([host_drop("10.1.0.2", 53, "b"), host_drop("10.1.0.3", 19, "c")])
        v2 = policy.rules_version
        assert v2 == v1 + 1  # one bump for the whole batch
        policy.remove("b")
        assert policy.rules_version > v2
        policy.clear()
        assert policy.rules_version > v2 + 1

    def test_index_cached_until_version_changes(self):
        policy = make_policy("indexed")
        first = policy.compiled_index()
        assert policy.compiled_index() is first
        policy.apply(flow_table(n=50), interval=10.0)
        assert policy.compiled_index() is first
        policy.install(host_drop("10.1.0.9", 19, "late"))
        assert policy.compiled_index() is not first

    @pytest.mark.parametrize("engine", ["indexed", "per-rule"])
    def test_mid_run_install_and_remove_are_picked_up(self, engine):
        policy = PortQosPolicy(port_capacity_bps=100e9, classification_engine=engine)
        table = flow_table(seed=12)
        before = policy.apply(table, interval=10.0)
        assert before.dropped_bits == 0.0
        policy.install(
            QosRule(
                match=FlowMatch(src_port=123), action=FilterAction.DROP, rule_id="mid"
            )
        )
        during = policy.apply(table, interval=10.0)
        assert during.dropped_bits > 0.0
        assert during.rule_stats["mid"]["dropped"] == during.dropped_bits
        policy.remove("mid")
        after = policy.apply(table, interval=10.0)
        assert after.dropped_bits == 0.0

    def test_install_many_equals_sequential_installs(self):
        rules = mixed_rules() + [host_drop("10.1.0.1", 123, "exact-ntp")]  # dup id
        sequential = PortQosPolicy(port_capacity_bps=10e9)
        for rule in rules:
            sequential.install(rule)
        bulk = PortQosPolicy(port_capacity_bps=10e9)
        bulk.install_many(rules)
        assert [r.rule_id for r in bulk.sorted_rules()] == [
            r.rule_id for r in sequential.sorted_rules()
        ]
        table = flow_table(seed=13)
        assert np.array_equal(bulk.assign_table(table), sequential.assign_table(table))


class TestFabricPlanCache:
    def build_fabric(self):
        fabric = SwitchingFabric(name="t-ixp")
        fabric.add_edge_router(EdgeRouter("edge-1", profile=l_ixp_edge_router_profile()))
        victim = IxpMember(asn=64500, port_capacity_bps=100e9)
        peer = IxpMember(asn=65001, port_capacity_bps=10e9)
        fabric.connect_member(victim)
        fabric.connect_member(peer)
        return fabric

    def test_plan_reused_across_intervals(self):
        fabric = self.build_fabric()
        table = flow_table(n=500, seed=20)
        fabric.deliver(table, 10.0, 0.0)
        plan = fabric._plan_cache
        assert plan is not None
        fabric.deliver(table, 10.0, 10.0)
        assert fabric._plan_cache is plan

    def test_rule_install_invalidates_plan(self):
        fabric = self.build_fabric()
        table = flow_table(n=500, seed=21)
        report = fabric.deliver(table, 10.0, 0.0)
        plan = fabric._plan_cache
        assert report.results_by_member[64500].dropped_bits == 0.0
        fabric.router_for_member(64500).install_rule(
            64500,
            QosRule(
                match=FlowMatch(src_port=123), action=FilterAction.DROP, rule_id="mid"
            ),
        )
        report = fabric.deliver(table, 10.0, 10.0)
        assert fabric._plan_cache is not plan
        assert report.results_by_member[64500].dropped_bits > 0.0

    def test_new_member_invalidates_plan(self):
        fabric = self.build_fabric()
        table = flow_table(n=200, seed=22)
        fabric.deliver(table, 10.0, 0.0)
        plan = fabric._plan_cache
        fabric.connect_member(IxpMember(asn=65002, port_capacity_bps=10e9))
        fabric.deliver(table, 10.0, 10.0)
        assert fabric._plan_cache is not plan

    def test_set_classification_engine_validates(self):
        fabric = self.build_fabric()
        with pytest.raises(ValueError, match="unknown classification engine"):
            fabric.set_classification_engine("quantum")
        fabric.set_classification_engine("per-rule")
        assert all(
            port.qos.classification_engine == "per-rule"
            for router in fabric.edge_routers()
            for port in router.ports()
        )


class TestAnonymousShapeRules:
    def anon_shape(self, rate, port):
        return QosRule(
            match=FlowMatch(protocol=IpProtocol.UDP, src_port=port),
            action=FilterAction.SHAPE,
            shape_rate_bps=rate,
        )

    def test_anonymous_rules_get_unique_ids_and_shapers(self):
        policy = PortQosPolicy(port_capacity_bps=10e9)
        policy.install(self.anon_shape(1e6, 123))
        policy.install(self.anon_shape(8e6, 53))
        ids = [rule.rule_id for rule in policy.rules()]
        assert len(set(ids)) == 2 and all(ids)
        shapers = [policy.shaper_for(rule_id) for rule_id in ids]
        assert shapers[0] is not None and shapers[1] is not None
        assert shapers[0] is not shapers[1]

    def test_two_anonymous_rules_shape_independently(self):
        # Regression: both anonymous SHAPE rules used to share the single
        # "anon" RateLimiter, so the second rule silently adopted the
        # first rule's token bucket.
        interval = 10.0
        policy = PortQosPolicy(port_capacity_bps=10e9)
        policy.install(self.anon_shape(5e5, 123))   # 5 Mbit budget
        policy.install(self.anon_shape(2e6, 53))    # 20 Mbit budget
        table = flow_table(n=4000, seed=30, in_prefix_fraction=0.0)
        offered_123 = float(
            table.bits[(table.src_port == 123) & (table.protocol == 17)].sum()
        )
        offered_53 = float(
            table.bits[(table.src_port == 53) & (table.protocol == 17)].sum()
        )
        assert offered_123 > 5e5 * interval and offered_53 > 2e6 * interval
        result = policy.apply(table, interval=interval)
        shaped = {
            rule_id: stats["shaped"] for rule_id, stats in result.rule_stats.items()
        }
        assert len(shaped) == 2
        budgets = sorted(shaped.values())
        assert budgets[0] == pytest.approx(5e5 * interval, rel=0.05)
        assert budgets[1] == pytest.approx(2e6 * interval, rel=0.05)
        assert result.shaped_passed_bits == pytest.approx(2.5e6 * interval, rel=0.05)

    def test_anonymous_drop_rules_unchanged(self):
        policy = PortQosPolicy(port_capacity_bps=10e9)
        policy.install(
            QosRule(match=FlowMatch(src_port=123), action=FilterAction.DROP)
        )
        assert policy.rules()[0].rule_id == ""
        result = policy.apply(flow_table(n=500, seed=31), interval=10.0)
        assert result.dropped_bits > 0
        assert "" in result.rule_stats


class TestBulkInstall:
    def test_tcam_exhaustion_mid_batch_keeps_allocated_prefix_active(self):
        # Exception safety: a batch that exhausts the TCAM must leave the
        # router exactly where sequential install_rule calls would have —
        # the rules allocated before the failure are active on the data
        # plane, and the TCAM accounting matches them.
        from dataclasses import replace

        from repro.ixp import TcamExhaustedError

        profile = replace(
            l_ixp_edge_router_profile(),
            name="tiny-tcam",
            l3l4_criteria_capacity=7,  # fits two 3-criterion rules, not three
        )
        router = EdgeRouter("edge-1", profile=profile)
        fabric = SwitchingFabric(name="t-ixp")
        fabric.add_edge_router(router)
        fabric.connect_member(IxpMember(asn=64500, port_capacity_bps=10e9))
        rules = [host_drop(f"10.1.0.{i}", 123, f"r{i}") for i in range(5)]
        with pytest.raises(TcamExhaustedError):
            router.install_rules(64500, rules)
        port = router.port_for(64500)
        assert len(port.qos) == 2
        assert {rule.rule_id for rule in port.qos.rules()} == {"r0", "r1"}
        assert router.tcam.l3l4_criteria_used == 6
        assert {r.rule_id for r in router.installed_rules()} == {"r0", "r1"}
        # ... and the active rules really classify traffic.
        table = flow_table(n=500, seed=40)
        result = port.qos.apply(table, interval=10.0)
        assert set(result.rule_stats) <= {"r0", "r1"}

    def test_stale_plan_execute_is_rejected(self):
        from repro.ixp import FabricDeliveryPlan

        fabric = SwitchingFabric(name="t-ixp")
        fabric.add_edge_router(EdgeRouter("edge-1", profile=l_ixp_edge_router_profile()))
        fabric.connect_member(IxpMember(asn=64500, port_capacity_bps=10e9))
        plan = FabricDeliveryPlan(fabric)
        fabric.router_for_member(64500).install_rule(
            64500,
            QosRule(
                match=FlowMatch(src_port=123), action=FilterAction.DROP, rule_id="late"
            ),
        )
        with pytest.raises(RuntimeError, match="stale"):
            plan.execute(flow_table(n=10, seed=41), 10.0)
        # The fabric-level entry point transparently recompiles instead.
        report = fabric.deliver(flow_table(n=500, seed=41), 10.0)
        assert report.results_by_member[64500].dropped_bits > 0.0

    def test_bulk_reinstall_replaces_in_place(self):
        # Re-staging a batch under the same ids (e.g. flipping actions)
        # must replace rules and keep TCAM accounting balanced, without
        # the per-rule remove/re-sort path.
        router = EdgeRouter("edge-1", profile=l_ixp_edge_router_profile())
        fabric = SwitchingFabric(name="t-ixp")
        fabric.add_edge_router(router)
        fabric.connect_member(IxpMember(asn=64500, port_capacity_bps=10e9))
        rules = [host_drop(f"10.1.0.{i}", 123, f"r{i}") for i in range(20)]
        router.install_rules(64500, rules)
        used_after_first = router.tcam.l3l4_criteria_used
        replacement = [
            QosRule(
                match=rule.match,
                action=FilterAction.SHAPE,
                shape_rate_bps=1e6,
                rule_id=rule.rule_id,
            )
            for rule in rules
        ]
        router.install_rules(64500, replacement)
        port = router.port_for(64500)
        assert len(port.qos) == 20
        assert all(
            rule.action is FilterAction.SHAPE for rule in port.qos.rules()
        )
        assert router.tcam.l3l4_criteria_used == used_after_first
        assert len(router.installed_rules()) == 20


class TestIncrementalDeltas:
    """with_installed / with_removed vs a from-scratch compile.

    The delta ops must be *structurally* identical to recompiling the
    new rule list — same keys and ranks per signature group — not just
    verdict-equal, because a mis-spliced group can hide behind rules
    that never claim rows.
    """

    def scratch(self, rules):
        return RuleMatchIndex(rules).structure()

    def test_install_at_every_rank_matches_scratch(self):
        rules = mixed_rules()
        base = RuleMatchIndex(rules)
        newcomer = host_drop("10.1.0.77", 19, "newcomer")
        for rank in range(len(rules) + 1):
            patched = base.with_installed(newcomer, rank)
            expected = rules[:rank] + [newcomer] + rules[rank:]
            assert patched.structure() == self.scratch(expected), rank

    def test_install_default_rank_appends(self):
        rules = mixed_rules()
        newcomer = host_drop("10.1.0.77", 19, "newcomer")
        patched = RuleMatchIndex(rules).with_installed(newcomer)
        assert patched.structure() == self.scratch(rules + [newcomer])

    def test_install_fallback_rule_matches_scratch(self):
        rules = mixed_rules()
        base = RuleMatchIndex(rules)
        broad = QosRule(
            match=FlowMatch(dst_prefix=Prefix.parse("10.2.0.0/16"), src_port=53),
            action=FilterAction.DROP,
            rule_id="broad-dns",
        )
        for rank in (0, 3, len(rules)):
            patched = base.with_installed(broad, rank)
            expected = rules[:rank] + [broad] + rules[rank:]
            assert patched.structure() == self.scratch(expected), rank

    def test_remove_each_rule_matches_scratch(self):
        rules = mixed_rules()
        base = RuleMatchIndex(rules)
        for rank, rule in enumerate(rules):
            patched = base.with_removed(rule.rule_id, rank)
            expected = rules[:rank] + rules[rank + 1 :]
            assert patched.structure() == self.scratch(expected), rule.rule_id

    def test_remove_by_id_finds_rank(self):
        rules = mixed_rules()
        patched = RuleMatchIndex(rules).with_removed("mac-peer")
        expected = [rule for rule in rules if rule.rule_id != "mac-peer"]
        assert patched.structure() == self.scratch(expected)

    def test_duplicate_exact_keys_survive_removal(self):
        # Two rules with an identical packed key: removing one must leave
        # the other in the group (the compile keeps duplicates precisely
        # so the delta ops stay splice-exact).
        rules = [
            host_drop("10.1.0.1", 123, "first"),
            host_drop("10.1.0.1", 123, "second"),
        ]
        patched = RuleMatchIndex(rules).with_removed("first", 0)
        assert patched.structure() == self.scratch([rules[1]])
        table = flow_table(seed=6)
        hits = patched.assign(table)
        assert (hits[hits >= 0] == 0).all()

    def test_delta_ops_leave_the_base_untouched(self):
        rules = mixed_rules()
        base = RuleMatchIndex(rules)
        before = base.structure()
        base.with_installed(host_drop("10.1.0.9", 53, "x"), 0)
        base.with_removed("catch-all")
        assert base.structure() == before

    def test_chained_deltas_match_scratch(self):
        rules = mixed_rules()
        index = RuleMatchIndex(rules)
        index = index.with_installed(host_drop("10.1.0.8", 19, "chain-a"), 2)
        rules.insert(2, host_drop("10.1.0.8", 19, "chain-a"))
        index = index.with_removed("prefix-ntp")
        rules = [rule for rule in rules if rule.rule_id != "prefix-ntp"]
        index = index.with_installed(
            QosRule(match=FlowMatch(dst_port=9), action=FilterAction.DROP, rule_id="chain-b"),
            0,
        )
        rules.insert(0, QosRule(match=FlowMatch(dst_port=9), action=FilterAction.DROP, rule_id="chain-b"))
        assert index.structure() == self.scratch(rules)

    def test_install_rank_out_of_range(self):
        base = RuleMatchIndex(mixed_rules())
        with pytest.raises(IndexError, match="insert rank"):
            base.with_installed(host_drop("10.1.0.9", 19, "x"), len(mixed_rules()) + 1)
        with pytest.raises(IndexError, match="insert rank"):
            base.with_installed(host_drop("10.1.0.9", 19, "x"), -1)

    def test_remove_unknown_id_raises(self):
        base = RuleMatchIndex(mixed_rules())
        with pytest.raises(KeyError, match="no rule with id"):
            base.with_removed("ghost")

    def test_remove_rank_id_mismatch_raises(self):
        base = RuleMatchIndex(mixed_rules())
        with pytest.raises(KeyError, match="carries id"):
            base.with_removed("exact-ntp", 3)
        with pytest.raises(IndexError, match="remove rank"):
            base.with_removed("exact-ntp", 99)


class TestJournalledCompile:
    """PortQosPolicy.compiled_index() patches the cached snapshot."""

    def scratch(self, policy):
        return RuleMatchIndex(policy.sorted_rules()).structure()

    def test_single_mutations_patch_the_snapshot(self):
        policy = make_policy("indexed")
        assert policy.compiled_index().structure() == self.scratch(policy)
        policy.install(host_drop("10.1.0.50", 19, "late"))
        assert policy.compiled_index().structure() == self.scratch(policy)
        policy.remove("prefix-ntp")
        assert policy.compiled_index().structure() == self.scratch(policy)
        policy.install(host_drop("10.1.0.1", 123, "exact-ntp"))  # replace
        assert policy.compiled_index().structure() == self.scratch(policy)

    def test_batch_below_limit_journals_deltas(self):
        policy = make_policy("indexed")
        policy.compiled_index()
        batch = [host_drop(f"10.1.1.{i}", 53, f"b{i}") for i in range(5)]
        policy.install_many(batch)
        assert policy.compiled_index().structure() == self.scratch(policy)

    def test_large_batch_falls_back_to_full_compile(self):
        from repro.ixp.qos import _BATCH_DELTA_LIMIT

        policy = make_policy("indexed")
        policy.compiled_index()
        batch = [
            host_drop(f"10.1.{i // 200}.{i % 200}", 53, f"big{i}")
            for i in range(_BATCH_DELTA_LIMIT + 1)
        ]
        policy.install_many(batch)
        assert policy.compiled_index().structure() == self.scratch(policy)

    def test_truncated_journal_falls_back_to_full_compile(self):
        from repro.ixp.qos import _JOURNAL_LIMIT

        policy = make_policy("indexed")
        policy.compiled_index()
        # More mutations than the journal retains, with no compile in
        # between: the cached snapshot is older than the journal base,
        # so compiled_index() must recompile from scratch.
        for i in range(_JOURNAL_LIMIT + 8):
            policy.install(host_drop(f"10.1.{i // 200}.{i % 200}", 19, f"churn{i}"))
        assert policy.compiled_index().structure() == self.scratch(policy)

    def test_clear_resets_and_recompiles(self):
        policy = make_policy("indexed")
        policy.compiled_index()
        policy.clear()
        index = policy.compiled_index()
        assert index.rule_count == 0
        assert index.structure() == self.scratch(policy)

    def test_patched_index_classifies_identically(self):
        table = flow_table(seed=17)
        warm = make_policy("indexed")
        warm.compiled_index()  # warm snapshot, mutations below patch it
        cold = make_policy("indexed")
        for policy in (warm, cold):
            policy.install(host_drop("10.1.0.40", 123, "late"))
            policy.remove("exact-dns")
        assert np.array_equal(warm.assign_table(table), cold.assign_table(table))


class TestRadixBinning:
    """Broad-prefix fallback rules are pre-filtered by top address bits."""

    def prefix_rules(self):
        return [
            # >= RADIX_BITS bits: all binned (dst column).
            QosRule(
                match=FlowMatch(dst_prefix=Prefix.parse("10.16.0.0/12"), src_port=123),
                action=FilterAction.DROP,
                rule_id="dst-12",
            ),
            QosRule(
                match=FlowMatch(dst_prefix=Prefix.parse("10.1.0.0/16"), src_port=53),
                action=FilterAction.DROP,
                rule_id="dst-16",
            ),
            QosRule(
                match=FlowMatch(dst_prefix=Prefix.parse("198.51.100.0/24")),
                action=FilterAction.DROP,
                rule_id="dst-24",
            ),
            # Broad src prefix: binned on the src column.
            QosRule(
                match=FlowMatch(src_prefix=Prefix.parse("203.0.0.0/16")),
                action=FilterAction.DROP,
                rule_id="src-16",
            ),
            # /8 is wider than a radix bin: stays unbinned.
            QosRule(
                match=FlowMatch(dst_prefix=Prefix.parse("10.0.0.0/8"), src_port=19),
                action=FilterAction.DROP,
                rule_id="dst-8",
            ),
            # MAC-only and catch-all: no prefix to bin on.
            QosRule(
                match=FlowMatch(src_mac=derived_mac(65002)),
                action=FilterAction.DROP,
                rule_id="mac-only",
            ),
            QosRule(match=FlowMatch(), action=FilterAction.FORWARD, rule_id="catch-all"),
        ]

    def test_binned_rule_count(self):
        policy = make_policy("indexed", self.prefix_rules())
        index = policy.compiled_index()
        # dst-12, dst-16, dst-24, src-16 are binned; dst-8, mac-only and
        # catch-all run over the full interval.
        assert index.radix_binned_rule_count == 4
        assert index.fallback_rule_count == 7

    def test_describe_keys_are_stable(self):
        # describe() feeds golden-digested experiment payloads: the key
        # set must not grow with new internals.
        index = RuleMatchIndex(self.prefix_rules())
        assert set(index.describe()) == {
            "rules",
            "exact_rules",
            "fallback_rules",
            "exact_groups",
            "fallback_groups",
        }

    @pytest.mark.parametrize("seed", [51, 52, 53])
    def test_radix_parity_with_per_rule(self, seed):
        table = flow_table(seed=seed, in_prefix_fraction=0.4)
        indexed = make_policy("indexed", self.prefix_rules()).assign_table(table)
        per_rule = make_policy("per-rule", self.prefix_rules()).assign_table(table)
        assert np.array_equal(indexed, per_rule)
        assert (indexed >= 0).all()  # catch-all claims the rest

    def test_bin_boundary_addresses(self):
        # Addresses straddling a radix-bin edge (the /12 boundary at
        # 10.16.0.0 and 10.31.255.255 vs 10.32.0.0) must land exactly as
        # the per-rule pass decides.
        edge_ips = [
            "10.15.255.255",
            "10.16.0.0",
            "10.31.255.255",
            "10.32.0.0",
            "198.51.100.7",
            "198.51.101.7",
        ]
        n = len(edge_ips)
        table = FlowTable(
            src_ip=np.full(n, ip_to_int("203.0.5.5"), dtype=np.uint32),
            dst_ip=np.array([ip_to_int(ip) for ip in edge_ips], dtype=np.uint32),
            protocol=np.full(n, 17, dtype=np.uint8),
            src_port=np.full(n, 123, dtype=np.int32),
            dst_port=np.full(n, 4000, dtype=np.int32),
            start=np.zeros(n),
            duration=np.full(n, 10.0),
            bytes=np.full(n, 1000, dtype=np.int64),
            packets=np.ones(n, dtype=np.int64),
            ingress_asn=np.full(n, 65001, dtype=np.int64),
            egress_asn=np.full(n, 64500, dtype=np.int64),
            is_attack=np.zeros(n, dtype=bool),
        )
        indexed = make_policy("indexed", self.prefix_rules()).assign_table(table)
        per_rule = make_policy("per-rule", self.prefix_rules()).assign_table(table)
        assert np.array_equal(indexed, per_rule)

    def test_deltas_recompile_radix_groups(self):
        rules = self.prefix_rules()
        base = RuleMatchIndex(rules)
        grown = base.with_installed(
            QosRule(
                match=FlowMatch(dst_prefix=Prefix.parse("192.0.2.0/24")),
                action=FilterAction.DROP,
                rule_id="dst-24b",
            ),
            0,
        )
        assert grown.radix_binned_rule_count == 5
        shrunk = grown.with_removed("src-16")
        assert shrunk.radix_binned_rule_count == 4
