"""Rule-churn edge cases: remove()/clear() semantics and cache exactness.

Deterministic companions to the ``tests/fuzz`` suite — every scenario
here is either an edge case the state machine exercises randomly
(removing a shaped rule mid-interval, removing a synthetic ``anon-<n>``
id, remove-then-reinstall, clearing an empty policy) or a minimal
regression test for a bug the fuzzing work fixed:

* ``remove()`` of an unknown id / ``clear()`` of an empty policy used to
  bump ``rules_version``, spuriously invalidating the compiled rule
  index and the fabric's cached delivery plan;
* an anonymous SHAPE rule could be assigned a synthetic id colliding
  with a user-supplied rule literally named ``anon-<n>``, silently
  replacing it (and merging two shapers into one);
* an :class:`EdgeRouter` keyed installation records by rule id alone, so
  the same id on two different member ports of one router released the
  other port's TCAM footprint.
"""

import pytest

from repro.bgp import Prefix
from repro.ixp import (
    EdgeRouter,
    FilterAction,
    FlowMatch,
    IxpMember,
    PortQosPolicy,
    QosRule,
)
from repro.traffic import FiveTuple, FlowRecord, IpProtocol

ENGINES = ("indexed", "per-rule")

INTERVAL = 10.0


def make_policy(engine):
    return PortQosPolicy(port_capacity_bps=10e9, classification_engine=engine)


def shape_rule(rule_id="", rate=1e6, dst="10.1.0.1/32"):
    return QosRule(
        match=FlowMatch(dst_prefix=Prefix.parse(dst)),
        action=FilterAction.SHAPE,
        shape_rate_bps=rate,
        rule_id=rule_id,
    )


def flow(bytes=1250, dst_ip="10.1.0.1"):
    return FlowRecord(
        key=FiveTuple(
            src_ip="198.51.100.7",
            dst_ip=dst_ip,
            protocol=IpProtocol.UDP,
            src_port=123,
            dst_port=50000,
        ),
        start=0.0,
        duration=INTERVAL,
        bytes=bytes,
        packets=1,
        ingress_member_asn=65001,
        egress_member_asn=64500,
    )


@pytest.mark.parametrize("engine", ENGINES)
class TestRemoveAndClear:
    def test_remove_shaped_rule_mid_interval(self, engine):
        """Traffic shaped in interval 1 forwards after the rule's removal."""
        policy = make_policy(engine)
        policy.install(shape_rule(rule_id="shape-1", rate=1e5))
        first = policy.apply([flow(bytes=10_000_000)], interval=INTERVAL)
        assert first.shaped_dropped_bits > 0
        version = policy.rules_version
        index = policy.compiled_index()
        assert policy.remove("shape-1") is True
        assert policy.rules_version > version
        assert policy.compiled_index() is not index
        assert policy.shaper_for("shape-1") is None
        second = policy.apply([flow(bytes=10_000_000)], interval=INTERVAL)
        assert second.shaped_passed_bits == 0.0
        assert second.forwarded_bits == pytest.approx(10_000_000 * 8)

    def test_remove_synthetic_anon_id(self, engine):
        policy = make_policy(engine)
        policy.install(shape_rule())  # anonymous -> synthetic id
        anon_id = policy.rules()[0].rule_id
        assert anon_id.startswith("anon-")
        version = policy.rules_version
        assert policy.remove(anon_id) is True
        assert policy.rules_version > version
        assert len(policy) == 0
        assert policy.shaper_for(anon_id) is None

    def test_remove_then_reinstall_same_id_resets_shaper(self, engine):
        policy = make_policy(engine)
        policy.install(shape_rule(rule_id="shape-1"))
        first_shaper = policy.shaper_for("shape-1")
        assert policy.remove("shape-1") is True
        policy.install(shape_rule(rule_id="shape-1"))
        second_shaper = policy.shaper_for("shape-1")
        assert second_shaper is not None
        assert second_shaper is not first_shaper

    def test_remove_missing_id_is_silent_no_op(self, engine):
        """Regression: no version bump, caches stay warm."""
        policy = make_policy(engine)
        policy.install(shape_rule(rule_id="shape-1"))
        version = policy.rules_version
        index = policy.compiled_index()
        assert policy.remove("no-such-rule") is False
        assert policy.rules_version == version
        assert policy.compiled_index() is index

    def test_clear_on_empty_policy_is_no_op(self, engine):
        """Regression: clearing nothing must not invalidate anything."""
        policy = make_policy(engine)
        version = policy.rules_version
        index = policy.compiled_index()
        policy.clear()
        assert policy.rules_version == version
        assert policy.compiled_index() is index

    def test_clear_on_populated_policy_bumps_once(self, engine):
        policy = make_policy(engine)
        policy.install(shape_rule(rule_id="shape-1"))
        policy.install(shape_rule())
        version = policy.rules_version
        policy.clear()
        assert policy.rules_version == version + 1
        assert len(policy) == 0
        assert policy.shaper_for("shape-1") is None


class TestAnonIdCollision:
    """Regression: synthetic anon ids must skip user-supplied ones."""

    def test_install_after_user_anon_id(self):
        policy = make_policy("indexed")
        policy.install(shape_rule(rule_id="anon-1", rate=1e6))
        policy.install(shape_rule(rate=2e6))  # anonymous
        ids = sorted(rule.rule_id for rule in policy.rules())
        assert len(ids) == 2 and len(set(ids)) == 2
        shapers = {rule_id: policy.shaper_for(rule_id) for rule_id in ids}
        assert all(shaper is not None for shaper in shapers.values())
        assert shapers["anon-1"].rate_bps == 1e6
        (other_id,) = [rule_id for rule_id in ids if rule_id != "anon-1"]
        assert shapers[other_id].rate_bps == 2e6

    def test_install_many_batch_collision(self):
        policy = make_policy("indexed")
        policy.install_many([shape_rule(rule_id="anon-1", rate=1e6), shape_rule(rate=2e6)])
        assert len(policy) == 2
        assert len({rule.rule_id for rule in policy.rules()}) == 2


class TestRouterInstallationScoping:
    """Regression: installation records are per (port, rule id)."""

    def _router_with_two_members(self):
        router = EdgeRouter("edge-1")
        a = IxpMember(asn=64500, name="member-a", port_capacity_bps=10e9)
        b = IxpMember(asn=64501, name="member-b", port_capacity_bps=10e9)
        router.connect_member(a)
        router.connect_member(b)
        return router

    def test_same_rule_id_on_two_ports_keeps_both_footprints(self):
        router = self._router_with_two_members()
        rule = QosRule(match=FlowMatch(dst_port=53), action=FilterAction.DROP, rule_id="rule-1")
        router.install_rule(64500, rule)
        router.install_rule(64501, rule)
        port_a = router.port_for(64500)
        port_b = router.port_for(64501)
        assert len(port_a.qos) == 1 and len(port_b.qos) == 1
        # One L3-L4 criterion each; neither install may release the other's.
        assert router.tcam.usage_for_port(port_a.port_id) == (0, 1)
        assert router.tcam.usage_for_port(port_b.port_id) == (0, 1)
        assert len(router.installed_rules()) == 2

    def test_remove_releases_only_this_ports_footprint(self):
        router = self._router_with_two_members()
        rule = QosRule(match=FlowMatch(dst_port=53), action=FilterAction.DROP, rule_id="rule-1")
        router.install_rule(64500, rule)
        router.install_rule(64501, rule)
        assert router.remove_rule(64500, "rule-1") is True
        port_a = router.port_for(64500)
        port_b = router.port_for(64501)
        assert router.tcam.usage_for_port(port_a.port_id) == (0, 0)
        assert router.tcam.usage_for_port(port_b.port_id) == (0, 1)
        assert len(port_b.qos) == 1

    def test_clear_rules_releases_anonymous_footprint(self):
        router = self._router_with_two_members()
        router.install_rule(64500, shape_rule())  # anonymous: no record
        port_a = router.port_for(64500)
        assert router.tcam.usage_for_port(port_a.port_id) == (0, 1)
        assert router.clear_rules(64500) == 1
        assert router.tcam.usage_for_port(port_a.port_id) == (0, 0)
        assert len(port_a.qos) == 0

    def test_clear_rules_on_empty_port_is_no_op(self):
        router = self._router_with_two_members()
        operations = router.config_operations
        assert router.clear_rules(64500) == 0
        assert router.config_operations == operations
        assert router.port_for(64500).qos.rules_version == 0
