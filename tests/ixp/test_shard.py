"""Shard-plan invariants and per-shard report merging.

The sharded pipeline's correctness rests on three structural facts tested
here: every connected member lands in exactly one shard (partition), a
shard owns whole PoPs whose routers rebuild identically from
``pop_indices`` (placement parity), and per-shard interval reports reduce
losslessly into the platform report (merge).
"""

import numpy as np
import pytest

from repro.ixp import (
    ShardLookup,
    ShardPlanner,
    build_multi_pop_fabric,
    columns_to_report_dict,
    make_member_population,
    merge_interval_columns,
    merge_interval_reports,
    shard_for_member,
)
from repro.ixp.fabric import MEMBER_REPORT_FIELDS
from repro.ixp.shard import pop_index
from repro.sim.rng import make_rng
from repro.traffic import FlowTable


def make_platform(member_count=60, pop_count=4, seed=11):
    fabric = build_multi_pop_fabric(pop_count=pop_count, seed=seed)
    members = make_member_population(member_count, pop_count=pop_count, seed=seed)
    for member in members:
        fabric.connect_member(member)
    return fabric, members


class TestPopIndex:
    def test_parses_labels(self):
        assert pop_index("pop-1") == 1
        assert pop_index("pop-12") == 12

    @pytest.mark.parametrize("label", ["pop", "pop-", "pop-x", "site-1", "1"])
    def test_rejects_non_pop_labels(self, label):
        with pytest.raises(ValueError):
            pop_index(label)


class TestPlanPartition:
    def test_every_member_in_exactly_one_shard(self):
        fabric, members = make_platform()
        plan = ShardPlanner.for_fabric(fabric).plan()
        seen = [asn for spec in plan for asn in spec.member_asns]
        assert len(seen) == len(set(seen)) == len(members)
        assert set(seen) == {member.asn for member in members}
        for member in members:
            assert member.asn in shard_for_member(plan, member.asn).member_asns

    def test_shards_own_disjoint_whole_pops(self):
        fabric, _ = make_platform()
        plan = ShardPlanner.for_fabric(fabric).plan()
        pops = [pop for spec in plan for pop in spec.pops]
        assert len(pops) == len(set(pops))
        # Each member's PoP is owned by the member's shard.
        for spec in plan:
            for asn in spec.member_asns:
                assert fabric.router_for_member(asn).pop in spec.pops

    def test_fewer_shards_pack_whole_pops(self):
        fabric, members = make_platform(pop_count=6)
        planner = ShardPlanner.for_fabric(fabric)
        full = planner.plan()
        packed = planner.plan(2)
        assert len(packed) == 2
        assert {asn for spec in packed for asn in spec.member_asns} == {
            member.asn for member in members
        }
        assert sorted(pop for spec in packed for pop in spec.pops) == sorted(
            pop for spec in full for pop in spec.pops
        )
        # LPT keeps the packing balanced: no shard more than ~2x the other.
        sizes = sorted(len(spec) for spec in packed)
        assert sizes[0] > 0

    def test_empty_pop_contributes_no_shard(self):
        planner = ShardPlanner({"pop-1": [65001, 65002], "pop-2": [], "pop-3": [65003]})
        plan = planner.plan()
        assert [spec.pops for spec in plan] == [("pop-1",), ("pop-3",)]
        assert [spec.index for spec in plan] == [0, 1]

    def test_empty_fabric_plans_to_zero_shards(self):
        fabric = build_multi_pop_fabric(pop_count=3, seed=5)
        assert ShardPlanner.for_fabric(fabric).plan() == []

    def test_invalid_shard_count(self):
        fabric, _ = make_platform()
        with pytest.raises(ValueError):
            ShardPlanner.for_fabric(fabric).plan(0)

    def test_unknown_member_raises(self):
        fabric, _ = make_platform()
        plan = ShardPlanner.for_fabric(fabric).plan()
        with pytest.raises(KeyError):
            shard_for_member(plan, 1)


class TestForMembers:
    def test_matches_for_fabric_placement(self):
        fabric, members = make_platform()
        by_fabric = ShardPlanner.for_fabric(fabric).plan()
        by_members = ShardPlanner.for_members(members, 4).plan()
        assert by_fabric == by_members

    def test_rejects_out_of_range_pop(self):
        members = make_member_population(10, pop_count=6, seed=2)
        with pytest.raises(ValueError):
            ShardPlanner.for_members(members, 3)

    def test_plan_is_deterministic(self):
        members = make_member_population(50, pop_count=5, seed=9)
        planner = ShardPlanner.for_members(members, 5)
        assert planner.plan(3) == planner.plan(3)


class TestSubsetFabricParity:
    def test_shard_fabric_places_members_on_identical_routers(self):
        fabric, members = make_platform(member_count=40, pop_count=4, seed=13)
        plan = ShardPlanner.for_fabric(fabric).plan(2)
        by_asn = {member.asn: member for member in members}
        for spec in plan:
            shard_fabric = build_multi_pop_fabric(
                pop_count=4, seed=13, pop_indices=spec.pop_indices
            )
            for asn in spec.member_asns:
                shard_fabric.connect_member(by_asn[asn])
                assert (
                    shard_fabric.router_for_member(asn).name
                    == fabric.router_for_member(asn).name
                )


def report(interval_start=0.0, interval=10.0, members=(), **totals):
    payload = {
        "interval_start": interval_start,
        "interval": interval,
        "offered_bits": 0.0,
        "delivered_bits": 0.0,
        "filtered_bits": 0.0,
        "congestion_dropped_bits": 0.0,
    }
    payload.update(totals)
    payload["members"] = {
        str(asn): {"forwarded_bits": float(asn)} for asn in members
    }
    return payload


class TestMergeIntervalReports:
    def test_totals_sum_and_members_union_sorted(self):
        merged = merge_interval_reports(
            [
                report(members=[65002, 65010], offered_bits=10.0, delivered_bits=4.0),
                report(members=[65001], offered_bits=2.5, filtered_bits=1.0),
            ]
        )
        assert merged["offered_bits"] == 12.5
        assert merged["delivered_bits"] == 4.0
        assert merged["filtered_bits"] == 1.0
        assert list(merged["members"]) == ["65001", "65002", "65010"]
        assert merged["members"]["65010"] == {"forwarded_bits": 65010.0}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_interval_reports([])

    def test_rejects_interval_mismatch(self):
        with pytest.raises(ValueError):
            merge_interval_reports([report(interval_start=0.0), report(interval_start=10.0)])

    def test_rejects_member_overlap(self):
        with pytest.raises(ValueError):
            merge_interval_reports([report(members=[65001]), report(members=[65001])])


class TestShardLookup:
    def test_lookup_matches_linear_scan(self):
        fabric, members = make_platform()
        plan = ShardPlanner.for_fabric(fabric).plan()
        lookup = ShardLookup(plan)
        assert len(lookup) == len(members)
        for member in members:
            assert lookup[member.asn] is shard_for_member(plan, member.asn)
            assert member.asn in lookup
        assert 1 not in lookup

    def test_unknown_member_raises_keyerror(self):
        fabric, _ = make_platform()
        lookup = ShardLookup(ShardPlanner.for_fabric(fabric).plan())
        with pytest.raises(KeyError, match="AS1 is in no shard"):
            lookup[1]

    def test_empty_plan(self):
        lookup = ShardLookup([])
        assert len(lookup) == 0
        assert 65001 not in lookup


def columns(interval_start=0.0, interval=10.0, members=(), rule_stats=None, **totals):
    """A synthetic columnar shard payload (the to_columns() shape)."""
    payload_totals = {
        "offered_bits": 0.0,
        "delivered_bits": 0.0,
        "filtered_bits": 0.0,
        "congestion_dropped_bits": 0.0,
    }
    payload_totals.update(totals)
    asns = np.array(sorted(members), dtype=np.int64)
    return {
        "interval_start": interval_start,
        "interval": interval,
        "totals": payload_totals,
        "member_asns": asns,
        "member_fields": {
            name: (
                asns.astype(np.float64)
                if name == "forwarded_bits"
                else np.zeros(len(asns), dtype=np.float64)
            )
            for name in MEMBER_REPORT_FIELDS
        },
        "rule_stats": dict(rule_stats or {}),
    }


class TestMergeIntervalColumns:
    def test_totals_sum_and_members_union_sorted(self):
        merged = merge_interval_columns(
            [
                columns(members=[65002, 65010], offered_bits=10.0, delivered_bits=4.0),
                columns(members=[65001], offered_bits=2.5, filtered_bits=1.0),
            ]
        )
        assert merged["totals"]["offered_bits"] == 12.5
        assert merged["totals"]["delivered_bits"] == 4.0
        assert merged["totals"]["filtered_bits"] == 1.0
        assert merged["member_asns"].tolist() == [65001, 65002, 65010]
        assert merged["member_fields"]["forwarded_bits"].tolist() == [
            65001.0,
            65002.0,
            65010.0,
        ]

    def test_bridge_parity_with_dict_merge(self):
        # The columnar reduce followed by the dict bridge must equal the
        # legacy dict-by-dict merge of the same shard payloads.
        payloads = [
            columns(
                members=[65004, 65002],
                offered_bits=7.0,
                rule_stats={"65002": {"drop-ntp": {"dropped": 5.0}}},
            ),
            columns(members=[65001, 65009], delivered_bits=3.0),
            columns(members=[65003], filtered_bits=1.5),
        ]
        via_columns = columns_to_report_dict(merge_interval_columns(payloads))
        via_dicts = merge_interval_reports(
            [columns_to_report_dict(payload) for payload in payloads]
        )
        assert via_columns == via_dicts

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_interval_columns([])

    def test_rejects_interval_mismatch(self):
        with pytest.raises(ValueError):
            merge_interval_columns(
                [columns(interval_start=0.0), columns(interval_start=10.0)]
            )

    def test_rejects_member_overlap(self):
        with pytest.raises(ValueError, match="multiple shards"):
            merge_interval_columns(
                [columns(members=[65001, 65002]), columns(members=[65001])]
            )

    def test_single_payload_roundtrip(self):
        payload = columns(
            members=[65001, 65002],
            offered_bits=4.0,
            rule_stats={"65001": {"r": {"dropped": 1.0}}},
        )
        merged = merge_interval_columns([payload])
        assert merged["member_asns"].tolist() == [65001, 65002]
        report_dict = columns_to_report_dict(merged)
        assert report_dict["offered_bits"] == 4.0
        assert report_dict["members"]["65001"]["rule_stats"] == {"r": {"dropped": 1.0}}
        assert report_dict["members"]["65002"]["rule_stats"] == {}


class TestColumnsRoundtrip:
    def test_real_report_to_columns_bridges_to_to_dict(self):
        # A delivered interval's columnar view converts back to the exact
        # to_dict() payload — the bit-for-bit contract the sharded runner
        # digests rely on.
        fabric, members = make_platform(member_count=12, pop_count=2, seed=3)
        rng = make_rng(7)
        n = 800
        asns = np.array([member.asn for member in members], dtype=np.int64)
        table = FlowTable(
            src_ip=rng.integers(0x0B000000, 0xDF000000, size=n).astype(np.uint32),
            dst_ip=rng.integers(0x0B000000, 0xDF000000, size=n).astype(np.uint32),
            protocol=rng.choice([6, 17], size=n).astype(np.uint8),
            src_port=rng.choice([19, 123, 50000], size=n).astype(np.int32),
            dst_port=rng.integers(1024, 65536, size=n).astype(np.int32),
            start=np.zeros(n),
            duration=np.full(n, 10.0),
            bytes=rng.integers(100, 20000, size=n).astype(np.int64),
            packets=np.ones(n, dtype=np.int64),
            ingress_asn=rng.choice(asns, size=n),
            egress_asn=rng.choice(asns, size=n),
            is_attack=np.zeros(n, dtype=bool),
        )
        report = fabric.deliver(table, 10.0, 0.0)
        assert columns_to_report_dict(report.to_columns()) == report.to_dict()
