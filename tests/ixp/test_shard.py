"""Shard-plan invariants and per-shard report merging.

The sharded pipeline's correctness rests on three structural facts tested
here: every connected member lands in exactly one shard (partition), a
shard owns whole PoPs whose routers rebuild identically from
``pop_indices`` (placement parity), and per-shard interval reports reduce
losslessly into the platform report (merge).
"""

import pytest

from repro.ixp import (
    ShardPlanner,
    build_multi_pop_fabric,
    make_member_population,
    merge_interval_reports,
    shard_for_member,
)
from repro.ixp.shard import pop_index


def make_platform(member_count=60, pop_count=4, seed=11):
    fabric = build_multi_pop_fabric(pop_count=pop_count, seed=seed)
    members = make_member_population(member_count, pop_count=pop_count, seed=seed)
    for member in members:
        fabric.connect_member(member)
    return fabric, members


class TestPopIndex:
    def test_parses_labels(self):
        assert pop_index("pop-1") == 1
        assert pop_index("pop-12") == 12

    @pytest.mark.parametrize("label", ["pop", "pop-", "pop-x", "site-1", "1"])
    def test_rejects_non_pop_labels(self, label):
        with pytest.raises(ValueError):
            pop_index(label)


class TestPlanPartition:
    def test_every_member_in_exactly_one_shard(self):
        fabric, members = make_platform()
        plan = ShardPlanner.for_fabric(fabric).plan()
        seen = [asn for spec in plan for asn in spec.member_asns]
        assert len(seen) == len(set(seen)) == len(members)
        assert set(seen) == {member.asn for member in members}
        for member in members:
            assert member.asn in shard_for_member(plan, member.asn).member_asns

    def test_shards_own_disjoint_whole_pops(self):
        fabric, _ = make_platform()
        plan = ShardPlanner.for_fabric(fabric).plan()
        pops = [pop for spec in plan for pop in spec.pops]
        assert len(pops) == len(set(pops))
        # Each member's PoP is owned by the member's shard.
        for spec in plan:
            for asn in spec.member_asns:
                assert fabric.router_for_member(asn).pop in spec.pops

    def test_fewer_shards_pack_whole_pops(self):
        fabric, members = make_platform(pop_count=6)
        planner = ShardPlanner.for_fabric(fabric)
        full = planner.plan()
        packed = planner.plan(2)
        assert len(packed) == 2
        assert {asn for spec in packed for asn in spec.member_asns} == {
            member.asn for member in members
        }
        assert sorted(pop for spec in packed for pop in spec.pops) == sorted(
            pop for spec in full for pop in spec.pops
        )
        # LPT keeps the packing balanced: no shard more than ~2x the other.
        sizes = sorted(len(spec) for spec in packed)
        assert sizes[0] > 0

    def test_empty_pop_contributes_no_shard(self):
        planner = ShardPlanner({"pop-1": [65001, 65002], "pop-2": [], "pop-3": [65003]})
        plan = planner.plan()
        assert [spec.pops for spec in plan] == [("pop-1",), ("pop-3",)]
        assert [spec.index for spec in plan] == [0, 1]

    def test_empty_fabric_plans_to_zero_shards(self):
        fabric = build_multi_pop_fabric(pop_count=3, seed=5)
        assert ShardPlanner.for_fabric(fabric).plan() == []

    def test_invalid_shard_count(self):
        fabric, _ = make_platform()
        with pytest.raises(ValueError):
            ShardPlanner.for_fabric(fabric).plan(0)

    def test_unknown_member_raises(self):
        fabric, _ = make_platform()
        plan = ShardPlanner.for_fabric(fabric).plan()
        with pytest.raises(KeyError):
            shard_for_member(plan, 1)


class TestForMembers:
    def test_matches_for_fabric_placement(self):
        fabric, members = make_platform()
        by_fabric = ShardPlanner.for_fabric(fabric).plan()
        by_members = ShardPlanner.for_members(members, 4).plan()
        assert by_fabric == by_members

    def test_rejects_out_of_range_pop(self):
        members = make_member_population(10, pop_count=6, seed=2)
        with pytest.raises(ValueError):
            ShardPlanner.for_members(members, 3)

    def test_plan_is_deterministic(self):
        members = make_member_population(50, pop_count=5, seed=9)
        planner = ShardPlanner.for_members(members, 5)
        assert planner.plan(3) == planner.plan(3)


class TestSubsetFabricParity:
    def test_shard_fabric_places_members_on_identical_routers(self):
        fabric, members = make_platform(member_count=40, pop_count=4, seed=13)
        plan = ShardPlanner.for_fabric(fabric).plan(2)
        by_asn = {member.asn: member for member in members}
        for spec in plan:
            shard_fabric = build_multi_pop_fabric(
                pop_count=4, seed=13, pop_indices=spec.pop_indices
            )
            for asn in spec.member_asns:
                shard_fabric.connect_member(by_asn[asn])
                assert (
                    shard_fabric.router_for_member(asn).name
                    == fabric.router_for_member(asn).name
                )


def report(interval_start=0.0, interval=10.0, members=(), **totals):
    payload = {
        "interval_start": interval_start,
        "interval": interval,
        "offered_bits": 0.0,
        "delivered_bits": 0.0,
        "filtered_bits": 0.0,
        "congestion_dropped_bits": 0.0,
    }
    payload.update(totals)
    payload["members"] = {
        str(asn): {"forwarded_bits": float(asn)} for asn in members
    }
    return payload


class TestMergeIntervalReports:
    def test_totals_sum_and_members_union_sorted(self):
        merged = merge_interval_reports(
            [
                report(members=[65002, 65010], offered_bits=10.0, delivered_bits=4.0),
                report(members=[65001], offered_bits=2.5, filtered_bits=1.0),
            ]
        )
        assert merged["offered_bits"] == 12.5
        assert merged["delivered_bits"] == 4.0
        assert merged["filtered_bits"] == 1.0
        assert list(merged["members"]) == ["65001", "65002", "65010"]
        assert merged["members"]["65010"] == {"forwarded_bits": 65010.0}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_interval_reports([])

    def test_rejects_interval_mismatch(self):
        with pytest.raises(ValueError):
            merge_interval_reports([report(interval_start=0.0), report(interval_start=10.0)])

    def test_rejects_member_overlap(self):
        with pytest.raises(ValueError):
            merge_interval_reports([report(members=[65001]), report(members=[65001])])
