"""Unit tests of the control-plane service and its parity contracts.

Deterministic companions to ``tests/fuzz/test_service_statemachine.py``:
admission (budget, backpressure, unknown members, telemetry), virtual-time
draining (head-of-line blocking, horizon carry-over), coalescing as a pure
amortization (one ``rules_version`` bump per drained batch, identical
verdicts and ``rule_stats`` to one-at-a-time installs), async/sync
execution parity, the request-log replay oracle, and the deterministic
``ControlPlaneCpuModel`` path budget enforcement relies on.
"""

import asyncio

import pytest

from repro.bgp import Prefix
from repro.ixp import (
    ControlPlaneCpuModel,
    ControlPlaneService,
    FilterAction,
    FlowMatch,
    QosRule,
    ScriptedPortal,
    build_multi_pop_fabric,
    make_member_population,
    replay_request_log,
)
from repro.traffic import FiveTuple, FlowRecord, FlowTable, IpProtocol

#: The paper's §5.2 deterministic budget: (15 − 1.5) / 3.117 updates/s.
RATE = (15.0 - 1.5) / 3.117
OP = 1.0 / RATE
INTERVAL = 10.0


def make_fabric(pop_count=1, routers_per_pop=1, member_count=3, seed=5):
    fabric = build_multi_pop_fabric(
        pop_count=pop_count,
        routers_per_pop=routers_per_pop,
        name="svc-ixp",
        seed=seed,
    )
    members = make_member_population(member_count, pop_count=pop_count, seed=seed)
    for member in members:
        fabric.connect_member(member)
    return fabric, [member.asn for member in members]


def drop_rule(rule_id, dst="10.1.0.1/32", src_port=123):
    return QosRule(
        match=FlowMatch(dst_prefix=Prefix.parse(dst), src_port=src_port),
        action=FilterAction.DROP,
        rule_id=rule_id,
    )


def shape_rule(rule_id="", rate=2e6, dst="10.1.0.2/32"):
    return QosRule(
        match=FlowMatch(dst_prefix=Prefix.parse(dst)),
        action=FilterAction.SHAPE,
        shape_rate_bps=rate,
        rule_id=rule_id,
    )


def flow(dst_ip, egress_asn, *, src_port=123, bytes_=12500):
    return FlowRecord(
        key=FiveTuple(
            src_ip="198.51.100.7",
            dst_ip=dst_ip,
            protocol=IpProtocol.UDP,
            src_port=src_port,
            dst_port=50000,
        ),
        start=0.0,
        duration=INTERVAL,
        bytes=bytes_,
        packets=10,
        ingress_member_asn=65002,
        egress_member_asn=egress_asn,
    )


class TestCpuModelDeterministic:
    def test_max_update_rate_pins_the_paper_budget_exactly(self):
        model = ControlPlaneCpuModel.deterministic()
        assert model.max_update_rate(15.0) == (15.0 - 1.5) / 3.117
        assert model.max_update_rate(15.0) == pytest.approx(4.3311, abs=1e-4)

    def test_deterministic_measurements_equal_expected_usage(self):
        model = ControlPlaneCpuModel.deterministic(seed=3)
        for rate in (0.0, 1.0, 4.33, 25.0):
            assert model.measure_usage(rate) == model.expected_usage(rate)
        # The [0, 100] clip still applies to deterministic measurements.
        assert model.measure_usage(40.0) == 100.0

    def test_deterministic_mode_consumes_no_rng_state(self):
        model = ControlPlaneCpuModel.deterministic(seed=3)
        before = model._rng.bit_generator.state
        for _ in range(10):
            model.measure_usage(4.33)
        assert model._rng.bit_generator.state == before
        # The noisy path does consume state — the asymmetry is the point.
        noisy = ControlPlaneCpuModel(seed=3)
        noisy.measure_usage(4.33)
        assert noisy._rng.bit_generator.state != before

    def test_deterministic_accepts_overrides(self):
        model = ControlPlaneCpuModel.deterministic(cpu_limit_percent=20.0)
        assert model.noise_std == 0.0
        assert model.max_update_rate() == (20.0 - 1.5) / 3.117

    def test_service_rejects_noisy_models(self):
        fabric, _ = make_fabric()
        with pytest.raises(ValueError, match="deterministic"):
            ControlPlaneService(fabric, cpu_model=ControlPlaneCpuModel(seed=1))


class TestAdmission:
    def test_unknown_member_is_rejected(self):
        fabric, _ = make_fabric()
        service = ControlPlaneService(fabric)
        response = service.enqueue(
            service.make_request(63999, "install", rules=(drop_rule("r"),))
        )
        assert response.status == "rejected"
        assert response.reason == "unknown-member"
        assert service.stats.rejected_unknown_member == 1

    def test_telemetry_is_served_immediately(self):
        fabric, members = make_fabric()
        service = ControlPlaneService(fabric)
        service.enqueue(
            service.make_request(members[0], "install", rules=(drop_rule("r"),))
        )
        response = service.enqueue(
            service.make_request(members[0], "telemetry", at=1.0)
        )
        assert response.status == "telemetry"
        assert response.latency == 0.0
        assert response.telemetry["installed_rules"] == 0  # not yet drained
        assert response.telemetry["queue_depth_ops"] == 1
        assert service.stats.telemetry_served == 1

    def test_budget_rejection_carries_window_retry_after(self):
        fabric, members = make_fabric()
        service = ControlPlaneService(
            fabric, member_update_rate=0.2, budget_window=10.0
        )  # allowance: 2 ops per window
        asn = members[0]
        for i in range(2):
            assert (
                service.enqueue(
                    service.make_request(
                        asn, "install", rules=(drop_rule(f"r{i}"),), at=1.0
                    )
                )
                is None
            )
        rejected = service.enqueue(
            service.make_request(asn, "install", rules=(drop_rule("r2"),), at=1.0)
        )
        assert rejected.status == "rejected"
        assert rejected.reason == "budget"
        assert rejected.retry_after == pytest.approx(9.0)
        assert service.stats.rejected_budget == 1
        # Budgets are per member and per window.
        other = service.enqueue(
            service.make_request(members[1], "install", rules=(drop_rule("o"),), at=1.0)
        )
        next_window = service.enqueue(
            service.make_request(asn, "install", rules=(drop_rule("r2"),), at=10.5)
        )
        assert other is None and next_window is None

    def test_backpressure_rejection_when_lane_is_full(self):
        fabric, members = make_fabric()
        service = ControlPlaneService(fabric, max_queue_depth=2)
        for i in range(2):
            service.enqueue(
                service.make_request(
                    members[i], "install", rules=(drop_rule(f"r{i}"),)
                )
            )
        rejected = service.enqueue(
            service.make_request(members[2], "install", rules=(drop_rule("r2"),))
        )
        assert rejected.status == "rejected"
        assert rejected.reason == "backpressure"
        assert rejected.retry_after >= service.op_seconds
        assert service.stats.rejected_backpressure == 1
        assert service.stats.max_queue_depth_seen == 2


class TestDraining:
    def test_coalescing_bumps_rules_version_once_per_drain(self):
        fabric, members = make_fabric()
        service = ControlPlaneService(fabric, coalesce=True)
        asn = members[0]
        policy = fabric.port_for_member(asn).qos
        for i in range(4):
            service.enqueue(
                service.make_request(asn, "install", rules=(drop_rule(f"r{i}"),))
            )
        resolved = service.drain_to(None)
        assert policy.rules_version == 1
        assert service.stats.data_plane_calls == 1
        assert service.stats.coalesced_batches == 1
        assert service.stats.coalesced_ops == 4
        assert [response.status for _, response in resolved] == ["applied"] * 4
        assert policy.rule_ids() == [f"r{i}" for i in range(4)]

    def test_without_coalescing_every_install_bumps(self):
        fabric, members = make_fabric()
        service = ControlPlaneService(fabric, coalesce=False)
        asn = members[0]
        for i in range(4):
            service.enqueue(
                service.make_request(asn, "install", rules=(drop_rule(f"r{i}"),))
            )
        service.drain_to(None)
        assert fabric.port_for_member(asn).qos.rules_version == 4
        assert service.stats.data_plane_calls == 4
        assert service.stats.coalesced_batches == 0

    def test_remove_flushes_the_members_pending_batch_first(self):
        fabric, members = make_fabric()
        service = ControlPlaneService(fabric, coalesce=True)
        asn = members[0]
        for op, kwargs in [
            ("install", {"rules": (drop_rule("r0"),)}),
            ("install", {"rules": (drop_rule("r1"),)}),
            ("remove", {"rule_id": "r0"}),
            ("install", {"rules": (drop_rule("r2"),)}),
        ]:
            service.enqueue(service.make_request(asn, op, **kwargs))
        service.drain_to(None)
        assert [entry.op for entry in service.sorted_log()] == [
            "install_many",
            "remove",
            "install_many",
        ]
        assert fabric.port_for_member(asn).qos.rule_ids() == ["r1", "r2"]

    def test_max_coalesce_caps_batch_size(self):
        fabric, members = make_fabric()
        service = ControlPlaneService(fabric, coalesce=True, max_coalesce=2)
        asn = members[0]
        for i in range(5):
            service.enqueue(
                service.make_request(asn, "install", rules=(drop_rule(f"r{i}"),))
            )
        service.drain_to(None)
        assert [len(e.rules) for e in service.sorted_log()] == [2, 2, 1]

    def test_horizon_blocks_unfinished_requests(self):
        fabric, members = make_fabric()
        service = ControlPlaneService(fabric)
        asn = members[0]
        big = service.make_request(
            asn, "install_many", rules=tuple(drop_rule(f"b{i}") for i in range(5))
        )
        small = service.make_request(asn, "install", rules=(drop_rule("s"),), at=0.0)
        service.enqueue(big)
        service.enqueue(small)
        # The 5-op head-of-line batch completes at 5·OP ≈ 1.15 s: nothing
        # fits inside a 0.5 s horizon, including the 1-op request behind it.
        assert service.drain_to(0.5) == []
        assert service.queue_depth() == 6
        resolved = service.drain_to(2.0)
        assert service.queue_depth() == 0
        by_id = {req.request_id: resp for req, resp in resolved}
        assert by_id[big.request_id].applied_at == pytest.approx(5 * OP)
        assert by_id[small.request_id].applied_at == pytest.approx(6 * OP)
        assert by_id[small.request_id].latency == pytest.approx(6 * OP)

    def test_latency_percentiles_on_empty_service(self):
        fabric, _ = make_fabric()
        service = ControlPlaneService(fabric)
        assert service.latency_percentiles() == {
            "p50": 0.0,
            "p90": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }

    def test_close_rejects_everything_still_queued(self):
        fabric, members = make_fabric()
        service = ControlPlaneService(fabric)
        for i in range(3):
            service.enqueue(
                service.make_request(members[i], "install", rules=(drop_rule("r"),))
            )
        resolved = service.close()
        assert len(resolved) == 3
        assert all(r.reason == "shutdown" for _, r in resolved)
        assert service.stats.rejected_shutdown == 3
        assert service.queue_depth() == 0


class TestCoalescingParity:
    """The regression satellite: batched ≡ one-at-a-time, bit for bit."""

    STREAM = [
        (0, "install", {"rules": (drop_rule("atk-ntp"),)}),
        (0, "install", {"rules": (shape_rule("slow", rate=1e5, dst="10.1.0.1/32"),)}),
        (1, "install_many", {"rules": (drop_rule("a", dst="10.1.0.2/32"), shape_rule(""))}),
        (0, "install", {"rules": (drop_rule("atk-ntp", src_port=19),)}),  # replace
        (1, "remove", {"rule_id": "a"}),
        (0, "install", {"rules": (shape_rule("", rate=3e6, dst="10.1.0.1/32"),)}),
        (1, "install", {"rules": (drop_rule("b", dst="10.1.0.2/32", src_port=19),)}),
    ]

    def _table(self, members):
        records = [
            flow("10.1.0.1", members[0]),
            flow("10.1.0.1", members[0], src_port=19),
            flow("10.1.0.1", members[0], src_port=50000),
            flow("10.1.0.2", members[1]),
            flow("10.1.0.2", members[1], src_port=19),
            flow("10.9.9.9", members[2]),
        ]
        return FlowTable.from_records(records)

    def test_coalesced_batches_match_sequential_installs(self):
        fabric_a, members = make_fabric()
        fabric_b, _ = make_fabric()
        service = ControlPlaneService(fabric_a, coalesce=True)
        portal = ScriptedPortal(fabric_b)
        for index, op, kwargs in self.STREAM:
            response = service.enqueue(
                service.make_request(members[index], op, **kwargs)
            )
            assert response is None
        service.drain_to(None)
        assert service.stats.coalesced_batches >= 1
        for entry in service.sorted_log():
            if entry.op == "install_many":
                portal.install_many(entry.member_asn, entry.rules)
            elif entry.op == "remove":
                portal.remove(entry.member_asn, entry.rule_id)
            else:
                portal.clear(entry.member_asn)
        for asn in members:
            policy_a = fabric_a.port_for_member(asn).qos
            policy_b = fabric_b.port_for_member(asn).qos
            assert policy_a.rule_ids() == policy_b.rule_ids()
            assert [repr(r) for r in policy_a.rules()] == [
                repr(r) for r in policy_b.rules()
            ]
        report_a = fabric_a.deliver(self._table(members), INTERVAL, 0.0)
        report_b = fabric_b.deliver(self._table(members), INTERVAL, 0.0)
        # Verdict-for-verdict, rule_stats-identical delivery.
        assert report_a.to_dict() == report_b.to_dict()


class TestAsyncSyncParity:
    STREAM = [
        (0, "install", {"rules": (drop_rule("r0"),)}, 0.0),
        (1, "install", {"rules": (drop_rule("r1", dst="10.1.0.2/32"),)}, 0.1),
        (0, "install", {"rules": (shape_rule("s0", dst="10.1.0.3/32"),)}, 0.2),
        (
            2,
            "install_many",
            {"rules": (drop_rule("r2", dst="10.1.0.4/32"), drop_rule("r3", dst="10.1.0.5/32"))},
            0.3,
        ),
        (0, "remove", {"rule_id": "r0"}, 0.4),
        (3, "clear", {}, 0.5),
        (1, "telemetry", {}, 0.6),
    ]

    @staticmethod
    def _log_digest(service):
        return [
            (
                e.member_asn,
                e.op,
                tuple(repr(r) for r in e.rules),
                e.rule_id,
                e.applied_at,
                e.request_ids,
                e.tcam_exhausted,
            )
            for e in service.sorted_log()
        ]

    def test_async_execution_matches_scripted_sequential_core(self):
        fabric_a, members = make_fabric(pop_count=2, routers_per_pop=1, member_count=4)
        fabric_b, _ = make_fabric(pop_count=2, routers_per_pop=1, member_count=4)
        async_service = ControlPlaneService(fabric_a)
        sync_service = ControlPlaneService(fabric_b)

        async def run_async():
            async with async_service as service:
                tasks = [
                    asyncio.create_task(
                        service.submit(
                            service.make_request(members[i], op, at=at, **kwargs)
                        )
                    )
                    for i, op, kwargs, at in self.STREAM
                ]
                await asyncio.sleep(0)
                await service.advance(None)
                return [await task for task in tasks]

        async_responses = asyncio.run(run_async())
        sync_responses = [
            sync_service.enqueue(
                sync_service.make_request(members[i], op, at=at, **kwargs)
            )
            for i, op, kwargs, at in self.STREAM
        ]
        resolved = dict(
            (req.request_id, resp) for req, resp in sync_service.drain_to(None)
        )
        assert self._log_digest(async_service) == self._log_digest(sync_service)
        assert async_service.stats.to_dict() == sync_service.stats.to_dict()
        for index, response in enumerate(async_responses):
            counterpart = resolved.get(response.request_id)
            if counterpart is None:  # telemetry resolved at enqueue time
                counterpart = sync_responses[index]
            assert response == counterpart
        for asn in members:
            assert (
                fabric_a.port_for_member(asn).qos.rule_ids()
                == fabric_b.port_for_member(asn).qos.rule_ids()
            )

    def test_aclose_shutdown_rejects_pending_submissions(self):
        fabric, members = make_fabric()
        service = ControlPlaneService(fabric)

        async def run():
            async with service:
                task = asyncio.create_task(
                    service.submit(
                        service.make_request(
                            members[0], "install", rules=(drop_rule("r"),)
                        )
                    )
                )
                await asyncio.sleep(0)
            return await task

        response = asyncio.run(run())
        assert response.status == "rejected"
        assert response.reason == "shutdown"
        assert service.stats.rejected_shutdown == 1


class TestReplayOracle:
    def test_replay_reproduces_rule_state(self):
        fabric_a, members = make_fabric()
        service = ControlPlaneService(fabric_a, coalesce=True)
        for index, op, kwargs in TestCoalescingParity.STREAM:
            service.enqueue(service.make_request(members[index], op, **kwargs))
        service.drain_to(None)
        for sequential in (True, False):
            fabric_b, _ = make_fabric()
            applied = replay_request_log(
                fabric_b, service.sorted_log(), sequential=sequential
            )
            assert applied == len(service.request_log)
            for asn in members:
                assert [
                    repr(r) for r in fabric_a.port_for_member(asn).qos.rules()
                ] == [repr(r) for r in fabric_b.port_for_member(asn).qos.rules()]
