"""Tests for edge routers, hardware profiles and the switching fabric."""

import pytest

from repro.bgp import Prefix
from repro.ixp import (
    EdgeRouter,
    FilterAction,
    FlowMatch,
    HardwareProfile,
    IxpMember,
    PortNotFoundError,
    QosRule,
    SwitchingFabric,
    TcamExhaustedError,
    TcamStatus,
    l_ixp_edge_router_profile,
    sdn_switch_profile,
    small_ixp_edge_router_profile,
)
from repro.traffic import FiveTuple, FlowRecord, IpProtocol


def make_flow(dst_ip="100.10.10.10", egress=64500, bytes_=10_000, src_port=123):
    return FlowRecord(
        key=FiveTuple("23.1.1.1", dst_ip, IpProtocol.UDP, src_port, 40000),
        start=0.0,
        duration=10.0,
        bytes=bytes_,
        packets=10,
        ingress_member_asn=65001,
        egress_member_asn=egress,
        is_attack=True,
    )


def drop_rule(rule_id="r1", src_port=123):
    return QosRule(
        match=FlowMatch(
            dst_prefix=Prefix.parse("100.10.10.10/32"),
            protocol=IpProtocol.UDP,
            src_port=src_port,
        ),
        action=FilterAction.DROP,
        rule_id=rule_id,
    )


class TestHardwareProfiles:
    def test_l_ixp_profile_calibration(self):
        profile = l_ixp_edge_router_profile(port_count=350, parallel_rtbh_n=16)
        assert profile.mac_filter_capacity == int(5.0 * 350 * 16)
        assert profile.l3l4_criteria_capacity == int(1.9 * 350 * 16)
        assert profile.port_count == 350

    def test_profiles_make_components(self):
        profile = small_ixp_edge_router_profile()
        tcam = profile.make_tcam()
        assert tcam.mac_filter_capacity == profile.mac_filter_capacity
        cpu = profile.make_cpu_model(seed=1)
        assert cpu.cpu_limit_percent == profile.cpu_limit_percent

    def test_sdn_profile_has_symmetric_tables(self):
        profile = sdn_switch_profile()
        assert profile.mac_filter_capacity == profile.l3l4_criteria_capacity

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            HardwareProfile(name="x", port_count=0, mac_filter_capacity=1, l3l4_criteria_capacity=1)


class TestEdgeRouter:
    def _router(self, ports=4):
        profile = HardwareProfile(
            name="test", port_count=ports, mac_filter_capacity=100, l3l4_criteria_capacity=100
        )
        return EdgeRouter("er-1", profile=profile, seed=1)

    def test_connect_member_assigns_port(self):
        router = self._router()
        port = router.connect_member(IxpMember(asn=64500))
        assert router.has_member(64500)
        assert router.port_for(64500) is port
        assert port.port_id == 1

    def test_connect_member_is_idempotent(self):
        router = self._router()
        member = IxpMember(asn=64500)
        assert router.connect_member(member) is router.connect_member(member)

    def test_port_limit(self):
        router = self._router(ports=1)
        router.connect_member(IxpMember(asn=1))
        with pytest.raises(RuntimeError):
            router.connect_member(IxpMember(asn=2))

    def test_unknown_member_port_lookup(self):
        with pytest.raises(PortNotFoundError):
            self._router().port_for(9999)

    def test_install_rule_consumes_tcam(self):
        router = self._router()
        router.connect_member(IxpMember(asn=64500))
        router.install_rule(64500, drop_rule())
        assert router.tcam.l3l4_criteria_used == 3
        assert router.config_operations == 1
        assert len(router.installed_rules()) == 1

    def test_remove_rule_releases_tcam(self):
        router = self._router()
        router.connect_member(IxpMember(asn=64500))
        router.install_rule(64500, drop_rule())
        assert router.remove_rule(64500, "r1")
        assert router.tcam.l3l4_criteria_used == 0
        assert not router.remove_rule(64500, "r1")

    def test_reinstall_same_rule_id_does_not_leak_tcam(self):
        router = self._router()
        router.connect_member(IxpMember(asn=64500))
        router.install_rule(64500, drop_rule())
        router.install_rule(64500, drop_rule(src_port=53))
        assert router.tcam.l3l4_criteria_used == 3
        assert len(router.port_for(64500).rules()) == 1

    def test_install_fails_when_tcam_full(self):
        profile = HardwareProfile(
            name="tiny", port_count=4, mac_filter_capacity=1, l3l4_criteria_capacity=3
        )
        router = EdgeRouter("tiny", profile=profile)
        router.connect_member(IxpMember(asn=64500))
        router.install_rule(64500, drop_rule("a"))
        with pytest.raises(TcamExhaustedError):
            router.install_rule(64500, drop_rule("b"))

    def test_check_capacity(self):
        router = self._router()
        router.connect_member(IxpMember(asn=64500))
        assert router.check_capacity(drop_rule()) is TcamStatus.OK

    def test_deliver_applies_port_policy(self):
        router = self._router()
        router.connect_member(IxpMember(asn=64500, port_capacity_bps=1e9))
        router.install_rule(64500, drop_rule())
        results = router.deliver({64500: [make_flow()]}, interval=10.0)
        assert results[64500].dropped_bits == 80_000

    def test_cpu_helpers(self):
        router = self._router()
        assert 0 <= router.cpu_usage_for_rate(2.0) <= 100
        assert router.max_sustainable_update_rate() > 0


class TestSwitchingFabric:
    def _fabric(self):
        fabric = SwitchingFabric(name="test-ixp", platform_capacity_bps=1e12)
        fabric.add_edge_router(EdgeRouter("er-1", profile=small_ixp_edge_router_profile()))
        return fabric

    def test_requires_router_before_members(self):
        with pytest.raises(RuntimeError):
            SwitchingFabric().connect_member(IxpMember(asn=1))

    def test_duplicate_router_name_rejected(self):
        fabric = self._fabric()
        with pytest.raises(ValueError):
            fabric.add_edge_router(EdgeRouter("er-1"))

    def test_connect_and_lookup_member(self):
        fabric = self._fabric()
        member = IxpMember(asn=64500)
        fabric.connect_member(member)
        assert fabric.member(64500) is member
        assert fabric.member_asns == {64500}
        assert fabric.router_for_member(64500).name == "er-1"
        assert fabric.port_for_member(64500).asn == 64500

    def test_unknown_member_lookups_raise(self):
        fabric = self._fabric()
        with pytest.raises(KeyError):
            fabric.member(1)
        with pytest.raises(PortNotFoundError):
            fabric.router_for_member(1)

    def test_members_balance_across_routers(self):
        fabric = self._fabric()
        fabric.add_edge_router(EdgeRouter("er-2", profile=small_ixp_edge_router_profile()))
        for i in range(4):
            fabric.connect_member(IxpMember(asn=65000 + i))
        counts = [len(router.member_asns) for router in fabric.edge_routers()]
        assert sorted(counts) == [2, 2]

    def test_pop_affinity(self):
        fabric = self._fabric()
        fabric.add_edge_router(
            EdgeRouter("er-fra2", profile=small_ixp_edge_router_profile(), pop="pop-2")
        )
        fabric.connect_member(IxpMember(asn=65001, pop="pop-2"))
        assert fabric.router_for_member(65001).pop == "pop-2"

    def test_connected_capacity(self):
        fabric = self._fabric()
        fabric.connect_member(IxpMember(asn=1, port_capacity_bps=10e9))
        fabric.connect_member(IxpMember(asn=2, port_capacity_bps=100e9))
        assert fabric.connected_capacity_bps == 110e9

    def test_deliver_groups_by_egress_member(self):
        fabric = self._fabric()
        fabric.connect_member(IxpMember(asn=64500, port_capacity_bps=1e9))
        fabric.connect_member(IxpMember(asn=64501, port_capacity_bps=1e9))
        flows = [make_flow(egress=64500), make_flow(egress=64501), make_flow(egress=9999)]
        report = fabric.deliver(flows, interval=10.0, interval_start=0.0)
        assert set(report.results_by_member) == {64500, 64501}
        assert report.offered_bits == 160_000
        assert report.delivered_bits == 160_000
        assert len(fabric.reports) == 1

    def test_deliver_with_installed_rule_filters(self):
        fabric = self._fabric()
        fabric.connect_member(IxpMember(asn=64500, port_capacity_bps=1e9))
        fabric.router_for_member(64500).install_rule(64500, drop_rule())
        report = fabric.deliver([make_flow()], interval=10.0)
        assert report.filtered_bits == 80_000
        assert report.delivered_bits == 0

    def test_ipfix_collection(self):
        fabric = self._fabric()
        fabric.connect_member(IxpMember(asn=64500))
        fabric.deliver([make_flow()], interval=10.0)
        assert len(fabric.collector) == 1

    def test_platform_overload_detection(self):
        fabric = SwitchingFabric(platform_capacity_bps=1000.0)
        fabric.add_edge_router(EdgeRouter("er", profile=small_ixp_edge_router_profile()))
        fabric.connect_member(IxpMember(asn=64500, port_capacity_bps=1e9))
        report = fabric.deliver([make_flow(bytes_=10_000_000)], interval=10.0)
        assert fabric.platform_overloaded(report)

    def test_invalid_platform_capacity(self):
        with pytest.raises(ValueError):
            SwitchingFabric(platform_capacity_bps=0)

    def test_deliver_invalid_interval(self):
        with pytest.raises(ValueError):
            self._fabric().deliver([], interval=0)


class TestMultiPopTopology:
    def test_build_multi_pop_fabric_layout(self):
        from repro.ixp import build_multi_pop_fabric

        fabric = build_multi_pop_fabric(pop_count=3, routers_per_pop=2, seed=1)
        routers = fabric.edge_routers()
        assert len(routers) == 6
        assert {router.pop for router in routers} == {"pop-1", "pop-2", "pop-3"}
        assert routers[0].name == "edge-1-1"

    def test_invalid_layout_rejected(self):
        from repro.ixp import build_multi_pop_fabric

        with pytest.raises(ValueError):
            build_multi_pop_fabric(pop_count=0)

    def test_member_population_mix_and_placement(self):
        from repro.ixp import (
            PortSpeedMix,
            build_multi_pop_fabric,
            make_member_population,
        )

        mix = PortSpeedMix(speeds_bps=(1e9, 10e9), weights=(0.5, 0.5))
        members = make_member_population(
            200, pop_count=4, port_mix=mix, honors_rtbh_fraction=0.3, seed=3
        )
        assert len(members) == 200
        assert {member.port_capacity_bps for member in members} <= {1e9, 10e9}
        assert {member.pop for member in members} == {
            "pop-1", "pop-2", "pop-3", "pop-4",
        }
        honoring = sum(member.honors_rtbh for member in members)
        assert 30 <= honoring <= 90  # ~30 % of 200, seeded

        fabric = build_multi_pop_fabric(pop_count=4, routers_per_pop=2, seed=3)
        for member in members:
            fabric.connect_member(member)
        # PoP affinity: every member landed on a router in its own PoP.
        for member in members:
            assert fabric.router_for_member(member.asn).pop == member.pop

    def test_member_population_is_deterministic_per_seed(self):
        from repro.ixp import make_member_population

        a = make_member_population(50, seed=9)
        b = make_member_population(50, seed=9)
        assert [(m.asn, m.port_capacity_bps, m.pop, m.honors_rtbh) for m in a] == [
            (m.asn, m.port_capacity_bps, m.pop, m.honors_rtbh) for m in b
        ]

    def test_port_speed_mix_validation(self):
        from repro.ixp import PortSpeedMix

        with pytest.raises(ValueError):
            PortSpeedMix(speeds_bps=(1e9,), weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            PortSpeedMix(speeds_bps=(-1e9,), weights=(1.0,))
        with pytest.raises(ValueError):
            PortSpeedMix(speeds_bps=(1e9,), weights=(0.0,))
