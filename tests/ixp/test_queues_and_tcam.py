"""Tests for token buckets, rate limiters and the TCAM model."""

import pytest
from hypothesis import given

from fuzz.strategies import (
    offered_volumes,
    shaping_intervals,
    shaping_rates,
    tcam_allocation_sequences,
    token_amount_sequences,
    token_bursts,
    token_rates,
)
from repro.ixp import RateLimiter, TcamExhaustedError, TcamModel, TcamStatus, TokenBucket


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=1.0, burst=5.0)
        assert bucket.tokens == 5.0

    def test_consume_within_burst(self):
        bucket = TokenBucket(rate=1.0, burst=5.0)
        assert bucket.try_consume(5.0, now=0.0)
        assert not bucket.try_consume(1.0, now=0.0)

    def test_refill_over_time(self):
        bucket = TokenBucket(rate=2.0, burst=4.0)
        assert bucket.try_consume(4.0, now=0.0)
        assert not bucket.try_consume(1.0, now=0.1)
        assert bucket.try_consume(2.0, now=1.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        bucket.try_consume(1.0, now=0.0)
        bucket.try_consume(0.0, now=100.0)
        assert bucket.tokens == 3.0

    def test_time_until_available(self):
        bucket = TokenBucket(rate=2.0, burst=4.0)
        bucket.try_consume(4.0, now=0.0)
        assert bucket.time_until_available(2.0, now=0.0) == pytest.approx(1.0)
        assert bucket.time_until_available(0.0, now=0.0) == 0.0

    def test_time_until_available_rejects_over_burst(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=2.0).time_until_available(3.0, now=0.0)

    def test_zero_rate_never_refills(self):
        bucket = TokenBucket(rate=0.0, burst=1.0)
        bucket.try_consume(1.0, now=0.0)
        assert bucket.time_until_available(1.0, now=10.0) == float("inf")

    def test_time_cannot_move_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        bucket.try_consume(1.0, now=5.0)
        with pytest.raises(ValueError):
            bucket.try_consume(0.0, now=1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=1.0).try_consume(-1.0, now=0.0)

    @given(token_amount_sequences, token_rates, token_bursts)
    def test_property_consumption_never_exceeds_refill_plus_burst(self, amounts, rate, burst):
        bucket = TokenBucket(rate=rate, burst=burst)
        consumed = 0.0
        now = 0.0
        for amount in amounts:
            now += 1.0
            if bucket.try_consume(amount, now=now):
                consumed += amount
        assert consumed <= burst + rate * now + 1e-6


class TestRateLimiter:
    def test_passes_up_to_rate(self):
        shaper = RateLimiter(rate_bps=100.0)
        passed, dropped = shaper.shape(offered_bits=2000.0, interval=10.0)
        assert passed == 1000.0
        assert dropped == 1000.0

    def test_under_offered_passes_everything(self):
        shaper = RateLimiter(rate_bps=100.0)
        passed, dropped = shaper.shape(offered_bits=500.0, interval=10.0)
        assert passed == 500.0
        assert dropped == 0.0

    def test_burst_credit_carries_over(self):
        shaper = RateLimiter(rate_bps=100.0, burst_bits=200.0)
        shaper.shape(offered_bits=0.0, interval=1.0)
        passed, _ = shaper.shape(offered_bits=400.0, interval=1.0)
        assert passed == pytest.approx(300.0)

    def test_reset(self):
        shaper = RateLimiter(rate_bps=100.0, burst_bits=50.0)
        shaper.shape(1000.0, 1.0)
        shaper.reset()
        passed, _ = shaper.shape(150.0, 1.0)
        assert passed == 150.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(rate_bps=-1.0)
        with pytest.raises(ValueError):
            RateLimiter(rate_bps=1.0).shape(-1.0, 1.0)
        with pytest.raises(ValueError):
            RateLimiter(rate_bps=1.0).shape(1.0, 0.0)

    @given(offered_volumes, shaping_rates, shaping_intervals)
    def test_property_conservation(self, offered, rate, interval):
        passed, dropped = RateLimiter(rate_bps=rate).shape(offered, interval)
        assert passed + dropped == pytest.approx(offered)
        assert passed <= rate * interval + 1e-6


class TestTcamModel:
    def test_allocation_accounting(self):
        tcam = TcamModel(mac_filter_capacity=10, l3l4_criteria_capacity=20)
        tcam.allocate(port_id=1, mac_filters=3, l3l4_criteria=5)
        assert tcam.mac_filters_used == 3
        assert tcam.l3l4_criteria_used == 5
        assert tcam.mac_filters_free == 7
        assert tcam.usage_for_port(1) == (3, 5)

    def test_check_f1_takes_precedence(self):
        tcam = TcamModel(mac_filter_capacity=1, l3l4_criteria_capacity=1)
        assert tcam.check(mac_filters=5, l3l4_criteria=5) is TcamStatus.F1

    def test_check_f2_when_only_mac_exceeded(self):
        tcam = TcamModel(mac_filter_capacity=1, l3l4_criteria_capacity=100)
        assert tcam.check(mac_filters=5, l3l4_criteria=5) is TcamStatus.F2

    def test_check_ok(self):
        tcam = TcamModel(mac_filter_capacity=10, l3l4_criteria_capacity=10)
        assert tcam.check(1, 1) is TcamStatus.OK

    def test_allocate_raises_on_exhaustion(self):
        tcam = TcamModel(mac_filter_capacity=2, l3l4_criteria_capacity=2)
        tcam.allocate(1, 2, 2)
        with pytest.raises(TcamExhaustedError) as excinfo:
            tcam.allocate(2, 1, 1)
        assert excinfo.value.status is TcamStatus.F1

    def test_release(self):
        tcam = TcamModel(mac_filter_capacity=10, l3l4_criteria_capacity=10)
        tcam.allocate(1, 2, 3)
        tcam.release(1, 1, 1)
        assert tcam.usage_for_port(1) == (1, 2)

    def test_release_more_than_allocated_rejected(self):
        tcam = TcamModel(mac_filter_capacity=10, l3l4_criteria_capacity=10)
        tcam.allocate(1, 1, 1)
        with pytest.raises(ValueError):
            tcam.release(1, 2, 0)

    def test_release_port_and_reset(self):
        tcam = TcamModel(mac_filter_capacity=10, l3l4_criteria_capacity=10)
        tcam.allocate(1, 2, 2)
        tcam.allocate(2, 2, 2)
        tcam.release_port(1)
        assert tcam.mac_filters_used == 2
        tcam.reset()
        assert tcam.mac_filters_used == 0

    def test_negative_amounts_rejected(self):
        tcam = TcamModel(mac_filter_capacity=10, l3l4_criteria_capacity=10)
        with pytest.raises(ValueError):
            tcam.check(-1, 0)
        with pytest.raises(ValueError):
            tcam.release(1, -1, 0)

    def test_invalid_capacities(self):
        with pytest.raises(ValueError):
            TcamModel(mac_filter_capacity=0, l3l4_criteria_capacity=1)

    @given(tcam_allocation_sequences)
    def test_property_usage_never_exceeds_capacity(self, allocations):
        tcam = TcamModel(mac_filter_capacity=40, l3l4_criteria_capacity=40)
        for port, (mac, l3l4) in enumerate(allocations):
            try:
                tcam.allocate(port, mac, l3l4)
            except TcamExhaustedError:
                pass
        assert tcam.mac_filters_used <= 40
        assert tcam.l3l4_criteria_used <= 40
