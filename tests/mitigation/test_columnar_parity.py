"""Columnar-vs-record parity of the mitigation data plane.

Every strategy must produce byte-identical outcomes whether it is applied
through the vectorized ``apply_table`` path or the legacy per-record
``apply_records`` shim: same flows in each bucket (delivered / discarded /
shaped, compared as multisets of fully materialised records), same
aggregate bit accounting, and — for the stochastic scrubber — the same
seeded classification verdicts.
"""

import pytest

from repro.bgp.flowspec import drop_rule, rate_limit_rule
from repro.bgp.prefix import parse_prefix
from repro.core.rules import BlackholingRule
from repro.experiments.scenario import build_attack_scenario
from repro.mitigation import (
    AccessControlList,
    AclEntry,
    AclMitigation,
    CombinedMitigation,
    FlowspecMitigation,
    FlowspecService,
    NoMitigation,
    RtbhMitigation,
    RtbhService,
    ScrubbingCenter,
    ScrubbingMitigation,
)
from repro.traffic import FlowTable, IpProtocol

INTERVAL = 10.0
VICTIM_PREFIX = "100.10.10.10/32"


@pytest.fixture(scope="module")
def interval_table():
    """One seeded interval of booter-attack + benign traffic."""
    scenario = build_attack_scenario(peer_count=30, seed=3)
    return FlowTable.concat(
        [
            scenario.attack.flow_table(300.0, INTERVAL),
            scenario.benign.flow_table(300.0, INTERVAL),
        ]
    )


@pytest.fixture(scope="module")
def peer_asns():
    return [65000 + i for i in range(30)]


def record_key(flow):
    key = flow.key
    return (
        key.src_ip,
        key.dst_ip,
        int(key.protocol),
        key.src_port,
        key.dst_port,
        flow.start,
        flow.duration,
        flow.bytes,
        flow.packets,
        flow.ingress_member_asn,
        flow.egress_member_asn,
        flow.is_attack,
    )


def assert_outcomes_identical(record_outcome, table_outcome):
    """Bucket-for-bucket multiset equality plus exact bit accounting."""
    for bucket in ("delivered", "discarded", "shaped"):
        record_keys = sorted(record_key(f) for f in getattr(record_outcome, bucket))
        table_keys = sorted(record_key(f) for f in getattr(table_outcome, bucket))
        assert record_keys == table_keys, f"{bucket} populations differ"
    for accessor in (
        "delivered_bits",
        "discarded_bits",
        "delivered_attack_bits",
        "collateral_damage_bits",
        "discarded_attack_bits",
        "delivered_legitimate_bits",
        "delivered_peers",
    ):
        assert getattr(record_outcome, accessor) == getattr(table_outcome, accessor)


class TestRtbhParity:
    def test_partial_compliance(self, interval_table, peer_asns):
        outcomes = []
        for _ in range(2):
            service = RtbhService(ixp_asn=64700, compliance_rate=0.3, seed=9)
            service.request_blackhole(64500, VICTIM_PREFIX, peer_asns)
            outcomes.append(service)
        record = RtbhMitigation(outcomes[0]).apply_records(
            interval_table.to_records(), INTERVAL
        )
        table = RtbhMitigation(outcomes[1]).apply_table(interval_table, INTERVAL)
        assert_outcomes_identical(record, table)
        assert len(table.discarded) > 0  # the blackhole actually bit

    def test_most_specific_event_wins(self, interval_table, peer_asns):
        def build():
            service = RtbhService(ixp_asn=64700, compliance_rate=1.0, seed=4)
            service.request_blackhole(64500, "100.10.10.0/24", peer_asns[:10])
            service.request_blackhole(64500, VICTIM_PREFIX, peer_asns[10:])
            return service

        record = RtbhMitigation(build()).apply_records(
            interval_table.to_records(), INTERVAL
        )
        table = RtbhMitigation(build()).apply_table(interval_table, INTERVAL)
        assert_outcomes_identical(record, table)


class TestAclParity:
    def test_ordered_entries_first_match_wins(self, interval_table):
        acl = AccessControlList()
        # Permit one source port explicitly, deny the rest of UDP: order matters.
        acl.add(
            AclEntry(
                action="permit",
                dst_prefix=parse_prefix(VICTIM_PREFIX),
                protocol=IpProtocol.UDP,
                src_port=53,
            )
        )
        acl.deny(VICTIM_PREFIX, protocol=IpProtocol.UDP)
        mitigation = AclMitigation(acl)
        record = mitigation.apply_records(interval_table.to_records(), INTERVAL)
        table = mitigation.apply_table(interval_table, INTERVAL)
        assert_outcomes_identical(record, table)
        assert len(table.discarded) > 0


class TestFlowspecParity:
    def test_discard_and_rate_limit_rules(self, interval_table, peer_asns):
        def build():
            service = FlowspecService(acceptance_rate=0.5, seed=4)
            service.announce_rule(
                drop_rule(VICTIM_PREFIX, source_port=123, ip_protocol=int(IpProtocol.UDP)),
                peer_asns,
            )
            service.announce_rule(rate_limit_rule(VICTIM_PREFIX, 1e6), peer_asns)
            return service

        record = FlowspecMitigation(build()).apply_records(
            interval_table.to_records(), INTERVAL
        )
        table = FlowspecMitigation(build()).apply_table(interval_table, INTERVAL)
        assert_outcomes_identical(record, table)
        assert len(table.discarded) > 0
        assert len(table.shaped) > 0


class TestScrubbingParity:
    @pytest.mark.parametrize("capacity_bps", [500e9, 2e8])
    def test_same_seed_same_verdicts(self, interval_table, capacity_bps):
        record_side = ScrubbingMitigation(
            ScrubbingCenter(capacity_bps=capacity_bps), active_since=-1e9, seed=7
        )
        table_side = ScrubbingMitigation(
            ScrubbingCenter(capacity_bps=capacity_bps), active_since=-1e9, seed=7
        )
        record = record_side.apply_records(interval_table.to_records(), INTERVAL)
        table = table_side.apply_table(interval_table, INTERVAL)
        assert_outcomes_identical(record, table)
        assert record_side.scrubbed_bits_total == table_side.scrubbed_bits_total

    def test_not_yet_effective_passes_everything(self, interval_table):
        mitigation = ScrubbingMitigation(active_since=1e9, seed=7)
        record = mitigation.apply_records(interval_table.to_records(), INTERVAL)
        table = mitigation.apply_table(interval_table, INTERVAL)
        assert_outcomes_identical(record, table)
        assert table.delivered_bits == float(interval_table.total_bits)


class TestCombinedParity:
    def test_prefilter_plus_scrubbing_pipeline(self, interval_table):
        rules = [
            BlackholingRule.drop_udp_source_port(64500, VICTIM_PREFIX, 123),
            BlackholingRule.shape_udp_source_port(64500, VICTIM_PREFIX, 53, rate_bps=1e6),
        ]
        record_side = CombinedMitigation(
            rules, ScrubbingMitigation(active_since=-1e9, seed=5)
        )
        table_side = CombinedMitigation(
            rules, ScrubbingMitigation(active_since=-1e9, seed=5)
        )
        record = record_side.apply_detailed(interval_table.to_records(), INTERVAL)
        table = table_side.apply_detailed(interval_table, INTERVAL)
        assert_outcomes_identical(record.outcome, table.outcome)
        assert record.prefiltered_bits == table.prefiltered_bits
        assert record.scrubbed_bits == table.scrubbed_bits
        assert record.scrubbing_cost == table.scrubbing_cost
        assert record_side.total_scrubbing_cost == table_side.total_scrubbing_cost
        assert record.prefiltered_bits > 0


class TestDispatchShim:
    def test_apply_routes_by_representation(self, interval_table):
        mitigation = NoMitigation()
        from_table = mitigation.apply(interval_table, INTERVAL)
        from_records = mitigation.apply(interval_table.to_records(), INTERVAL)
        assert from_table.delivered_table is interval_table
        assert from_records.delivered_table is None
        assert from_table.delivered_bits == from_records.delivered_bits

    def test_default_record_path_round_trips_through_table(self, interval_table):
        class TableOnly(NoMitigation):
            def apply_records(self, flows, interval):  # force the default
                from repro.mitigation.base import MitigationTechnique

                return MitigationTechnique.apply_records(self, flows, interval)

        outcome = TableOnly().apply(interval_table.to_records(), INTERVAL)
        assert outcome.delivered_bits == float(interval_table.total_bits)

    def test_empty_table(self):
        outcome = NoMitigation().apply(FlowTable.empty(), INTERVAL)
        assert outcome.delivered_bits == 0.0
        assert outcome.delivered_peers == set()
