"""Tests for the mitigation baselines (RTBH, ACL, Flowspec, scrubbing) and Table 1."""

import pytest

from repro.bgp import RouteServer, drop_rule, rate_limit_rule
from repro.mitigation import (
    AccessControlList,
    AclEntry,
    AclMitigation,
    Dimension,
    FlowspecMitigation,
    FlowspecService,
    MitigationOutcome,
    NoMitigation,
    Rating,
    RtbhMitigation,
    RtbhService,
    ScrubbingCenter,
    ScrubbingMitigation,
    build_comparison_table,
)
from repro.traffic import FiveTuple, FlowRecord, IpProtocol


def make_flow(src_port=123, dst_ip="100.10.10.10", ingress=65001, is_attack=True, bytes_=10_000,
              protocol=IpProtocol.UDP, start=0.0):
    return FlowRecord(
        key=FiveTuple("23.1.1.1", dst_ip, protocol, src_port, 40000),
        start=start,
        duration=10.0,
        bytes=bytes_,
        packets=10,
        ingress_member_asn=ingress,
        egress_member_asn=64500,
        is_attack=is_attack,
    )


class TestMitigationOutcome:
    def test_accounting_properties(self):
        outcome = MitigationOutcome(
            delivered=[make_flow(is_attack=True), make_flow(is_attack=False, ingress=65002)],
            discarded=[make_flow(is_attack=False, ingress=65003)],
            shaped=[make_flow(is_attack=True, ingress=65004)],
        )
        assert outcome.delivered_bits == 3 * 80_000
        assert outcome.discarded_bits == 80_000
        assert outcome.delivered_attack_bits == 2 * 80_000
        assert outcome.collateral_damage_bits == 80_000
        assert outcome.delivered_peers == {65001, 65002, 65004}

    def test_no_mitigation_delivers_everything(self):
        flows = [make_flow(), make_flow(src_port=53)]
        outcome = NoMitigation().apply(flows, interval=10.0)
        assert outcome.delivered == flows
        assert outcome.discarded == []


class TestRtbhService:
    def test_compliance_rate_respected_statistically(self):
        service = RtbhService(ixp_asn=64700, compliance_rate=0.3, seed=1)
        honoring = sum(service.member_honors(65000 + i) for i in range(1000))
        assert 250 <= honoring <= 350

    def test_explicit_compliance_overrides(self):
        service = RtbhService(ixp_asn=64700, member_compliance={65001: True}, compliance_rate=0.0)
        assert service.member_honors(65001)
        assert not service.member_honors(65002)
        service.set_compliance(65002, True)
        assert service.member_honors(65002)

    def test_request_blackhole_records_event(self):
        service = RtbhService(ixp_asn=64700, compliance_rate=1.0, seed=1)
        event = service.request_blackhole(64500, "100.10.10.10/32", peer_asns=[65001, 65002])
        assert event.honoring_members == {65001, 65002}
        assert service.event_for("100.10.10.10") is event
        assert service.event_for("100.10.10.11") is None

    def test_event_for_picks_most_specific(self):
        service = RtbhService(ixp_asn=64700, compliance_rate=1.0, seed=1)
        service.request_blackhole(64500, "100.10.10.0/24", peer_asns=[65001])
        specific = service.request_blackhole(64500, "100.10.10.10/32", peer_asns=[65001])
        assert service.event_for("100.10.10.10") is specific

    def test_withdraw_blackhole(self):
        service = RtbhService(ixp_asn=64700, compliance_rate=1.0, seed=1)
        service.request_blackhole(64500, "100.10.10.10/32", peer_asns=[65001])
        assert service.withdraw_blackhole(64500, "100.10.10.10/32")
        assert not service.withdraw_blackhole(64500, "100.10.10.10/32")
        assert service.active_events() == []

    def test_route_server_integration_rewrites_next_hop(self):
        server = RouteServer(ixp_asn=64700)
        for asn in (64500, 65001):
            server.connect_member(asn)
        service = RtbhService(ixp_asn=64700, route_server=server, compliance_rate=1.0, seed=1)
        service.request_blackhole(64500, "100.10.10.10/32", peer_asns=[65001])
        update = server.session_for(65001).history[-1]
        assert update.announcements[0].attributes.next_hop == server.blackhole_next_hop

    def test_invalid_compliance_rate(self):
        with pytest.raises(ValueError):
            RtbhService(ixp_asn=1, compliance_rate=1.5)


class TestRtbhMitigation:
    def test_only_honoring_peers_are_filtered(self):
        service = RtbhService(
            ixp_asn=64700, member_compliance={65001: True, 65002: False}, compliance_rate=0.0
        )
        service.request_blackhole(64500, "100.10.10.10/32", peer_asns=[65001, 65002])
        mitigation = RtbhMitigation(service)
        flows = [make_flow(ingress=65001), make_flow(ingress=65002)]
        outcome = mitigation.apply(flows, interval=10.0)
        assert len(outcome.discarded) == 1
        assert outcome.discarded[0].ingress_member_asn == 65001

    def test_rtbh_drops_legitimate_traffic_too(self):
        service = RtbhService(ixp_asn=64700, compliance_rate=1.0, seed=1)
        service.request_blackhole(64500, "100.10.10.10/32", peer_asns=[65001])
        outcome = RtbhMitigation(service).apply(
            [make_flow(ingress=65001, is_attack=False, src_port=443)], interval=10.0
        )
        assert outcome.collateral_damage_bits > 0

    def test_traffic_to_other_destinations_untouched(self):
        service = RtbhService(ixp_asn=64700, compliance_rate=1.0, seed=1)
        service.request_blackhole(64500, "100.10.10.10/32", peer_asns=[65001])
        outcome = RtbhMitigation(service).apply(
            [make_flow(dst_ip="100.10.10.99", ingress=65001)], interval=10.0
        )
        assert len(outcome.delivered) == 1


class TestAcl:
    def test_first_match_wins(self):
        acl = AccessControlList()
        acl.add(AclEntry(action="permit", src_port=123))
        acl.deny("100.10.10.10/32", src_port=123)
        assert acl.evaluate(make_flow()) == "permit"

    def test_implicit_permit(self):
        assert AccessControlList().evaluate(make_flow()) == "permit"

    def test_entry_limit(self):
        acl = AccessControlList(max_entries=1)
        acl.deny("10.0.0.0/8")
        with pytest.raises(RuntimeError):
            acl.deny("11.0.0.0/8")

    def test_entry_validation(self):
        with pytest.raises(ValueError):
            AclEntry(action="block")
        with pytest.raises(ValueError):
            AclEntry(action="deny", src_port=99999)
        with pytest.raises(ValueError):
            AccessControlList(max_entries=0)

    def test_acl_mitigation_filters_matching_flows(self):
        acl = AccessControlList()
        acl.deny("100.10.10.10/32", protocol=IpProtocol.UDP, src_port=123)
        outcome = AclMitigation(acl).apply(
            [make_flow(), make_flow(src_port=443, is_attack=False)], interval=10.0
        )
        assert len(outcome.discarded) == 1
        assert len(outcome.delivered) == 1

    def test_acl_entry_field_matching(self):
        entry = AclEntry(action="deny", protocol=IpProtocol.UDP, dst_port=40000)
        assert entry.matches(make_flow())
        assert not entry.matches(make_flow(protocol=IpProtocol.TCP))


class TestFlowspec:
    def test_acceptance_rate_and_budget(self):
        service = FlowspecService(acceptance_rate=1.0, per_peer_rule_budget=2, seed=1)
        rule = drop_rule("100.10.10.10/32", source_port=123)
        for _ in range(3):
            service.announce_rule(rule, peer_asns=[65001])
        assert service.rules_installed_at(65001) == 2

    def test_non_accepting_peer_installs_nothing(self):
        service = FlowspecService(acceptance_rate=0.0, seed=1)
        installed = service.announce_rule(drop_rule("10.0.0.0/8"), peer_asns=[65001, 65002])
        assert installed.installing_peers == set()

    def test_mitigation_only_filters_installing_peers(self):
        service = FlowspecService(peer_acceptance={65001: True, 65002: False}, seed=1)
        service.announce_rule(
            drop_rule("100.10.10.10/32", source_port=123, ip_protocol=17),
            peer_asns=[65001, 65002],
        )
        outcome = FlowspecMitigation(service).apply(
            [make_flow(ingress=65001), make_flow(ingress=65002)], interval=10.0
        )
        assert len(outcome.discarded) == 1
        assert len(outcome.delivered) == 1

    def test_rate_limit_rule_shapes(self):
        service = FlowspecService(peer_acceptance={65001: True}, seed=1)
        service.announce_rule(
            rate_limit_rule("100.10.10.10/32", rate_bytes_per_second=100.0, source_port=123),
            peer_asns=[65001],
        )
        outcome = FlowspecMitigation(service).apply([make_flow(bytes_=10_000)], interval=10.0)
        assert len(outcome.shaped) == 1
        assert outcome.shaped[0].bytes == pytest.approx(1000, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowspecService(acceptance_rate=2.0)
        with pytest.raises(ValueError):
            FlowspecService(per_peer_rule_budget=0)


class TestScrubbing:
    def test_not_effective_before_activation_delay(self):
        scrubbing = ScrubbingMitigation(
            ScrubbingCenter(activation_delay_seconds=300.0), active_since=0.0, seed=1
        )
        outcome = scrubbing.apply([make_flow(start=100.0)], interval=10.0)
        assert len(outcome.delivered) == 1
        assert len(outcome.discarded) == 0

    def test_removes_attack_traffic_after_activation(self):
        scrubbing = ScrubbingMitigation(
            ScrubbingCenter(
                true_positive_rate=1.0, false_positive_rate=0.0, activation_delay_seconds=0.0
            ),
            active_since=0.0,
            seed=1,
        )
        outcome = scrubbing.apply(
            [make_flow(start=10.0), make_flow(start=10.0, is_attack=False, src_port=443)],
            interval=10.0,
        )
        assert len(outcome.discarded) == 1
        assert outcome.discarded[0].is_attack

    def test_capacity_overflow_shapes_delivered_traffic(self):
        center = ScrubbingCenter(
            capacity_bps=1000.0, true_positive_rate=0.0, false_positive_rate=0.0,
            activation_delay_seconds=0.0,
        )
        scrubbing = ScrubbingMitigation(center, active_since=0.0, seed=1)
        outcome = scrubbing.apply([make_flow(start=10.0, bytes_=100_000)], interval=10.0)
        assert len(outcome.shaped) == 1
        assert outcome.shaped[0].bits <= 1000.0 * 10.0 + 1

    def test_cost_accounting(self):
        scrubbing = ScrubbingMitigation(seed=1)
        assert scrubbing.cost_of_interval(8e9) == pytest.approx(0.05)

    def test_center_validation(self):
        with pytest.raises(ValueError):
            ScrubbingCenter(capacity_bps=0)
        with pytest.raises(ValueError):
            ScrubbingCenter(true_positive_rate=1.5)


class TestComparisonTable:
    def test_default_table_matches_paper(self):
        table = build_comparison_table()
        assert table.matches_paper()

    def test_advanced_blackholing_has_all_advantages(self):
        table = build_comparison_table()
        assert table.advantage_count("Advanced Blackholing") == len(Dimension)

    def test_rtbh_is_coarse_but_cheap(self):
        table = build_comparison_table()
        assert table.rating("RTBH", Dimension.GRANULARITY) is Rating.DISADVANTAGE
        assert table.rating("RTBH", Dimension.COSTS) is Rating.ADVANTAGE

    def test_rows_and_render(self):
        table = build_comparison_table()
        rows = table.as_rows()
        assert len(rows) == len(Dimension)
        rendered = table.render()
        assert "Advanced Blackholing" in rendered
        assert "Granularity" in rendered

    def test_table_from_instances_uses_declared_ratings(self):
        techniques = [RtbhMitigation(RtbhService(ixp_asn=1)), AclMitigation()]
        table = build_comparison_table(techniques)
        assert table.techniques == ("RTBH", "ACL filters")
        assert table.rating("RTBH", Dimension.COOPERATION) is Rating.DISADVANTAGE
