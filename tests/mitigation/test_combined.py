"""Tests for the §6 extension: Advanced Blackholing combined with scrubbing."""

import pytest

from repro.core import BlackholingRule
from repro.mitigation import (
    CombinedMitigation,
    ScrubbingCenter,
    ScrubbingMitigation,
    scrubbing_cost_saving,
)
from repro.traffic import FiveTuple, FlowRecord, IpProtocol


def make_flow(src_port=123, is_attack=True, bytes_=1_000_000, protocol=IpProtocol.UDP):
    return FlowRecord(
        key=FiveTuple("23.1.1.1", "100.10.10.10", protocol, src_port, 40000),
        start=10.0,
        duration=10.0,
        bytes=bytes_,
        packets=100,
        ingress_member_asn=65001,
        egress_member_asn=64500,
        is_attack=is_attack,
    )


def perfect_scrubber():
    return ScrubbingMitigation(
        ScrubbingCenter(
            true_positive_rate=1.0, false_positive_rate=0.0, activation_delay_seconds=0.0
        ),
        active_since=0.0,
        seed=1,
    )


VICTIM = "100.10.10.10/32"
NTP_RULE = BlackholingRule.drop_udp_source_port(64500, VICTIM, 123)


class TestCombinedMitigation:
    def test_prefilter_drops_known_signature_without_scrubbing_cost(self):
        combined = CombinedMitigation([NTP_RULE], perfect_scrubber())
        result = combined.apply_detailed([make_flow()], interval=10.0)
        assert result.prefiltered_bits == 8_000_000
        assert result.scrubbed_bits == 0
        assert result.scrubbing_cost == 0.0
        assert result.outcome.delivered == []

    def test_unknown_attack_still_handled_by_scrubber(self):
        combined = CombinedMitigation([NTP_RULE], perfect_scrubber())
        unknown = make_flow(src_port=53)
        result = combined.apply_detailed([unknown], interval=10.0)
        assert result.prefiltered_bits == 0
        assert result.scrubbed_bits == unknown.bits
        assert result.scrubbing_cost > 0
        assert unknown in result.outcome.discarded

    def test_legitimate_traffic_is_delivered(self):
        combined = CombinedMitigation([NTP_RULE], perfect_scrubber())
        benign = make_flow(src_port=51000, is_attack=False, protocol=IpProtocol.TCP)
        outcome = combined.apply([make_flow(), benign], interval=10.0)
        assert benign in outcome.delivered
        assert outcome.collateral_damage_bits == 0

    def test_shape_prefilter_forwards_bounded_sample_to_scrubber(self):
        shape_rule = BlackholingRule.shape_udp_source_port(64500, VICTIM, 123, rate_bps=100_000.0)
        combined = CombinedMitigation([shape_rule], perfect_scrubber())
        result = combined.apply_detailed([make_flow()], interval=10.0)
        # 1 Mbit/s offered, shaped to 100 kbit/s: the sample goes to the
        # scrubber, the excess is pre-filtered at the IXP.
        assert result.scrubbed_bits == pytest.approx(100_000.0 * 10.0, rel=0.01)
        assert result.prefiltered_bits == pytest.approx(8_000_000 - 1_000_000, rel=0.01)

    def test_add_rule_extends_prefilters(self):
        combined = CombinedMitigation([], perfect_scrubber())
        flow = make_flow()
        assert combined.apply_detailed([flow], interval=10.0).prefiltered_bits == 0
        combined.add_rule(NTP_RULE)
        assert combined.apply_detailed([flow], interval=10.0).prefiltered_bits == flow.bits

    def test_cumulative_accounting(self):
        combined = CombinedMitigation([NTP_RULE], perfect_scrubber())
        combined.apply_detailed([make_flow(), make_flow(src_port=53)], interval=10.0)
        combined.apply_detailed([make_flow()], interval=10.0)
        assert combined.total_prefiltered_bits == 2 * 8_000_000
        assert combined.total_scrubbing_cost > 0

    def test_invalid_interval(self):
        combined = CombinedMitigation([NTP_RULE], perfect_scrubber())
        with pytest.raises(ValueError):
            combined.apply_detailed([], interval=0)


class TestScrubbingCostSaving:
    def test_prefilters_reduce_scrubbing_cost(self):
        flows = [make_flow() for _ in range(8)] + [
            make_flow(src_port=51000, is_attack=False, protocol=IpProtocol.TCP)
            for _ in range(2)
        ]
        saving = scrubbing_cost_saving(
            flows,
            interval=10.0,
            prefilter_rules=[NTP_RULE],
            scrubbing=perfect_scrubber(),
            scrubbing_alone=perfect_scrubber(),
        )
        assert saving["cost_combined"] < saving["cost_alone"]
        # 80 % of the bytes carry the known NTP signature, so roughly 80 % of
        # the scrubbing bill disappears.
        assert saving["cost_saving_fraction"] == pytest.approx(0.8, abs=0.05)
        assert saving["prefiltered_bits"] == pytest.approx(8 * 8_000_000)

    def test_no_rules_means_no_saving(self):
        flows = [make_flow()]
        saving = scrubbing_cost_saving(
            flows,
            interval=10.0,
            prefilter_rules=[],
            scrubbing=perfect_scrubber(),
            scrubbing_alone=perfect_scrubber(),
        )
        assert saving["cost_saving_fraction"] == pytest.approx(0.0)
