"""The headline stateful fuzz: rule churn interleaved with delivery.

``RuleStateMachine`` drives two complete fabrics in lockstep through
arbitrary interleavings of ``install`` / ``install_many`` / ``remove`` /
``clear`` and interval deliveries: fabric A runs the fast engines
(batched delivery + indexed classification), fabric B the reference
engines (per-member delivery + per-rule classification).  After every
step Hypothesis checks the machine's invariants:

* both fabrics report bit-for-bit identical interval reports,
* ``rules_version`` increases monotonically, in lockstep, and *only*
  when a mutation actually changed a rule set (no-op removes/clears must
  leave the compiled index and the cached delivery plan warm),
* chassis TCAM usage equals the footprint of the rules actually
  installed (plus the tracked leak of anonymous rules removed per-rule,
  which only ``clear_rules`` can reclaim),
* every SHAPE rule — anonymous ones included — owns a distinct, live
  :class:`RateLimiter` at its configured rate.
"""

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from fuzz.strategies import (
    UNKNOWN_EGRESS_ASN,
    build_fabric,
    build_flow_table,
    member_asns_of,
    qos_rules,
    rule_sets,
)
from repro.ixp import FilterAction, RuleMatchIndex, TcamExhaustedError

INTERVAL = 10.0

#: Fixed small multi-PoP topology: 2 PoPs x 1 router, 3 members — two
#: members share a router, so per-router TCAM pools see mixed ports.
SPEC = {"pop_count": 2, "routers_per_pop": 1, "member_count": 3, "seed": 7}

MEMBERS = member_asns_of(SPEC)

member_indices = st.integers(0, len(MEMBERS) - 1)


class RuleStateMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.batched = build_fabric(SPEC, delivery_engine="batched")
        self.fallback = build_fabric(
            SPEC, delivery_engine="per-member", classification_engine="per-rule"
        )
        self.fabrics = (self.batched, self.fallback)
        #: Last observed rules_version per member (monotonicity check).
        self.versions = {asn: 0 for asn in MEMBERS}
        #: TCAM footprint of anonymous rules removed via remove_rule —
        #: per-rule removal cannot release it (no installation record),
        #: only clear_rules can.  Keyed (router_name, port_id); the two
        #: fabrics mirror each other, so one ledger covers both.
        self.leaked = {}
        self.step = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def policies(self, asn):
        return tuple(fabric.port_for_member(asn).qos for fabric in self.fabrics)

    def _snapshot(self, asn):
        """Pre-mutation snapshot: versions, compiled index, cached plan."""
        policy_a, policy_b = self.policies(asn)
        return {
            "versions": (policy_a.rules_version, policy_b.rules_version),
            "index": policy_a.compiled_index(),
            "plan": self.batched.current_delivery_plan(),
        }

    def _check_mutation(self, asn, before, mutated):
        """Caches must invalidate exactly when a mutation took effect."""
        policy_a, policy_b = self.policies(asn)
        va, vb = before["versions"]
        if mutated:
            assert policy_a.rules_version > va
            assert policy_b.rules_version > vb
            assert not before["plan"].is_current(), (
                "cached delivery plan survived a real rule-set change"
            )
            assert policy_a.compiled_index() is not before["index"]
        else:
            assert policy_a.rules_version == va
            assert policy_b.rules_version == vb
            assert before["plan"].is_current(), (
                "no-op mutation spuriously invalidated the delivery plan"
            )
            assert policy_a.compiled_index() is before["index"]

    def _footprint_key(self, asn):
        router = self.batched.router_for_member(asn)
        port = router.port_for(asn)
        return (router.name, port.port_id)

    # ------------------------------------------------------------------
    # Rules (operations)
    # ------------------------------------------------------------------
    @rule(member=member_indices, qos_rule=qos_rules())
    def install(self, member, qos_rule):
        asn = MEMBERS[member]
        before = self._snapshot(asn)
        outcomes = []
        for fabric in self.fabrics:
            try:
                fabric.router_for_member(asn).install_rule(asn, qos_rule)
                outcomes.append(True)
            except TcamExhaustedError:
                outcomes.append(False)
        assert outcomes[0] == outcomes[1], "TCAM exhaustion diverged"
        self._check_mutation(asn, before, mutated=outcomes[0])

    @rule(member=member_indices, batch=rule_sets(max_size=6))
    def install_many(self, member, batch):
        asn = MEMBERS[member]
        before = self._snapshot(asn)
        outcomes = []
        for fabric in self.fabrics:
            try:
                fabric.router_for_member(asn).install_rules(asn, batch)
                outcomes.append(len(batch) > 0)
            except TcamExhaustedError:
                # Partial installs still reach the data plane; whether the
                # batch mutated depends on how far allocation got.
                outcomes.append(None)
        assert (outcomes[0] is None) == (outcomes[1] is None)
        if outcomes[0] is not None:
            self._check_mutation(asn, before, mutated=outcomes[0])

    @rule(member=member_indices, pick=st.integers(0, 63))
    def remove_installed(self, member, pick):
        """Remove an id that is really installed (anonymous ones too)."""
        asn = MEMBERS[member]
        policy_a, policy_b = self.policies(asn)
        ids = sorted({r.rule_id for r in policy_a.rules() if r.rule_id})
        if not ids:
            return
        rule_id = ids[pick % len(ids)]
        victim = next(r for r in policy_a.rules() if r.rule_id == rule_id)
        before = self._snapshot(asn)
        if rule_id.startswith("anon-"):
            # No installation record: the router cannot release this
            # footprint on per-rule removal.  Track the leak.
            key = self._footprint_key(asn)
            mac, l3l4 = self.leaked.get(key, (0, 0))
            self.leaked[key] = (
                mac + victim.match.mac_filter_entries,
                l3l4 + victim.match.l3l4_criteria,
            )
        for fabric in self.fabrics:
            assert fabric.router_for_member(asn).remove_rule(asn, rule_id) is True
        assert policy_a.shaper_for(rule_id) is None
        self._check_mutation(asn, before, mutated=True)

    @rule(member=member_indices)
    def remove_missing(self, member):
        """Removing an unknown id must not invalidate anything."""
        asn = MEMBERS[member]
        before = self._snapshot(asn)
        for fabric in self.fabrics:
            assert fabric.router_for_member(asn).remove_rule(asn, "no-such-rule") is False
        self._check_mutation(asn, before, mutated=False)

    @rule(member=member_indices)
    def clear(self, member):
        """clear_rules drops the whole port, reclaiming leaked TCAM."""
        asn = MEMBERS[member]
        policy_a, _ = self.policies(asn)
        had_rules = len(policy_a) > 0
        before = self._snapshot(asn)
        removed = {fabric.router_for_member(asn).clear_rules(asn) for fabric in self.fabrics}
        assert len(removed) == 1
        self.leaked[self._footprint_key(asn)] = (0, 0)
        self._check_mutation(asn, before, mutated=had_rules)
        assert len(policy_a) == 0

    @rule(seed=st.integers(0, 2**31 - 1), n=st.integers(0, 40))
    def deliver(self, seed, n):
        """One interval through both fabrics: reports must be identical."""
        table = build_flow_table(
            seed=seed, n=n, egress_pool=tuple(MEMBERS) + (UNKNOWN_EGRESS_ASN,)
        )
        start = self.step * INTERVAL
        self.step += 1
        report_a = self.batched.deliver(table, INTERVAL, start)
        report_b = self.fallback.deliver(table, INTERVAL, start)
        assert report_a.to_dict() == report_b.to_dict()
        # Delivery compiles (or reuses) the batched plan; it must now be
        # warm and stay warm until the next real mutation.
        assert self.batched.current_delivery_plan().is_current()

    # ------------------------------------------------------------------
    # Invariants (checked after every step)
    # ------------------------------------------------------------------
    @invariant()
    def versions_monotonic_and_lockstep(self):
        for asn in MEMBERS:
            policy_a, policy_b = self.policies(asn)
            assert policy_a.rules_version == policy_b.rules_version, asn
            assert policy_a.rules_version >= self.versions[asn], asn
            self.versions[asn] = policy_a.rules_version

    @invariant()
    def tcam_matches_installed_rules(self):
        for fabric in self.fabrics:
            for router in fabric.edge_routers():
                for port in router.ports():
                    mac = sum(
                        r.match.mac_filter_entries for r in port.qos.rules()
                    )
                    l3l4 = sum(r.match.l3l4_criteria for r in port.qos.rules())
                    leak_mac, leak_l3l4 = self.leaked.get(
                        (router.name, port.port_id), (0, 0)
                    )
                    assert router.tcam.usage_for_port(port.port_id) == (
                        mac + leak_mac,
                        l3l4 + leak_l3l4,
                    ), (fabric.delivery_engine, router.name, port.port_id)

    @invariant()
    def incremental_index_equals_scratch_compile(self):
        """The delta-patched index is *structurally* the scratch compile.

        Verdict parity alone would let a mis-spliced group hide behind
        rules that never claim rows; structural equality (same keys and
        ranks per signature group, same rule list) pins the incremental
        maintenance itself after every install / install_many / remove /
        clear interleaving.
        """
        for asn in MEMBERS:
            policy_a, _ = self.policies(asn)
            incremental = policy_a.compiled_index()
            scratch = RuleMatchIndex(policy_a.sorted_rules())
            assert incremental.structure() == scratch.structure(), asn

    @invariant()
    def every_shape_rule_has_its_own_shaper(self):
        for asn in MEMBERS:
            for policy in self.policies(asn):
                shape_rules = [
                    r for r in policy.rules() if r.action is FilterAction.SHAPE
                ]
                ids = [r.rule_id for r in shape_rules]
                assert all(ids), "SHAPE rule left without an id"
                assert len(set(ids)) == len(ids), "duplicate SHAPE rule ids"
                shapers = [policy.shaper_for(rule_id) for rule_id in ids]
                assert all(s is not None for s in shapers)
                assert len({id(s) for s in shapers}) == len(shapers), (
                    "SHAPE rules sharing one RateLimiter"
                )
                for shape_rule, shaper in zip(shape_rules, shapers):
                    assert shaper.rate_bps == shape_rule.shape_rate_bps


TestRuleStateMachine = RuleStateMachine.TestCase
