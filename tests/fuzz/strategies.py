"""Composable Hypothesis strategies for the data-plane fuzz suite.

One source of truth for generated rules, flow tables and topologies.  The
design constraint throughout is *collision density*: rules and flows draw
from the same small pools of hosts, ports, prefixes and ingress members,
so arbitrary examples actually exercise matches, precedence ties,
shadowing and shaper grouping instead of classifying everything as
FORWARD.

Three layers:

* **Scalar strategies** (``l4_ports``, ``shaping_rates``,
  ``tcam_allocation_sequences`` …) — shared with the unit-test suites that
  previously defined them inline (``tests/sim/test_rng.py``,
  ``tests/ixp/test_queues_and_tcam.py``,
  ``tests/core/test_rules_and_codec.py``).
* **Rule / table strategies** — ``flow_matches`` spans every signature
  group of :mod:`repro.ixp.ruleindex` (exact host /32 shapes, broad
  prefixes, MAC filters, dst-port-only, catch-alls, and the >64-bit
  packed-key overflow combination); ``qos_rules`` adds actions including
  anonymous SHAPE rules; ``flow_tables`` builds seeded columnar intervals
  whose rows straddle the rule pools (empty and single-flow tables
  included).
* **Topology strategies** — ``fabric_specs`` describes small multi-PoP
  fabrics; :func:`build_fabric` materialises one per delivery engine so
  parity tests can run the same spec on both engines in lockstep.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np
from hypothesis import strategies as st

from repro.bgp import Prefix
from repro.ixp import (
    FilterAction,
    FlowMatch,
    QosRule,
    SwitchingFabric,
    build_multi_pop_fabric,
    make_member_population,
)
from repro.sim.rng import make_rng
from repro.traffic import FlowTable
from repro.traffic.flowtable import derived_mac, ip_to_int
from repro.traffic.packet import IpProtocol

# ----------------------------------------------------------------------
# Scalar strategies (shared with the unit suites)
# ----------------------------------------------------------------------
#: Valid L4 port numbers (full range, as the community codec must accept).
l4_ports = st.integers(min_value=0, max_value=65535)

#: The L4 protocols the Stellar codec encodes port selectors for.
l4_protocols = st.sampled_from([IpProtocol.UDP, IpProtocol.TCP])

#: Batch sizes for vectorized RNG draws.
draw_sizes = st.integers(min_value=1, max_value=500)

#: Token-bucket consumption sequences (one consume attempt per element).
token_amount_sequences = st.lists(
    st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30
)

#: Token-bucket long-term rates and burst capacities.
token_rates = st.floats(min_value=0.5, max_value=10.0)
token_bursts = st.floats(min_value=1.0, max_value=20.0)

#: Flow-level shaping: offered volumes, shaping rates, interval lengths.
offered_volumes = st.floats(min_value=0.0, max_value=1e9)
shaping_rates = st.floats(min_value=1.0, max_value=1e8)
shaping_intervals = st.floats(min_value=0.1, max_value=100.0)

#: TCAM allocation sequences: one (mac_filters, l3l4_criteria) per port.
tcam_allocation_sequences = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=50
)

# ----------------------------------------------------------------------
# The shared data-plane universe
# ----------------------------------------------------------------------
#: Victim-side host pool; rules and flows both draw from it so generated
#: intervals straddle rule boundaries (some rows hit, some just miss).
HOSTS: tuple[str, ...] = tuple(f"10.1.0.{i}" for i in range(8)) + ("10.2.0.1",)

#: Reflection/attack service ports (paper Table 2 vectors) plus one
#: ephemeral port, shared by rule matches and flow draws.
PORT_POOL: tuple[int, ...] = (19, 53, 123, 11211, 50000)

#: Ingress (attacking peer) member ASNs; MAC-filter rules key off the
#: generator's derived-MAC convention for exactly these.
INGRESS_ASNS: tuple[int, ...] = (65001, 65002, 65003)

#: Broader prefixes covering (parts of) the host pool.
BROAD_PREFIXES: tuple[str, ...] = ("10.0.0.0/8", "10.1.0.0/16", "10.1.0.0/24")

#: Named rule-id pool — deliberately small so generated sets contain
#: same-id replacements and same-match precedence ties.
RULE_IDS: tuple[str, ...] = tuple(f"rule-{i}" for i in range(12))

hosts = st.sampled_from(HOSTS)
pool_ports = st.sampled_from(PORT_POOL)
ingress_asns = st.sampled_from(INGRESS_ASNS)
shape_rate_pool = st.sampled_from([5e5, 2e6, 1e7, 5e7])


# ----------------------------------------------------------------------
# FlowMatch strategies — one arm per rule-index signature group
# ----------------------------------------------------------------------
@st.composite
def flow_matches(draw) -> FlowMatch:
    """A match spanning every signature kind the rule index compiles."""
    kind = draw(
        st.sampled_from(
            [
                "host_exact",      # dominant Stellar shape: dst /32 + proto + sport
                "host_dst_port",   # exact group with a different field set
                "src_host",        # src /32 equality
                "broad_prefix",    # masked fallback group
                "mac",             # MAC filter -> fallback
                "dst_port_only",   # exact single-field group
                "catch_all",       # empty match -> fallback
                "overflow",        # packed key > 64 bits -> fallback
            ]
        )
    )
    if kind == "host_exact":
        return FlowMatch(
            dst_prefix=Prefix.parse(f"{draw(hosts)}/32"),
            protocol=draw(l4_protocols),
            src_port=draw(pool_ports),
        )
    if kind == "host_dst_port":
        return FlowMatch(
            dst_prefix=Prefix.parse(f"{draw(hosts)}/32"),
            protocol=draw(l4_protocols),
            dst_port=draw(pool_ports),
        )
    if kind == "src_host":
        return FlowMatch(
            src_prefix=Prefix.parse(f"{draw(hosts)}/32"),
            protocol=draw(l4_protocols),
        )
    if kind == "broad_prefix":
        return FlowMatch(
            dst_prefix=Prefix.parse(draw(st.sampled_from(BROAD_PREFIXES))),
            src_port=draw(st.none() | pool_ports),
        )
    if kind == "mac":
        return FlowMatch(
            dst_prefix=draw(
                st.none() | st.just(Prefix.parse("10.1.0.0/16"))
            ),
            src_mac=derived_mac(draw(ingress_asns)),
        )
    if kind == "dst_port_only":
        return FlowMatch(dst_port=draw(pool_ports))
    if kind == "overflow":
        return FlowMatch(
            dst_prefix=Prefix.parse(f"{draw(hosts)}/32"),
            src_prefix=Prefix.parse(f"{draw(hosts)}/32"),
            protocol=draw(l4_protocols),
            src_port=draw(pool_ports),
            dst_port=draw(pool_ports),
        )
    return FlowMatch()  # catch_all


@st.composite
def qos_rules(draw) -> QosRule:
    """One classification rule: generated match + action (+ shaping rate).

    SHAPE rules are anonymous (empty id) about a third of the time, so the
    policy's synthetic ``anon-<n>`` id machinery — and the independence of
    the per-rule shapers behind it — is constantly under test.
    """
    match = draw(flow_matches())
    action = draw(
        st.sampled_from([FilterAction.DROP, FilterAction.SHAPE, FilterAction.FORWARD])
    )
    if action is FilterAction.SHAPE:
        anonymous = draw(st.sampled_from([True, False, False]))
        return QosRule(
            match=match,
            action=FilterAction.SHAPE,
            shape_rate_bps=draw(shape_rate_pool),
            rule_id="" if anonymous else draw(st.sampled_from(RULE_IDS)),
        )
    # An empty id on DROP/FORWARD stays anonymous (rule_stats key "").
    rule_id = draw(st.sampled_from(RULE_IDS + ("",)))
    return QosRule(match=match, action=action, rule_id=rule_id)


def rule_sets(min_size: int = 0, max_size: int = 16):
    """A rule batch; small id pool => replacements and precedence ties."""
    return st.lists(qos_rules(), min_size=min_size, max_size=max_size)


# ----------------------------------------------------------------------
# FlowTable strategies
# ----------------------------------------------------------------------
def build_flow_table(
    seed: int,
    n: int,
    egress_pool: Sequence[int] = (64500,),
    in_pool_fraction: float = 0.7,
) -> FlowTable:
    """A deterministic seeded interval over the shared universe.

    ``in_pool_fraction`` of the rows target pool hosts / pool ports (so
    they can hit generated rules); the rest draw random addresses and
    ephemeral ports, straddling every rule's boundary.
    """
    rng = make_rng(seed)
    host_ints = np.array([ip_to_int(host) for host in HOSTS], dtype=np.uint32)
    in_pool = rng.random(n) < in_pool_fraction
    dst = np.where(
        in_pool,
        rng.choice(host_ints, size=n),
        rng.integers(0x0B000000, 0xDF000000, size=n),
    )
    src = np.where(
        rng.random(n) < 0.3,
        rng.choice(host_ints, size=n),
        rng.integers(0x0B000000, 0xDF000000, size=n),
    )
    src_port = np.where(
        rng.random(n) < 0.7,
        rng.choice(np.array(PORT_POOL, dtype=np.int64), size=n),
        rng.integers(1024, 65536, size=n),
    )
    dst_port = np.where(
        rng.random(n) < 0.4,
        rng.choice(np.array(PORT_POOL, dtype=np.int64), size=n),
        rng.integers(1024, 65536, size=n),
    )
    egress_values = np.fromiter(egress_pool, dtype=np.int64, count=len(egress_pool))
    return FlowTable(
        src_ip=src.astype(np.uint32),
        dst_ip=dst.astype(np.uint32),
        protocol=rng.choice([6, 17], size=n).astype(np.uint8),
        src_port=src_port.astype(np.int32),
        dst_port=dst_port.astype(np.int32),
        start=np.zeros(n),
        duration=np.full(n, 10.0),
        bytes=rng.integers(64, 20000, size=n).astype(np.int64),
        packets=rng.integers(1, 20, size=n).astype(np.int64),
        ingress_asn=rng.choice(np.array(INGRESS_ASNS, dtype=np.int64), size=n),
        egress_asn=rng.choice(egress_values, size=n),
        is_attack=rng.random(n) < 0.5,
    )


@st.composite
def flow_tables(
    draw,
    min_rows: int = 0,
    max_rows: int = 80,
    egress_pool: Sequence[int] = (64500,),
) -> FlowTable:
    """A seeded interval table; shrinks towards empty and single-flow."""
    n = draw(st.integers(min_value=min_rows, max_value=max_rows))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    in_pool_fraction = draw(st.sampled_from([0.0, 0.5, 0.7, 1.0]))
    return build_flow_table(
        seed=seed, n=n, egress_pool=egress_pool, in_pool_fraction=in_pool_fraction
    )


# ----------------------------------------------------------------------
# Control-plane churn-request strategies
# ----------------------------------------------------------------------
#: Every operation the control-plane service accepts.
CHURN_OPS: tuple[str, ...] = (
    "install",
    "install_many",
    "remove",
    "clear",
    "telemetry",
)

#: Inter-arrival gaps (seconds) between churn requests.  Mostly dense —
#: several requests inside one budget window so coalescing and budget
#: accounting actually trigger — with occasional jumps past a window
#: boundary.
arrival_gaps = st.sampled_from([0.0, 0.05, 0.2, 1.0, 2.5, 12.0])


@st.composite
def churn_requests(draw, member_indices: int = 8) -> dict:
    """One control-plane request descriptor.

    ``{"member_index", "op", "rules", "rule_id", "arrival_gap"}`` —
    the member index is modded into whatever member pool the consumer
    drives, the arrival gap is relative to the previous request (so a
    stream's absolute arrival times are its running sum).  Removes draw
    from the same small ``RULE_IDS`` pool the generated rules use, so a
    stream contains both real removals and no-op removals of ids that
    were never (or no longer) installed.
    """
    op = draw(st.sampled_from(CHURN_OPS))
    descriptor: dict = {
        "member_index": draw(st.integers(0, member_indices - 1)),
        "op": op,
        "arrival_gap": draw(arrival_gaps),
    }
    if op == "install":
        descriptor["rules"] = (draw(qos_rules()),)
    elif op == "install_many":
        descriptor["rules"] = tuple(draw(rule_sets(min_size=1, max_size=5)))
    elif op == "remove":
        descriptor["rule_id"] = draw(st.sampled_from(RULE_IDS + ("no-such-rule",)))
    return descriptor


def churn_request_streams(min_size: int = 0, max_size: int = 10):
    """A burst of service requests submitted before one drain."""
    return st.lists(churn_requests(), min_size=min_size, max_size=max_size)


# ----------------------------------------------------------------------
# Topology strategies
# ----------------------------------------------------------------------
#: Base ASN of generated member populations (egress side of the fabric).
MEMBER_BASE_ASN = 64500

#: An ASN no generated fabric ever connects — flows sent there must be
#: ignored by both delivery engines and excluded from IPFIX export.
UNKNOWN_EGRESS_ASN = 63999


@st.composite
def fabric_specs(draw) -> dict:
    """A small multi-PoP topology description (build it per engine)."""
    pop_count = draw(st.integers(min_value=1, max_value=2))
    return {
        "pop_count": pop_count,
        "routers_per_pop": draw(st.integers(min_value=1, max_value=2)),
        "member_count": draw(st.integers(min_value=2, max_value=5)),
        "seed": draw(st.integers(min_value=0, max_value=2**31 - 1)),
    }


def member_asns_of(spec: dict) -> list[int]:
    """The member ASNs :func:`build_fabric` connects for a spec."""
    return [MEMBER_BASE_ASN + index for index in range(spec["member_count"])]


def build_fabric(
    spec: dict,
    delivery_engine: str = "batched",
    classification_engine: Optional[str] = None,
) -> SwitchingFabric:
    """Materialise one spec as a live fabric (deterministic per spec)."""
    fabric = build_multi_pop_fabric(
        pop_count=spec["pop_count"],
        routers_per_pop=spec["routers_per_pop"],
        name="fuzz-ixp",
        delivery_engine=delivery_engine,
        seed=spec["seed"],
    )
    members = make_member_population(
        spec["member_count"],
        pop_count=spec["pop_count"],
        base_asn=MEMBER_BASE_ASN,
        seed=spec["seed"],
    )
    for member in members:
        fabric.connect_member(member)
    if classification_engine is not None:
        fabric.set_classification_engine(classification_engine)
    return fabric
