"""Property-based stateful fuzzing of the dual data planes.

The package hardens the repo's three parity contracts — indexed == per-rule
classification, batched == per-member fabric delivery, table == record flow
handling — with Hypothesis.  ``strategies`` is the shared source of truth
for generated rules, flow tables and topologies; the test modules assert
verdict parity, conservation invariants and (via ``RuleStateMachine``)
cache/version/TCAM consistency under arbitrary interleavings of rule churn
and delivery.  See docs/TESTING.md.
"""
