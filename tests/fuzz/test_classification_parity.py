"""Property tests: indexed == per-rule classification, bit conservation.

The first parity contract — ``classification_engine="indexed"`` must be
*verdict-for-verdict* equal to ``"per-rule"`` in
:meth:`PortQosPolicy.assign_table` — plus the conservation and accounting
invariants of a full ``apply`` pass, for arbitrary generated rule sets and
intervals (not just the scripted scenarios).
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from fuzz.strategies import build_flow_table, flow_tables, rule_sets
from repro.ixp import PortQosPolicy

PORT_CAPACITY = 10e9
INTERVAL = 10.0


def make_policy(engine, rules):
    policy = PortQosPolicy(port_capacity_bps=PORT_CAPACITY, classification_engine=engine)
    for rule in rules:
        policy.install(rule)
    return policy


class TestAssignParity:
    @given(rules=rule_sets(), table=flow_tables())
    def test_indexed_equals_per_rule(self, rules, table):
        indexed = make_policy("indexed", rules).assign_table(table)
        per_rule = make_policy("per-rule", rules).assign_table(table)
        assert np.array_equal(indexed, per_rule)

    @given(rules=rule_sets(min_size=1), table=flow_tables(min_rows=1))
    def test_assigned_rank_really_is_first_match(self, rules, table):
        """Spot-check the winner against the sequential record-path oracle."""
        policy = make_policy("indexed", rules)
        ranks = policy.assign_table(table)
        sorted_rules = policy.sorted_rules()
        records = table.to_records()
        # Checking every row re-runs the O(rules) scalar matcher per row;
        # bound the oracle to the first rows to keep examples cheap.
        for row, record in enumerate(records[:10]):
            expected = policy.classify(record)
            if ranks[row] < 0:
                assert expected is None, (
                    f"row {row}: engine says no match but oracle matched {expected}"
                )
            else:
                assert expected is sorted_rules[ranks[row]]


class TestApplyInvariants:
    @given(
        rules=rule_sets(),
        table=flow_tables(),
        engine=st.sampled_from(["indexed", "per-rule"]),
    )
    def test_bit_conservation(self, rules, table, engine):
        """forwarded + dropped + shaped + congestion-dropped == input bits."""
        result = make_policy(engine, rules).apply(table, interval=INTERVAL)
        total = (
            result.forwarded_bits
            + result.dropped_bits
            + result.shaped_passed_bits
            + result.shaped_dropped_bits
            + result.congestion_dropped_bits
        )
        assert total == pytest.approx(float(table.total_bits), rel=1e-9, abs=1e-6)

    @given(
        rules=rule_sets(min_size=1),
        table=flow_tables(min_rows=1),
        engine=st.sampled_from(["indexed", "per-rule"]),
    )
    def test_rule_stats_match_claimed_flows(self, rules, table, engine):
        """rule_stats sums reconcile with the aggregate verdict buckets."""
        policy = make_policy(engine, rules)
        result = policy.apply(table, interval=INTERVAL)
        dropped = sum(stats["dropped"] for stats in result.rule_stats.values())
        assert dropped == pytest.approx(result.dropped_bits, rel=1e-9, abs=1e-6)
        shaped = sum(stats["shaped"] for stats in result.rule_stats.values())
        shaped_table = result.shaped_table
        assert shaped_table is not None
        # Shaped stats are computed from the rounded (scaled) byte column,
        # so the reconciliation target is the shaped table itself.
        assert shaped == pytest.approx(float(shaped_table.total_bits), rel=1e-9, abs=1e-6)
        for stats in result.rule_stats.values():
            assert stats["matched"] == pytest.approx(
                stats["dropped"] + stats["shaped"], rel=1e-9, abs=1e-6
            )
        assert set(result.rule_stats) <= {
            rule.rule_id for rule in policy.sorted_rules()
        }

    @given(rules=rule_sets(), table=flow_tables())
    def test_full_apply_parity_bit_for_bit(self, rules, table):
        """Same verdict tables, bits and rule_stats on both engines."""
        a = make_policy("indexed", rules).apply(table, interval=INTERVAL)
        b = make_policy("per-rule", rules).apply(table, interval=INTERVAL)
        assert a.forwarded_bits == b.forwarded_bits
        assert a.dropped_bits == b.dropped_bits
        assert a.shaped_passed_bits == b.shaped_passed_bits
        assert a.shaped_dropped_bits == b.shaped_dropped_bits
        assert a.congestion_dropped_bits == b.congestion_dropped_bits
        assert a.rule_stats == b.rule_stats
        for name in ("forwarded_table", "dropped_table", "shaped_table"):
            ta, tb = getattr(a, name), getattr(b, name)
            assert np.array_equal(ta.bytes, tb.bytes), name
            assert np.array_equal(ta.dst_ip, tb.dst_ip), name


class TestTableRecordParity:
    """The third contract: columnar and record paths agree."""

    @given(rules=rule_sets(max_size=8), n=st.integers(0, 25), seed=st.integers(0, 2**31 - 1))
    def test_table_equals_records(self, rules, n, seed):
        table = build_flow_table(seed=seed, n=n)
        columnar = make_policy("indexed", rules).apply(table, interval=INTERVAL)
        per_record = make_policy("indexed", rules).apply(
            table.to_records(), interval=INTERVAL
        )
        assert columnar.forwarded_bits == pytest.approx(per_record.forwarded_bits)
        assert columnar.dropped_bits == pytest.approx(per_record.dropped_bits)
        assert columnar.shaped_passed_bits == pytest.approx(
            per_record.shaped_passed_bits
        )
        assert columnar.shaped_dropped_bits == pytest.approx(
            per_record.shaped_dropped_bits
        )
        assert set(columnar.rule_stats) == set(per_record.rule_stats)
        for rule_id, stats in per_record.rule_stats.items():
            for key, value in stats.items():
                assert columnar.rule_stats[rule_id][key] == pytest.approx(
                    value, rel=1e-9, abs=1e-6
                )
