"""Stateful lockstep fuzz of the control-plane service vs the portal.

One Hypothesis state machine drives the *async* :class:`ControlPlaneService`
(coalescing on, tight queue depth, small per-member budget) on fabric A
while mirroring every change it actually applied onto fabric B through the
synchronous :class:`ScriptedPortal`, one rule at a time.  After every burst
the machine fully drains the service, replays the new request-log entries
on B in canonical order, and asserts:

* both fabrics hold **identical rule state** per member (same rules, same
  order, same ids) — batching is an amortization, never a semantic change;
* delivering the same flow table to both fabrics yields **identical
  reports** (A runs the batched/indexed engines, B the per-member/per-rule
  fallbacks, so this doubles as cross-engine parity);
* ``rules_version`` is **monotonic** on both sides;
* the per-member, per-window **budget is never exceeded** by accepted
  operations, and every rejection carries an actionable ``retry_after``.

The tight knobs (``max_queue_depth=16``, one op/second member budget) make
generated bursts actually hit the backpressure and budget paths instead of
only the happy path.
"""

import asyncio

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.ixp import ControlPlaneService, ScriptedPortal, TcamExhaustedError

from .strategies import (
    UNKNOWN_EGRESS_ASN,
    build_flow_table,
    churn_request_streams,
    member_asns_of,
)
from .strategies import build_fabric

SPEC = {"pop_count": 2, "routers_per_pop": 1, "member_count": 3, "seed": 11}
MEMBERS = member_asns_of(SPEC)
INTERVAL = 10.0

#: Per-member budget: 1 op/s over a 10 s window = 10 ops per window.
MEMBER_RATE = 1.0
BUDGET_WINDOW = 10.0
MAX_QUEUE_DEPTH = 16
_EPS = 1e-9


class ServiceStateMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.loop = asyncio.new_event_loop()
        self.fabric_a = build_fabric(SPEC, delivery_engine="batched")
        self.fabric_b = build_fabric(
            SPEC, delivery_engine="per-member", classification_engine="per-rule"
        )
        self.service = ControlPlaneService(
            self.fabric_a,
            coalesce=True,
            max_queue_depth=MAX_QUEUE_DEPTH,
            budget_window=BUDGET_WINDOW,
            member_update_rate=MEMBER_RATE,
        )
        self.portal = ScriptedPortal(self.fabric_b)
        #: Absolute arrival clock (sum of generated gaps).
        self.clock = 0.0
        #: Request-log entries already mirrored onto B.
        self.replayed = 0
        #: Last observed rules_version per member and fabric.
        self.versions = {asn: [0, 0] for asn in MEMBERS}
        #: Accepted ops per ``(member, window)`` — rebuilt from responses.
        self.ledger = {}
        self.step = 0

    def teardown(self):
        try:
            self.loop.run_until_complete(self.service.aclose())
        finally:
            self.loop.close()

    # ------------------------------------------------------------------
    # Driving the service
    # ------------------------------------------------------------------
    def _submit_burst(self, descriptors):
        """Submit a burst concurrently, drain fully, return responses."""

        async def go():
            requests, tasks = [], []
            for descriptor in descriptors:
                self.clock += descriptor["arrival_gap"]
                request = self.service.make_request(
                    MEMBERS[descriptor["member_index"] % len(MEMBERS)],
                    descriptor["op"],
                    rules=descriptor.get("rules", ()),
                    rule_id=descriptor.get("rule_id", ""),
                    at=self.clock,
                )
                requests.append(request)
                tasks.append(asyncio.create_task(self.service.submit(request)))
            # Let every submit coroutine run to its first await so the
            # enqueue order matches the stream order.
            await asyncio.sleep(0)
            await self.service.advance(None)
            return list(zip(requests, [await task for task in tasks]))

        return self.loop.run_until_complete(go())

    def _check_responses(self, outcomes):
        for request, response in outcomes:
            assert response.request_id == request.request_id
            assert response.member_asn == request.member_asn
            if response.status == "telemetry":
                assert response.telemetry is not None
                assert response.telemetry["installed_rules"] >= 0
            elif response.status == "rejected":
                assert response.reason in ("budget", "backpressure")
                assert response.retry_after is not None
                assert response.retry_after > 0.0
            else:
                assert response.status in ("applied", "error")
                assert response.applied_at is not None
                assert response.applied_at >= request.arrival_time - _EPS
                window = int(request.arrival_time // BUDGET_WINDOW)
                key = (request.member_asn, window)
                self.ledger[key] = self.ledger.get(key, 0) + request.cost

    def _mirror_new_log_entries(self):
        """Replay everything the service newly applied through the portal."""
        new = self.service.request_log[self.replayed :]
        self.replayed = len(self.service.request_log)
        for entry in sorted(new, key=lambda e: (e.applied_at, e.member_asn)):
            if entry.op == "install_many":
                try:
                    self.portal.install_many(entry.member_asn, entry.rules)
                except TcamExhaustedError:
                    assert entry.tcam_exhausted, entry
            elif entry.op == "remove":
                self.portal.remove(entry.member_asn, entry.rule_id)
            elif entry.op == "clear":
                self.portal.clear(entry.member_asn)

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule(stream=churn_request_streams(min_size=1, max_size=10))
    def burst(self, stream):
        outcomes = self._submit_burst(stream)
        self._check_responses(outcomes)
        self._mirror_new_log_entries()

    @rule(member=st.integers(0, len(MEMBERS) - 1), pick=st.integers(0, 63))
    def remove_installed(self, member, pick):
        """Remove a rule B actually holds — the meaningful removal path."""
        asn = MEMBERS[member]
        installed = self.fabric_b.port_for_member(asn).qos.rule_ids()
        installed = [rule_id for rule_id in installed if rule_id]
        if not installed:
            return
        descriptor = {
            "member_index": member,
            "op": "remove",
            "rule_id": installed[pick % len(installed)],
            "arrival_gap": 0.1,
        }
        outcomes = self._submit_burst([descriptor])
        self._check_responses(outcomes)
        self._mirror_new_log_entries()

    @rule(seed=st.integers(0, 2**32 - 1), n=st.integers(0, 25))
    def deliver(self, seed, n):
        """Same interval through both data planes — reports must match."""
        table = build_flow_table(
            seed, n, egress_pool=tuple(MEMBERS) + (UNKNOWN_EGRESS_ASN,)
        )
        start = self.step * INTERVAL
        self.step += 1
        report_a = self.fabric_a.deliver(table, INTERVAL, start)
        report_b = self.fabric_b.deliver(table, INTERVAL, start)
        assert report_a.to_dict() == report_b.to_dict()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def rule_state_identical(self):
        for asn in MEMBERS:
            policy_a = self.fabric_a.port_for_member(asn).qos
            policy_b = self.fabric_b.port_for_member(asn).qos
            assert policy_a.rule_ids() == policy_b.rule_ids(), asn
            assert [repr(r) for r in policy_a.rules()] == [
                repr(r) for r in policy_b.rules()
            ], asn

    @invariant()
    def versions_monotonic(self):
        for asn in MEMBERS:
            policy_a = self.fabric_a.port_for_member(asn).qos
            policy_b = self.fabric_b.port_for_member(asn).qos
            last_a, last_b = self.versions[asn]
            assert policy_a.rules_version >= last_a, asn
            assert policy_b.rules_version >= last_b, asn
            # Coalescing can only *reduce* version churn, never add to it.
            assert policy_a.rules_version <= policy_b.rules_version, asn
            self.versions[asn] = [policy_a.rules_version, policy_b.rules_version]

    @invariant()
    def budget_never_exceeded(self):
        allowance = MEMBER_RATE * BUDGET_WINDOW
        for key, spent in self.ledger.items():
            assert spent <= allowance + _EPS, key

    @invariant()
    def queues_fully_drained(self):
        assert self.service.queue_depth() == 0


TestServiceStateMachine = ServiceStateMachine.TestCase
