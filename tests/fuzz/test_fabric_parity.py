"""Property tests: batched == per-member fabric delivery, fabric conservation.

The second parity contract — ``delivery_engine="batched"`` must be
indistinguishable from ``"per-member"`` in
:meth:`SwitchingFabric.deliver` — checked end-to-end on generated
multi-PoP topologies via :meth:`FabricIntervalReport.to_dict`, plus the
platform-level conservation invariants (offered == carried traffic;
delivered + filtered + congestion-dropped == offered; IPFIX collector
totals == carried bytes).
"""

import pytest
from hypothesis import given, strategies as st

from fuzz.strategies import (
    UNKNOWN_EGRESS_ASN,
    build_fabric,
    build_flow_table,
    fabric_specs,
    member_asns_of,
    rule_sets,
)

INTERVAL = 10.0


@st.composite
def fabric_scenarios(draw):
    """A topology spec + rule assignment + a short run of interval tables.

    Rules are spread round-robin across the members so multi-router specs
    exercise ports on every edge router; tables mix traffic to every
    member with traffic to an unconnected egress ASN the platform must
    ignore.  Several intervals are drawn so stateful shapers drain across
    deliveries.
    """
    spec = draw(fabric_specs())
    members = member_asns_of(spec)
    rules = draw(rule_sets(max_size=12))
    assignments = [(members[i % len(members)], rule) for i, rule in enumerate(rules)]
    egress_pool = tuple(members) + (UNKNOWN_EGRESS_ASN,)
    tables = [
        build_flow_table(
            seed=draw(st.integers(0, 2**31 - 1)),
            n=draw(st.integers(0, 60)),
            egress_pool=egress_pool,
        )
        for _ in range(draw(st.integers(1, 3)))
    ]
    return spec, assignments, tables


def install_all(fabric, assignments):
    for member_asn, rule in assignments:
        fabric.router_for_member(member_asn).install_rule(member_asn, rule)


def known_bytes(fabric, table):
    """Bytes of the rows whose egress member is connected to the fabric."""
    member_asns = fabric.member_asns
    mask = [int(asn) in member_asns for asn in table.egress_asn.tolist()]
    return int(sum(b for b, keep in zip(table.bytes.tolist(), mask) if keep))


class TestDeliveryEngineParity:
    @given(scenario=fabric_scenarios())
    def test_to_dict_parity_across_intervals(self, scenario):
        """Max-contrast lockstep: batched+indexed vs per-member+per-rule."""
        spec, assignments, tables = scenario
        batched = build_fabric(spec, delivery_engine="batched")
        fallback = build_fabric(
            spec, delivery_engine="per-member", classification_engine="per-rule"
        )
        install_all(batched, assignments)
        install_all(fallback, assignments)
        for step, table in enumerate(tables):
            report_a = batched.deliver(table, INTERVAL, step * INTERVAL)
            report_b = fallback.deliver(table, INTERVAL, step * INTERVAL)
            assert report_a.to_dict() == report_b.to_dict(), f"interval {step}"

    @given(scenario=fabric_scenarios())
    def test_port_counters_parity(self, scenario):
        spec, assignments, tables = scenario
        batched = build_fabric(spec, delivery_engine="batched")
        fallback = build_fabric(spec, delivery_engine="per-member")
        install_all(batched, assignments)
        install_all(fallback, assignments)
        for step, table in enumerate(tables):
            batched.deliver(table, INTERVAL, step * INTERVAL)
            fallback.deliver(table, INTERVAL, step * INTERVAL)
        for member_asn in member_asns_of(spec):
            counters_a = batched.port_for_member(member_asn).counters
            counters_b = fallback.port_for_member(member_asn).counters
            assert vars(counters_a) == vars(counters_b), member_asn


class TestFabricConservation:
    @given(
        scenario=fabric_scenarios(),
        engine=st.sampled_from(["batched", "per-member"]),
    )
    def test_bits_conserved_and_ipfix_matches(self, scenario, engine):
        spec, assignments, tables = scenario
        fabric = build_fabric(spec, delivery_engine=engine)
        install_all(fabric, assignments)
        carried_bytes = 0
        for step, table in enumerate(tables):
            report = fabric.deliver(table, INTERVAL, step * INTERVAL)
            interval_bytes = known_bytes(fabric, table)
            carried_bytes += interval_bytes
            # Offered == the traffic whose egress member is connected;
            # rows to unknown ASNs never entered the IXP.
            assert report.offered_bits == pytest.approx(
                interval_bytes * 8, rel=1e-9, abs=1e-6
            )
            assert (
                report.delivered_bits
                + report.filtered_bits
                + report.congestion_dropped_bits
            ) == pytest.approx(report.offered_bits, rel=1e-9, abs=1e-6)
            # The report's member breakdown covers all offered bits too.
            member_total = sum(
                result.forwarded_bits
                + result.dropped_bits
                + result.shaped_passed_bits
                + result.shaped_dropped_bits
                + result.congestion_dropped_bits
                for result in report.results_by_member.values()
            )
            assert member_total == pytest.approx(
                report.offered_bits, rel=1e-9, abs=1e-6
            )
        # IPFIX export only sees carried traffic, and sees all of it.
        totals = fabric.collector.bytes_by_exporter()
        assert sum(totals.values()) == carried_bytes

    @given(spec=fabric_specs(), seed=st.integers(0, 2**31 - 1), n=st.integers(0, 40))
    def test_unknown_egress_traffic_is_ignored(self, spec, seed, n):
        """An interval addressed only to unconnected ASNs is a no-op."""
        fabric = build_fabric(spec)
        table = build_flow_table(seed=seed, n=n, egress_pool=(UNKNOWN_EGRESS_ASN,))
        report = fabric.deliver(table, INTERVAL)
        assert report.offered_bits == 0.0
        assert report.results_by_member == {}
        assert sum(fabric.collector.bytes_by_exporter().values()) == 0
