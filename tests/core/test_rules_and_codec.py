"""Tests for blackholing rules, the extended-community codec and the portal."""

import pytest
from hypothesis import given, strategies as st

from fuzz.strategies import l4_ports, l4_protocols

from repro.bgp import ExtendedCommunity, Prefix
from repro.core import (
    BlackholingRule,
    CommunityDecodeError,
    CustomerPortal,
    RuleAction,
    RuleTemplate,
    StellarCommunityCodec,
    ixp_shared_templates,
)
from repro.ixp import FilterAction
from repro.traffic import IpProtocol


class TestBlackholingRule:
    def test_drop_udp_source_port_constructor(self):
        rule = BlackholingRule.drop_udp_source_port(64500, "100.10.10.10/32", 123)
        assert rule.action is RuleAction.DROP
        assert rule.protocol is IpProtocol.UDP
        assert rule.src_port == 123
        assert rule.dst_prefix == Prefix.parse("100.10.10.10/32")
        assert not rule.is_plain_rtbh

    def test_shape_constructor_requires_rate(self):
        rule = BlackholingRule.shape_udp_source_port(64500, "1.2.3.4/32", 123, rate_bps=2e8)
        assert rule.action is RuleAction.SHAPE
        assert rule.shape_rate_bps == 2e8
        with pytest.raises(ValueError):
            BlackholingRule(
                owner_asn=1, dst_prefix=Prefix.parse("1.2.3.4/32"), action=RuleAction.SHAPE
            )

    def test_drop_all_is_plain_rtbh(self):
        assert BlackholingRule.drop_all(64500, "1.2.3.4/32").is_plain_rtbh

    def test_drop_rule_must_not_carry_rate(self):
        with pytest.raises(ValueError):
            BlackholingRule(
                owner_asn=1,
                dst_prefix=Prefix.parse("1.2.3.4/32"),
                action=RuleAction.DROP,
                shape_rate_bps=100,
            )

    def test_invalid_owner_and_ports(self):
        with pytest.raises(ValueError):
            BlackholingRule(owner_asn=0, dst_prefix=Prefix.parse("1.2.3.4/32"))
        with pytest.raises(ValueError):
            BlackholingRule(owner_asn=1, dst_prefix=Prefix.parse("1.2.3.4/32"), src_port=70000)

    def test_to_qos_rule_drop(self):
        rule = BlackholingRule.drop_udp_source_port(64500, "1.2.3.4/32", 123)
        qos = rule.to_qos_rule()
        assert qos.action is FilterAction.DROP
        assert qos.rule_id == rule.rule_id
        assert qos.match.src_port == 123

    def test_to_qos_rule_shape(self):
        rule = BlackholingRule.shape_udp_source_port(64500, "1.2.3.4/32", 123, 1e8)
        qos = rule.to_qos_rule()
        assert qos.action is FilterAction.SHAPE
        assert qos.shape_rate_bps == 1e8

    def test_resource_footprint(self):
        rule = BlackholingRule.drop_udp_source_port(64500, "1.2.3.4/32", 123)
        assert rule.l3l4_criteria == 3
        assert rule.mac_filter_entries == 0
        mac_rule = BlackholingRule(
            owner_asn=1, dst_prefix=Prefix.parse("1.2.3.4/32"), src_mac="02:00:00:00:00:01"
        )
        assert mac_rule.mac_filter_entries == 1

    def test_with_action_preserves_identity(self):
        rule = BlackholingRule.drop_udp_source_port(64500, "1.2.3.4/32", 123)
        shaped = rule.with_action(RuleAction.SHAPE, shape_rate_bps=1e6)
        assert shaped.rule_id == rule.rule_id
        assert shaped.action is RuleAction.SHAPE

    def test_rule_ids_are_unique(self):
        a = BlackholingRule.drop_all(1, "1.2.3.4/32")
        b = BlackholingRule.drop_all(1, "1.2.3.4/32")
        assert a.rule_id != b.rule_id

    def test_str_rendering(self):
        rule = BlackholingRule.shape_udp_source_port(64500, "1.2.3.4/32", 123, 2e8)
        text = str(rule)
        assert "shape" in text and "123" in text and "200Mbps" in text


class TestCommunityCodec:
    def setup_method(self):
        self.codec = StellarCommunityCodec(ixp_asn=64700)

    def test_requires_16bit_asn(self):
        with pytest.raises(ValueError):
            StellarCommunityCodec(ixp_asn=4200000000)

    def test_encode_udp_src_port_drop_is_single_community(self):
        rule = BlackholingRule.drop_udp_source_port(64500, "1.2.3.4/32", 123)
        communities = self.codec.encode(rule)
        assert len(communities) == 1
        community = next(iter(communities))
        assert community.global_admin == 64700
        assert (community.local_admin >> 24) == 2  # UDP source selector
        assert (community.local_admin & 0xFFFF) == 123

    def test_roundtrip_drop_rule(self):
        rule = BlackholingRule.drop_udp_source_port(64500, "100.10.10.10/32", 11211)
        decoded, predefined = self.codec.to_rule(
            self.codec.encode(rule), owner_asn=64500, dst_prefix=rule.dst_prefix
        )
        assert predefined is None
        assert decoded.action is RuleAction.DROP
        assert decoded.protocol is IpProtocol.UDP
        assert decoded.src_port == 11211
        assert decoded.dst_prefix == rule.dst_prefix

    def test_roundtrip_shape_rule(self):
        rule = BlackholingRule.shape_udp_source_port(64500, "1.2.3.4/32", 123, rate_bps=200e6)
        decoded, _ = self.codec.to_rule(
            self.codec.encode(rule), owner_asn=64500, dst_prefix=rule.dst_prefix
        )
        assert decoded.action is RuleAction.SHAPE
        assert decoded.shape_rate_bps == pytest.approx(200e6)

    def test_roundtrip_tcp_dst_port(self):
        rule = BlackholingRule(
            owner_asn=64500,
            dst_prefix=Prefix.parse("1.2.3.4/32"),
            protocol=IpProtocol.TCP,
            dst_port=80,
        )
        decoded, _ = self.codec.to_rule(
            self.codec.encode(rule), owner_asn=64500, dst_prefix=rule.dst_prefix
        )
        assert decoded.protocol is IpProtocol.TCP
        assert decoded.dst_port == 80
        assert decoded.src_port is None

    def test_roundtrip_protocol_only(self):
        rule = BlackholingRule.drop_protocol(64500, "1.2.3.4/32", IpProtocol.UDP)
        decoded, _ = self.codec.to_rule(
            self.codec.encode(rule), owner_asn=64500, dst_prefix=rule.dst_prefix
        )
        assert decoded.protocol is IpProtocol.UDP
        assert decoded.src_port is None

    def test_roundtrip_plain_drop_all(self):
        rule = BlackholingRule.drop_all(64500, "1.2.3.4/32")
        communities = self.codec.encode(rule)
        assert len(communities) == 1
        decoded, _ = self.codec.to_rule(communities, owner_asn=64500, dst_prefix=rule.dst_prefix)
        assert decoded.is_plain_rtbh
        assert decoded.action is RuleAction.DROP

    def test_port_rule_requires_l4_protocol(self):
        rule = BlackholingRule(
            owner_asn=64500, dst_prefix=Prefix.parse("1.2.3.4/32"), src_port=123
        )
        with pytest.raises(ValueError):
            self.codec.encode(rule)

    def test_predefined_reference_roundtrip(self):
        communities = self.codec.encode_predefined(3)
        rule, predefined = self.codec.to_rule(
            communities, owner_asn=64500, dst_prefix=Prefix.parse("1.2.3.4/32")
        )
        assert rule is None
        assert predefined == 3

    def test_decode_rejects_foreign_communities(self):
        foreign = ExtendedCommunity(type=0x02, subtype=0x01, global_admin=1, local_admin=1)
        with pytest.raises(CommunityDecodeError):
            self.codec.decode([foreign])

    def test_decode_rejects_unknown_subtype(self):
        bogus = ExtendedCommunity(type=0x80, subtype=0x7F, global_admin=64700, local_admin=1)
        with pytest.raises(CommunityDecodeError):
            self.codec.decode([bogus])

    def test_decode_rejects_unknown_selector(self):
        bogus = ExtendedCommunity(
            type=0x80, subtype=0x01, global_admin=64700, local_admin=(9 << 24) | 80
        )
        with pytest.raises(CommunityDecodeError):
            self.codec.decode([bogus])

    def test_is_stellar_community_checks_asn(self):
        other_ixp = ExtendedCommunity(type=0x80, subtype=0x01, global_admin=6695, local_admin=1)
        assert not self.codec.is_stellar_community(other_ixp)

    @given(l4_protocols, l4_ports, st.booleans())
    def test_property_port_rules_roundtrip(self, protocol, port, use_src):
        rule = BlackholingRule(
            owner_asn=64500,
            dst_prefix=Prefix.parse("100.10.10.10/32"),
            protocol=protocol,
            src_port=port if use_src else None,
            dst_port=None if use_src else port,
        )
        decoded, _ = self.codec.to_rule(
            self.codec.encode(rule), owner_asn=64500, dst_prefix=rule.dst_prefix
        )
        assert decoded.protocol is protocol
        assert decoded.src_port == rule.src_port
        assert decoded.dst_port == rule.dst_port


class TestCustomerPortal:
    def test_shared_templates_cover_paper_vectors(self):
        templates = ixp_shared_templates()
        ports = {template.src_port for template in templates.values()}
        assert {123, 53, 11211, 389, 19, 0} <= ports

    def test_resolve_shared_template(self):
        portal = CustomerPortal()
        rule = portal.resolve(1, member_asn=64500, dst_prefix=Prefix.parse("1.2.3.4/32"))
        assert rule.src_port == 123
        assert rule.owner_asn == 64500

    def test_resolve_unknown_id(self):
        with pytest.raises(KeyError):
            CustomerPortal().resolve(999, 64500, Prefix.parse("1.2.3.4/32"))

    def test_custom_rule_lifecycle(self):
        portal = CustomerPortal()
        rule_id = portal.define_custom_rule(
            64500, RuleTemplate(name="drop-tcp-80", protocol=IpProtocol.TCP, dst_port=80)
        )
        assert rule_id >= CustomerPortal.CUSTOM_RULE_ID_BASE
        assert rule_id in portal.custom_rules_of(64500)
        resolved = portal.resolve(rule_id, 64500, Prefix.parse("1.2.3.4/32"))
        assert resolved.dst_port == 80
        assert portal.remove_custom_rule(64500, rule_id)
        assert not portal.remove_custom_rule(64500, rule_id)

    def test_custom_rule_is_private_to_owner(self):
        portal = CustomerPortal()
        rule_id = portal.define_custom_rule(64500, RuleTemplate(name="x", protocol=IpProtocol.UDP))
        with pytest.raises(PermissionError):
            portal.resolve(rule_id, 64999, Prefix.parse("1.2.3.4/32"))
        assert not portal.remove_custom_rule(64999, rule_id)

    def test_shape_template(self):
        portal = CustomerPortal()
        rule_id = portal.define_custom_rule(
            64500,
            RuleTemplate(
                name="shape-ntp", action=RuleAction.SHAPE, protocol=IpProtocol.UDP,
                src_port=123, shape_rate_bps=1e8,
            ),
        )
        rule = portal.resolve(rule_id, 64500, Prefix.parse("1.2.3.4/32"))
        assert rule.action is RuleAction.SHAPE
        assert rule.shape_rate_bps == 1e8

    def test_invalid_member_asn(self):
        with pytest.raises(ValueError):
            CustomerPortal().define_custom_rule(0, RuleTemplate(name="x"))
