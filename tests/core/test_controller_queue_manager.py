"""Tests for the change queue, blackholing controller, HIB, compilers and managers."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp import (
    PathAttributes,
    Prefix,
    RouteAnnouncement,
    RouteWithdrawal,
    UpdateMessage,
    rtbh_community,
)
from repro.core import (
    BlackholingController,
    BlackholingRule,
    ChangeQueue,
    ChangeType,
    ConfigChange,
    DeploymentStatus,
    HardwareInformationBase,
    OpenFlowSwitchSim,
    QosConfigurationCompiler,
    QosNetworkManager,
    RuleAction,
    SdnConfigurationCompiler,
    SdnNetworkManager,
    StellarCommunityCodec,
    Vendor,
    replay_change_arrivals,
)
from repro.ixp import (
    EdgeRouter,
    FilterAction,
    HardwareProfile,
    IxpMember,
    SwitchingFabric,
    small_ixp_edge_router_profile,
)
from repro.traffic import FiveTuple, FlowRecord, IpProtocol

IXP_ASN = 64700


def make_rule(port=123, prefix="100.10.10.10/32", action=RuleAction.DROP, rate=0.0):
    return BlackholingRule(
        owner_asn=64500,
        dst_prefix=Prefix.parse(prefix),
        action=action,
        protocol=IpProtocol.UDP,
        src_port=port,
        shape_rate_bps=rate,
    )


def make_change(rule=None, change_type=ChangeType.ADD_RULE, enqueue_time=0.0):
    rule = rule if rule is not None else make_rule()
    return ConfigChange(
        change_type=change_type,
        rule=rule,
        target_member_asn=rule.owner_asn,
        enqueue_time=enqueue_time,
    )


def signal_update(rule, codec=None, path_id=0):
    codec = codec if codec is not None else StellarCommunityCodec(IXP_ASN)
    attrs = PathAttributes(
        as_path=(rule.owner_asn,), next_hop="10.0.0.1"
    ).with_extended_communities(
        *codec.encode(rule)
    )
    return UpdateMessage(
        sender_asn=IXP_ASN,
        announcements=(
            RouteAnnouncement(prefix=rule.dst_prefix, attributes=attrs, path_id=path_id),
        ),
    )


class TestChangeQueue:
    def test_burst_then_rate_limit(self):
        queue = ChangeQueue(rate_per_second=1.0, max_burst_size=2)
        for _ in range(4):
            queue.enqueue(make_change())
        assert len(queue.drain(now=0.0)) == 2
        assert len(queue.drain(now=0.0)) == 0
        assert len(queue.drain(now=1.0)) == 1
        assert queue.pending == 1

    def test_waiting_times_recorded(self):
        queue = ChangeQueue(rate_per_second=1.0, max_burst_size=1)
        queue.enqueue(make_change(enqueue_time=0.0))
        queue.enqueue(make_change(enqueue_time=0.0))
        queue.drain(now=0.0)
        queue.drain(now=5.0)
        waits = queue.waiting_times()
        assert waits[0] == 0.0
        assert waits[1] == 5.0

    def test_queue_overflow_counts_drops(self):
        queue = ChangeQueue(rate_per_second=1.0, max_queue_length=1)
        assert queue.enqueue(make_change())
        assert not queue.enqueue(make_change())
        assert queue.dropped_changes == 1

    def test_next_dequeue_time(self):
        queue = ChangeQueue(rate_per_second=2.0, max_burst_size=1)
        assert queue.next_dequeue_time(0.0) is None
        queue.enqueue(make_change())
        queue.enqueue(make_change())
        queue.drain(now=0.0)
        assert queue.next_dequeue_time(0.0) == pytest.approx(0.5)

    def test_dequeue_empty_returns_none(self):
        assert ChangeQueue().dequeue(0.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ChangeQueue(rate_per_second=0)
        with pytest.raises(ValueError):
            ChangeQueue(max_burst_size=0)

    def test_replay_waiting_times_non_negative_and_bounded(self):
        arrivals = [0.0, 0.1, 0.2, 0.3, 10.0]
        waits = replay_change_arrivals(arrivals, dequeue_rate=4.0, max_burst_size=1)
        assert len(waits) == 5
        assert all(wait >= 0 for wait in waits)
        assert waits[-1] == 0.0  # the queue drained long before t=10

    def test_replay_backlog_grows_when_arrivals_exceed_rate(self):
        arrivals = [i * 0.1 for i in range(100)]  # 10/s for 10 s
        waits = replay_change_arrivals(arrivals, dequeue_rate=4.0)
        assert max(waits) > 10.0

    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=200))
    def test_property_replay_waits_non_negative(self, arrivals):
        waits = replay_change_arrivals(arrivals, dequeue_rate=4.0)
        assert all(wait >= -1e-9 for wait in waits)

    def test_replay_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            replay_change_arrivals([0.0], dequeue_rate=0.0)


class TestBlackholingController:
    def _controller(self, **kwargs):
        return BlackholingController(ixp_asn=IXP_ASN, **kwargs)

    def test_stellar_signal_creates_add_change(self):
        controller = self._controller()
        rule = make_rule()
        changes = controller.process_update(signal_update(rule))
        assert len(changes) == 1
        assert changes[0].change_type is ChangeType.ADD_RULE
        assert changes[0].rule.src_port == 123
        assert controller.active_rule_count() == 1
        assert controller.change_queue.pending == 1

    def test_same_signal_twice_is_idempotent(self):
        controller = self._controller()
        rule = make_rule()
        controller.process_update(signal_update(rule, path_id=1))
        changes = controller.process_update(signal_update(rule, path_id=1))
        assert changes == []
        assert controller.active_rule_count() == 1

    def test_action_change_produces_update(self):
        controller = self._controller()
        shape = make_rule(action=RuleAction.SHAPE, rate=2e8)
        controller.process_update(signal_update(shape, path_id=1))
        drop = make_rule(action=RuleAction.DROP)
        changes = controller.process_update(signal_update(drop, path_id=1))
        assert [change.change_type for change in changes] == [ChangeType.UPDATE_RULE]
        # The rule id must stay stable so the data plane replaces in place.
        assert changes[0].rule.rule_id == controller.active_rules()[0].rule_id

    def test_withdrawal_produces_remove(self):
        controller = self._controller()
        rule = make_rule()
        controller.process_update(signal_update(rule, path_id=1))
        withdrawal = UpdateMessage(
            sender_asn=IXP_ASN,
            withdrawals=(RouteWithdrawal(prefix=rule.dst_prefix, path_id=1),),
        )
        changes = controller.process_update(withdrawal)
        assert [change.change_type for change in changes] == [ChangeType.REMOVE_RULE]
        assert controller.active_rule_count() == 0

    def test_rtbh_translation_enabled(self):
        controller = self._controller(translate_rtbh=True)
        attrs = PathAttributes(as_path=(64500,), next_hop="10.0.0.1").with_communities(
            rtbh_community(IXP_ASN)
        )
        update = UpdateMessage(
            sender_asn=IXP_ASN,
            announcements=(
                RouteAnnouncement(prefix=Prefix.parse("100.10.10.10/32"), attributes=attrs),
            ),
        )
        changes = controller.process_update(update)
        assert len(changes) == 1
        assert changes[0].rule.is_plain_rtbh

    def test_rtbh_translation_disabled(self):
        controller = self._controller(translate_rtbh=False)
        attrs = PathAttributes(as_path=(64500,), next_hop="10.0.0.1").with_communities(
            rtbh_community(IXP_ASN)
        )
        update = UpdateMessage(
            sender_asn=IXP_ASN,
            announcements=(
                RouteAnnouncement(prefix=Prefix.parse("100.10.10.10/32"), attributes=attrs),
            ),
        )
        assert controller.process_update(update) == []

    def test_plain_announcement_is_ignored(self):
        controller = self._controller()
        attrs = PathAttributes(as_path=(64500,), next_hop="10.0.0.1")
        update = UpdateMessage(
            sender_asn=IXP_ASN,
            announcements=(
                RouteAnnouncement(prefix=Prefix.parse("100.10.10.0/24"), attributes=attrs),
            ),
        )
        assert controller.process_update(update) == []
        assert controller.stats.announcements_seen == 1

    def test_predefined_rule_resolution(self):
        controller = self._controller()
        codec = controller.codec
        attrs = PathAttributes(as_path=(64500,), next_hop="10.0.0.1").with_extended_communities(
            *codec.encode_predefined(1)
        )
        update = UpdateMessage(
            sender_asn=IXP_ASN,
            announcements=(
                RouteAnnouncement(prefix=Prefix.parse("100.10.10.10/32"), attributes=attrs),
            ),
        )
        changes = controller.process_update(update)
        assert len(changes) == 1
        assert changes[0].rule.src_port == 123  # shared template 1 = drop-ntp

    def test_unknown_predefined_rule_counts_decode_error(self):
        controller = self._controller()
        attrs = PathAttributes(as_path=(64500,), next_hop="10.0.0.1").with_extended_communities(
            *controller.codec.encode_predefined(777)
        )
        update = UpdateMessage(
            sender_asn=IXP_ASN,
            announcements=(
                RouteAnnouncement(prefix=Prefix.parse("100.10.10.10/32"), attributes=attrs),
            ),
        )
        assert controller.process_update(update) == []
        assert controller.stats.decode_errors == 1

    def test_two_members_same_prefix_distinct_rules(self):
        controller = self._controller()
        rule_a = make_rule()
        rule_b = BlackholingRule(
            owner_asn=64501,
            dst_prefix=Prefix.parse("100.10.10.10/32"),
            protocol=IpProtocol.UDP,
            src_port=53,
        )
        controller.process_update(signal_update(rule_a, path_id=1))
        controller.process_update(signal_update(rule_b, path_id=2))
        assert controller.active_rule_count() == 2

    def test_session_is_ibgp_with_addpath(self):
        controller = self._controller()
        assert controller.session.add_path
        assert controller.session.is_established
        assert controller.session.local_asn == controller.session.peer_asn


class TestHardwareInformationBase:
    def _setup(self):
        router = EdgeRouter("er-1", profile=small_ixp_edge_router_profile())
        router.connect_member(IxpMember(asn=64500))
        hib = HardwareInformationBase(max_rules_per_port=2)
        hib.register_router(router)
        return hib, router

    def test_admission_ok(self):
        hib, _ = self._setup()
        decision = hib.check_admission(make_rule(), 64500)
        assert decision.admitted

    def test_admission_rejects_unknown_member(self):
        hib, _ = self._setup()
        decision = hib.check_admission(make_rule(), 9999)
        assert not decision.admitted

    def test_admission_rejects_port_rule_limit(self):
        hib, router = self._setup()
        router.install_rule(64500, make_rule(port=1).to_qos_rule())
        router.install_rule(64500, make_rule(port=2).to_qos_rule())
        decision = hib.check_admission(make_rule(port=3), 64500)
        assert not decision.admitted
        assert "rules" in decision.reason

    def test_capabilities_and_bookkeeping(self):
        hib, router = self._setup()
        capabilities = hib.capabilities("er-1")
        assert capabilities.port_count == router.profile.port_count
        hib.note_rule_installed("er-1", 1)
        assert hib.rules_on_port("er-1", 1) == 1
        hib.note_rule_removed("er-1", 1)
        assert hib.rules_on_port("er-1", 1) == 0

    def test_unknown_device_capabilities(self):
        hib, _ = self._setup()
        with pytest.raises(KeyError):
            hib.capabilities("missing")


class TestCompilers:
    def test_qos_compile_add_and_remove(self):
        compiler = QosConfigurationCompiler()
        add = compiler.compile(make_change())[0]
        assert add.operation == "install"
        assert add.statement_count >= 2
        remove = compiler.compile(make_change(change_type=ChangeType.REMOVE_RULE))[0]
        assert remove.operation == "remove"

    def test_vendor_rendering(self):
        change = make_change()
        for vendor in Vendor:
            compiler = QosConfigurationCompiler(vendor=vendor)
            text = compiler.render(compiler.compile(change)[0])
            assert "123" in text or "ntp" in text.lower()

    def test_nokia_shape_rendering_includes_rate(self):
        compiler = QosConfigurationCompiler(vendor=Vendor.NOKIA)
        change = make_change(make_rule(action=RuleAction.SHAPE, rate=2e8))
        text = compiler.render(compiler.compile(change)[0])
        assert "rate 200" in text

    def test_sdn_compile_drop(self):
        flow_mods = SdnConfigurationCompiler().compile(make_change())
        assert len(flow_mods) == 1
        mod = flow_mods[0]
        assert mod.command == "add"
        assert mod.match["udp_src"] == 123
        assert mod.instructions["action"] == "drop"

    def test_sdn_compile_shape_uses_meter(self):
        change = make_change(make_rule(action=RuleAction.SHAPE, rate=2e8))
        mod = SdnConfigurationCompiler().compile(change)[0]
        assert mod.instructions["action"] == "meter"
        assert mod.instructions["meter_rate_kbps"] == 200_000

    def test_sdn_compile_delete(self):
        change = make_change(change_type=ChangeType.REMOVE_RULE)
        assert SdnConfigurationCompiler().compile(change)[0].command == "delete"


class TestOpenFlowSwitchSim:
    def _flow(self, src_port=123, dst_ip="100.10.10.10"):
        return FlowRecord(
            key=FiveTuple("23.1.1.1", dst_ip, IpProtocol.UDP, src_port, 40000),
            start=0.0,
            duration=10.0,
            bytes=10_000,
            packets=10,
            ingress_member_asn=65001,
            egress_member_asn=64500,
        )

    def test_drop_entry_filters_matching_flow(self):
        switch = OpenFlowSwitchSim()
        for mod in SdnConfigurationCompiler().compile(make_change()):
            switch.apply_flow_mod(mod)
        result = switch.forward([self._flow(), self._flow(src_port=53)], interval=10.0)
        assert len(result["drop"]) == 1
        assert len(result["forward"]) == 1

    def test_meter_entry_shapes(self):
        switch = OpenFlowSwitchSim()
        change = make_change(make_rule(action=RuleAction.SHAPE, rate=1e3))
        for mod in SdnConfigurationCompiler().compile(change):
            switch.apply_flow_mod(mod)
        result = switch.forward([self._flow()], interval=10.0)
        assert len(result["meter"]) == 1
        assert result["meter"][0].bits <= 1e3 * 10 + 8

    def test_delete_removes_entry(self):
        switch = OpenFlowSwitchSim()
        rule = make_rule()
        for mod in SdnConfigurationCompiler().compile(make_change(rule)):
            switch.apply_flow_mod(mod)
        assert switch.table_size() == 1
        for mod in SdnConfigurationCompiler().compile(
            make_change(rule, change_type=ChangeType.REMOVE_RULE)
        ):
            switch.apply_flow_mod(mod)
        assert switch.table_size() == 0

    def test_table_capacity(self):
        switch = OpenFlowSwitchSim(flow_table_capacity=1)
        switch.apply_flow_mod(SdnConfigurationCompiler().compile(make_change(make_rule(port=1)))[0])
        with pytest.raises(RuntimeError):
            switch.apply_flow_mod(
                SdnConfigurationCompiler().compile(make_change(make_rule(port=2)))[0]
            )


class TestNetworkManagers:
    def _fabric(self):
        fabric = SwitchingFabric()
        fabric.add_edge_router(EdgeRouter("er-1", profile=small_ixp_edge_router_profile()))
        fabric.connect_member(IxpMember(asn=64500, port_capacity_bps=1e9))
        return fabric

    def test_qos_manager_applies_add_change(self):
        fabric = self._fabric()
        queue = ChangeQueue()
        manager = QosNetworkManager(fabric=fabric, change_queue=queue)
        queue.enqueue(make_change())
        records = manager.process_pending(now=1.0)
        assert len(records) == 1
        assert records[0].status is DeploymentStatus.APPLIED
        assert len(fabric.router_for_member(64500).installed_rules()) == 1
        assert manager.applied_count == 1

    def test_qos_manager_remove_change(self):
        fabric = self._fabric()
        queue = ChangeQueue()
        manager = QosNetworkManager(fabric=fabric, change_queue=queue)
        rule = make_rule()
        queue.enqueue(make_change(rule))
        manager.process_pending(now=1.0)
        queue.enqueue(make_change(rule, change_type=ChangeType.REMOVE_RULE))
        manager.process_pending(now=2.0)
        assert len(fabric.router_for_member(64500).installed_rules()) == 0

    def test_qos_manager_unknown_member(self):
        fabric = self._fabric()
        queue = ChangeQueue()
        manager = QosNetworkManager(fabric=fabric, change_queue=queue)
        rule = BlackholingRule.drop_all(60000, "9.9.9.9/32")
        queue.enqueue(
            ConfigChange(change_type=ChangeType.ADD_RULE, rule=rule, target_member_asn=60000)
        )
        records = manager.process_pending(now=1.0)
        assert records[0].status is DeploymentStatus.FAILED_NO_PORT
        assert manager.failed_count == 1

    def test_qos_manager_admission_rejection(self):
        fabric = self._fabric()
        queue = ChangeQueue()
        hib = HardwareInformationBase(max_rules_per_port=1)
        for router in fabric.edge_routers():
            hib.register_router(router)
        manager = QosNetworkManager(fabric=fabric, change_queue=queue, hardware_info=hib)
        # Fill the single allowed slot on the victim's port, then request another.
        fabric.router_for_member(64500).install_rule(64500, make_rule(port=1).to_qos_rule())
        queue.enqueue(make_change(make_rule(port=2)))
        records = manager.process_pending(now=1.0)
        assert records[0].status is DeploymentStatus.REJECTED_ADMISSION

    def test_qos_manager_hardware_failure(self):
        fabric = SwitchingFabric()
        tiny = HardwareProfile(
            name="tiny", port_count=4, mac_filter_capacity=2, l3l4_criteria_capacity=3
        )
        fabric.add_edge_router(EdgeRouter("er-1", profile=tiny))
        fabric.connect_member(IxpMember(asn=64500))
        queue = ChangeQueue()
        manager = QosNetworkManager(fabric=fabric, change_queue=queue)
        # Fill the TCAM with one rule, then push an UPDATE for a different
        # rule (updates bypass admission rejection) so the install itself hits
        # the hardware limit.
        fabric.router_for_member(64500).install_rule(64500, make_rule(port=1).to_qos_rule())
        queue.enqueue(make_change(make_rule(port=2), change_type=ChangeType.UPDATE_RULE))
        records = manager.process_pending(now=1.0)
        assert records[0].status is DeploymentStatus.FAILED_HARDWARE

    def test_deployment_waiting_time(self):
        fabric = self._fabric()
        queue = ChangeQueue()
        manager = QosNetworkManager(fabric=fabric, change_queue=queue)
        queue.enqueue(make_change(enqueue_time=0.0))
        records = manager.process_pending(now=3.0)
        assert records[0].waiting_time == 3.0

    def test_sdn_manager_applies_flow_mods(self):
        queue = ChangeQueue()
        manager = SdnNetworkManager(change_queue=queue)
        queue.enqueue(make_change())
        records = manager.process_pending(now=1.0)
        assert records[0].status is DeploymentStatus.APPLIED
        assert manager.switch.table_size() == 1

    def test_sdn_manager_table_full(self):
        queue = ChangeQueue()
        manager = SdnNetworkManager(
            change_queue=queue, switch=OpenFlowSwitchSim(flow_table_capacity=1)
        )
        queue.enqueue(make_change(make_rule(port=1)))
        queue.enqueue(make_change(make_rule(port=2)))
        records = manager.process_pending(now=1.0)
        statuses = {record.status for record in records}
        assert DeploymentStatus.FAILED_HARDWARE in statuses
