"""Integration tests for the signaling layer, telemetry and the Stellar facade."""

import pytest

from repro.bgp import ImportPolicy
from repro.core import (
    BlackholingRule,
    RuleAction,
    RuleTelemetry,
    SignalRejectedError,
    Stellar,
    TelemetryCollector,
)
from repro.ixp import EdgeRouter, IxpMember, SwitchingFabric, small_ixp_edge_router_profile
from repro.traffic import BenignTrafficSource, BooterAttack, FiveTuple, FlowRecord, IpProtocol

IXP_ASN = 64700
VICTIM_ASN = 64500
VICTIM_IP = "100.10.10.10"


def build_stellar(policy=None, peer_count=5, victim_capacity=1e9):
    fabric = SwitchingFabric()
    fabric.add_edge_router(EdgeRouter("er-1", profile=small_ixp_edge_router_profile()))
    stellar = Stellar(ixp_asn=IXP_ASN, fabric=fabric, policy=policy)
    victim = IxpMember(
        asn=VICTIM_ASN, port_capacity_bps=victim_capacity, prefixes=["100.10.10.0/24"]
    )
    peers = [IxpMember(asn=65000 + i) for i in range(peer_count)]
    stellar.add_member(victim)
    stellar.add_members(peers)
    return stellar, victim, peers


def attack_flows(peers, t=0.0, interval=10.0, rate=5e8, seed=1):
    attack = BooterAttack(
        victim_ip=VICTIM_IP,
        victim_member_asn=VICTIM_ASN,
        peer_member_asns=[peer.asn for peer in peers],
        peak_rate_bps=rate,
        start=0.0,
        duration=1e6,
        ramp_seconds=0.0,
        seed=seed,
    )
    return attack.flows(t, interval)


def benign_flows(peers, t=0.0, interval=10.0, rate=1e8, seed=2):
    benign = BenignTrafficSource(
        dst_ip=VICTIM_IP,
        egress_member_asn=VICTIM_ASN,
        ingress_member_asns=[peer.asn for peer in peers],
        rate_bps=rate,
        seed=seed,
    )
    return benign.flows(t, interval)


class TestSignaling:
    def test_bgp_signal_reaches_controller_and_dataplane(self):
        stellar, victim, peers = build_stellar()
        rule = BlackholingRule.drop_udp_source_port(VICTIM_ASN, f"{VICTIM_IP}/32", 123)
        result = stellar.request_mitigation(rule, via="bgp")
        assert result.accepted and result.via == "bgp"
        assert len(stellar.active_rules()) == 1
        stellar.process_control_plane(now=1.0)
        assert stellar.installed_rule_count() == 1

    def test_api_signal_path(self):
        stellar, victim, peers = build_stellar()
        rule = BlackholingRule.drop_udp_source_port(VICTIM_ASN, f"{VICTIM_IP}/32", 123)
        result = stellar.request_mitigation(rule, via="api")
        assert result.accepted and result.via == "api"
        stellar.process_control_plane(now=1.0)
        assert stellar.installed_rule_count() == 1

    def test_unknown_signalling_path_rejected(self):
        stellar, victim, peers = build_stellar()
        rule = BlackholingRule.drop_all(VICTIM_ASN, f"{VICTIM_IP}/32")
        with pytest.raises(ValueError):
            stellar.request_mitigation(rule, via="carrier-pigeon")

    def test_predefined_rule_signalling(self):
        stellar, victim, peers = build_stellar()
        result = stellar.request_predefined_mitigation(VICTIM_ASN, f"{VICTIM_IP}/32", 1)
        assert result.accepted
        assert stellar.active_rules()[0].src_port == 123

    def test_irr_authorisation_enforced(self):
        policy = ImportPolicy()
        policy.irr.register("100.10.10.0/24", VICTIM_ASN)
        stellar, victim, peers = build_stellar(policy=policy)
        # The victim may blackhole inside its registered prefix ...
        ok = stellar.request_mitigation(
            BlackholingRule.drop_udp_source_port(VICTIM_ASN, f"{VICTIM_IP}/32", 123)
        )
        assert ok.accepted
        # ... but another member may not blackhole the victim's space.
        with pytest.raises(SignalRejectedError):
            stellar.request_mitigation(
                BlackholingRule.drop_udp_source_port(65001, f"{VICTIM_IP}/32", 123)
            )

    def test_api_signal_authorisation(self):
        policy = ImportPolicy()
        policy.irr.register("100.10.10.0/24", VICTIM_ASN)
        stellar, victim, peers = build_stellar(policy=policy)
        with pytest.raises(SignalRejectedError):
            stellar.request_mitigation(
                BlackholingRule.drop_all(65001, f"{VICTIM_IP}/32"), via="api"
            )

    def test_withdraw_removes_rule_from_dataplane(self):
        stellar, victim, peers = build_stellar()
        rule = BlackholingRule.drop_udp_source_port(VICTIM_ASN, f"{VICTIM_IP}/32", 123)
        stellar.request_mitigation(rule)
        stellar.process_control_plane(now=1.0)
        assert stellar.installed_rule_count() == 1
        stellar.withdraw_mitigation(VICTIM_ASN, f"{VICTIM_IP}/32")
        stellar.process_control_plane(now=2.0)
        assert stellar.installed_rule_count() == 0
        assert stellar.active_rules() == []

    def test_signal_not_reflected_to_other_members(self):
        stellar, victim, peers = build_stellar()
        rule = BlackholingRule.drop_udp_source_port(VICTIM_ASN, f"{VICTIM_IP}/32", 123)
        stellar.request_mitigation(rule, via="bgp")
        for peer in peers:
            session = stellar.route_server.session_for(peer.asn)
            assert session.updates_received == 0

    def test_time_cannot_move_backwards(self):
        stellar, victim, peers = build_stellar()
        stellar.advance_to(10.0)
        with pytest.raises(ValueError):
            stellar.advance_to(5.0)


class TestStellarDataPlane:
    def test_drop_rule_filters_attack_but_not_benign(self):
        stellar, victim, peers = build_stellar(victim_capacity=10e9)
        rule = BlackholingRule.drop_udp_source_port(VICTIM_ASN, f"{VICTIM_IP}/32", 123)
        stellar.request_mitigation(rule)
        stellar.process_control_plane(now=0.0)
        flows = attack_flows(peers) + benign_flows(peers)
        report = stellar.deliver_traffic(flows, interval=10.0, interval_start=0.0)
        result = report.fabric_report.results_by_member[VICTIM_ASN]
        delivered_attack = sum(flow.bits for flow in result.forwarded if flow.is_attack)
        delivered_benign = sum(flow.bits for flow in result.forwarded if not flow.is_attack)
        assert delivered_attack == 0
        assert delivered_benign > 0
        assert report.filtered_bits > 0

    def test_without_mitigation_port_congests(self):
        stellar, victim, peers = build_stellar(victim_capacity=1e8)
        flows = attack_flows(peers, rate=1e9)
        report = stellar.deliver_traffic(flows, interval=10.0, interval_start=0.0)
        result = report.fabric_report.results_by_member[VICTIM_ASN]
        assert result.congestion_dropped_bits > 0
        assert result.delivered_bits == pytest.approx(1e8 * 10.0, rel=0.01)

    def test_shape_rule_limits_attack_rate(self):
        stellar, victim, peers = build_stellar(victim_capacity=10e9)
        rule = BlackholingRule.shape_udp_source_port(
            VICTIM_ASN, f"{VICTIM_IP}/32", 123, rate_bps=1e8
        )
        stellar.request_mitigation(rule)
        stellar.process_control_plane(now=0.0)
        flows = attack_flows(peers, rate=1e9)
        report = stellar.deliver_traffic(flows, interval=10.0, interval_start=0.0)
        result = report.fabric_report.results_by_member[VICTIM_ASN]
        assert result.shaped_passed_bits == pytest.approx(1e8 * 10.0, rel=0.05)

    def test_rule_change_queue_throttles_deployment(self):
        stellar_kwargs = dict()
        fabric = SwitchingFabric()
        fabric.add_edge_router(EdgeRouter("er-1", profile=small_ixp_edge_router_profile()))
        stellar = Stellar(
            ixp_asn=IXP_ASN, fabric=fabric, change_rate_per_second=1.0, max_burst_size=1
        )
        stellar.add_member(IxpMember(asn=VICTIM_ASN, prefixes=["100.10.10.0/24"]))
        for port in (123, 53, 11211):
            stellar.request_mitigation(
                BlackholingRule.drop_udp_source_port(VICTIM_ASN, f"{VICTIM_IP}/32", port), via="api"
            )
        stellar.process_control_plane(now=0.0)
        assert stellar.installed_rule_count() == 1
        stellar.process_control_plane(now=1.0)
        assert stellar.installed_rule_count() == 2
        stellar.process_control_plane(now=10.0)
        assert stellar.installed_rule_count() == 3

    def test_telemetry_reports_matched_traffic(self):
        stellar, victim, peers = build_stellar(victim_capacity=10e9)
        rule = BlackholingRule.drop_udp_source_port(VICTIM_ASN, f"{VICTIM_IP}/32", 123)
        stellar.request_mitigation(rule)
        stellar.process_control_plane(now=0.0)
        flows = attack_flows(peers)
        stellar.deliver_traffic(flows, interval=10.0, interval_start=0.0)
        report = stellar.telemetry_report(VICTIM_ASN)
        assert report.active_rule_count == 1
        assert report.total_filtered_bits > 0
        rule_telemetry = report.rules[0]
        assert rule_telemetry.matched_bits > 0
        assert not rule_telemetry.attack_appears_over

    def test_telemetry_detects_attack_end(self):
        stellar, victim, peers = build_stellar(victim_capacity=10e9)
        rule = BlackholingRule.drop_udp_source_port(VICTIM_ASN, f"{VICTIM_IP}/32", 123)
        stellar.request_mitigation(rule)
        stellar.process_control_plane(now=0.0)
        stellar.deliver_traffic(attack_flows(peers), interval=10.0, interval_start=0.0)
        # Next interval: only benign traffic — the rule matches nothing.
        stellar.deliver_traffic(benign_flows(peers, t=10.0), interval=10.0, interval_start=10.0)
        installed_rule_id = stellar.active_rules()[0].rule_id
        telemetry = stellar.telemetry.telemetry_for_rule(installed_rule_id)
        assert telemetry is not None
        # No new sample was appended for the second interval (nothing matched),
        # so the latest matched-rate sample is still from the attack interval.
        report = stellar.telemetry_report(VICTIM_ASN)
        assert report.total_shaped_passed_bits == 0

    def test_interval_report_properties(self):
        stellar, victim, peers = build_stellar()
        report = stellar.deliver_traffic(benign_flows(peers), interval=10.0, interval_start=0.0)
        assert report.delivered_bits > 0
        assert report.filtered_bits == 0
        assert report.deployments == []


class TestTelemetryCollector:
    def test_record_rule_interval_accumulates(self):
        collector = TelemetryCollector()
        collector.record_rule_interval("r1", 64500, 1000.0, 1000.0, 0.0, interval=10.0, time=0.0)
        collector.record_rule_interval("r1", 64500, 500.0, 500.0, 0.0, interval=10.0, time=10.0)
        telemetry = collector.telemetry_for_rule("r1")
        assert telemetry.matched_bits == 1500.0
        assert telemetry.dropped_bits == 1500.0
        assert len(telemetry.samples) == 2
        assert telemetry.matched_rate_bps(10.0) == 50.0

    def test_matched_rate_uses_the_queried_interval(self):
        # Regression: the interval argument used to be ignored — the
        # method returned the last sample verbatim regardless of the
        # observation interval the caller reported over.
        collector = TelemetryCollector()
        collector.record_rule_interval(
            "r1", 64500, 1200.0, 1200.0, 0.0, interval=10.0, time=0.0
        )
        telemetry = collector.telemetry_for_rule("r1")
        assert telemetry.samples[-1] == (0.0, 1200.0)  # raw matched bits
        assert telemetry.matched_rate_bps(10.0) == 120.0
        assert telemetry.matched_rate_bps(5.0) == 240.0
        with pytest.raises(ValueError):
            telemetry.matched_rate_bps(0.0)

    def test_matched_rate_without_samples_is_zero(self):
        telemetry = RuleTelemetry(rule_id="x", member_asn=1)
        assert telemetry.matched_rate_bps(10.0) == 0.0
        assert not telemetry.attack_appears_over

    def test_report_for_member_filters_by_asn(self):
        collector = TelemetryCollector()
        collector.record_rule_interval("a", 64500, 1.0, 1.0, 0.0, 10.0, 0.0)
        collector.record_rule_interval("b", 64999, 1.0, 1.0, 0.0, 10.0, 0.0)
        report = collector.report_for_member(64500)
        assert report.active_rule_count == 1
        assert len(collector.all_rules()) == 2

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            TelemetryCollector().record_rule_interval("r", 1, 0, 0, 0, interval=0, time=0)
