"""Tests for deterministic random-number helpers."""

import numpy as np
import pytest
from hypothesis import given

from fuzz.strategies import draw_sizes

from repro.sim import (
    exponential_interarrivals,
    make_rng,
    pareto_bytes,
    spawn,
    weighted_choice,
)


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(42), make_rng(42)
        assert a.random() == b.random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_default_seed_is_deterministic(self):
        assert make_rng().random() == make_rng().random()


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(make_rng(1), 5)
        assert len(children) == 5

    def test_spawned_streams_are_independent_and_deterministic(self):
        first = [rng.random() for rng in spawn(make_rng(7), 3)]
        second = [rng.random() for rng in spawn(make_rng(7), 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(make_rng(1), -1)


class TestWeightedChoice:
    def test_single_positive_weight_always_wins(self):
        rng = make_rng(3)
        for _ in range(20):
            assert weighted_choice(rng, ["a", "b"], [0.0, 1.0]) == "b"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(1), ["a"], [0.5, 0.5])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(1), ["a", "b"], [-1.0, 1.0])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(1), ["a", "b"], [0.0, 0.0])


class TestParetoBytes:
    def test_mean_approximates_target(self):
        draws = pareto_bytes(make_rng(11), mean_bytes=1000.0, size=200_000)
        assert draws.mean() == pytest.approx(1000.0, rel=0.1)

    def test_all_draws_positive(self):
        assert (pareto_bytes(make_rng(5), 500.0, size=1000) > 0).all()

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            pareto_bytes(make_rng(1), 0.0)

    def test_shape_must_exceed_one(self):
        with pytest.raises(ValueError):
            pareto_bytes(make_rng(1), 100.0, shape=1.0)


class TestExponentialInterarrivals:
    def test_mean_matches_rate(self):
        draws = exponential_interarrivals(make_rng(2), rate_per_second=5.0, size=100_000)
        assert draws.mean() == pytest.approx(0.2, rel=0.05)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            exponential_interarrivals(make_rng(1), 0.0, 10)

    @given(draw_sizes)
    def test_size_respected(self, size):
        assert exponential_interarrivals(make_rng(1), 1.0, size).shape == (size,)
