"""Tests for the simulation substrate: clock, events, engine."""

import pytest

from repro.sim import Event, EventLog, SimulationClock, SimulationEngine


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimulationClock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimulationClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimulationClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_advance_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            SimulationClock().advance(-0.1)

    def test_advance_to_absolute_time(self):
        clock = SimulationClock(1.0)
        clock.advance_to(4.0)
        assert clock.now == 4.0

    def test_advance_to_rejects_past(self):
        clock = SimulationClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_reset(self):
        clock = SimulationClock(3.0)
        clock.reset()
        assert clock.now == 0.0

    def test_reset_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulationClock().reset(-5)


class TestEvent:
    def test_events_order_by_time(self):
        early = Event(time=1.0)
        late = Event(time=2.0)
        assert early < late

    def test_same_time_orders_by_priority_then_sequence(self):
        first = Event(time=1.0, priority=0)
        second = Event(time=1.0, priority=1)
        assert first < second

    def test_cancelled_event_does_not_fire(self):
        calls = []
        event = Event(time=0.0, callback=lambda: calls.append(1))
        event.cancel()
        event.fire()
        assert calls == []

    def test_fire_invokes_callback_with_args(self):
        calls = []
        event = Event(
            time=0.0, callback=lambda a, b=0: calls.append((a, b)), args=(1,), kwargs={"b": 2}
        )
        event.fire()
        assert calls == [(1, 2)]


class TestEventLog:
    def test_record_and_filter(self):
        log = EventLog()
        log.record(1.0, "attack_start", rate=100)
        log.record(2.0, "rule_installed")
        assert len(log) == 2
        assert len(log.entries("attack_start")) == 1
        assert log.times("rule_installed") == [2.0]

    def test_clear(self):
        log = EventLog()
        log.record(0.0, "x")
        log.clear()
        assert len(log) == 0


class TestSimulationEngine:
    def test_schedule_and_run(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(2.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        fired = engine.run()
        assert fired == 2
        assert order == ["a", "b"]
        assert engine.clock.now == 2.0

    def test_schedule_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule(-1.0, lambda: None)

    def test_schedule_at_rejects_past_time(self):
        engine = SimulationEngine(SimulationClock(5.0))
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)

    def test_run_until_stops_before_later_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(2))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.clock.now == 5.0
        assert engine.pending == 1

    def test_run_max_events(self):
        engine = SimulationEngine()
        for i in range(5):
            engine.schedule(i + 1.0, lambda: None)
        assert engine.run(max_events=3) == 3
        assert engine.pending == 2

    def test_cancelled_events_are_skipped(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("cancelled"))
        engine.schedule(2.0, lambda: fired.append("kept"))
        event.cancel()
        engine.run()
        assert fired == ["kept"]

    def test_step_returns_none_when_empty(self):
        assert SimulationEngine().step() is None

    def test_peek_time_skips_cancelled(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(3.0, lambda: None)
        event.cancel()
        assert engine.peek_time() == 3.0

    def test_events_scheduled_during_run_are_processed(self):
        engine = SimulationEngine()
        fired = []

        def reschedule():
            fired.append("first")
            engine.schedule(1.0, lambda: fired.append("second"))

        engine.schedule(1.0, reschedule)
        engine.run()
        assert fired == ["first", "second"]
        assert engine.clock.now == 2.0


class TestCancelledEventEviction:
    def test_pending_counts_only_live_events(self):
        engine = SimulationEngine()
        events = [engine.schedule(i + 1.0, lambda: None) for i in range(5)]
        events[2].cancel()
        events[4].cancel()
        assert engine.pending == 3

    def test_non_top_cancelled_events_are_evicted_by_compact(self):
        engine = SimulationEngine()
        keeper = engine.schedule(1.0, lambda: None)
        # Far-future events cancelled while a near event keeps them off the
        # top of the heap: step/peek alone would never evict them.
        cancelled = [engine.schedule(100.0 + i, lambda: None) for i in range(10)]
        for event in cancelled:
            event.cancel()
        removed = engine.compact()
        assert removed == 10
        assert engine.pending == 1
        assert engine._queue == [keeper]

    def test_pending_auto_compacts_mostly_cancelled_heap(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        cancelled = [engine.schedule(100.0 + i, lambda: None) for i in range(20)]
        for event in cancelled:
            event.cancel()
        assert engine.pending == 1
        assert len(engine._queue) == 1  # corpses were evicted, not just skipped

    def test_heavy_schedule_cancel_churn_does_not_grow_heap(self):
        engine = SimulationEngine()
        for i in range(5000):
            event = engine.schedule(1000.0 + i, lambda: None)
            event.cancel()
            if i % 100 == 0:
                engine.pending  # a monitoring read, as a real driver would do
        assert engine.pending == 0
        assert len(engine._queue) < 1000

    def test_compact_preserves_firing_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        doomed = engine.schedule(2.0, lambda: fired.append("x"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.5, lambda: fired.append("b"))
        doomed.cancel()
        engine.compact()
        engine.run()
        assert fired == ["a", "b", "c"]
