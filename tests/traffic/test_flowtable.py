"""Tests for the columnar FlowTable and the vectorized generation path.

Two families of guarantees:

* **round-trip** — ``FlowTable`` ↔ ``FlowRecord`` conversion is lossless,
  and the columnar aggregations match the per-record implementations on the
  same flows;
* **statistical parity** — the vectorized generators preserve the
  paper-reported traffic structure the original per-flow generators
  targeted (§2.3): TCP ≈ 87 % of regular traffic, amplification-prone
  source ports dominating blackholed traffic, and per-interval total-bytes
  conservation against the configured rates.
"""

import numpy as np
import pytest

from test_flows_and_profiles import make_flow

from repro.ixp import FilterAction, FlowMatch, PortQosPolicy, QosRule
from repro.traffic import (
    AMPLIFICATION_PRONE_PORTS,
    AmplificationAttack,
    BenignTrafficSource,
    FlowTable,
    IpProtocol,
    IxpTraceGenerator,
    MemberAttackScenarioGenerator,
    RtbhEvent,
    TrafficTrace,
    get_vector,
    ip_to_int,
    ints_to_ips,
    service_port,
)


class TestIpConversion:
    def test_round_trip(self):
        for address in ("0.0.0.0", "23.1.2.3", "100.64.0.1", "255.255.255.255"):
            assert ints_to_ips(np.array([ip_to_int(address)]))[0] == address

    def test_rejects_ipv6(self):
        with pytest.raises(ValueError):
            ip_to_int("2001:db8::1")

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            ip_to_int("not-an-ip")


class TestRoundTrip:
    def _records(self):
        return [
            make_flow(src_port=11211, bytes_=8000, is_attack=True, start=0),
            make_flow(src_port=50000, dst_port=443, protocol=IpProtocol.TCP, bytes_=2000),
            make_flow(src_port=0, dst_port=4000, bytes_=500, ingress=65002),
        ]

    def test_records_to_table_to_records_is_lossless(self):
        records = self._records()
        assert FlowTable.from_records(records).to_records() == records

    def test_generator_table_and_record_views_agree(self):
        attack = AmplificationAttack(
            victim_ip="100.10.10.10",
            vector=get_vector("ntp"),
            peak_rate_bps=1e9,
            start=0.0,
            duration=600.0,
            ingress_member_asns=[65001, 65002, 65003],
            victim_member_asn=64500,
            reflector_count=40,
            seed=7,
        )
        table = attack.flow_table(100.0, 10.0)
        twin = AmplificationAttack(
            victim_ip="100.10.10.10",
            vector=get_vector("ntp"),
            peak_rate_bps=1e9,
            start=0.0,
            duration=600.0,
            ingress_member_asns=[65001, 65002, 65003],
            victim_member_asn=64500,
            reflector_count=40,
            seed=7,
        )
        records = twin.flows(100.0, 10.0)
        assert table.to_records() == records

    def test_select_and_concat(self):
        table = FlowTable.from_records(self._records())
        attack = table.select(table.is_attack)
        benign = table.select(~table.is_attack)
        assert len(attack) == 1 and len(benign) == 2
        rebuilt = FlowTable.concat([attack, benign])
        assert rebuilt.total_bytes == table.total_bytes
        assert len(rebuilt) == len(table)

    def test_service_ports_match_scalar_helper(self):
        records = [
            make_flow(src_port=11211, dst_port=43210),
            make_flow(src_port=51000, dst_port=443, protocol=IpProtocol.TCP),
            make_flow(src_port=0, dst_port=4000),
            make_flow(src_port=50001, dst_port=60001),
        ]
        table = FlowTable.from_records(records)
        expected = [service_port(flow) for flow in records]
        assert table.service_ports().tolist() == expected

    def test_scaled_matches_record_scaling(self):
        records = [make_flow(bytes_=1001), make_flow(bytes_=4)]
        table = FlowTable.from_records(records).scaled(0.5)
        expected = [flow.scaled(0.5) for flow in records]
        assert table.bytes.tolist() == [flow.bytes for flow in expected]
        assert table.packets.tolist() == [flow.packets for flow in expected]
        zeroed = FlowTable.from_records(records).scaled(0.0)
        assert zeroed.bytes.tolist() == [0, 0]
        assert zeroed.packets.tolist() == [0, 0]


class TestTraceBackends:
    """Table-backed and record-backed traces must agree on every aggregation."""

    def _both(self):
        generator = IxpTraceGenerator(
            member_asns=[65000 + i for i in range(10)],
            duration=600.0,
            interval=60.0,
            regular_rate_bps=1e9,
            blackholed_rate_bps=5e8,
            flows_per_interval=50,
            seed=9,
        )
        generator.rtbh_events = [
            RtbhEvent(
                victim_ip="104.20.1.1",
                victim_member_asn=65001,
                start=0,
                duration=600,
                rate_bps=5e8,
            )
        ]
        columnar = generator.generate()
        assert columnar.table_or_none() is not None
        record_backed = TrafficTrace(list(columnar.flows))
        assert record_backed.table_or_none() is None
        return columnar, record_backed

    def test_aggregations_agree(self):
        columnar, record_backed = self._both()
        assert columnar.total_bytes == record_backed.total_bytes
        assert columnar.bytes_by_service_port() == record_backed.bytes_by_service_port()
        assert columnar.bytes_by_source_port() == record_backed.bytes_by_source_port()
        assert columnar.bytes_by_protocol() == record_backed.bytes_by_protocol()
        assert (
            columnar.distinct_ingress_members() == record_backed.distinct_ingress_members()
        )

    def test_filters_agree(self):
        columnar, record_backed = self._both()
        assert len(columnar.attack_flows()) == len(record_backed.attack_flows())
        assert len(columnar.towards("104.20.1.1")) == len(record_backed.towards("104.20.1.1"))
        assert len(columnar.towards_member(65001)) == len(
            record_backed.towards_member(65001)
        )
        assert len(columnar.between(60, 180)) == len(record_backed.between(60, 180))

    def test_rate_timeseries_agree(self):
        columnar, record_backed = self._both()
        times_a, rates_a = columnar.rate_timeseries(30.0)
        times_b, rates_b = record_backed.rate_timeseries(30.0)
        assert times_a == times_b
        assert rates_a == pytest.approx(rates_b)


class TestPackedDtypes:
    """Port and ASN columns use packed dtypes without losing range."""

    def test_column_dtypes_are_packed(self):
        table = FlowTable.from_records([make_flow()])
        assert table.src_ip.dtype == np.uint32
        assert table.dst_ip.dtype == np.uint32
        assert table.protocol.dtype == np.uint8
        assert table.src_port.dtype == np.uint16
        assert table.dst_port.dtype == np.uint16
        assert table.ingress_asn.dtype == np.int32
        assert table.egress_asn.dtype == np.int32

    def test_packed_dtypes_survive_concat_and_select(self):
        # The radix-bin pre-pass shifts the uint32 address columns and the
        # exact-group packer masks the uint8/uint16 lanes; both rely on
        # the packed dtypes surviving every table transformation.
        table = FlowTable.concat(
            [FlowTable.from_records([make_flow()]), FlowTable.from_records([make_flow()])]
        )
        subset = table.select(np.array([0], dtype=np.int64))
        for view in (table, subset):
            assert view.src_ip.dtype == np.uint32
            assert view.dst_ip.dtype == np.uint32
            assert view.protocol.dtype == np.uint8

    def test_extreme_values_round_trip(self):
        flow = make_flow(src_port=65535, dst_port=0, ingress=4_200_000_000 // 2)
        table = FlowTable.from_records([flow])
        restored = table.to_records()[0]
        assert restored.key.src_port == 65535
        assert restored.key.dst_port == 0
        assert restored.ingress_member_asn == flow.ingress_member_asn

    def test_packed_columns_still_aggregate(self):
        from repro.traffic.flowtable import member_mask

        table = FlowTable.from_records(
            [make_flow(src_port=53, ingress=65001), make_flow(src_port=53, ingress=65002)]
        )
        assert table.bytes[member_mask(table.ingress_asn, [65001])].sum() > 0
        assert 53 in set(np.unique(table.service_ports()))


class TestStreamingIntervals:
    """iter_interval_tables streams exactly what generate() materializes."""

    def _generator(self, seed=21, **overrides):
        params = dict(
            member_asns=[65000 + i for i in range(12)],
            duration=300.0,
            interval=60.0,
            regular_rate_bps=2e9,
            blackholed_rate_bps=4e8,
            flows_per_interval=80,
            seed=seed,
        )
        params.update(overrides)
        return IxpTraceGenerator(**params)

    def test_chunked_totals_match_monolithic(self):
        streamed = list(self._generator().iter_interval_tables())
        trace = self._generator().generate()
        assert [start for start, _ in streamed] == [0.0, 60.0, 120.0, 180.0, 240.0]
        total = sum(int(table.bytes.sum()) for _, table in streamed)
        assert total == trace.total_bytes
        combined = FlowTable.concat([table for _, table in streamed])
        assert len(combined) == len(trace.table)
        assert np.array_equal(combined.bytes, trace.table.bytes)
        assert np.array_equal(combined.start, trace.table.start)

    def test_each_interval_stays_in_window(self):
        for start, table in self._generator().iter_interval_tables():
            if len(table):
                assert table.start.min() >= start
                assert table.start.max() < start + 60.0

    def test_egress_restriction_only_narrows_egress(self):
        allowed = [65003, 65007]
        restricted = self._generator(egress_member_asns=allowed)
        for _, table in restricted.iter_interval_tables():
            if len(table):
                assert set(np.unique(table.egress_asn)) <= set(allowed)
                # Ingress still draws from the whole membership.
        assert restricted._egress_arr is not restricted._members_arr

    def test_default_egress_pool_keeps_rng_stream(self):
        default = self._generator().generate()
        explicit = self._generator(
            egress_member_asns=[65000 + i for i in range(12)]
        ).generate()
        assert default.total_bytes == explicit.total_bytes
        assert np.array_equal(default.table.egress_asn, explicit.table.egress_asn)

    def test_empty_egress_pool_rejected(self):
        with pytest.raises(ValueError):
            self._generator(egress_member_asns=[])


class TestStatisticalParity:
    """The vectorized generators keep the §2.3 traffic structure."""

    def test_regular_traffic_is_tcp_dominated(self):
        generator = IxpTraceGenerator(
            member_asns=[65000 + i for i in range(20)],
            duration=1800.0,
            interval=60.0,
            regular_rate_bps=10e9,
            flows_per_interval=400,
            seed=3,
        )
        shares = generator.generate().benign_flows().share_by_protocol()
        # The paper reports TCP-dominated non-blackholed traffic (≈ 87 %);
        # the generated byte share must match the configured profile mass.
        from repro.traffic import other_traffic_profile

        expected = other_traffic_profile().share_of_protocol(IpProtocol.TCP)
        assert shares[IpProtocol.TCP] == pytest.approx(expected, abs=0.02)
        assert shares[IpProtocol.TCP] > 0.75

    def test_blackholed_traffic_source_port_dominance(self):
        generator = IxpTraceGenerator(
            member_asns=[65000 + i for i in range(10)],
            duration=1800.0,
            interval=60.0,
            regular_rate_bps=1e9,
            blackholed_rate_bps=1e9,
            flows_per_interval=200,
            seed=5,
        )
        generator.rtbh_events = [
            RtbhEvent(
                victim_ip="104.20.9.9",
                victim_member_asn=65003,
                start=0,
                duration=1800,
                rate_bps=1e9,
            )
        ]
        attack = generator.generate().attack_flows()
        shares = attack.share_by_protocol()
        assert shares[IpProtocol.UDP] > 0.98
        by_port = attack.bytes_by_source_port()
        total = sum(by_port.values())
        prone_share = sum(by_port.get(port, 0) for port in AMPLIFICATION_PRONE_PORTS) / total
        # Ports 0/123/389/11211/53/19 carry the bulk of blackholed bytes
        # (≈ 88 % of the profile mass).
        assert prone_share > 0.8

    def test_interval_bytes_conservation(self):
        rate = 2e9
        interval = 60.0
        generator = IxpTraceGenerator(
            member_asns=[65000, 65001, 65002],
            duration=600.0,
            interval=interval,
            regular_rate_bps=rate,
            flows_per_interval=300,
            seed=11,
        )
        trace = generator.generate()
        expected = rate * interval / 8
        for i in range(int(600.0 / interval)):
            window = trace.between(i * interval, (i + 1) * interval)
            # int() truncation loses at most one byte per flow.
            assert window.total_bytes == pytest.approx(expected, rel=0.01)

    def test_amplification_source_port_dominates_member_scenario(self):
        generator = MemberAttackScenarioGenerator(
            victim_ip="100.10.10.10",
            victim_member_asn=64500,
            peer_member_asns=[65000 + i for i in range(10)],
            duration=1200.0,
            interval=60.0,
            attack_start=600.0,
            benign_rate_bps=1e9,
            attack_rate_bps=20e9,
            seed=1,
        )
        trace = generator.generate()
        during = trace.between(720, 1200).share_by_service_port()
        assert during.get(11211, 0.0) > 0.8

    def test_benign_source_volume_conservation(self):
        source = BenignTrafficSource(
            dst_ip="100.10.10.10",
            egress_member_asn=64500,
            ingress_member_asns=[65001, 65002],
            rate_bps=1e9,
            seed=4,
        )
        table = source.flow_table(0.0, 10.0)
        assert table.total_bits == pytest.approx(1e10, rel=0.05)


class TestColumnarQosParity:
    """The vectorized QoS path must agree with the per-record path."""

    def _policy(self):
        policy = PortQosPolicy(port_capacity_bps=10e9)
        policy.install(
            QosRule(
                match=FlowMatch(protocol=IpProtocol.UDP, src_port=123),
                action=FilterAction.DROP,
                rule_id="drop-ntp",
            )
        )
        policy.install(
            QosRule(
                match=FlowMatch(protocol=IpProtocol.UDP),
                action=FilterAction.SHAPE,
                shape_rate_bps=1e6,
                rule_id="shape-udp",
            )
        )
        return policy

    def _flows(self):
        attack = AmplificationAttack(
            victim_ip="100.10.10.10",
            vector=get_vector("ntp"),
            peak_rate_bps=1e9,
            start=0.0,
            duration=600.0,
            ingress_member_asns=[65001, 65002],
            victim_member_asn=64500,
            reflector_count=50,
            seed=2,
        )
        benign = BenignTrafficSource(
            dst_ip="100.10.10.10",
            egress_member_asn=64500,
            ingress_member_asns=[65001, 65002],
            rate_bps=5e8,
            seed=3,
        )
        return FlowTable.concat(
            [attack.flow_table(100.0, 10.0), benign.flow_table(100.0, 10.0)]
        )

    def test_bit_accounting_matches(self):
        table = self._flows()
        columnar = self._policy().apply(table, interval=10.0)
        per_record = self._policy().apply(table.to_records(), interval=10.0)
        assert columnar.forwarded_bits == pytest.approx(per_record.forwarded_bits)
        assert columnar.dropped_bits == pytest.approx(per_record.dropped_bits)
        assert columnar.shaped_passed_bits == pytest.approx(per_record.shaped_passed_bits)
        assert columnar.shaped_dropped_bits == pytest.approx(per_record.shaped_dropped_bits)
        assert len(columnar.forwarded) == len(per_record.forwarded)
        assert len(columnar.dropped) == len(per_record.dropped)
        assert len(columnar.shaped) == len(per_record.shaped)

    def test_rule_stats_match(self):
        table = self._flows()
        columnar = self._policy().apply(table, interval=10.0)
        per_record = self._policy().apply(table.to_records(), interval=10.0)
        assert set(columnar.rule_stats) == set(per_record.rule_stats)
        for rule_id, stats in per_record.rule_stats.items():
            for key, value in stats.items():
                assert columnar.rule_stats[rule_id][key] == pytest.approx(value)

    def test_anonymous_shape_rule_actually_shapes(self):
        table = self._flows()
        assert float(table.total_bits) > 1e6 * 10.0  # the shaper has something to cut
        for flows in (table, table.to_records()):
            policy = PortQosPolicy(port_capacity_bps=10e9)
            policy.install(
                QosRule(
                    match=FlowMatch(protocol=IpProtocol.UDP),
                    action=FilterAction.SHAPE,
                    shape_rate_bps=1e6,
                )
            )
            result = policy.apply(flows, interval=10.0)
            assert result.shaped_passed_bits == pytest.approx(1e6 * 10.0, rel=0.05)
            assert result.shaped_dropped_bits > 0

    def test_delivered_summaries_match(self):
        table = self._flows()
        columnar = self._policy().apply(table, interval=10.0)
        per_record = self._policy().apply(table.to_records(), interval=10.0)
        assert columnar.delivered_peer_asns() == per_record.delivered_peer_asns()
        assert columnar.delivered_attack_bits() == pytest.approx(
            per_record.delivered_attack_bits()
        )
