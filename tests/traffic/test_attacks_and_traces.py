"""Tests for amplification vectors, attack models, traces and IPFIX."""

import pytest

# Absolute import: pytest puts this directory on sys.path (there are no
# test packages), so the relative form would fail at collection time.
from test_flows_and_profiles import make_flow

from repro.traffic import (
    AMPLIFICATION_PRONE_PORTS,
    AmplificationAttack,
    BenignTrafficSource,
    BooterAttack,
    FlowTable,
    IpProtocol,
    IpfixCollector,
    IpfixExporter,
    IxpTraceGenerator,
    MemberAttackScenarioGenerator,
    RtbhEvent,
    TrafficTrace,
    get_vector,
    vector_for_port,
)


class TestAmplificationCatalogue:
    def test_known_vectors_present(self):
        for name in ("ntp", "dns", "memcached", "ldap", "chargen"):
            vector = get_vector(name)
            assert vector.amplification_factor > 1 or name == "fragments"

    def test_lookup_is_case_insensitive(self):
        assert get_vector("NTP").source_port == 123

    def test_unknown_vector_raises(self):
        with pytest.raises(KeyError):
            get_vector("quic-flood")

    def test_vector_for_port(self):
        assert vector_for_port(11211).name == "memcached"
        assert vector_for_port(4444) is None

    def test_memcached_has_largest_factor(self):
        factors = {
            name: get_vector(name).amplification_factor for name in ("ntp", "dns", "memcached")
        }
        assert factors["memcached"] == max(factors.values())

    def test_response_bytes(self):
        vector = get_vector("ntp")
        assert vector.response_bytes == int(
            round(vector.request_bytes * vector.amplification_factor)
        )

    def test_prone_ports_match_paper(self):
        assert AMPLIFICATION_PRONE_PORTS == (0, 123, 389, 11211, 53, 19)


class TestAmplificationAttack:
    def _attack(self, **kwargs):
        defaults = dict(
            victim_ip="100.10.10.10",
            vector=get_vector("ntp"),
            peak_rate_bps=1e9,
            start=100.0,
            duration=600.0,
            ingress_member_asns=[65001, 65002, 65003],
            victim_member_asn=64500,
            reflector_count=30,
            ramp_seconds=20.0,
            seed=1,
        )
        defaults.update(kwargs)
        return AmplificationAttack(**defaults)

    def test_rate_outside_window_is_zero(self):
        attack = self._attack()
        assert attack.rate_at(50.0) == 0.0
        assert attack.rate_at(800.0) == 0.0

    def test_rate_ramps_up(self):
        attack = self._attack()
        assert attack.rate_at(105.0) < attack.rate_at(130.0)
        assert attack.rate_at(130.0) == pytest.approx(1e9)

    def test_flows_total_volume_matches_rate(self):
        attack = self._attack(ramp_seconds=0.0)
        flows = attack.flows(200.0, 10.0)
        total_bits = sum(flow.bits for flow in flows)
        assert total_bits == pytest.approx(1e9 * 10.0, rel=0.05)

    def test_flows_use_vector_source_port(self):
        attack = self._attack()
        for flow in attack.flows(200.0, 10.0):
            assert flow.src_port == 123
            assert flow.protocol is IpProtocol.UDP
            assert flow.is_attack
            assert flow.egress_member_asn == 64500

    def test_flows_outside_window_empty(self):
        assert self._attack().flows(0.0, 10.0) == []
        assert self._attack().flows(800.0, 10.0) == []

    def test_flows_are_deterministic_per_seed(self):
        a = self._attack(seed=5).flows(200.0, 10.0)
        b = self._attack(seed=5).flows(200.0, 10.0)
        assert [f.bytes for f in a] == [f.bytes for f in b]

    def test_ingress_members_subset(self):
        attack = self._attack()
        peers = {flow.ingress_member_asn for flow in attack.flows(200.0, 10.0)}
        assert peers <= {65001, 65002, 65003}

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            self._attack(peak_rate_bps=0)
        with pytest.raises(ValueError):
            self._attack(duration=0)
        with pytest.raises(ValueError):
            self._attack(ingress_member_asns=[])
        with pytest.raises(ValueError):
            self._attack(reflector_count=0)

    def test_from_vector_name(self):
        attack = AmplificationAttack.from_vector_name(
            "dns",
            victim_ip="1.2.3.4",
            peak_rate_bps=1e8,
            start=0,
            duration=10,
            ingress_member_asns=[1],
            victim_member_asn=2,
        )
        assert attack.vector.source_port == 53


class TestBooterAttack:
    def test_peer_spread(self):
        booter = BooterAttack(
            victim_ip="100.10.10.10",
            victim_member_asn=64500,
            peer_member_asns=[65000 + i for i in range(40)],
            start=100,
            duration=600,
            seed=3,
        )
        flows = booter.flows(300.0, 10.0)
        peers = {flow.ingress_member_asn for flow in flows}
        assert len(peers) >= 35

    def test_requires_peers(self):
        with pytest.raises(ValueError):
            BooterAttack(victim_ip="1.2.3.4", victim_member_asn=1, peer_member_asns=[])

    def test_is_active_and_end(self):
        booter = BooterAttack(
            victim_ip="1.2.3.4", victim_member_asn=1, peer_member_asns=[2], start=100, duration=100
        )
        assert booter.end == 200
        assert booter.is_active(150)
        assert not booter.is_active(250)


class TestBenignTrafficSource:
    def test_rate_matches_target(self):
        source = BenignTrafficSource(
            dst_ip="100.10.10.10",
            egress_member_asn=64500,
            ingress_member_asns=[65001, 65002],
            rate_bps=1e8,
            seed=1,
        )
        flows = source.flows(0.0, 10.0)
        assert sum(flow.bits for flow in flows) == pytest.approx(1e9, rel=0.05)
        assert all(not flow.is_attack for flow in flows)

    def test_zero_rate_produces_no_flows(self):
        source = BenignTrafficSource(
            dst_ip="1.2.3.4", egress_member_asn=1, ingress_member_asns=[2], rate_bps=0.0
        )
        assert source.flows(0.0, 10.0) == []

    def test_web_ports_dominate(self):
        source = BenignTrafficSource(
            dst_ip="100.10.10.10",
            egress_member_asn=64500,
            ingress_member_asns=[65001],
            rate_bps=1e9,
            client_count=200,
            seed=2,
        )
        trace = TrafficTrace(source.flows(0.0, 60.0))
        shares = trace.share_by_service_port()
        web_share = shares.get(443, 0) + shares.get(80, 0) + shares.get(8080, 0)
        assert web_share > 0.6


class TestTrafficTrace:
    def _trace(self):
        return TrafficTrace(
            [
                make_flow(src_port=11211, bytes_=8000, is_attack=True, start=0),
                make_flow(
                    src_port=50000, dst_port=443, protocol=IpProtocol.TCP, bytes_=2000, start=0
                ),
                make_flow(
                    src_port=50001, dst_port=80, protocol=IpProtocol.TCP, bytes_=1000, start=30
                ),
            ]
        )

    def test_totals_and_bounds(self):
        trace = self._trace()
        assert trace.total_bytes == 11000
        assert trace.start == 0.0
        assert trace.end == 40.0
        assert len(trace) == 3

    def test_filters(self):
        trace = self._trace()
        assert len(trace.attack_flows()) == 1
        assert len(trace.benign_flows()) == 2
        assert len(trace.towards("100.10.10.10")) == 3
        assert len(trace.towards("8.8.8.8")) == 0
        assert len(trace.towards_member(64500)) == 3
        assert len(trace.between(25, 50)) == 1

    def test_share_by_service_port(self):
        shares = self._trace().share_by_service_port()
        assert shares[11211] == pytest.approx(8000 / 11000)
        assert shares[443] == pytest.approx(2000 / 11000)

    def test_share_by_service_port_top_folding(self):
        shares = self._trace().share_by_service_port(top=1)
        assert set(shares) == {11211, -1}
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_share_by_protocol(self):
        shares = self._trace().share_by_protocol()
        assert shares[IpProtocol.UDP] == pytest.approx(8000 / 11000)

    def test_empty_trace_shares(self):
        assert TrafficTrace().share_by_service_port() == {}
        assert TrafficTrace().share_by_protocol() == {}

    def test_rate_timeseries(self):
        trace = self._trace()
        times, rates = trace.rate_timeseries(bin_seconds=10.0)
        assert len(times) == len(rates)
        total_from_series = sum(rate * 10.0 for rate in rates)
        assert total_from_series == pytest.approx(trace.total_bytes * 8, rel=0.01)

    def test_rate_timeseries_empty(self):
        assert TrafficTrace().rate_timeseries(10.0) == ([], [])

    def test_rate_timeseries_invalid_bin(self):
        with pytest.raises(ValueError):
            self._trace().rate_timeseries(0)


class TestGenerators:
    def test_member_attack_scenario_port_shift(self):
        generator = MemberAttackScenarioGenerator(
            victim_ip="100.10.10.10",
            victim_member_asn=64500,
            peer_member_asns=[65000 + i for i in range(10)],
            duration=1200.0,
            interval=60.0,
            attack_start=600.0,
            benign_rate_bps=1e9,
            attack_rate_bps=20e9,
            seed=1,
        )
        trace = generator.generate()
        before = trace.between(0, 600).share_by_service_port()
        during = trace.between(720, 1200).share_by_service_port()
        assert before.get(11211, 0.0) == 0.0
        assert during.get(11211, 0.0) > 0.8

    def test_ixp_trace_generator_marks_blackholed_traffic(self):
        generator = IxpTraceGenerator(
            member_asns=[65000 + i for i in range(10)],
            duration=600.0,
            interval=60.0,
            regular_rate_bps=1e9,
            blackholed_rate_bps=5e8,
            flows_per_interval=50,
            seed=2,
        )
        generator.rtbh_events = [
            RtbhEvent(
                victim_ip="104.20.1.1", victim_member_asn=65001, start=0, duration=600, rate_bps=5e8
            )
        ]
        trace = generator.generate()
        attack = trace.attack_flows()
        assert len(attack) > 0
        assert attack.share_by_protocol()[IpProtocol.UDP] > 0.95
        assert all(flow.dst_ip == "104.20.1.1" for flow in attack)

    def test_ixp_trace_generator_validation(self):
        with pytest.raises(ValueError):
            IxpTraceGenerator(member_asns=[1], duration=10, interval=1)

    def test_default_events_are_within_duration(self):
        generator = IxpTraceGenerator(
            member_asns=[65000, 65001], duration=1000.0, interval=100.0, seed=3
        )
        events = generator.default_events(5)
        assert len(events) == 5
        assert all(0 <= event.start < 1000.0 for event in events)


class TestIpfix:
    def test_exporter_without_sampling_exports_everything(self):
        exporter = IpfixExporter(exporter_id="edge-1")
        records = exporter.export([make_flow() for _ in range(10)], export_time=1.0)
        assert len(records) == 10
        assert exporter.exported_count == 10

    def test_sampling_scales_bytes_back_up(self):
        exporter = IpfixExporter(exporter_id="edge-1", sampling_rate=10, seed=1)
        flows = [make_flow(bytes_=1000) for _ in range(5000)]
        records = exporter.export(flows, export_time=0.0)
        assert 0 < len(records) < 5000
        total_estimate = sum(record.flow.bytes for record in records)
        assert total_estimate == pytest.approx(5_000_000, rel=0.15)

    def test_collector_aggregates_by_exporter(self):
        collector = IpfixCollector()
        for name in ("edge-1", "edge-2"):
            exporter = IpfixExporter(exporter_id=name)
            collector.receive(exporter.export([make_flow(bytes_=500)], export_time=0.0))
        assert collector.exporters() == {"edge-1", "edge-2"}
        assert collector.bytes_by_exporter()["edge-1"] == 500
        assert len(collector.trace()) == 2
        assert len(collector.trace("edge-1")) == 1

    def test_invalid_sampling_rate(self):
        with pytest.raises(ValueError):
            IpfixExporter(exporter_id="x", sampling_rate=0)


class TestIpfixSamplingParity:
    """Table-path vs. record-path sampling at ``sampling_rate > 1``.

    Both paths draw from the same uniform stream (the columnar path's one
    ``rng.random(n)`` call consumes the generator exactly like n scalar
    draws), so equal seeds must keep the same flows; and both estimators
    must stay byte-unbiased.
    """

    def _flows(self, count=4000, bytes_=1500):
        return [make_flow(bytes_=bytes_) for _ in range(count)]

    def test_same_seed_keeps_identical_flow_sets(self):
        flows = self._flows()
        table = FlowTable.from_records(flows)
        record_exporter = IpfixExporter(exporter_id="rec", sampling_rate=8, seed=11)
        table_exporter = IpfixExporter(exporter_id="tab", sampling_rate=8, seed=11)
        exported_records = record_exporter.export(flows, export_time=0.0)
        exported_batch = table_exporter.export_table(table, export_time=0.0)
        assert len(exported_records) == len(exported_batch)
        assert record_exporter.exported_count == table_exporter.exported_count
        record_bytes = [record.flow.bytes for record in exported_records]
        table_bytes = exported_batch.table.bytes.tolist()
        assert record_bytes == table_bytes

    def test_both_paths_are_byte_unbiased(self):
        true_total = 4000 * 1500
        estimates = {"record": [], "table": []}
        for seed in range(8):
            flows = self._flows()
            table = FlowTable.from_records(flows)
            record_exporter = IpfixExporter(exporter_id="rec", sampling_rate=10, seed=seed)
            table_exporter = IpfixExporter(
                exporter_id="tab", sampling_rate=10, seed=100 + seed
            )
            estimates["record"].append(
                sum(r.flow.bytes for r in record_exporter.export(flows, export_time=0.0))
            )
            estimates["table"].append(
                table_exporter.export_table(table, export_time=0.0).table.total_bytes
            )
        for path, values in estimates.items():
            mean = sum(values) / len(values)
            assert mean == pytest.approx(true_total, rel=0.1), path
        # The two estimators agree with each other statistically as well.
        record_mean = sum(estimates["record"]) / len(estimates["record"])
        table_mean = sum(estimates["table"]) / len(estimates["table"])
        assert record_mean == pytest.approx(table_mean, rel=0.15)

    def test_sampled_batch_scales_counters_by_rate(self):
        flows = self._flows(count=1000, bytes_=1000)
        table = FlowTable.from_records(flows)
        exporter = IpfixExporter(exporter_id="tab", sampling_rate=4, seed=5)
        batch = exporter.export_table(table, export_time=0.0)
        assert exporter.observed_count == 1000
        assert batch.sampling_rate == 4
        if len(batch):
            assert int(batch.table.bytes[0]) == 4000
