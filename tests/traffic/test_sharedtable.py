"""Shared-memory FlowTable transport: round-trip, zero-copy, lifecycle.

These tests exercise :class:`SharedFlowTable` inside one process — the
attach path is identical cross-process (the handle pickles to metadata
and the consumer maps the named block), which the end-to-end pipeline
tests cover; here the contract itself is pinned down.
"""

import pickle

import numpy as np
import pytest

from repro.traffic import FlowTable, IxpTraceGenerator, SharedFlowTable
from repro.traffic.flowtable import COLUMNS


def make_table(rows=500, seed=3):
    generator = IxpTraceGenerator(
        member_asns=[65001, 65002, 65003, 65004],
        duration=10.0,
        interval=10.0,
        regular_rate_bps=4e9,
        flows_per_interval=rows,
        seed=seed,
    )
    return generator.generate().table


def tables_equal(a: FlowTable, b: FlowTable) -> bool:
    return len(a) == len(b) and all(
        np.array_equal(getattr(a, name), getattr(b, name)) for name in COLUMNS
    )


class TestRoundTrip:
    def test_columns_and_dtypes_survive(self):
        table = make_table()
        handle = SharedFlowTable.from_table(table)
        try:
            restored = handle.table()
            assert tables_equal(table, restored)
            for name in COLUMNS:
                assert getattr(restored, name).dtype == getattr(table, name).dtype
        finally:
            handle.release()

    def test_pickle_round_trip_reattaches(self):
        table = make_table(rows=200)
        handle = SharedFlowTable.from_table(table)
        try:
            payload = pickle.dumps(handle)
            remote = pickle.loads(payload)
            assert tables_equal(table, remote.table())
            remote.close()
        finally:
            handle.release()

    def test_empty_table_needs_no_block(self):
        handle = SharedFlowTable.from_table(FlowTable.empty())
        assert handle.shm_name is None
        assert len(handle.table()) == 0
        handle.release()


class TestZeroCopy:
    def test_view_aliases_the_shared_block(self):
        table = make_table()
        handle = SharedFlowTable.from_table(table)
        try:
            view = handle.table()
            # Columns are views into the mapping, not owned copies, and
            # repeated calls return the same cached view.
            assert not view.bytes.flags.owndata
            assert handle.table() is view
        finally:
            handle.release()

    def test_pickle_payload_is_metadata_sized(self):
        small = SharedFlowTable.from_table(make_table(rows=10))
        large = SharedFlowTable.from_table(make_table(rows=5000))
        try:
            small_payload = len(pickle.dumps(small))
            large_payload = len(pickle.dumps(large))
            assert large_payload == pytest.approx(small_payload, abs=64)
            assert large_payload < 2048
        finally:
            small.release()
            large.release()


class TestLifecycle:
    def test_src_mac_tables_are_rejected(self):
        table = make_table(rows=4)
        macs = np.array(["02:00:00:00:00:01"] * len(table), dtype=object)
        with_macs = FlowTable(
            src_mac=macs, **{name: getattr(table, name) for name in COLUMNS}
        )
        with pytest.raises(ValueError):
            SharedFlowTable.from_table(with_macs)

    def test_unlink_destroys_the_block(self):
        handle = SharedFlowTable.from_table(make_table(rows=50))
        name = handle.shm_name
        handle.release()
        assert handle.shm_name is None
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_release_is_idempotent(self):
        handle = SharedFlowTable.from_table(make_table(rows=50))
        handle.release()
        handle.release()

    def test_transfer_still_readable_by_consumer(self):
        table = make_table(rows=80)
        handle = SharedFlowTable.from_table(table, transfer=True)
        try:
            consumer = pickle.loads(pickle.dumps(handle))
            assert tables_equal(table, consumer.table())
            consumer.release()
        finally:
            handle.close()


class TestSharedMemberTable:
    def make_members(self, count=40, pop_count=4, seed=9):
        from repro.ixp import make_member_population

        return make_member_population(count, pop_count=pop_count, seed=seed)

    def test_roundtrip_is_attribute_exact(self):
        from repro.traffic import SharedMemberTable

        members = self.make_members()
        handle = SharedMemberTable.from_members(members)
        try:
            restored = handle.members()
            assert restored == members
            assert handle.asn_array().tolist() == [m.asn for m in members]
            assert not handle.asn_array().flags.owndata  # view into the block
        finally:
            handle.release()

    def test_members_for_preserves_request_order(self):
        from repro.traffic import SharedMemberTable

        members = self.make_members(count=20)
        handle = SharedMemberTable.from_members(members)
        try:
            wanted = [members[7].asn, members[2].asn, members[19].asn]
            subset = handle.members_for(wanted)
            assert [m.asn for m in subset] == wanted
            assert subset == [members[7], members[2], members[19]]
            assert handle.members_for([]) == []
        finally:
            handle.release()

    def test_members_for_unknown_asn_raises(self):
        from repro.traffic import SharedMemberTable

        handle = SharedMemberTable.from_members(self.make_members(count=10))
        try:
            with pytest.raises(KeyError, match="not in the shared member table"):
                handle.members_for([99999])
        finally:
            handle.release()

    def test_pickle_round_trip_reattaches(self):
        from repro.traffic import SharedMemberTable

        members = self.make_members(count=15)
        handle = SharedMemberTable.from_members(members)
        try:
            remote = pickle.loads(pickle.dumps(handle))
            assert len(pickle.dumps(handle)) < 512  # metadata only
            assert remote.members() == members
            remote.close()  # consumer drops its mapping, block survives
            assert handle.members() == members
        finally:
            handle.release()

    def test_rejects_non_generated_population(self):
        from repro.ixp import IxpMember
        from repro.traffic import SharedMemberTable

        custom = IxpMember(
            asn=64500,
            name="experimental-as",
            port_capacity_bps=100e9,
            prefixes=["100.10.10.0/24"],
        )
        with pytest.raises(ValueError, match="population conventions"):
            SharedMemberTable.from_members([custom])

    def test_empty_population_needs_no_block(self):
        from repro.traffic import SharedMemberTable

        handle = SharedMemberTable.from_members([])
        assert handle.shm_name is None
        assert handle.members() == []
        handle.release()

    def test_release_destroys_the_block(self):
        from multiprocessing import shared_memory

        from repro.traffic import SharedMemberTable

        handle = SharedMemberTable.from_members(self.make_members(count=5))
        name = handle.shm_name
        handle.release()
        assert handle.shm_name is None
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        handle.release()  # idempotent
