"""Tests for flow records, packet helpers and traffic profiles."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import make_rng
from repro.traffic import (
    FiveTuple,
    FlowRecord,
    IpProtocol,
    PacketTemplate,
    TrafficProfile,
    WellKnownPort,
    attack_profile,
    benign_web_profile,
    blackholed_traffic_profile,
    distinct_ingress_members,
    other_traffic_profile,
    service_port,
    total_bytes,
    total_rate_bps,
)


def make_flow(
    src_port=123,
    dst_port=40000,
    protocol=IpProtocol.UDP,
    bytes_=1000,
    is_attack=False,
    ingress=65001,
    dst_ip="100.10.10.10",
    start=0.0,
    duration=10.0,
):
    return FlowRecord(
        key=FiveTuple("23.1.2.3", dst_ip, protocol, src_port, dst_port),
        start=start,
        duration=duration,
        bytes=bytes_,
        packets=max(1, bytes_ // 1000),
        ingress_member_asn=ingress,
        egress_member_asn=64500,
        is_attack=is_attack,
    )


class TestIpProtocol:
    def test_from_name(self):
        assert IpProtocol.from_name("udp") is IpProtocol.UDP
        assert IpProtocol.from_name("TCP") is IpProtocol.TCP

    def test_from_name_unknown(self):
        with pytest.raises(ValueError):
            IpProtocol.from_name("quic")

    def test_values_match_iana(self):
        assert int(IpProtocol.TCP) == 6
        assert int(IpProtocol.UDP) == 17
        assert int(IpProtocol.ICMP) == 1


class TestPacketTemplate:
    def test_wire_bytes_include_headers(self):
        template = PacketTemplate(IpProtocol.UDP, 123, 40000, payload_bytes=400)
        assert template.wire_bytes > 400

    def test_minimum_frame_size(self):
        template = PacketTemplate(IpProtocol.UDP, 123, 40000, payload_bytes=1)
        assert template.wire_bytes >= 64

    def test_invalid_port(self):
        with pytest.raises(ValueError):
            PacketTemplate(IpProtocol.UDP, 70000, 0, 100)


class TestFlowRecord:
    def test_accessors(self):
        flow = make_flow()
        assert flow.src_ip == "23.1.2.3"
        assert flow.dst_ip == "100.10.10.10"
        assert flow.src_port == 123
        assert flow.protocol is IpProtocol.UDP
        assert flow.end == 10.0
        assert flow.bits == 8000
        assert flow.rate_bps() == 800.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            make_flow(bytes_=-1)
        with pytest.raises(ValueError):
            FlowRecord(key=make_flow().key, start=0, duration=-1, bytes=1, packets=1)

    def test_five_tuple_reversed(self):
        key = make_flow().key
        reverse = key.reversed()
        assert reverse.src_ip == key.dst_ip
        assert reverse.src_port == key.dst_port

    def test_scaled_halves_bytes(self):
        flow = make_flow(bytes_=1000)
        scaled = flow.scaled(0.5)
        assert scaled.bytes == 500
        assert scaled.packets >= 1

    def test_scaled_zero(self):
        scaled = make_flow(bytes_=1000).scaled(0.0)
        assert scaled.bytes == 0
        assert scaled.packets == 0

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            make_flow().scaled(-0.5)

    def test_overlaps(self):
        flow = make_flow(start=10, duration=10)
        assert flow.overlaps(15, 25)
        assert flow.overlaps(0, 11)
        assert not flow.overlaps(20, 30)
        assert not flow.overlaps(0, 10)

    def test_aggregate_helpers(self):
        flows = [make_flow(bytes_=100, ingress=1), make_flow(bytes_=200, ingress=2)]
        assert total_bytes(flows) == 300
        assert total_rate_bps(flows, interval=10) == 240.0
        assert distinct_ingress_members(flows) == {1, 2}

    def test_total_rate_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            total_rate_bps([], 0)

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=1, max_value=10**9))
    def test_property_scaling_never_exceeds_original(self, factor, size):
        flow = make_flow(bytes_=size)
        assert flow.scaled(factor).bytes <= flow.bytes


class TestServicePort:
    def test_attack_flow_uses_source_port(self):
        assert service_port(make_flow(src_port=11211, dst_port=43210)) == 11211

    def test_web_flow_uses_destination_port(self):
        flow = make_flow(src_port=51000, dst_port=443, protocol=IpProtocol.TCP)
        assert service_port(flow) == 443

    def test_port_zero_is_its_own_class(self):
        assert service_port(make_flow(src_port=0, dst_port=4000)) == 0

    def test_two_ephemeral_ports_take_minimum(self):
        assert service_port(make_flow(src_port=50001, dst_port=60001)) == 50001


class TestProfiles:
    def test_profile_requires_classes(self):
        with pytest.raises(ValueError):
            TrafficProfile(name="empty", shares={})

    def test_profile_rejects_negative_shares(self):
        with pytest.raises(ValueError):
            TrafficProfile(name="bad", shares={(IpProtocol.UDP, 0): -1.0})

    def test_normalised_sums_to_one(self):
        profile = blackholed_traffic_profile()
        assert sum(profile.normalised().values()) == pytest.approx(1.0)

    def test_blackholed_profile_is_udp_dominated(self):
        profile = blackholed_traffic_profile()
        assert profile.share_of_protocol(IpProtocol.UDP) > 0.99
        assert profile.share_of_protocol(IpProtocol.TCP) < 0.001

    def test_blackholed_profile_port_ranking(self):
        profile = blackholed_traffic_profile()
        assert profile.share_of_port(0) > profile.share_of_port(123) > profile.share_of_port(19)

    def test_other_profile_is_tcp_dominated(self):
        profile = other_traffic_profile()
        assert profile.share_of_protocol(IpProtocol.TCP) > 0.75

    def test_benign_web_profile_https_dominant(self):
        profile = benign_web_profile()
        assert profile.share_of_port(int(WellKnownPort.HTTPS)) > 0.4

    def test_attack_profile_single_port(self):
        profile = attack_profile("ntp")
        assert profile.share_of_port(123) == pytest.approx(1.0)

    def test_sample_class_draws_existing_class(self):
        profile = blackholed_traffic_profile()
        rng = make_rng(1)
        for _ in range(50):
            assert profile.sample_class(rng) in profile.shares

    def test_merged_with_weights(self):
        merged = benign_web_profile().merged_with(attack_profile("memcached"), other_weight=0.8)
        assert merged.share_of_port(11211) == pytest.approx(0.8, abs=0.01)

    def test_merged_with_invalid_weight(self):
        with pytest.raises(ValueError):
            benign_web_profile().merged_with(attack_profile("ntp"), 1.5)
