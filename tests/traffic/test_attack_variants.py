"""Determinism and behaviour of the pulse / carpet / multi-vector generators."""

import numpy as np
import pytest

from repro.bgp.prefix import parse_prefix
from repro.traffic import (
    CarpetBombingAttack,
    FlowTable,
    MultiVectorAttack,
    PulseAttack,
    get_vector,
)

PEERS = [65000 + i for i in range(20)]


def tables_equal(a: FlowTable, b: FlowTable) -> bool:
    from repro.traffic.flowtable import COLUMNS

    return len(a) == len(b) and all(
        np.array_equal(getattr(a, name), getattr(b, name)) for name in COLUMNS
    )


def make_pulse(seed=3, **overrides):
    params = dict(
        victim_ip="100.10.10.10",
        victim_member_asn=64500,
        ingress_member_asns=PEERS,
        peak_rate_bps=1e9,
        start=100.0,
        duration=600.0,
        period_seconds=60.0,
        duty_cycle=0.5,
        seed=seed,
    )
    params.update(overrides)
    return PulseAttack(**params)


def make_carpet(seed=3, **overrides):
    params = dict(
        victim_prefix="100.10.10.0/24",
        victim_member_asn=64500,
        ingress_member_asns=PEERS,
        peak_rate_bps=1e9,
        start=100.0,
        duration=600.0,
        seed=seed,
    )
    params.update(overrides)
    return CarpetBombingAttack(**params)


def make_multivector(seed=3, **overrides):
    params = dict(
        victim_ip="100.10.10.10",
        victim_member_asn=64500,
        ingress_member_asns=PEERS,
        peak_rate_bps=1.5e9,
        start=100.0,
        duration=600.0,
        vectors=("ntp", "memcached", "chargen"),
        seed=seed,
    )
    params.update(overrides)
    return MultiVectorAttack(**params)


WINDOWS = [(t, 10.0) for t in (90.0, 100.0, 130.0, 200.0, 460.0, 700.0)]


@pytest.mark.parametrize("factory", [make_pulse, make_carpet, make_multivector])
class TestDeterminism:
    def test_same_seed_identical_tables(self, factory):
        a, b = factory(seed=11), factory(seed=11)
        for start, interval in WINDOWS:
            assert tables_equal(
                a.flow_table(start, interval), b.flow_table(start, interval)
            )

    def test_different_seed_differs(self, factory):
        a, b = factory(seed=11), factory(seed=12)
        different = any(
            not tables_equal(a.flow_table(start, interval), b.flow_table(start, interval))
            for start, interval in WINDOWS
        )
        assert different

    def test_record_view_matches_table(self, factory):
        a, b = factory(seed=11), factory(seed=11)
        table = a.flow_table(130.0, 10.0)
        records = b.flows(130.0, 10.0)
        assert tables_equal(table, FlowTable.from_records(records))

    def test_silent_outside_attack_window(self, factory):
        attack = factory(seed=11)
        assert len(attack.flow_table(0.0, 10.0)) == 0
        assert len(attack.flow_table(1000.0, 10.0)) == 0
        assert attack.rate_at(0.0) == 0.0
        assert attack.rate_at(1000.0) == 0.0


class TestPulseEnvelope:
    def test_rate_alternates_with_duty_cycle(self):
        attack = make_pulse(period_seconds=60.0, duty_cycle=0.5)
        assert attack.rate_at(110.0) == attack.peak_rate_bps  # burst
        assert attack.rate_at(150.0) == 0.0  # gap
        assert attack.rate_at(170.0) == attack.peak_rate_bps  # next burst

    def test_gap_windows_are_empty(self):
        attack = make_pulse(period_seconds=60.0, duty_cycle=0.5)
        # [130, 160) sits fully in the silent half of the first period.
        assert attack.on_seconds(130.0, 160.0) == 0.0
        assert len(attack.flow_table(130.0, 10.0)) == 0

    def test_burst_windows_carry_full_rate(self):
        attack = make_pulse(period_seconds=60.0, duty_cycle=0.5)
        table = attack.flow_table(110.0, 10.0)
        rate = table.total_bits / 10.0
        assert rate == pytest.approx(attack.peak_rate_bps, rel=0.05)

    def test_partial_window_scales_by_on_fraction(self):
        attack = make_pulse(period_seconds=60.0, duty_cycle=0.5)
        # [125, 135): 5 burst seconds, 5 silent seconds.
        table = attack.flow_table(125.0, 10.0)
        rate = table.total_bits / 10.0
        assert rate == pytest.approx(attack.peak_rate_bps / 2, rel=0.05)

    def test_duty_cycle_validation(self):
        with pytest.raises(ValueError):
            make_pulse(duty_cycle=0.0)
        with pytest.raises(ValueError):
            make_pulse(period_seconds=-1.0)


class TestCarpetSpread:
    def test_destinations_spread_inside_prefix(self):
        attack = make_carpet()
        prefix = parse_prefix("100.10.10.0/24")
        low, high = prefix.int_bounds
        tables = [attack.flow_table(t, 10.0) for t in (200.0, 210.0, 220.0)]
        dsts = np.concatenate([table.dst_ip for table in tables])
        assert dsts.min() >= low and dsts.max() <= high
        # Carpet bombing hits many hosts, not one.
        assert len(np.unique(dsts)) > 50

    def test_volume_matches_plain_amplification(self):
        attack = make_carpet()
        table = attack.flow_table(300.0, 10.0)
        assert table.total_bits / 10.0 == pytest.approx(1e9, rel=0.05)

    def test_rejects_non_ipv4_prefix(self):
        with pytest.raises(ValueError):
            make_carpet(victim_prefix="2001:db8::/64")


class TestMultiVector:
    def test_every_vector_present(self):
        attack = make_multivector()
        table = attack.flow_table(300.0, 10.0)
        ports = set(np.unique(table.src_port).tolist())
        expected = tuple(
            get_vector(name).source_port for name in ("ntp", "memcached", "chargen")
        )
        assert set(expected) <= ports
        assert attack.vector_source_ports() == expected

    def test_comma_string_vector_spec(self):
        attack = make_multivector(vectors="ntp, dns")
        assert attack.vectors == ("ntp", "dns")
        assert len(attack.vector_source_ports()) == 2

    def test_shares_split_the_peak_rate(self):
        attack = make_multivector(vector_shares=(2.0, 1.0, 1.0), ramp_seconds=0.0)
        table = attack.flow_table(300.0, 10.0)
        ntp_port = get_vector("ntp").source_port
        ntp_bits = int(table.bits[table.src_port == ntp_port].sum())
        assert ntp_bits / table.total_bits == pytest.approx(0.5, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_multivector(vectors=())
        with pytest.raises(ValueError):
            make_multivector(vector_shares=(1.0,))
        with pytest.raises(ValueError):
            make_multivector(vector_shares=(1.0, -1.0, 1.0))
