"""Documentation checks: code fences must run, internal links must resolve.

The docs promise copy-pasteable commands; these tests keep that promise
honest without executing full experiments:

* every ``python -m repro …`` line in a bash fence is validated against
  the real CLI parser and experiment registry (subcommand, experiment
  name, ``--field`` overrides, ``--grid`` axes);
* every ``python <script>`` / ``pytest <path>`` fence line must point at
  a file that exists;
* every python fence must be syntactically valid;
* every relative markdown link (including ``#anchor`` fragments) must
  resolve to an existing file / heading.

CI runs these in the dedicated docs job next to a live
``python -m repro list`` smoke.
"""

import re
import shlex
from pathlib import Path

import pytest

from repro.__main__ import _parse_grid, _parse_overrides, build_parser
from repro.experiments.registry import get_experiment

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted([REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

FENCE_RE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")


def doc_ids():
    return [str(path.relative_to(REPO_ROOT)) for path in DOC_FILES]


def fences(path: Path, language: str):
    """All fenced code blocks of one language in a markdown file."""
    return [
        block for lang, block in FENCE_RE.findall(path.read_text(encoding="utf-8"))
        if lang == language
    ]


def command_lines(block: str):
    """Logical command lines of a bash fence (continuations joined,
    comments and prompts stripped)."""
    lines = []
    pending = ""
    for raw in block.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("$ "):
            line = line[2:]
        line = pending + line
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        pending = ""
        lines.append(line)
    return lines


def validate_repro_command(tokens, source):
    """Validate a ``python -m repro`` invocation without running it."""
    parser = build_parser()
    try:
        args, extra = parser.parse_known_args(tokens)
        if args.command == "list":
            assert not extra, f"unexpected arguments for list: {extra}"
            return
        spec = get_experiment(args.experiment)
        if args.command == "run":
            _parse_overrides(spec, extra)
        elif args.command == "sweep":
            _parse_grid(spec, args.grid or [])
            _parse_overrides(spec, extra)
    except SystemExit as error:
        pytest.fail(f"{source}: invalid repro command {' '.join(tokens)!r}: {error}")
    except KeyError as error:
        pytest.fail(f"{source}: unknown experiment in {' '.join(tokens)!r}: {error}")


@pytest.mark.parametrize("doc", doc_ids())
class TestCodeFences:
    def test_repro_cli_lines_parse(self, doc):
        path = REPO_ROOT / doc
        checked = 0
        for block in fences(path, "bash"):
            for line in command_lines(block):
                # Strip env-var prefixes and trailing shell pipelines.
                line = line.split("|")[0].strip()
                tokens = shlex.split(line, comments=True)
                while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
                    tokens.pop(0)
                if tokens[:3] != ["python", "-m", "repro"]:
                    continue
                validate_repro_command(tokens[3:], doc)
                checked += 1
        if doc in ("docs/SCENARIOS.md", "docs/REPRODUCING.md"):
            assert checked > 5  # the catalogs really are full of commands

    def test_script_and_pytest_paths_exist(self, doc):
        path = REPO_ROOT / doc
        for block in fences(path, "bash"):
            for line in command_lines(block):
                tokens = shlex.split(line.split("|")[0].strip(), comments=True)
                while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
                    tokens.pop(0)
                if not tokens:
                    continue
                if tokens[0] == "python" and len(tokens) > 1 and tokens[1].endswith(".py"):
                    assert (REPO_ROOT / tokens[1]).is_file(), f"{doc}: missing {tokens[1]}"
                if tokens[0] in ("pytest",) or tokens[:3] == ["python", "-m", "pytest"]:
                    for arg in tokens[1:]:
                        if arg.startswith("-"):
                            continue
                        if arg in ("pytest", "python", "-m"):
                            continue
                        target = REPO_ROOT / arg.rstrip("/")
                        assert target.exists(), f"{doc}: missing pytest target {arg}"

    def test_python_fences_are_valid_syntax(self, doc):
        path = REPO_ROOT / doc
        for index, block in enumerate(fences(path, "python")):
            try:
                compile(block, f"{doc}[python fence {index}]", "exec")
            except SyntaxError as error:
                pytest.fail(f"{doc}: python fence {index} does not parse: {error}")


def github_slug(heading: str) -> str:
    """GitHub's markdown heading → anchor slug (close enough for our docs).

    GitHub keeps underscores in slugs (``paper_scale`` →
    ``paper_scale``), so they must survive here too.
    """
    slug = heading.strip().lower()
    slug = re.sub(r"[`*.,:()§/+]", "", slug)
    slug = slug.replace(" ", "-")
    return re.sub(r"-{2,}", "-", slug).strip("-")


def anchors_of(path: Path):
    text = path.read_text(encoding="utf-8")
    return {
        github_slug(match.group(1))
        for match in re.finditer(r"^#{1,6}\s+(.+)$", text, re.MULTILINE)
    }


@pytest.mark.parametrize("doc", doc_ids())
def test_internal_links_resolve(doc):
    path = REPO_ROOT / doc
    text = path.read_text(encoding="utf-8")
    # Ignore links inside code fences (they are command examples).
    text = FENCE_RE.sub("", text)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            assert resolved.exists(), f"{doc}: broken link {target}"
        else:
            resolved = path
        if anchor:
            assert resolved.suffix == ".md", f"{doc}: anchor on non-markdown {target}"
            assert anchor in anchors_of(resolved), (
                f"{doc}: broken anchor {target} "
                f"(known: {sorted(anchors_of(resolved))})"
            )
