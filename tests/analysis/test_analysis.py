"""Tests for the analysis helpers (stats, collateral, compliance, time series)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    AttackTimeSeries,
    cdf_quantile,
    collateral_damage,
    compliance_from_event,
    compliance_from_service,
    empirical_cdf,
    fine_grained_filter_potential,
    fraction_below,
    linear_regression,
    mean_confidence_interval,
    peer_reduction_fraction,
    policy_control_distribution,
    port_share_timeseries,
    welch_t_test,
)
from repro.bgp import PolicyControl
from repro.mitigation import MitigationOutcome, RtbhService
from repro.traffic import FiveTuple, FlowRecord, IpProtocol, TrafficTrace


def make_flow(src_port=11211, bytes_=1000, is_attack=True, start=0.0, protocol=IpProtocol.UDP,
              dst_port=40000, ingress=65001):
    return FlowRecord(
        key=FiveTuple("23.1.1.1", "100.10.10.10", protocol, src_port, dst_port),
        start=start,
        duration=60.0,
        bytes=bytes_,
        packets=1,
        ingress_member_asn=ingress,
        egress_member_asn=64500,
        is_attack=is_attack,
    )


class TestWelchTest:
    def test_detects_clear_difference(self):
        rng = np.random.default_rng(1)
        high = rng.normal(0.3, 0.02, size=50)
        low = rng.normal(0.01, 0.005, size=50)
        result = welch_t_test(high, low, alpha=0.02)
        assert result.significant
        assert result.p_value < 0.02

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0.1, 0.02, size=50)
        b = rng.normal(0.1, 0.02, size=50)
        assert not welch_t_test(a, b, alpha=0.02).significant

    def test_requires_two_observations(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [1.0, 2.0])

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0, 2.0], [1.0, 2.0], alpha=1.5)

    def test_str_rendering(self):
        result = welch_t_test([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert "p=" in str(result)


class TestConfidenceInterval:
    def test_interval_brackets_mean(self):
        interval = mean_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert interval.lower < interval.mean < interval.upper
        assert interval.mean == 3.0
        assert interval.half_width > 0

    def test_single_observation_collapses(self):
        interval = mean_confidence_interval([2.0])
        assert interval.lower == interval.upper == 2.0

    def test_constant_sample_collapses(self):
        interval = mean_confidence_interval([2.0, 2.0, 2.0])
        assert interval.half_width == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=1.5)


class TestCdfHelpers:
    def test_empirical_cdf_monotone(self):
        values, probabilities = empirical_cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert probabilities[-1] == 1.0
        assert all(np.diff(probabilities) > 0)

    def test_quantile_and_fraction(self):
        sample = list(range(100))
        assert cdf_quantile(sample, 0.95) == pytest.approx(94.05)
        assert fraction_below(sample, 49) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])
        with pytest.raises(ValueError):
            cdf_quantile([], 0.5)
        with pytest.raises(ValueError):
            fraction_below([], 1.0)

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            cdf_quantile([1.0], 1.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_property_cdf_bounds(self, sample):
        values, probabilities = empirical_cdf(sample)
        assert probabilities[0] > 0
        assert probabilities[-1] == pytest.approx(1.0)


class TestLinearRegression:
    def test_recovers_known_line(self):
        x = np.linspace(0, 10, 50)
        y = 2.0 + 3.0 * x
        fit = linear_regression(x, y)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.predict(4.0) == pytest.approx(14.0)
        assert fit.solve_for_x(14.0) == pytest.approx(4.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            linear_regression([1.0], [1.0, 2.0])

    def test_solve_for_x_zero_slope(self):
        fit = linear_regression([1.0, 2.0, 3.0], [5.0, 5.0, 5.0])
        with pytest.raises(ZeroDivisionError):
            fit.solve_for_x(6.0)


class TestCollateralAnalysis:
    def test_collateral_damage_report(self):
        outcome = MitigationOutcome(
            delivered=[make_flow(is_attack=True, bytes_=100)],
            discarded=[
                make_flow(is_attack=False, bytes_=50),
                make_flow(is_attack=True, bytes_=300),
            ],
        )
        report = collateral_damage(outcome)
        assert report.collateral_damage_fraction == 1.0
        assert report.attack_removed_fraction == pytest.approx(0.75)
        assert report.residual_attack_bits == pytest.approx(100 * 8)

    def test_empty_outcome(self):
        report = collateral_damage(MitigationOutcome())
        assert report.collateral_damage_fraction == 0.0
        assert report.attack_removed_fraction == 0.0

    def test_fine_grained_filter_potential(self):
        flows = [
            make_flow(src_port=11211, is_attack=True, bytes_=900),
            make_flow(src_port=443, is_attack=False, bytes_=100, protocol=IpProtocol.TCP),
        ]
        potential = fine_grained_filter_potential(flows, IpProtocol.UDP, 11211)
        assert potential["attack_removed_fraction"] == 1.0
        assert potential["legitimate_removed_fraction"] == 0.0

    def test_port_share_timeseries(self):
        trace = TrafficTrace(
            [
                make_flow(src_port=443, protocol=IpProtocol.TCP, is_attack=False, start=0.0),
                make_flow(src_port=11211, start=60.0, bytes_=9000),
            ]
        )
        snapshots = port_share_timeseries(trace, interval=60.0, top_ports=(443, 11211))
        assert snapshots[0].share_of(443) == pytest.approx(1.0)
        assert snapshots[1].share_of(11211) == pytest.approx(1.0)

    def test_port_share_timeseries_invalid_interval(self):
        with pytest.raises(ValueError):
            port_share_timeseries(TrafficTrace(), 0.0, ())


class TestComplianceAnalysis:
    def test_policy_control_distribution(self):
        controls = [PolicyControl()] * 9 + [PolicyControl(except_asns=frozenset({1}))]
        distribution = policy_control_distribution(controls)
        assert distribution.total == 10
        assert distribution.share_of("All") == pytest.approx(0.9)
        assert distribution.share_of("All-1") == pytest.approx(0.1)
        assert distribution.share_of("missing") == 0.0

    def test_category_ordering(self):
        controls = [
            PolicyControl(),
            PolicyControl(except_asns=frozenset({1})),
            PolicyControl(except_asns=frozenset({1, 2, 3, 4, 5})),
            PolicyControl(announce_to_all=False, only_asns=frozenset(range(20))),
        ]
        ordered = policy_control_distribution(controls).categories_sorted()
        assert ordered == ["All-5", "All-1", "All", "20"]

    def test_compliance_from_service(self):
        service = RtbhService(
            ixp_asn=1, member_compliance={1: True, 2: False, 3: False}, compliance_rate=0.0
        )
        summary = compliance_from_service(service, [1, 2, 3])
        assert summary.compliance_rate == pytest.approx(1 / 3)
        assert summary.non_compliance_rate == pytest.approx(2 / 3)

    def test_compliance_from_event(self):
        service = RtbhService(ixp_asn=1, member_compliance={1: True, 2: False}, compliance_rate=0.0)
        event = service.request_blackhole(99, "1.2.3.4/32", peer_asns=[1, 2])
        summary = compliance_from_event(event, [1, 2])
        assert summary.honoring_peers == 1
        assert summary.total_peers == 2

    def test_peer_reduction(self):
        assert peer_reduction_fraction(40, 30) == pytest.approx(0.25)
        assert peer_reduction_fraction(0, 10) == 0.0
        assert peer_reduction_fraction(10, 20) == 0.0


class TestAttackTimeSeries:
    def _series(self):
        series = AttackTimeSeries()
        series.record(0.0, delivered_mbps=10.0, peer_count=2)
        series.record(10.0, delivered_mbps=1000.0, peer_count=40, attack_delivered_mbps=990.0)
        series.record(20.0, delivered_mbps=700.0, peer_count=30, extra_metric=1.0)
        return series

    def test_record_and_query(self):
        series = self._series()
        assert len(series) == 3
        assert series.peak_mbps() == 1000.0
        assert series.value_at(15.0) == 1000.0
        assert series.peers_at(25.0) == 30
        assert series.value_at(-5.0) == 10.0

    def test_monotonic_time_required(self):
        series = self._series()
        with pytest.raises(ValueError):
            series.record(5.0, delivered_mbps=1.0, peer_count=1)

    def test_window_and_means(self):
        series = self._series()
        window = series.window(5.0, 25.0)
        assert len(window) == 2
        assert series.mean_mbps(10.0, 30.0) == pytest.approx(850.0)
        assert series.mean_peers(10.0, 30.0) == pytest.approx(35.0)
        assert series.max_peers() == 40

    def test_empty_series_behaviour(self):
        series = AttackTimeSeries()
        assert series.peak_mbps() == 0.0
        assert series.mean_mbps(0, 10) == 0.0
        with pytest.raises(ValueError):
            series.value_at(1.0)

    def test_extra_series_preserved_in_window(self):
        series = self._series()
        window = series.window(15.0, 25.0)
        assert window.extra["extra_metric"] == [1.0]
