"""CLI smoke tests: ``python -m repro.lint`` end to end over fixtures."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_cli(*args: str, cwd: Path | None = None):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(cwd or REPO_ROOT),
    )


def test_json_on_known_bad_fixture(lint_tree):
    root = lint_tree("rpl001_bad.py", "rpl002_bad.py")
    result = run_cli("--json", "--root", str(root), str(root / "src"))
    assert result.returncode == 1, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    rules = {finding["rule"] for finding in payload["findings"]}
    assert {"RPL001", "RPL002"} <= rules
    assert payload["ok"] is False


def test_baseline_write_then_apply_passes(lint_tree):
    root = lint_tree("rpl006_bad.py")
    wrote = run_cli("--baseline", "write", "--root", str(root), str(root / "src"))
    assert wrote.returncode == 0, wrote.stdout + wrote.stderr
    assert (root / "lint-baseline.json").exists()
    replay = run_cli("--root", str(root), str(root / "src"))
    assert replay.returncode == 0, replay.stdout + replay.stderr
    assert "0 finding(s)" in replay.stdout
    assert "baselined" in replay.stdout


def test_stale_baseline_fails_run(lint_tree):
    root = lint_tree("rpl006_bad.py")
    run_cli("--baseline", "write", "--root", str(root), str(root / "src"))
    # Fix the file: the baseline is now stale and must shrink.
    bad = root / "src/repro/ixp/rpl006_bad.py"
    bad.write_text("def fixed():\n    return 0\n")
    replay = run_cli("--root", str(root), str(root / "src"))
    assert replay.returncode == 1
    assert "stale entry" in replay.stdout


def test_unparseable_file_exits_2(tmp_path):
    (tmp_path / "pyproject.toml").write_text("")
    broken = tmp_path / "src" / "repro" / "ixp" / "broken.py"
    broken.parent.mkdir(parents=True)
    broken.write_text("def broken(:\n")
    result = run_cli("--root", str(tmp_path), str(tmp_path / "src"))
    assert result.returncode == 2
    assert "error" in result.stdout


def test_list_rules():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    for rule_id in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006"):
        assert rule_id in result.stdout
