"""Engine-level tests: pragmas, baseline round-trip, reporters."""

from __future__ import annotations

import json

from repro.lint import (
    Finding,
    apply_baseline,
    format_json,
    format_text,
    load_baseline,
    write_baseline,
)


# ----------------------------------------------------------------------
# Pragma suppression (the fixture holds real violations of two rules)
# ----------------------------------------------------------------------
def test_pragmas_suppress_exactly_the_marked_lines(lint_tree, lint_run):
    root = lint_tree("pragmas.py")
    report = lint_run(root)
    # Of the four RPL001 violations, only the unmarked one survives.
    rpl001 = [f for f in report.new_findings if f.rule == "RPL001"]
    assert len(rpl001) == 1
    assert "not_suppressed" in root.joinpath("src").rglob("*.py").__next__().read_text()
    assert rpl001[0].snippet == "return time.time()"
    # The file-level pragma kills every RPL004 finding.
    assert not [f for f in report.new_findings if f.rule == "RPL004"]


def test_inline_pragma_forms(lint_tree, lint_run):
    root = lint_tree("pragmas.py")
    suppressed_snippets = {
        "return time.time()  # repro-lint: disable=RPL001",
        "return np.random.default_rng()",
        "return time.time()  # repro-lint: disable=all",
    }
    report = lint_run(root)
    surviving = {f.snippet for f in report.new_findings}
    assert not (surviving & suppressed_snippets)


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def test_baseline_round_trip(lint_tree, lint_run, tmp_path):
    root = lint_tree("rpl001_bad.py", "rpl006_bad.py")
    report = lint_run(root)
    assert report.new_findings
    baseline_file = root / "lint-baseline.json"
    write_baseline(report.findings, baseline_file)
    entries = load_baseline(baseline_file)
    # With the baseline applied, every finding is absorbed: CI passes.
    replay = lint_run(root, baseline_entries=entries)
    assert replay.new_findings == []
    assert len(replay.baselined) == len(report.findings)
    assert replay.stale_entries == []
    assert replay.ok


def test_baseline_matches_by_snippet_not_line(lint_tree, lint_run):
    root = lint_tree("rpl006_bad.py")
    report = lint_run(root)
    entries = [
        {"rule": f.rule, "path": f.path, "snippet": f.snippet, "count": 1}
        for f in report.findings
    ]
    # Shift the whole file down: line numbers change, fingerprints don't.
    target = root / "src/repro/ixp/rpl006_bad.py"
    target.write_text("# a new leading comment\n" + target.read_text())
    replay = lint_run(root, baseline_entries=entries)
    assert replay.new_findings == []
    assert replay.stale_entries == []


def test_stale_baseline_entries_fail_the_run(lint_tree, lint_run):
    root = lint_tree("rpl001_good.py")
    entries = [
        {
            "rule": "RPL001",
            "path": "src/repro/traffic/rpl001_good.py",
            "snippet": "gone = time.time()",
            "count": 2,
        }
    ]
    report = lint_run(root, baseline_entries=entries)
    assert report.new_findings == []
    assert len(report.stale_entries) == 1
    assert report.stale_entries[0]["unmatched"] == 2
    assert not report.ok


def test_baseline_count_bounds_absorption():
    finding = Finding(
        path="src/x.py", line=3, col=1, rule="RPL006",
        message="m", snippet="total_bits += x",
    )
    twin = Finding(
        path="src/x.py", line=9, col=1, rule="RPL006",
        message="m", snippet="total_bits += x",
    )
    entries = [
        {"rule": "RPL006", "path": "src/x.py", "snippet": "total_bits += x", "count": 1}
    ]
    new, baselined, stale = apply_baseline([finding, twin], entries)
    assert len(baselined) == 1 and len(new) == 1 and stale == []


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == []


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def test_reporters(lint_tree, lint_run):
    root = lint_tree("rpl001_bad.py")
    report = lint_run(root)
    text = format_text(report)
    assert "RPL001" in text and "checked 1 files" in text
    payload = json.loads(format_json(report))
    assert payload["ok"] is False
    assert payload["checked_files"] == 1
    rules = {entry["rule"] for entry in payload["findings"]}
    assert "RPL001" in rules
    for entry in payload["findings"]:
        assert set(entry) == {"rule", "path", "line", "col", "message", "snippet"}
