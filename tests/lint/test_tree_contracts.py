"""The real tree must satisfy every static contract (the CI gate, as a test).

This is also the regression lock for the forward fixes this layer drove:
the RPL006 float-accounting rewrites in ``ixp/qos.py``,
``ixp/fabric.py`` and ``ixp/delivery.py`` (running ``+=`` replaced by
collect-terms + one ordered reduction).  Re-introducing any such pattern
turns up here as a non-baselined finding.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import BASELINE_NAME, default_rules, load_baseline, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_is_clean_against_baseline():
    entries = load_baseline(REPO_ROOT / BASELINE_NAME)
    report = run_lint(
        [REPO_ROOT / "src" / "repro"], default_rules(), REPO_ROOT,
        baseline_entries=entries,
    )
    assert report.errors == []
    assert report.new_findings == [], [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in report.new_findings
    ]
    assert report.stale_entries == [], report.stale_entries


def test_baseline_is_empty_and_may_only_shrink():
    # The tree currently carries zero lint debt.  If you are reading this
    # because the assert fired: fix the finding, don't grow the baseline.
    entries = load_baseline(REPO_ROOT / BASELINE_NAME)
    assert entries == []


def test_float_accounting_fix_sites_stay_fixed():
    # The exact seams the RPL006 forward fixes rewrote: platform totals
    # and shaper accounting reduce once, after their loops.
    for rel in ("src/repro/ixp/fabric.py", "src/repro/ixp/delivery.py"):
        source = (REPO_ROOT / rel).read_text()
        assert "report.offered_bits +=" not in source, rel
        assert "float(sum(offered_terms))" in source, rel
    qos = (REPO_ROOT / "src/repro/ixp/qos.py").read_text()
    assert "shaped_passed +=" not in qos
    assert "float(sum(passed_terms))" in qos
