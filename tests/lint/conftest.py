"""Shared helpers for the repro-lint test suite.

Fixture files live in ``tests/lint/fixtures/``; tests copy them into a
synthetic repo tree under ``tmp_path`` (so rule path scopes apply) and
run the engine over it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import default_rules, run_lint

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file → destination inside the synthetic repo, chosen so the
#: rule under test is in scope for the file.
DESTINATIONS = {
    "rpl001_bad.py": "src/repro/traffic/rpl001_bad.py",
    "rpl001_good.py": "src/repro/traffic/rpl001_good.py",
    "rpl002_bad.py": "src/repro/ixp/rpl002_bad.py",
    "rpl002_good.py": "src/repro/ixp/rpl002_good.py",
    "rpl003_bad.py": "src/repro/traffic/rpl003_bad.py",
    "rpl003_good.py": "src/repro/traffic/rpl003_good.py",
    "rpl004_bad.py": "src/repro/mitigation/rpl004_bad.py",
    "rpl004_good.py": "src/repro/mitigation/rpl004_good.py",
    "rpl005_bad.py": "src/repro/experiments/rpl005_bad.py",
    "rpl005_good.py": "src/repro/experiments/rpl005_good.py",
    "rpl006_bad.py": "src/repro/ixp/rpl006_bad.py",
    "rpl006_good.py": "src/repro/ixp/rpl006_good.py",
    # Both RPL001 (ixp/) and RPL004 (ixp/delivery.py) apply here, so the
    # pragma fixture can prove suppression of two different rules.
    "pragmas.py": "src/repro/ixp/delivery.py",
}


@pytest.fixture
def lint_tree(tmp_path):
    """Build a synthetic repo from fixture names; returns a runner."""

    def build(*names: str):
        (tmp_path / "pyproject.toml").write_text("")
        for name in names:
            dest = tmp_path / DESTINATIONS[name]
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text((FIXTURES / name).read_text())
        return tmp_path

    return build


@pytest.fixture
def lint_run():
    """Run the default rules over a synthetic repo's ``src`` tree."""

    def run(root: Path, baseline_entries=None):
        return run_lint(
            [root / "src"], default_rules(), root, baseline_entries=baseline_entries
        )

    return run
