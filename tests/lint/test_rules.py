"""One positive and one negative case per repro-lint rule."""

from __future__ import annotations

import pytest


def _rules_hit(report):
    return {finding.rule for finding in report.new_findings}


@pytest.mark.parametrize(
    "rule_id, bad, good, expected_min",
    [
        ("RPL001", "rpl001_bad.py", "rpl001_good.py", 5),
        ("RPL002", "rpl002_bad.py", "rpl002_good.py", 3),
        ("RPL003", "rpl003_bad.py", "rpl003_good.py", 2),
        ("RPL004", "rpl004_bad.py", "rpl004_good.py", 3),
        ("RPL005", "rpl005_bad.py", "rpl005_good.py", 3),
        ("RPL006", "rpl006_bad.py", "rpl006_good.py", 2),
    ],
)
def test_rule_positive_and_negative(lint_tree, lint_run, rule_id, bad, good, expected_min):
    root = lint_tree(bad, good)
    report = lint_run(root)
    by_rule = [f for f in report.new_findings if f.rule == rule_id]
    assert len(by_rule) >= expected_min, report.new_findings
    # Every finding of the rule under test is in the bad fixture …
    assert all(bad.rsplit("/")[-1] in f.path for f in by_rule), by_rule
    # … and the good fixture is completely clean (for every rule).
    good_findings = [f for f in report.new_findings if good in f.path]
    assert good_findings == []


def test_rpl001_identifies_each_source_kind(lint_tree, lint_run):
    root = lint_tree("rpl001_bad.py")
    messages = [f.message for f in lint_run(root).new_findings]
    assert any("unseeded" in m for m in messages)
    assert any("legacy global-state" in m for m in messages)
    assert any("wall-clock" in m for m in messages)
    assert any("stdlib `random" in m for m in messages)


def test_rpl002_names_the_offending_method(lint_tree, lint_run):
    root = lint_tree("rpl002_bad.py")
    messages = [f.message for f in lint_run(root).new_findings]
    assert any("sneaky_replace" in m for m in messages)
    assert any("sneaky_pop" in m for m in messages)
    # The change journal is a rule container: an append outside a bumping
    # path desynchronises the deltas compiled_index() replays.
    assert any("sneaky_journal" in m for m in messages)


def test_rpl005_flags_each_callable_shape(lint_tree, lint_run):
    root = lint_tree("rpl005_bad.py")
    messages = [f.message for f in lint_run(root).new_findings]
    assert any("lambda" in m for m in messages)
    assert any("locally-defined function `chunk`" in m for m in messages)
    assert any("bound method `self.step`" in m for m in messages)


def test_findings_carry_location_and_snippet(lint_tree, lint_run):
    root = lint_tree("rpl006_bad.py")
    report = lint_run(root)
    finding = next(f for f in report.new_findings if f.rule == "RPL006")
    assert finding.path.endswith("rpl006_bad.py")
    assert finding.line > 0 and finding.col > 0
    assert "+=" in finding.snippet
