"""RPL003 negative fixture: the sanctioned shared-memory lifecycles."""

from multiprocessing import shared_memory

from repro.traffic.sharedtable import SharedFlowTable


def finally_release(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        return bytes(shm.buf[:4])
    finally:
        shm.close()
        shm.unlink()


def transfer_ownership(table):
    return SharedFlowTable.from_table(table, transfer=True)


def hand_to_caller(table):
    handle = SharedFlowTable.from_table(table)
    return handle


class Holder:
    def __init__(self):
        self._shm = None

    def attach(self, name):
        self._shm = shared_memory.SharedMemory(name=name)

    def close(self):
        if self._shm is not None:
            self._shm.close()
            self._shm = None
