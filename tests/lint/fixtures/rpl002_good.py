"""RPL002 negative fixture: every mutation path bumps (or is a helper
whose callers all bump) — the real PortQosPolicy shape."""


class PortQosPolicy:
    def __init__(self):
        self._rules = []
        self._sorted_rules = []
        self._journal = []
        self._version = 0

    def _resort(self):
        self._sorted_rules = sorted(self._rules, key=repr)
        self._version += 1
        self._journal = []

    def _bump(self):
        self._version += 1

    def _attach(self, rule):
        # Helper: mutates without bumping, but every caller resorts.
        self._rules.append(rule)

    def _record(self, deltas):
        # Delta-journal helper: appends without bumping, but every caller
        # bumps before journalling (the incremental-compile pattern).
        self._journal.append((self._version, tuple(deltas)))
        while len(self._journal) > 4:
            del self._journal[0]

    def install(self, rule):
        self._attach(rule)
        self._sorted_rules.append(rule)
        self._bump()
        self._record([("install", rule)])

    def install_many(self, rules):
        for rule in rules:
            self._attach(rule)
        self._resort()

    def remove(self, rule_id):
        remaining = [rule for rule in self._rules if rule != rule_id]
        if len(remaining) == len(self._rules):
            return False
        self._rules = remaining
        self._bump()
        self._record([("remove", rule_id)])
        return True

    def clear(self):
        if not self._rules:
            return
        self._rules.clear()
        self._sorted_rules.clear()
        self._version += 1
        self._journal = []
