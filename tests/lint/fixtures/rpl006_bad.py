"""RPL006 positive fixture: bare float bit accounting inside loops."""


def platform_totals(results):
    delivered_bits = 0.0
    for result in results:
        delivered_bits += result.delivered_bits  # running float error
    return delivered_bits


def offered(windows):
    total = 0.0
    for window in windows:
        total += window.offered_bits  # value mentions bits: still a counter
    return total
