"""RPL002 positive fixture: rule mutations that skip the version bump."""


class PortQosPolicy:
    def __init__(self):
        self._rules = []
        self._sorted_rules = []
        self._journal = []
        self._version = 0

    def _resort(self):
        self._sorted_rules = sorted(self._rules, key=repr)
        self._version += 1
        self._journal = []

    def install(self, rule):
        self._rules.append(rule)
        self._resort()

    def sneaky_replace(self, rules):
        # Mutation with no bump: the compiled index cache goes stale.
        self._rules = list(rules)

    def sneaky_pop(self):
        # Same bug through a list mutator call.
        self._rules.pop()

    def sneaky_journal(self, delta):
        # Journal append without a bump: compiled_index() will replay a
        # delta the version counter never acknowledged.
        self._journal.append((self._version, (delta,)))
