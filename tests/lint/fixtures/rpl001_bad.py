"""RPL001 positive fixture: every banned randomness/time source."""

import random
import time
from datetime import datetime

import numpy as np


def draw_interval():
    rng = np.random.default_rng()  # unseeded: OS entropy
    np.random.seed(7)  # legacy global state
    started = time.time()  # wall clock
    stamp = datetime.now()  # wall-clock date
    jitter = random.randint(0, 3)  # stdlib hidden global RNG
    return rng, started, stamp, jitter
