"""RPL001 negative fixture: the sanctioned randomness sources."""

import numpy as np

from repro.sim import rng as simrng


def draw_interval(seed):
    rng = simrng.make_rng(seed)
    explicit = np.random.default_rng(seed)
    sequence = np.random.SeedSequence([seed, 1])
    child = np.random.default_rng(sequence)
    return rng.normal(size=4), explicit.integers(0, 10), child
