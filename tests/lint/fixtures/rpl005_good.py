"""RPL005 negative fixture: module-level entry points only."""

from concurrent.futures import ProcessPoolExecutor


def work(item):
    return item + 1


def run(items, fn):
    pool = ProcessPoolExecutor(max_workers=2)
    futures = [pool.submit(work, item) for item in items]
    # A callable received as a parameter is the caller's contract to keep
    # module-level (documented in experiments.parallel); not flagged.
    futures.append(pool.submit(fn, items[0]))
    return futures
