"""RPL006 negative fixture: the sanctioned accumulation shapes."""

import math


def platform_totals(results):
    # Collect terms, reduce once: order explicit, no running error.
    return float(sum(result.delivered_bits for result in results))


def exact_totals(results):
    terms = [result.delivered_bits for result in results]
    return math.fsum(terms)


def integer_packets(results):
    total_bytes = 0
    for result in results:
        total_bytes += int(result.delivered_bytes)  # integer accumulation
    return total_bytes


def _apply_records(flows):
    # The per-record shim is the sanctioned slow path.
    forwarded_bits = 0.0
    for flow in flows:
        forwarded_bits += flow.bits
    return forwarded_bits
