"""Pragma fixture: every suppression form, over real RPL001 violations."""
# repro-lint: disable-file=RPL004

import time

import numpy as np


def suppressed_inline():
    return time.time()  # repro-lint: disable=RPL001


def suppressed_comment_above():
    # repro-lint: disable=RPL001
    return np.random.default_rng()


def suppressed_all():
    return time.time()  # repro-lint: disable=all


def not_suppressed():
    return time.time()


def file_pragma_covers_other_rule(table):
    for bits in table.bits:  # RPL004, disabled file-wide above
        return bits
