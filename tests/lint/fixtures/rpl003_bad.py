"""RPL003 positive fixture: shared-memory creations with no release path."""

from multiprocessing import shared_memory

from repro.traffic.sharedtable import SharedFlowTable


def leak_block(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    return shm.name  # only the *name* escapes; the handle leaks


def leak_handle(table):
    handle = SharedFlowTable.from_table(table)
    return handle.nbytes  # no transfer, no close/unlink, handle dropped
