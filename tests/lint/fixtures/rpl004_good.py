"""RPL004 negative fixture: vectorized access and the record-shim slow path."""

import numpy as np


def fast_bits_total(table):
    return float(table.bits.sum())


def fast_port_mask(table, port):
    return np.flatnonzero(table.dst_port == port)


def apply_records(table):
    # Functions with `record` in the name are the sanctioned slow path.
    return [flow for flow in table.to_records()]


def per_rule_pass(rules, table):
    # Looping over *rules* is fine; only per-row iteration is banned.
    masks = []
    for rule in rules:
        masks.append(rule.match_mask(table))
    return masks
