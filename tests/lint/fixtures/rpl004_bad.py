"""RPL004 positive fixture: per-row Python loops in data-plane code."""


def slow_bits_total(table):
    total = []
    for bits in table.bits:  # row-by-row walk of a column
        total.append(bits)
    return total


def slow_port_pairs(table):
    return [pair for pair in zip(table.src_port, table.dst_port)]


def slow_materialise(table):
    seen = []
    for flow in table.to_records():  # materialises every row
        seen.append(flow)
    return seen
