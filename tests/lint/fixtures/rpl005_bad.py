"""RPL005 positive fixture: non-picklable callables into spawn pools."""

from concurrent.futures import ProcessPoolExecutor


class Driver:
    def run(self, items):
        pool = ProcessPoolExecutor(max_workers=2)

        def chunk(item):  # closure: does not pickle by reference
            return item + 1

        futures = [pool.submit(lambda item: item, item) for item in items]
        futures.append(pool.submit(chunk, items[0]))
        futures.append(pool.submit(self.step, items[0]))  # bound method
        return futures

    def step(self, item):
        return item
