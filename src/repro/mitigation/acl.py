"""Router ACL filter baseline.

ISPs and IXP members deploy policy-based ACL filters at their own border
routers to drop unwanted traffic (§1.1).  Two properties distinguish ACLs
from IXP-side Advanced Blackholing in the model:

* the filter sits at the *victim's* border router, i.e. **after** the
  member's IXP port — so even perfectly matching filters do not relieve
  the congested port (the traffic has already consumed the port capacity),
* the number of ACL entries a border router can hold is limited, and the
  filters must be configured manually per device, which is what the
  "limited scalability / demand for customization" drawback captures.

The data plane is columnar: ``AclMitigation.apply_table`` evaluates the
ordered entry list as one vectorized mask per entry (first match wins,
implicit permit at the end), with the per-flow ``evaluate`` loop kept as
the ``apply_records`` compatibility shim.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..bgp.prefix import Prefix, parse_prefix
from ..traffic.flow import FlowRecord
from ..traffic.flowtable import FlowTable
from ..traffic.packet import IpProtocol
from .base import (
    Dimension,
    MitigationOutcome,
    MitigationTechnique,
    Rating,
    match_mask,
)


@dataclass(frozen=True)
class AclEntry:
    """One access-control-list entry (permit or deny)."""

    action: str  # "permit" | "deny"
    dst_prefix: Optional[Prefix] = None
    src_prefix: Optional[Prefix] = None
    protocol: Optional[IpProtocol] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ("permit", "deny"):
            raise ValueError(f"action must be 'permit' or 'deny', got {self.action!r}")
        for name in ("src_port", "dst_port"):
            port = getattr(self, name)
            if port is not None and not 0 <= port <= 65535:
                raise ValueError(f"{name} must be a valid L4 port, got {port}")

    def matches(self, flow: FlowRecord) -> bool:
        if self.dst_prefix is not None and not self.dst_prefix.contains_address(flow.dst_ip):
            return False
        if self.src_prefix is not None and not self.src_prefix.contains_address(flow.src_ip):
            return False
        if self.protocol is not None and flow.protocol != self.protocol:
            return False
        if self.src_port is not None and flow.src_port != self.src_port:
            return False
        if self.dst_port is not None and flow.dst_port != self.dst_port:
            return False
        return True

    def matches_table(self, table: FlowTable) -> np.ndarray:
        """Vectorized :meth:`matches` over a columnar flow batch."""
        return match_mask(
            table,
            dst_prefix=self.dst_prefix,
            src_prefix=self.src_prefix,
            protocol=None if self.protocol is None else int(self.protocol),
            src_port=self.src_port,
            dst_port=self.dst_port,
        )


class AccessControlList:
    """An ordered ACL with a hardware entry limit (first match wins)."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: list[AclEntry] = []

    def add(self, entry: AclEntry) -> None:
        if len(self._entries) >= self.max_entries:
            raise RuntimeError(
                f"ACL is full ({self.max_entries} entries); cannot add more"
            )
        self._entries.append(entry)

    def deny(self, dst_prefix: "str | Prefix", **criteria) -> AclEntry:
        """Convenience helper: append a deny entry for ``dst_prefix``."""
        entry = AclEntry(action="deny", dst_prefix=parse_prefix(dst_prefix), **criteria)
        self.add(entry)
        return entry

    def entries(self) -> list[AclEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def evaluate(self, flow: FlowRecord) -> str:
        """Return "permit" or "deny" for a flow (implicit permit at the end)."""
        for entry in self._entries:
            if entry.matches(flow):
                return entry.action
        return "permit"

    def deny_mask(self, table: FlowTable) -> np.ndarray:
        """Vectorized :meth:`evaluate`: the rows the ACL denies.

        First match wins per row; rows no entry matches fall through to the
        implicit permit.
        """
        denied = np.zeros(len(table), dtype=bool)
        unmatched = np.ones(len(table), dtype=bool)
        for entry in self._entries:
            if not unmatched.any():
                break
            matched = unmatched & entry.matches_table(table)
            if entry.action == "deny":
                denied |= matched
            unmatched &= ~matched
        return denied


class AclMitigation(MitigationTechnique):
    """ACL filtering at the victim's border router.

    ``filters_after_port`` reflects where the ACL sits: when True (the
    realistic default), dropped traffic has still crossed the victim's IXP
    port and therefore still contributes to port congestion upstream of the
    filter; the outcome reports it as discarded nonetheless, and the
    experiment drivers account for the port bottleneck separately.
    """

    name = "ACL filters"
    ratings = {
        Dimension.GRANULARITY: Rating.ADVANTAGE,
        Dimension.SIGNALING_COMPLEXITY: Rating.DISADVANTAGE,
        Dimension.COOPERATION: Rating.NEUTRAL,
        Dimension.RESOURCE_SHARING: Rating.ADVANTAGE,
        Dimension.TELEMETRY: Rating.DISADVANTAGE,
        Dimension.SCALABILITY: Rating.NEUTRAL,
        Dimension.RESOURCES: Rating.DISADVANTAGE,
        Dimension.PERFORMANCE: Rating.ADVANTAGE,
        Dimension.REACTION_TIME: Rating.DISADVANTAGE,
        Dimension.COSTS: Rating.NEUTRAL,
    }

    def __init__(
        self, acl: Optional[AccessControlList] = None, filters_after_port: bool = True
    ) -> None:
        self.acl = acl if acl is not None else AccessControlList()
        self.filters_after_port = filters_after_port

    def apply_table(self, table: FlowTable, interval: float) -> MitigationOutcome:
        """Vectorized ACL evaluation: one ordered mask pass over the table."""
        denied = self.acl.deny_mask(table)
        return MitigationOutcome(
            delivered_table=table.select(~denied),
            discarded_table=table.select(denied),
        )

    def apply_records(
        self, flows: Sequence[FlowRecord], interval: float
    ) -> MitigationOutcome:
        outcome = MitigationOutcome()
        for flow in flows:
            if self.acl.evaluate(flow) == "deny":
                outcome.discarded.append(flow)
            else:
                outcome.delivered.append(flow)
        return outcome
