"""Mitigation baselines: RTBH, ACL filters, Flowspec, scrubbing, comparison."""

from .acl import AccessControlList, AclEntry, AclMitigation
from .base import (
    Dimension,
    MitigationOutcome,
    MitigationTechnique,
    NoMitigation,
    Rating,
)
from .combined import CombinedMitigation, CombinedOutcome, scrubbing_cost_saving
from .comparison import (
    PAPER_TABLE_1,
    TECHNIQUE_ORDER,
    ComparisonTable,
    build_comparison_table,
)
from .flowspec import FlowspecMitigation, FlowspecService, InstalledFlowspecRule
from .rtbh import BlackholeEvent, RtbhMitigation, RtbhService
from .scrubbing import ScrubbingCenter, ScrubbingMitigation

__all__ = [
    "CombinedMitigation",
    "CombinedOutcome",
    "scrubbing_cost_saving",
    "AccessControlList",
    "AclEntry",
    "AclMitigation",
    "Dimension",
    "MitigationOutcome",
    "MitigationTechnique",
    "NoMitigation",
    "Rating",
    "PAPER_TABLE_1",
    "TECHNIQUE_ORDER",
    "ComparisonTable",
    "build_comparison_table",
    "FlowspecMitigation",
    "FlowspecService",
    "InstalledFlowspecRule",
    "BlackholeEvent",
    "RtbhMitigation",
    "RtbhService",
    "ScrubbingCenter",
    "ScrubbingMitigation",
]
