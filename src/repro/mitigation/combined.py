"""Combining Advanced Blackholing with a traffic scrubbing service (paper §6).

The discussion section argues that Advanced Blackholing composes well with
scrubbing: attacks with a known L2–L4 signature are dropped at the IXP for
free, and only the remaining (unclassified) traffic — optionally capped to a
bounded sample — is diverted to the expensive scrubbing centre.  This both
reduces the scrubbing bill and frees scrubbing capacity for deep packet
inspection of unknown attacks.

:class:`CombinedMitigation` implements that pipeline:

1. a set of blackholing rules (pre-filters) is applied first — matching
   traffic is discarded (or shaped) at the IXP at no cost,
2. what remains is handed to a :class:`~repro.mitigation.scrubbing.ScrubbingMitigation`
   instance, whose per-gigabyte cost is accounted,
3. the result reports both the traffic outcome and the scrubbing cost, so
   the cost-saving claim of §6 can be quantified against scrubbing alone.

The pipeline is columnar end to end: pre-filter rules are resolved as
vectorized masks (most specific rule wins per row), the bounded shaping of
a sampled residue is a per-row factor vector, and the remainder is handed
to the scrubber as one :class:`~repro.traffic.flowtable.FlowTable` — in
the same row order the per-record path scrubs in, so both paths draw the
same classification verdicts per seed.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..core.rules import BlackholingRule, RuleAction
from ..traffic.flow import FlowRecord
from ..traffic.flowtable import FlowTable
from .base import Dimension, MitigationOutcome, MitigationTechnique, Rating, flows_bits
from .scrubbing import ScrubbingMitigation


@dataclass
class CombinedOutcome:
    """Outcome of the Stellar + scrubbing pipeline for one interval."""

    outcome: MitigationOutcome
    #: Bits removed by the IXP pre-filters (no scrubbing cost incurred).
    prefiltered_bits: float
    #: Bits that were diverted to (and processed by) the scrubbing centre.
    scrubbed_bits: float
    #: Monetary cost of the scrubbed volume for this interval.
    scrubbing_cost: float


class CombinedMitigation(MitigationTechnique):
    """Advanced Blackholing pre-filters in front of a scrubbing service."""

    name = "Advanced Blackholing + TSS"
    ratings = {
        Dimension.GRANULARITY: Rating.ADVANTAGE,
        Dimension.SIGNALING_COMPLEXITY: Rating.ADVANTAGE,
        Dimension.COOPERATION: Rating.ADVANTAGE,
        Dimension.RESOURCE_SHARING: Rating.ADVANTAGE,
        Dimension.TELEMETRY: Rating.ADVANTAGE,
        Dimension.SCALABILITY: Rating.ADVANTAGE,
        Dimension.RESOURCES: Rating.NEUTRAL,
        Dimension.PERFORMANCE: Rating.ADVANTAGE,
        Dimension.REACTION_TIME: Rating.ADVANTAGE,
        Dimension.COSTS: Rating.NEUTRAL,
    }

    def __init__(
        self,
        prefilter_rules: Sequence[BlackholingRule],
        scrubbing: ScrubbingMitigation,
    ) -> None:
        self.prefilter_rules = list(prefilter_rules)
        self.scrubbing = scrubbing
        self.total_scrubbing_cost = 0.0
        self.total_prefiltered_bits = 0.0

    # ------------------------------------------------------------------
    def add_rule(self, rule: BlackholingRule) -> None:
        """Add another IXP pre-filter (e.g. a signature learnt by the scrubber)."""
        self.prefilter_rules.append(rule)

    def _rules_by_specificity(self) -> list[BlackholingRule]:
        """Pre-filter rules, most specific first (stable among ties)."""
        return sorted(
            self.prefilter_rules,
            key=lambda rule: rule.flow_match().specificity,
            reverse=True,
        )

    def _matching_rule(self, flow: FlowRecord) -> BlackholingRule | None:
        matching = [
            rule for rule in self.prefilter_rules if rule.flow_match().matches(flow)
        ]
        if not matching:
            return None
        return max(matching, key=lambda rule: rule.flow_match().specificity)

    # ------------------------------------------------------------------
    def apply_detailed(
        self, flows: "Sequence[FlowRecord] | FlowTable", interval: float
    ) -> CombinedOutcome:
        """Run the pipeline and report traffic outcome plus scrubbing cost."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if isinstance(flows, FlowTable):
            return self._apply_detailed_table(flows, interval)
        return self._apply_detailed_records(flows, interval)

    def _apply_detailed_table(self, table: FlowTable, interval: float) -> CombinedOutcome:
        """Columnar pipeline: masked pre-filters, then one scrubbing batch."""
        n = len(table)
        unassigned = np.ones(n, dtype=bool)
        drop_mask = np.zeros(n, dtype=bool)
        shape_mask = np.zeros(n, dtype=bool)
        scale = np.ones(n, dtype=np.float64)
        bits = table.bits
        # Most specific rule first: each rule claims the rows no earlier
        # (more specific) rule matched, mirroring the per-record winner pick.
        for rule in self._rules_by_specificity():
            if not unassigned.any():
                break
            matched = unassigned & rule.flow_match().matches_table(table)
            if not matched.any():
                continue
            unassigned &= ~matched
            if rule.action is RuleAction.DROP:
                drop_mask |= matched
            else:
                # Shaped sample: the bounded residue continues to the scrubber
                # (and ultimately the victim), the excess is dropped at the IXP.
                budget_bits = rule.shape_rate_bps * interval
                shape_mask |= matched
                safe_bits = np.where(bits > 0, bits, 1)
                scale = np.where(
                    matched,
                    np.where(bits > 0, np.minimum(1.0, budget_bits / safe_bits), 0.0),
                    scale,
                )

        shaped = table.select(shape_mask).scaled_by(scale[shape_mask])
        excess_mask = shape_mask & (scale < 1.0)
        excess = table.select(excess_mask).scaled_by(1.0 - scale[excess_mask])
        remaining = table.select(unassigned)
        prefiltered = FlowTable.concat([table.select(drop_mask), excess])
        # Scrub in the same row order the record path does: the untouched
        # remainder first, then the shaped samples.
        scrub_input = FlowTable.concat([remaining, shaped])

        scrubbed_outcome = self.scrubbing.apply(scrub_input, interval)
        discarded_tables = [prefiltered]
        if scrubbed_outcome.discarded_table is not None:
            discarded_tables.append(scrubbed_outcome.discarded_table)
        else:
            discarded_tables.append(FlowTable.from_records(scrubbed_outcome.discarded))
        outcome = MitigationOutcome(
            delivered_table=scrubbed_outcome.delivered_table,
            discarded_table=FlowTable.concat(discarded_tables),
            shaped_table=scrubbed_outcome.shaped_table,
        )
        return self._account(outcome, prefiltered, scrub_input)

    def _apply_detailed_records(
        self, flows: Sequence[FlowRecord], interval: float
    ) -> CombinedOutcome:
        """Per-record compatibility pipeline (parity-tested against the table path)."""
        prefiltered: list[FlowRecord] = []
        shaped: list[FlowRecord] = []
        remaining: list[FlowRecord] = []
        for flow in flows:
            rule = self._matching_rule(flow)
            if rule is None:
                remaining.append(flow)
            elif rule.action is RuleAction.DROP:
                prefiltered.append(flow)
            else:
                budget_bits = rule.shape_rate_bps * interval
                scale = min(1.0, budget_bits / flow.bits) if flow.bits else 0.0
                shaped.append(flow.scaled(scale))
                if scale < 1.0:
                    prefiltered.append(flow.scaled(1.0 - scale))

        scrub_input = remaining + shaped
        scrubbed_outcome = self.scrubbing.apply_records(scrub_input, interval)
        outcome = MitigationOutcome(
            delivered=scrubbed_outcome.delivered,
            discarded=prefiltered + scrubbed_outcome.discarded,
            shaped=scrubbed_outcome.shaped,
        )
        return self._account(outcome, prefiltered, scrub_input)

    def _account(
        self,
        outcome: MitigationOutcome,
        prefiltered: "Sequence[FlowRecord] | FlowTable",
        scrub_input: "Sequence[FlowRecord] | FlowTable",
    ) -> CombinedOutcome:
        """Shared outcome accounting for both pipeline representations."""
        prefiltered_bits = flows_bits(prefiltered)
        scrubbed_bits = flows_bits(scrub_input)
        cost = self.scrubbing.cost_of_interval(scrubbed_bits)
        self.total_scrubbing_cost += cost
        self.total_prefiltered_bits += prefiltered_bits
        return CombinedOutcome(
            outcome=outcome,
            prefiltered_bits=prefiltered_bits,
            scrubbed_bits=scrubbed_bits,
            scrubbing_cost=cost,
        )

    def apply_table(self, table: FlowTable, interval: float) -> MitigationOutcome:
        return self.apply_detailed(table, interval).outcome

    def apply_records(
        self, flows: Sequence[FlowRecord], interval: float
    ) -> MitigationOutcome:
        return self.apply_detailed(list(flows), interval).outcome


def scrubbing_cost_saving(
    flows: "Sequence[FlowRecord] | FlowTable",
    interval: float,
    prefilter_rules: Sequence[BlackholingRule],
    scrubbing: ScrubbingMitigation,
    scrubbing_alone: ScrubbingMitigation,
) -> dict:
    """Quantify the §6 cost argument on one interval of traffic.

    Returns the scrubbed volume and cost with and without the IXP
    pre-filters, plus the relative saving.
    """
    combined = CombinedMitigation(prefilter_rules, scrubbing)
    combined_result = combined.apply_detailed(flows, interval)

    alone_bits = flows_bits(flows)
    scrubbing_alone.apply(flows, interval)
    alone_cost = scrubbing_alone.cost_of_interval(alone_bits)

    saving = 0.0 if alone_cost == 0 else 1.0 - combined_result.scrubbing_cost / alone_cost
    return {
        "scrubbed_bits_alone": alone_bits,
        "scrubbed_bits_combined": combined_result.scrubbed_bits,
        "cost_alone": alone_cost,
        "cost_combined": combined_result.scrubbing_cost,
        "cost_saving_fraction": saving,
        "prefiltered_bits": combined_result.prefiltered_bits,
    }
