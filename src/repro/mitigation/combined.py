"""Combining Advanced Blackholing with a traffic scrubbing service (paper §6).

The discussion section argues that Advanced Blackholing composes well with
scrubbing: attacks with a known L2–L4 signature are dropped at the IXP for
free, and only the remaining (unclassified) traffic — optionally capped to a
bounded sample — is diverted to the expensive scrubbing centre.  This both
reduces the scrubbing bill and frees scrubbing capacity for deep packet
inspection of unknown attacks.

:class:`CombinedMitigation` implements that pipeline over flow records:

1. a set of blackholing rules (pre-filters) is applied first — matching
   traffic is discarded (or shaped) at the IXP at no cost,
2. what remains is handed to a :class:`~repro.mitigation.scrubbing.ScrubbingMitigation`
   instance, whose per-gigabyte cost is accounted,
3. the result reports both the traffic outcome and the scrubbing cost, so
   the cost-saving claim of §6 can be quantified against scrubbing alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..core.rules import BlackholingRule, RuleAction
from ..traffic.flow import FlowRecord
from .base import Dimension, MitigationOutcome, MitigationTechnique, Rating
from .scrubbing import ScrubbingMitigation


@dataclass
class CombinedOutcome:
    """Outcome of the Stellar + scrubbing pipeline for one interval."""

    outcome: MitigationOutcome
    #: Bits removed by the IXP pre-filters (no scrubbing cost incurred).
    prefiltered_bits: float
    #: Bits that were diverted to (and processed by) the scrubbing centre.
    scrubbed_bits: float
    #: Monetary cost of the scrubbed volume for this interval.
    scrubbing_cost: float


class CombinedMitigation(MitigationTechnique):
    """Advanced Blackholing pre-filters in front of a scrubbing service."""

    name = "Advanced Blackholing + TSS"
    ratings = {
        Dimension.GRANULARITY: Rating.ADVANTAGE,
        Dimension.SIGNALING_COMPLEXITY: Rating.ADVANTAGE,
        Dimension.COOPERATION: Rating.ADVANTAGE,
        Dimension.RESOURCE_SHARING: Rating.ADVANTAGE,
        Dimension.TELEMETRY: Rating.ADVANTAGE,
        Dimension.SCALABILITY: Rating.ADVANTAGE,
        Dimension.RESOURCES: Rating.NEUTRAL,
        Dimension.PERFORMANCE: Rating.ADVANTAGE,
        Dimension.REACTION_TIME: Rating.ADVANTAGE,
        Dimension.COSTS: Rating.NEUTRAL,
    }

    def __init__(
        self,
        prefilter_rules: Sequence[BlackholingRule],
        scrubbing: ScrubbingMitigation,
    ) -> None:
        self.prefilter_rules = list(prefilter_rules)
        self.scrubbing = scrubbing
        self.total_scrubbing_cost = 0.0
        self.total_prefiltered_bits = 0.0

    # ------------------------------------------------------------------
    def add_rule(self, rule: BlackholingRule) -> None:
        """Add another IXP pre-filter (e.g. a signature learnt by the scrubber)."""
        self.prefilter_rules.append(rule)

    def _matching_rule(self, flow: FlowRecord) -> BlackholingRule | None:
        matching = [
            rule for rule in self.prefilter_rules if rule.flow_match().matches(flow)
        ]
        if not matching:
            return None
        return max(matching, key=lambda rule: rule.flow_match().specificity)

    # ------------------------------------------------------------------
    def apply_detailed(
        self, flows: Sequence[FlowRecord], interval: float
    ) -> CombinedOutcome:
        """Run the pipeline and report traffic outcome plus scrubbing cost."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        prefiltered: List[FlowRecord] = []
        shaped: List[FlowRecord] = []
        remaining: List[FlowRecord] = []
        for flow in flows:
            rule = self._matching_rule(flow)
            if rule is None:
                remaining.append(flow)
            elif rule.action is RuleAction.DROP:
                prefiltered.append(flow)
            else:
                # Shaped sample: the bounded residue continues to the scrubber
                # (and ultimately the victim), the excess is dropped at the IXP.
                budget_bits = rule.shape_rate_bps * interval
                scale = min(1.0, budget_bits / flow.bits) if flow.bits else 0.0
                shaped.append(flow.scaled(scale))
                if scale < 1.0:
                    prefiltered.append(flow.scaled(1.0 - scale))

        scrubbed_outcome = self.scrubbing.apply(remaining + shaped, interval)
        outcome = MitigationOutcome(
            delivered=scrubbed_outcome.delivered,
            discarded=prefiltered + scrubbed_outcome.discarded,
            shaped=scrubbed_outcome.shaped,
        )
        prefiltered_bits = float(sum(flow.bits for flow in prefiltered))
        scrubbed_bits = float(sum(flow.bits for flow in remaining + shaped))
        cost = self.scrubbing.cost_of_interval(scrubbed_bits)
        self.total_scrubbing_cost += cost
        self.total_prefiltered_bits += prefiltered_bits
        return CombinedOutcome(
            outcome=outcome,
            prefiltered_bits=prefiltered_bits,
            scrubbed_bits=scrubbed_bits,
            scrubbing_cost=cost,
        )

    def apply(self, flows: Sequence[FlowRecord], interval: float) -> MitigationOutcome:
        return self.apply_detailed(flows, interval).outcome


def scrubbing_cost_saving(
    flows: Sequence[FlowRecord],
    interval: float,
    prefilter_rules: Sequence[BlackholingRule],
    scrubbing: ScrubbingMitigation,
    scrubbing_alone: ScrubbingMitigation,
) -> dict:
    """Quantify the §6 cost argument on one interval of traffic.

    Returns the scrubbed volume and cost with and without the IXP
    pre-filters, plus the relative saving.
    """
    combined = CombinedMitigation(prefilter_rules, scrubbing)
    combined_result = combined.apply_detailed(flows, interval)

    alone_bits = float(sum(flow.bits for flow in flows))
    scrubbing_alone.apply(flows, interval)
    alone_cost = scrubbing_alone.cost_of_interval(alone_bits)

    saving = 0.0 if alone_cost == 0 else 1.0 - combined_result.scrubbing_cost / alone_cost
    return {
        "scrubbed_bits_alone": alone_bits,
        "scrubbed_bits_combined": combined_result.scrubbed_bits,
        "cost_alone": alone_cost,
        "cost_combined": combined_result.scrubbing_cost,
        "cost_saving_fraction": saving,
        "prefiltered_bits": combined_result.prefiltered_bits,
    }
