"""Qualitative comparison of mitigation techniques (Table 1).

Builds the paper's Table 1 from the per-technique ratings declared by each
:class:`~repro.mitigation.base.MitigationTechnique` subclass, and provides
helpers to render it as text or compare it against the expected reference
matrix (used by the Table 1 bench and the tests).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from .base import Dimension, MitigationTechnique, Rating

#: The paper's Table 1, transcribed.  Keys are technique names as used by
#: the corresponding classes; values map dimension → rating.
PAPER_TABLE_1: dict[str, dict[Dimension, Rating]] = {
    "TSS": {
        Dimension.GRANULARITY: Rating.ADVANTAGE,
        Dimension.SIGNALING_COMPLEXITY: Rating.DISADVANTAGE,
        Dimension.COOPERATION: Rating.NEUTRAL,
        Dimension.RESOURCE_SHARING: Rating.ADVANTAGE,
        Dimension.TELEMETRY: Rating.ADVANTAGE,
        Dimension.SCALABILITY: Rating.DISADVANTAGE,
        Dimension.RESOURCES: Rating.DISADVANTAGE,
        Dimension.PERFORMANCE: Rating.DISADVANTAGE,
        Dimension.REACTION_TIME: Rating.DISADVANTAGE,
        Dimension.COSTS: Rating.DISADVANTAGE,
    },
    "ACL filters": {
        Dimension.GRANULARITY: Rating.ADVANTAGE,
        Dimension.SIGNALING_COMPLEXITY: Rating.DISADVANTAGE,
        Dimension.COOPERATION: Rating.NEUTRAL,
        Dimension.RESOURCE_SHARING: Rating.ADVANTAGE,
        Dimension.TELEMETRY: Rating.DISADVANTAGE,
        Dimension.SCALABILITY: Rating.NEUTRAL,
        Dimension.RESOURCES: Rating.DISADVANTAGE,
        Dimension.PERFORMANCE: Rating.ADVANTAGE,
        Dimension.REACTION_TIME: Rating.DISADVANTAGE,
        Dimension.COSTS: Rating.NEUTRAL,
    },
    "RTBH": {
        Dimension.GRANULARITY: Rating.DISADVANTAGE,
        Dimension.SIGNALING_COMPLEXITY: Rating.DISADVANTAGE,
        Dimension.COOPERATION: Rating.DISADVANTAGE,
        Dimension.RESOURCE_SHARING: Rating.ADVANTAGE,
        Dimension.TELEMETRY: Rating.DISADVANTAGE,
        Dimension.SCALABILITY: Rating.ADVANTAGE,
        Dimension.RESOURCES: Rating.ADVANTAGE,
        Dimension.PERFORMANCE: Rating.ADVANTAGE,
        Dimension.REACTION_TIME: Rating.ADVANTAGE,
        Dimension.COSTS: Rating.ADVANTAGE,
    },
    "Flowspec": {
        Dimension.GRANULARITY: Rating.ADVANTAGE,
        Dimension.SIGNALING_COMPLEXITY: Rating.DISADVANTAGE,
        Dimension.COOPERATION: Rating.DISADVANTAGE,
        Dimension.RESOURCE_SHARING: Rating.DISADVANTAGE,
        Dimension.TELEMETRY: Rating.NEUTRAL,
        Dimension.SCALABILITY: Rating.ADVANTAGE,
        Dimension.RESOURCES: Rating.DISADVANTAGE,
        Dimension.PERFORMANCE: Rating.ADVANTAGE,
        Dimension.REACTION_TIME: Rating.ADVANTAGE,
        Dimension.COSTS: Rating.ADVANTAGE,
    },
    "Advanced Blackholing": {
        Dimension.GRANULARITY: Rating.ADVANTAGE,
        Dimension.SIGNALING_COMPLEXITY: Rating.ADVANTAGE,
        Dimension.COOPERATION: Rating.ADVANTAGE,
        Dimension.RESOURCE_SHARING: Rating.ADVANTAGE,
        Dimension.TELEMETRY: Rating.ADVANTAGE,
        Dimension.SCALABILITY: Rating.ADVANTAGE,
        Dimension.RESOURCES: Rating.ADVANTAGE,
        Dimension.PERFORMANCE: Rating.ADVANTAGE,
        Dimension.REACTION_TIME: Rating.ADVANTAGE,
        Dimension.COSTS: Rating.ADVANTAGE,
    },
}

#: Column order of the paper's table.
TECHNIQUE_ORDER = ("TSS", "ACL filters", "RTBH", "Flowspec", "Advanced Blackholing")


@dataclass(frozen=True)
class ComparisonTable:
    """The assembled comparison matrix."""

    techniques: tuple[str, ...]
    ratings: dict[str, dict[Dimension, Rating]]

    def rating(self, technique: str, dimension: Dimension) -> Rating:
        return self.ratings[technique][dimension]

    def advantage_count(self, technique: str) -> int:
        """Number of dimensions in which a technique is rated as an advantage."""
        return sum(
            1
            for rating in self.ratings[technique].values()
            if rating is Rating.ADVANTAGE
        )

    def as_rows(self) -> list[list[str]]:
        """Rows of (dimension, symbol, symbol, ...) for rendering."""
        rows = []
        for dimension in Dimension:
            row = [dimension.value]
            row.extend(
                self.ratings[technique][dimension].symbol for technique in self.techniques
            )
            rows.append(row)
        return rows

    def render(self) -> str:
        """Plain-text rendering of the table."""
        header = ["Dimension"] + list(self.techniques)
        rows = [header] + self.as_rows()
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = []
        for row in rows:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def matches_paper(self) -> bool:
        """True if every cell agrees with the transcribed paper table."""
        for technique in self.techniques:
            expected = PAPER_TABLE_1.get(technique)
            if expected is None:
                return False
            for dimension in Dimension:
                if self.ratings[technique][dimension] is not expected[dimension]:
                    return False
        return True


def build_comparison_table(
    techniques: Sequence[MitigationTechnique] | None = None,
) -> ComparisonTable:
    """Assemble the comparison table from technique instances.

    When no instances are supplied the table is built from the transcribed
    paper ratings (which the techniques' declared ratings must match — the
    tests assert this consistency).
    """
    if techniques is None:
        return ComparisonTable(
            techniques=TECHNIQUE_ORDER,
            ratings={name: dict(PAPER_TABLE_1[name]) for name in TECHNIQUE_ORDER},
        )
    ratings = {technique.name: technique.rating_row() for technique in techniques}
    return ComparisonTable(
        techniques=tuple(technique.name for technique in techniques), ratings=ratings
    )
