"""Remotely Triggered Black Hole (RTBH) baseline.

Classic IXP blackholing (§2.2): the victim announces the attacked prefix
(usually a /32) to the route server tagged with the IXP's blackholing
community.  Every *other* member that accepts the announcement rewrites its
next hop to the IXP's blackholing IP, so traffic it sends towards the
prefix is dropped at the IXP's null interface.  Two properties drive the
paper's measurement findings:

* **Collateral damage** — RTBH is all-or-nothing per prefix: legitimate
  traffic towards the prefix is dropped together with the attack (§2.3).
* **Limited compliance** — almost 70 % of members do not honour the
  blackholing community (§2.4), so most attack traffic keeps flowing
  (Fig. 3(c)).

The :class:`RtbhService` models the signalling/compliance side; the
:class:`RtbhMitigation` technique applies the resulting per-ingress-member
drop behaviour to traffic.  The data plane is columnar: ``apply_table``
resolves every active blackhole with one destination-prefix mask (most
specific wins) and one compliance membership mask per event, and the
per-record loop survives only as the ``apply_records`` compatibility shim.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..bgp.communities import rtbh_community
from ..bgp.messages import RouteAnnouncement, announcement
from ..bgp.prefix import Prefix, parse_prefix
from ..bgp.route_server import PolicyControl, RouteServer
from ..sim.rng import make_rng
from ..traffic.flow import FlowRecord
from ..traffic.flowtable import FlowTable
from .base import (
    Dimension,
    MitigationOutcome,
    MitigationTechnique,
    Rating,
    member_mask,
    prefix_mask,
)


@dataclass
class BlackholeEvent:
    """One active RTBH blackhole: prefix + which members honour it."""

    prefix: Prefix
    victim_asn: int
    honoring_members: set[int] = field(default_factory=set)
    announced_at: float = 0.0
    policy_control: PolicyControl = field(default_factory=PolicyControl)

    def drops_traffic_from(self, ingress_member_asn: int) -> bool:
        """True if traffic entering via ``ingress_member_asn`` is dropped."""
        return ingress_member_asn in self.honoring_members


class RtbhService:
    """The IXP's classic blackholing service.

    Member compliance is drawn per member: either from the explicit
    ``honors_rtbh`` flags of the member objects handed in, or — when a
    plain compliance rate is given — by an independent Bernoulli draw per
    member (deterministic under the configured seed).
    """

    def __init__(
        self,
        ixp_asn: int,
        route_server: Optional[RouteServer] = None,
        member_compliance: Optional[dict[int, bool]] = None,
        compliance_rate: float = 0.30,
        seed: int | None = None,
    ) -> None:
        if not 0 <= compliance_rate <= 1:
            raise ValueError("compliance_rate must lie in [0, 1]")
        self.ixp_asn = ixp_asn
        self.route_server = route_server
        self.compliance_rate = compliance_rate
        self._rng = make_rng(seed)
        self._member_compliance: dict[int, bool] = dict(member_compliance or {})
        self._events: list[BlackholeEvent] = []

    # ------------------------------------------------------------------
    # Compliance model
    # ------------------------------------------------------------------
    def member_honors(self, member_asn: int) -> bool:
        """Whether a member honours RTBH signals (memoised per member)."""
        if member_asn not in self._member_compliance:
            self._member_compliance[member_asn] = bool(
                self._rng.random() < self.compliance_rate
            )
        return self._member_compliance[member_asn]

    def set_compliance(self, member_asn: int, honors: bool) -> None:
        self._member_compliance[member_asn] = honors

    def compliance_map(self) -> dict[int, bool]:
        return dict(self._member_compliance)

    # ------------------------------------------------------------------
    # Signalling
    # ------------------------------------------------------------------
    def request_blackhole(
        self,
        victim_asn: int,
        prefix: "str | Prefix",
        peer_asns: Sequence[int],
        time: float = 0.0,
        policy_control: Optional[PolicyControl] = None,
    ) -> BlackholeEvent:
        """The victim announces a blackhole for ``prefix``.

        ``peer_asns`` are the members whose traffic could reach the victim;
        the event records which of them honour the signal.  If a route
        server is attached, the announcement is also pushed through it so
        the full signalling path (policy checks, next-hop rewrite,
        propagation) is exercised.
        """
        prefix = parse_prefix(prefix)
        control = policy_control if policy_control is not None else PolicyControl()

        if self.route_server is not None:
            route = announcement(
                prefix,
                victim_asn,
                next_hop=f"203.0.113.{victim_asn % 250 + 1}",
            )
            route = RouteAnnouncement(
                prefix=route.prefix,
                attributes=route.attributes.with_communities(
                    rtbh_community(self.ixp_asn)
                ),
                path_id=route.path_id,
            )
            self.route_server.announce(route, control)

        targets = control.targets(set(peer_asns) | {victim_asn}, victim_asn)
        honoring = {asn for asn in targets if self.member_honors(asn)}
        event = BlackholeEvent(
            prefix=prefix,
            victim_asn=victim_asn,
            honoring_members=honoring,
            announced_at=time,
            policy_control=control,
        )
        self._events.append(event)
        return event

    def withdraw_blackhole(self, victim_asn: int, prefix: "str | Prefix") -> bool:
        """Withdraw an active blackhole.  Returns True if one was active."""
        prefix = parse_prefix(prefix)
        before = len(self._events)
        self._events = [
            event
            for event in self._events
            if not (event.victim_asn == victim_asn and event.prefix == prefix)
        ]
        if self.route_server is not None and len(self._events) != before:
            self.route_server.withdraw(prefix, victim_asn)
        return len(self._events) != before

    def active_events(self) -> list[BlackholeEvent]:
        return list(self._events)

    def event_for(self, dst_ip: str) -> Optional[BlackholeEvent]:
        """The most specific active blackhole covering a destination IP."""
        covering = [
            event for event in self._events if event.prefix.contains_address(dst_ip)
        ]
        if not covering:
            return None
        return max(covering, key=lambda event: event.prefix.length)


class RtbhMitigation(MitigationTechnique):
    """RTBH as a :class:`MitigationTechnique` (columnar + record paths)."""

    name = "RTBH"
    ratings = {
        Dimension.GRANULARITY: Rating.DISADVANTAGE,
        Dimension.SIGNALING_COMPLEXITY: Rating.DISADVANTAGE,
        Dimension.COOPERATION: Rating.DISADVANTAGE,
        Dimension.RESOURCE_SHARING: Rating.ADVANTAGE,
        Dimension.TELEMETRY: Rating.DISADVANTAGE,
        Dimension.SCALABILITY: Rating.ADVANTAGE,
        Dimension.RESOURCES: Rating.ADVANTAGE,
        Dimension.PERFORMANCE: Rating.ADVANTAGE,
        Dimension.REACTION_TIME: Rating.ADVANTAGE,
        Dimension.COSTS: Rating.ADVANTAGE,
    }

    def __init__(self, service: RtbhService) -> None:
        self.service = service

    def apply_records(
        self, flows: Sequence[FlowRecord], interval: float
    ) -> MitigationOutcome:
        outcome = MitigationOutcome()
        for flow in flows:
            event = self.service.event_for(flow.dst_ip)
            if event is not None and event.drops_traffic_from(flow.ingress_member_asn):
                outcome.discarded.append(flow)
            else:
                outcome.delivered.append(flow)
        return outcome

    def apply_table(self, table: FlowTable, interval: float) -> MitigationOutcome:
        """Vectorized RTBH: per-event destination match + compliance mask."""
        discard = np.zeros(len(table), dtype=bool)
        unassigned = np.ones(len(table), dtype=bool)
        # Most specific prefix wins, as in :meth:`RtbhService.event_for`
        # (stable sort keeps announcement order among equal lengths).
        events = sorted(
            self.service.active_events(), key=lambda event: event.prefix.length, reverse=True
        )
        for event in events:
            covered = unassigned & prefix_mask(table.dst_ip, event.prefix)
            if not covered.any():
                continue
            unassigned &= ~covered
            if event.honoring_members:
                discard |= covered & member_mask(table.ingress_asn, event.honoring_members)
        return MitigationOutcome(
            delivered_table=table.select(~discard),
            discarded_table=table.select(discard),
        )
