"""Traffic Scrubbing Service (TSS) baseline.

Scrubbing services redirect the victim's traffic (via DNS or BGP
delegation) to scrubbing centres, classify it, and return the clean
traffic (§1.1).  The model captures the properties the paper's comparison
turns on:

* near-perfect fine-grained filtering (a configurable true-positive /
  false-positive classification accuracy),
* a finite scrubbing-capacity ceiling — Tbps-level attacks exceed it,
  at which point excess traffic is dropped indiscriminately,
* a redirection overhead modelled as an activation delay and a per-bit
  cost, which the cost-comparison ablation uses.

The data plane is columnar: ``apply_table`` draws the whole interval's
classification verdicts with a single batched RNG call (the same stream,
in the same order, as the per-flow draws of the ``apply_records``
compatibility shim, so the two paths classify identically per seed) and
partitions the table with boolean masks.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..sim.rng import make_rng
from ..traffic.flow import FlowRecord
from ..traffic.flowtable import FlowTable
from .base import Dimension, MitigationOutcome, MitigationTechnique, Rating


@dataclass
class ScrubbingCenter:
    """Capacity and accuracy description of a scrubbing deployment."""

    capacity_bps: float = 500e9
    #: Probability that an attack flow is recognised and removed.
    true_positive_rate: float = 0.98
    #: Probability that a legitimate flow is wrongly removed.
    false_positive_rate: float = 0.02
    #: Seconds between subscription/activation and effective scrubbing.
    activation_delay_seconds: float = 300.0
    #: Monetary cost per delivered gigabyte (used by the cost ablation).
    cost_per_scrubbed_gbyte: float = 0.05

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")
        for name in ("true_positive_rate", "false_positive_rate"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must lie in [0, 1]")
        if self.activation_delay_seconds < 0:
            raise ValueError("activation_delay_seconds must be non-negative")


class ScrubbingMitigation(MitigationTechnique):
    """TSS as a mitigation technique (columnar + record paths)."""

    name = "TSS"
    ratings = {
        Dimension.GRANULARITY: Rating.ADVANTAGE,
        Dimension.SIGNALING_COMPLEXITY: Rating.DISADVANTAGE,
        Dimension.COOPERATION: Rating.NEUTRAL,
        Dimension.RESOURCE_SHARING: Rating.ADVANTAGE,
        Dimension.TELEMETRY: Rating.ADVANTAGE,
        Dimension.SCALABILITY: Rating.DISADVANTAGE,
        Dimension.RESOURCES: Rating.DISADVANTAGE,
        Dimension.PERFORMANCE: Rating.DISADVANTAGE,
        Dimension.REACTION_TIME: Rating.DISADVANTAGE,
        Dimension.COSTS: Rating.DISADVANTAGE,
    }

    def __init__(
        self,
        center: ScrubbingCenter | None = None,
        active_since: float = 0.0,
        seed: int | None = None,
    ) -> None:
        self.center = center if center is not None else ScrubbingCenter()
        #: Time at which the subscription was activated; before
        #: ``active_since + activation_delay`` traffic passes unscrubbed.
        self.active_since = active_since
        self._rng = make_rng(seed)
        self.scrubbed_bits_total = 0.0

    # ------------------------------------------------------------------
    def is_effective_at(self, time: float) -> bool:
        return time >= self.active_since + self.center.activation_delay_seconds

    def cost_of_interval(self, delivered_bits: float) -> float:
        """Monetary cost of scrubbing the delivered volume of one interval."""
        gbytes = delivered_bits / 8 / 1e9
        return gbytes * self.center.cost_per_scrubbed_gbyte

    def apply_table(self, table: FlowTable, interval: float) -> MitigationOutcome:
        """Vectorized scrubbing: batched verdict draws + mask partitioning."""
        interval_start = float(table.start.min()) if len(table) else 0.0
        if not self.is_effective_at(interval_start):
            return MitigationOutcome(delivered_table=table)

        offered_bits = float(table.total_bits)
        capacity_bits = self.center.capacity_bps * interval
        overflow_scale = (
            min(1.0, capacity_bits / offered_bits) if offered_bits > 0 else 1.0
        )
        admitted = table if overflow_scale >= 1.0 else table.scaled(overflow_scale)

        # One uniform draw per flow, in row order — the same stream the
        # per-record path consumes one call at a time.
        draws = self._rng.random(len(table))
        threshold = np.where(
            table.is_attack,
            self.center.true_positive_rate,
            self.center.false_positive_rate,
        )
        removed = draws < threshold

        self.scrubbed_bits_total += float(admitted.bits.sum())
        if overflow_scale >= 1.0:
            return MitigationOutcome(
                delivered_table=table.select(~removed),
                discarded_table=table.select(removed),
            )
        # The per-record path emits a discarded remainder only when rounding
        # left the admitted share short of the full flow; mirror that exactly.
        overflow_mask = ~removed & (admitted.bytes < table.bytes)
        overflow_parts = table.select(overflow_mask).scaled(1 - overflow_scale)
        return MitigationOutcome(
            shaped_table=admitted.select(~removed),
            discarded_table=FlowTable.concat([table.select(removed), overflow_parts]),
        )

    def apply_records(
        self, flows: Sequence[FlowRecord], interval: float
    ) -> MitigationOutcome:
        outcome = MitigationOutcome()
        interval_start = min((flow.start for flow in flows), default=0.0)
        if not self.is_effective_at(interval_start):
            outcome.delivered.extend(flows)
            return outcome

        offered_bits = float(sum(flow.bits for flow in flows))
        capacity_bits = self.center.capacity_bps * interval
        # When the attack exceeds the scrubbing capacity, the overflow share
        # of every flow is dropped before classification.
        overflow_scale = (
            min(1.0, capacity_bits / offered_bits) if offered_bits > 0 else 1.0
        )

        for flow in flows:
            admitted = flow if overflow_scale >= 1.0 else flow.scaled(overflow_scale)
            overflow_part = flow.bits - admitted.bits
            if flow.is_attack:
                removed = self._rng.random() < self.center.true_positive_rate
            else:
                removed = self._rng.random() < self.center.false_positive_rate
            if removed:
                outcome.discarded.append(flow)
            else:
                if overflow_scale >= 1.0:
                    outcome.delivered.append(flow)
                else:
                    outcome.shaped.append(admitted)
                    if overflow_part > 0:
                        outcome.discarded.append(flow.scaled(1 - overflow_scale))
            self.scrubbed_bits_total += admitted.bits
        return outcome
