"""BGP Flowspec mitigation baseline.

Flowspec disseminates fine-grained filter rules across BGP sessions
(§1.1, §4.2.1).  Its effectiveness in the inter-domain / IXP setting is
limited by the same cooperation problem as RTBH: the *other* networks must
install the announced rules on *their* routers, consuming their hardware
resources.  The model therefore couples each rule with the set of peers
that actually install it (a per-peer acceptance draw, like the RTBH
compliance model) and with a per-peer rule budget, so experiments can
explore both the cooperation and the resource-sharing axes.

The data plane is columnar: ``apply_table`` resolves every installed rule
with one vectorized five-tuple + installing-peer mask per rule (first
matching rule wins per flow, in announcement order) and shapes each
rate-limited population with a single scaling; ``apply_records`` keeps the
original per-flow loop as the parity-tested compatibility shim.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..bgp.flowspec import FlowspecRule
from ..sim.rng import make_rng
from ..traffic.flow import FlowRecord
from ..traffic.flowtable import FlowTable
from .base import (
    Dimension,
    MitigationOutcome,
    MitigationTechnique,
    Rating,
    match_mask,
    member_mask,
)


@dataclass
class InstalledFlowspecRule:
    """A Flowspec rule plus the peers that accepted and installed it."""

    rule: FlowspecRule
    installing_peers: set[int] = field(default_factory=set)


class FlowspecService:
    """Models inter-domain Flowspec dissemination among IXP peers."""

    def __init__(
        self,
        acceptance_rate: float = 0.4,
        per_peer_rule_budget: int = 100,
        peer_acceptance: Optional[dict[int, bool]] = None,
        seed: int | None = None,
    ) -> None:
        if not 0 <= acceptance_rate <= 1:
            raise ValueError("acceptance_rate must lie in [0, 1]")
        if per_peer_rule_budget <= 0:
            raise ValueError("per_peer_rule_budget must be positive")
        self.acceptance_rate = acceptance_rate
        self.per_peer_rule_budget = per_peer_rule_budget
        self._peer_acceptance: dict[int, bool] = dict(peer_acceptance or {})
        self._rules_per_peer: dict[int, int] = {}
        self._rng = make_rng(seed)
        self._installed: list[InstalledFlowspecRule] = []

    # ------------------------------------------------------------------
    def peer_accepts(self, peer_asn: int) -> bool:
        """Whether a peer is willing to install Flowspec rules at all."""
        if peer_asn not in self._peer_acceptance:
            self._peer_acceptance[peer_asn] = bool(
                self._rng.random() < self.acceptance_rate
            )
        return self._peer_acceptance[peer_asn]

    def announce_rule(self, rule: FlowspecRule, peer_asns: Sequence[int]) -> InstalledFlowspecRule:
        """Announce a rule to the peers; record who installs it."""
        installing: set[int] = set()
        for peer in peer_asns:
            if not self.peer_accepts(peer):
                continue
            used = self._rules_per_peer.get(peer, 0)
            if used >= self.per_peer_rule_budget:
                continue  # the peer's router has no Flowspec TCAM left
            self._rules_per_peer[peer] = used + 1
            installing.add(peer)
        installed = InstalledFlowspecRule(rule=rule, installing_peers=installing)
        self._installed.append(installed)
        return installed

    def installed_rules(self) -> list[InstalledFlowspecRule]:
        return list(self._installed)

    def rules_installed_at(self, peer_asn: int) -> int:
        return self._rules_per_peer.get(peer_asn, 0)


class FlowspecMitigation(MitigationTechnique):
    """Flowspec as a mitigation technique (columnar + record paths).

    A flow is discarded when any installed discard rule matches it *and*
    the ingress peer for that flow is among the peers that installed the
    rule; a rate-limited rule scales the matching traffic down to the
    configured rate (aggregated per rule and ingress peer).
    """

    name = "Flowspec"
    ratings = {
        Dimension.GRANULARITY: Rating.ADVANTAGE,
        Dimension.SIGNALING_COMPLEXITY: Rating.DISADVANTAGE,
        Dimension.COOPERATION: Rating.DISADVANTAGE,
        Dimension.RESOURCE_SHARING: Rating.DISADVANTAGE,
        Dimension.TELEMETRY: Rating.NEUTRAL,
        Dimension.SCALABILITY: Rating.ADVANTAGE,
        Dimension.RESOURCES: Rating.DISADVANTAGE,
        Dimension.PERFORMANCE: Rating.ADVANTAGE,
        Dimension.REACTION_TIME: Rating.ADVANTAGE,
        Dimension.COSTS: Rating.ADVANTAGE,
    }

    def __init__(self, service: FlowspecService) -> None:
        self.service = service

    @staticmethod
    def _rule_rate_limit(rule: FlowspecRule) -> float:
        """The effective rate of a non-discard rule (bytes/second)."""
        return max(
            action.rate_bytes_per_second
            for action in rule.actions
            if action.rate_bytes_per_second >= 0
        )

    def apply_table(self, table: FlowTable, interval: float) -> MitigationOutcome:
        """Vectorized Flowspec: one mask per installed rule, first match wins."""
        n = len(table)
        unhandled = np.ones(n, dtype=bool)
        discard = np.zeros(n, dtype=bool)
        shaped_groups: list[FlowTable] = []
        for installed in self.service.installed_rules():
            if not unhandled.any():
                break
            rule = installed.rule
            if rule.packet_length_max is not None:
                # Flow records carry no packet length, so a length-bounded
                # rule never matches them (same as the per-record matcher).
                continue
            matched = (
                unhandled
                & member_mask(table.ingress_asn, installed.installing_peers)
                & match_mask(
                    table,
                    dst_prefix=rule.dest_prefix,
                    src_prefix=rule.source_prefix,
                    protocol=rule.ip_protocol,
                    src_port=rule.source_port,
                    dst_port=rule.dest_port,
                )
            )
            if not matched.any():
                continue
            unhandled &= ~matched
            if rule.is_discard:
                discard |= matched
                continue
            group = table.select(matched)
            budget_bytes = self._rule_rate_limit(rule) * interval
            offered = int(group.bytes.sum())
            scale = min(1.0, budget_bytes / offered) if offered > 0 else 0.0
            shaped_groups.append(group.scaled(scale))
        return MitigationOutcome(
            delivered_table=table.select(unhandled),
            discarded_table=table.select(discard),
            shaped_table=FlowTable.concat(shaped_groups),
        )

    def apply_records(
        self, flows: Sequence[FlowRecord], interval: float
    ) -> MitigationOutcome:
        outcome = MitigationOutcome()
        rate_limited: dict[int, list[FlowRecord]] = {}
        rate_limits: dict[int, float] = {}

        for flow in flows:
            handled = False
            for index, installed in enumerate(self.service.installed_rules()):
                rule = installed.rule
                if flow.ingress_member_asn not in installed.installing_peers:
                    continue
                if not rule.matches(
                    dst_ip=flow.dst_ip,
                    src_ip=flow.src_ip,
                    protocol=int(flow.protocol),
                    src_port=flow.src_port,
                    dst_port=flow.dst_port,
                ):
                    continue
                if rule.is_discard:
                    outcome.discarded.append(flow)
                else:
                    rate_limited.setdefault(index, []).append(flow)
                    rate_limits[index] = self._rule_rate_limit(rule)
                handled = True
                break
            if not handled:
                outcome.delivered.append(flow)

        for index, matched in rate_limited.items():
            budget_bytes = rate_limits[index] * interval
            offered = sum(flow.bytes for flow in matched)
            scale = min(1.0, budget_bytes / offered) if offered > 0 else 0.0
            outcome.shaped.extend(flow.scaled(scale) for flow in matched)
        return outcome
