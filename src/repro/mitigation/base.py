"""Common interface and qualitative attributes of DDoS mitigation techniques.

Table 1 of the paper compares five techniques along ten qualitative
dimensions (granularity, signaling complexity, cooperation, resource
sharing, telemetry, scalability, resources, performance, reaction time,
costs).  Each technique in :mod:`repro.mitigation` declares its rating per
dimension, and :mod:`repro.mitigation.comparison` assembles the table.

Quantitatively, every technique implements :class:`MitigationTechnique`:
given the flows destined to a victim during one observation interval, it
returns which flows are discarded, which are delivered, and which are
passed on in reduced (shaped) form.

The quantitative data plane is **columnar**: the canonical entry point is
:meth:`MitigationTechnique.apply_table`, which partitions a
:class:`~repro.traffic.flowtable.FlowTable` with vectorized prefix /
protocol / port / member mask matching (the shared helpers below).  The
classic per-:class:`~repro.traffic.flow.FlowRecord` loops survive as
:meth:`MitigationTechnique.apply_records`, and :meth:`MitigationTechnique.apply`
is the compatibility shim that dispatches on the input representation.
``tests/mitigation/test_columnar_parity.py`` pins the two paths to
identical outcomes per strategy.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from enum import Enum
from typing import Optional

from ..traffic.flow import FlowRecord
from ..traffic.flowtable import (
    FlowTable,
    ingress_peers,
    match_mask,
    member_mask,
    population_bits,
    prefix_mask,
)

# ``prefix_mask`` / ``member_mask`` / ``match_mask`` are the shared
# vectorized mask helpers of the whole columnar data plane.  They are
# defined next to :class:`FlowTable` (so the QoS layer and the compiled
# rule-match index can reuse them without import cycles) and re-exported
# here because this module is their historical home and the mitigation
# strategies are their heaviest users.
__all__ = [
    "prefix_mask",
    "member_mask",
    "match_mask",
    "flows_bits",
    "Rating",
    "Dimension",
    "MitigationOutcome",
    "MitigationTechnique",
    "NoMitigation",
]


def flows_bits(
    flows: "Sequence[FlowRecord] | FlowTable", attack: Optional[bool] = None
) -> float:
    """Total bits of a flow population in either representation.

    The shared accounting used by the outcome properties, the combined
    (pre-filter + scrubbing) pipeline and the cost-saving analysis, so no
    caller hand-rolls ``sum(flow.bits ...)`` bookkeeping.
    """
    if isinstance(flows, FlowTable):
        return population_bits(flows, None, attack=attack)
    return population_bits(None, flows, attack=attack)


class Rating(Enum):
    """Qualitative rating used by Table 1."""

    ADVANTAGE = "advantage"       # ✓ in the paper's table
    NEUTRAL = "neutral"           # •
    DISADVANTAGE = "disadvantage" # ✗

    @property
    def symbol(self) -> str:
        return {"advantage": "+", "neutral": "o", "disadvantage": "-"}[self.value]


class Dimension(Enum):
    """The comparison dimensions of Table 1 (in row order)."""

    GRANULARITY = "Granularity"
    SIGNALING_COMPLEXITY = "Signaling complexity"
    COOPERATION = "Cooperation"
    RESOURCE_SHARING = "Resource sharing"
    TELEMETRY = "Telemetry"
    SCALABILITY = "Scalability"
    RESOURCES = "Resources"
    PERFORMANCE = "Performance"
    REACTION_TIME = "Reaction time"
    COSTS = "Costs"


class MitigationOutcome:
    """Result of applying a mitigation technique to one interval of traffic.

    Outcomes can be built per-record (techniques appending to the
    ``delivered``/``discarded``/``shaped`` lists) or columnar (vectorized
    techniques passing :class:`FlowTable` partitions).  The record lists are
    materialised lazily from the tables, so both representations expose the
    same API; the bit summaries use the columnar path when available.
    """

    def __init__(
        self,
        delivered: Optional[list[FlowRecord]] = None,
        discarded: Optional[list[FlowRecord]] = None,
        shaped: Optional[list[FlowRecord]] = None,
        delivered_table: Optional[FlowTable] = None,
        discarded_table: Optional[FlowTable] = None,
        shaped_table: Optional[FlowTable] = None,
    ) -> None:
        self._delivered = delivered
        self._discarded = discarded
        self._shaped = shaped
        self.delivered_table = delivered_table
        self.discarded_table = discarded_table
        self.shaped_table = shaped_table
        if delivered is None and delivered_table is None:
            self._delivered = []
        if discarded is None and discarded_table is None:
            self._discarded = []
        if shaped is None and shaped_table is None:
            self._shaped = []

    # ------------------------------------------------------------------
    # Record views (lazy when columnar tables are present)
    # ------------------------------------------------------------------
    @property
    def delivered(self) -> list[FlowRecord]:
        if self._delivered is None:
            self._delivered = self.delivered_table.to_records()
        return self._delivered

    @property
    def discarded(self) -> list[FlowRecord]:
        if self._discarded is None:
            self._discarded = self.discarded_table.to_records()
        return self._discarded

    @property
    def shaped(self) -> list[FlowRecord]:
        if self._shaped is None:
            self._shaped = self.shaped_table.to_records()
        return self._shaped

    # ------------------------------------------------------------------
    @property
    def delivered_bits(self) -> float:
        return population_bits(self.delivered_table, self._delivered) + population_bits(
            self.shaped_table, self._shaped
        )

    @property
    def discarded_bits(self) -> float:
        return population_bits(self.discarded_table, self._discarded)

    @property
    def delivered_attack_bits(self) -> float:
        """Attack traffic that still reaches the victim (lower is better)."""
        return population_bits(
            self.delivered_table, self._delivered, attack=True
        ) + population_bits(self.shaped_table, self._shaped, attack=True)

    @property
    def collateral_damage_bits(self) -> float:
        """Legitimate traffic that was discarded (lower is better)."""
        return population_bits(self.discarded_table, self._discarded, attack=False)

    @property
    def discarded_attack_bits(self) -> float:
        """Attack traffic that was removed (higher is better)."""
        return population_bits(self.discarded_table, self._discarded, attack=True)

    @property
    def delivered_legitimate_bits(self) -> float:
        """Legitimate traffic that still reaches the victim (delivered + shaped)."""
        return population_bits(
            self.delivered_table, self._delivered, attack=False
        ) + population_bits(self.shaped_table, self._shaped, attack=False)

    @property
    def delivered_peers(self) -> set[int]:
        """Distinct ingress members whose traffic still reaches the victim."""
        return ingress_peers(self.delivered_table, self._delivered) | ingress_peers(
            self.shaped_table, self._shaped, positive_bytes=True
        )


class MitigationTechnique(abc.ABC):
    """Base class for all mitigation techniques (baselines and Stellar).

    The columnar :meth:`apply_table` is the canonical data-plane entry
    point; :meth:`apply_records` is the per-record compatibility loop; and
    :meth:`apply` is the thin shim that dispatches on the representation,
    so existing callers keep working unchanged.
    """

    #: Human-readable name used in tables and reports.
    name: str = "abstract"

    #: Qualitative ratings for Table 1; subclasses override.
    ratings: dict[Dimension, Rating] = {}

    @abc.abstractmethod
    def apply_table(self, table: FlowTable, interval: float) -> MitigationOutcome:
        """Apply the technique to one columnar interval of victim traffic."""

    def apply_records(
        self, flows: Sequence[FlowRecord], interval: float
    ) -> MitigationOutcome:
        """Per-record path; defaults to round-tripping through the table.

        Strategies that keep their original per-record loop override this;
        the parity tests then pin it against :meth:`apply_table`.
        """
        return self.apply_table(FlowTable.from_records(flows), interval)

    def apply(
        self, flows: "Sequence[FlowRecord] | FlowTable", interval: float
    ) -> MitigationOutcome:
        """Compatibility shim: dispatch on the input representation."""
        if isinstance(flows, FlowTable):
            return self.apply_table(flows, interval)
        return self.apply_records(flows, interval)

    def rating(self, dimension: Dimension) -> Rating:
        """The technique's rating for a dimension (NEUTRAL if unspecified)."""
        return self.ratings.get(dimension, Rating.NEUTRAL)

    def rating_row(self) -> dict[Dimension, Rating]:
        """All ratings, with NEUTRAL filled in for unspecified dimensions."""
        return {dimension: self.rating(dimension) for dimension in Dimension}


class NoMitigation(MitigationTechnique):
    """The do-nothing baseline: everything is delivered (subject to port capacity
    further down the pipeline)."""

    name = "none"
    ratings: dict[Dimension, Rating] = {}

    def apply_table(self, table: FlowTable, interval: float) -> MitigationOutcome:
        return MitigationOutcome(delivered_table=table)

    def apply_records(
        self, flows: Sequence[FlowRecord], interval: float
    ) -> MitigationOutcome:
        return MitigationOutcome(delivered=list(flows))
