"""Common interface and qualitative attributes of DDoS mitigation techniques.

Table 1 of the paper compares five techniques along ten qualitative
dimensions (granularity, signaling complexity, cooperation, resource
sharing, telemetry, scalability, resources, performance, reaction time,
costs).  Each technique in :mod:`repro.mitigation` declares its rating per
dimension, and :mod:`repro.mitigation.comparison` assembles the table.

Quantitatively, every technique implements :class:`MitigationTechnique`:
given the flows destined to a victim during one observation interval, it
returns which flows are discarded, which are delivered, and which are
passed on in reduced (shaped) form.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Sequence

from ..traffic.flow import FlowRecord


class Rating(Enum):
    """Qualitative rating used by Table 1."""

    ADVANTAGE = "advantage"       # ✓ in the paper's table
    NEUTRAL = "neutral"           # •
    DISADVANTAGE = "disadvantage" # ✗

    @property
    def symbol(self) -> str:
        return {"advantage": "+", "neutral": "o", "disadvantage": "-"}[self.value]


class Dimension(Enum):
    """The comparison dimensions of Table 1 (in row order)."""

    GRANULARITY = "Granularity"
    SIGNALING_COMPLEXITY = "Signaling complexity"
    COOPERATION = "Cooperation"
    RESOURCE_SHARING = "Resource sharing"
    TELEMETRY = "Telemetry"
    SCALABILITY = "Scalability"
    RESOURCES = "Resources"
    PERFORMANCE = "Performance"
    REACTION_TIME = "Reaction time"
    COSTS = "Costs"


@dataclass
class MitigationOutcome:
    """Result of applying a mitigation technique to one interval of traffic."""

    delivered: List[FlowRecord] = field(default_factory=list)
    discarded: List[FlowRecord] = field(default_factory=list)
    shaped: List[FlowRecord] = field(default_factory=list)

    @property
    def delivered_bits(self) -> float:
        return float(sum(flow.bits for flow in self.delivered)) + float(
            sum(flow.bits for flow in self.shaped)
        )

    @property
    def discarded_bits(self) -> float:
        return float(sum(flow.bits for flow in self.discarded))

    @property
    def delivered_attack_bits(self) -> float:
        """Attack traffic that still reaches the victim (lower is better)."""
        return float(
            sum(flow.bits for flow in self.delivered if flow.is_attack)
        ) + float(sum(flow.bits for flow in self.shaped if flow.is_attack))

    @property
    def collateral_damage_bits(self) -> float:
        """Legitimate traffic that was discarded (lower is better)."""
        return float(sum(flow.bits for flow in self.discarded if not flow.is_attack))

    @property
    def delivered_peers(self) -> set[int]:
        """Distinct ingress members whose traffic still reaches the victim."""
        peers = {
            flow.ingress_member_asn
            for flow in self.delivered
            if flow.ingress_member_asn
        }
        peers |= {
            flow.ingress_member_asn
            for flow in self.shaped
            if flow.ingress_member_asn and flow.bytes > 0
        }
        return peers


class MitigationTechnique(abc.ABC):
    """Base class for all mitigation techniques (baselines and Stellar)."""

    #: Human-readable name used in tables and reports.
    name: str = "abstract"

    #: Qualitative ratings for Table 1; subclasses override.
    ratings: Dict[Dimension, Rating] = {}

    @abc.abstractmethod
    def apply(self, flows: Sequence[FlowRecord], interval: float) -> MitigationOutcome:
        """Apply the technique to one observation interval of victim traffic."""

    def rating(self, dimension: Dimension) -> Rating:
        """The technique's rating for a dimension (NEUTRAL if unspecified)."""
        return self.ratings.get(dimension, Rating.NEUTRAL)

    def rating_row(self) -> Dict[Dimension, Rating]:
        """All ratings, with NEUTRAL filled in for unspecified dimensions."""
        return {dimension: self.rating(dimension) for dimension in Dimension}


class NoMitigation(MitigationTechnique):
    """The do-nothing baseline: everything is delivered (subject to port capacity
    further down the pipeline)."""

    name = "none"
    ratings: Dict[Dimension, Rating] = {}

    def apply(self, flows: Sequence[FlowRecord], interval: float) -> MitigationOutcome:
        return MitigationOutcome(delivered=list(flows))
