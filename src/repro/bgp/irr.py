"""Internet Routing Registry (IRR) database model.

IXP route servers filter member announcements against IRR ``route`` objects
so that a member can only announce prefixes it (or one of its customers)
registered (paper §2.2 and §4.3: "routing hygiene").  The reproduction
models the IRR as an in-memory mapping from origin ASN to the set of
registered prefixes, with the usual "covering registration authorises more
specifics" semantics so that /32 blackholing announcements are accepted
when the covering /24 (or shorter) prefix is registered to the same origin.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass

from .prefix import Prefix, parse_prefix


@dataclass(frozen=True)
class RouteObject:
    """An IRR ``route`` object binding a prefix to its origin ASN."""

    prefix: Prefix
    origin_asn: int
    source: str = "RADB"

    def __str__(self) -> str:
        return f"route: {self.prefix} origin: AS{self.origin_asn} ({self.source})"


class IrrDatabase:
    """In-memory IRR used by the route-server import policy."""

    def __init__(self) -> None:
        self._by_origin: dict[int, set[Prefix]] = defaultdict(set)
        self._objects: list[RouteObject] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self, prefix: "str | Prefix", origin_asn: int, source: str = "RADB"
    ) -> RouteObject:
        """Register a route object and return it."""
        if origin_asn <= 0:
            raise ValueError(f"origin ASN must be positive, got {origin_asn}")
        prefix = parse_prefix(prefix)
        obj = RouteObject(prefix=prefix, origin_asn=origin_asn, source=source)
        self._by_origin[origin_asn].add(prefix)
        self._objects.append(obj)
        return obj

    def register_many(self, prefixes: Iterable["str | Prefix"], origin_asn: int) -> None:
        """Register several prefixes for the same origin ASN."""
        for prefix in prefixes:
            self.register(prefix, origin_asn)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def prefixes_for(self, origin_asn: int) -> set[Prefix]:
        """All prefixes registered for an origin ASN."""
        return set(self._by_origin.get(origin_asn, set()))

    def is_authorized(self, prefix: "str | Prefix", origin_asn: int) -> bool:
        """True if ``origin_asn`` registered ``prefix`` or a covering prefix.

        Allowing more specifics of a registered covering prefix mirrors how
        IXPs accept /32 blackholing announcements for registered /24s.
        """
        prefix = parse_prefix(prefix)
        registered = self._by_origin.get(origin_asn)
        if not registered:
            return False
        return any(candidate.contains(prefix) for candidate in registered)

    def objects(self) -> list[RouteObject]:
        """All registered route objects (in registration order)."""
        return list(self._objects)

    def __len__(self) -> int:
        return len(self._objects)
