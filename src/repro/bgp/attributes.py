"""BGP path attributes.

The attribute set carried by :class:`~repro.bgp.messages.RouteAnnouncement`
objects.  Only the attributes the reproduction needs are modelled (origin,
AS path, next hop, MED, local preference and the three community flavours),
but the container keeps unknown attributes so policies can be extended.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from .communities import ExtendedCommunity, LargeCommunity, StandardCommunity


class Origin(Enum):
    """BGP ORIGIN attribute values (RFC 4271 §5.1.1)."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


@dataclass(frozen=True)
class PathAttributes:
    """Immutable bundle of the path attributes attached to an announcement."""

    origin: Origin = Origin.IGP
    as_path: tuple[int, ...] = ()
    next_hop: str = ""
    med: int = 0
    local_pref: int = 100
    communities: frozenset[StandardCommunity] = field(default_factory=frozenset)
    extended_communities: frozenset[ExtendedCommunity] = field(default_factory=frozenset)
    large_communities: frozenset[LargeCommunity] = field(default_factory=frozenset)

    # ------------------------------------------------------------------
    # AS-path helpers
    # ------------------------------------------------------------------
    @property
    def origin_asn(self) -> int | None:
        """The rightmost ASN on the AS path (the originating AS)."""
        return self.as_path[-1] if self.as_path else None

    @property
    def neighbor_asn(self) -> int | None:
        """The leftmost ASN on the AS path (the announcing neighbour)."""
        return self.as_path[0] if self.as_path else None

    @property
    def as_path_length(self) -> int:
        return len(self.as_path)

    def prepend(self, asn: int, times: int = 1) -> "PathAttributes":
        """Return a copy with ``asn`` prepended ``times`` times to the path."""
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        return replace(self, as_path=(asn,) * times + self.as_path)

    # ------------------------------------------------------------------
    # Community helpers
    # ------------------------------------------------------------------
    def with_communities(self, *communities: StandardCommunity) -> "PathAttributes":
        """Return a copy with additional standard communities."""
        return replace(self, communities=self.communities | frozenset(communities))

    def with_extended_communities(
        self, *communities: ExtendedCommunity
    ) -> "PathAttributes":
        """Return a copy with additional extended communities."""
        return replace(
            self,
            extended_communities=self.extended_communities | frozenset(communities),
        )

    def with_large_communities(self, *communities: LargeCommunity) -> "PathAttributes":
        """Return a copy with additional large communities."""
        return replace(
            self, large_communities=self.large_communities | frozenset(communities)
        )

    def with_next_hop(self, next_hop: str) -> "PathAttributes":
        """Return a copy with the NEXT_HOP rewritten (e.g. to a blackhole IP)."""
        return replace(self, next_hop=next_hop)

    def has_community(self, community: StandardCommunity) -> bool:
        return community in self.communities

    @property
    def has_blackhole_community(self) -> bool:
        """True if any attached standard community requests blackholing."""
        return any(community.is_blackhole for community in self.communities)
