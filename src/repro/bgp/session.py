"""BGP session model.

A strongly simplified BGP finite-state machine sufficient for the
reproduction: sessions are either eBGP (member ↔ route server) or iBGP
(route server ↔ blackholing controller), negotiate the ADD-PATH capability
at OPEN time, and deliver UPDATE messages to a registered consumer.

The full RFC 4271 FSM (Connect/Active/OpenSent/OpenConfirm timers,
collision detection, …) is intentionally collapsed into the three states
the experiments observe: ``IDLE``, ``ESTABLISHED`` and ``CLOSED``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .messages import (
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)


class SessionState(Enum):
    """Session life-cycle states."""

    IDLE = "idle"
    ESTABLISHED = "established"
    CLOSED = "closed"


class SessionType(Enum):
    """eBGP (between ASes) or iBGP (within the IXP's management AS)."""

    EBGP = "ebgp"
    IBGP = "ibgp"


class SessionError(RuntimeError):
    """Raised on protocol violations (e.g. UPDATE before OPEN)."""


@dataclass
class BgpSession:
    """One directed BGP session from ``local_asn`` to ``peer_asn``.

    ``on_update`` is invoked for every UPDATE delivered while the session
    is ESTABLISHED; this is how the route server and the blackholing
    controller consume announcements.
    """

    local_asn: int
    peer_asn: int
    session_type: SessionType = SessionType.EBGP
    add_path: bool = False
    on_update: Optional[Callable[[UpdateMessage], None]] = None
    state: SessionState = SessionState.IDLE
    #: Messages delivered over this session (most recent last).
    history: list[object] = field(default_factory=list)
    keepalives_received: int = 0
    updates_received: int = 0

    def __post_init__(self) -> None:
        if self.session_type is SessionType.IBGP and self.local_asn != self.peer_asn:
            raise ValueError(
                "iBGP sessions require both endpoints in the same AS "
                f"(got {self.local_asn} and {self.peer_asn})"
            )
        if self.session_type is SessionType.EBGP and self.local_asn == self.peer_asn:
            raise ValueError("eBGP sessions require distinct ASNs")

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------
    @property
    def is_established(self) -> bool:
        return self.state is SessionState.ESTABLISHED

    def open(self, message: Optional[OpenMessage] = None) -> None:
        """Establish the session, negotiating ADD-PATH from the OPEN."""
        if self.state is SessionState.CLOSED:
            raise SessionError("cannot re-open a closed session; create a new one")
        if message is not None:
            self.history.append(message)
            # ADD-PATH is only active when both sides want it.
            self.add_path = self.add_path and message.add_path
        self.state = SessionState.ESTABLISHED

    def close(self, notification: Optional[NotificationMessage] = None) -> None:
        """Tear the session down (optionally recording the NOTIFICATION)."""
        if notification is not None:
            self.history.append(notification)
        self.state = SessionState.CLOSED

    # ------------------------------------------------------------------
    # Message delivery
    # ------------------------------------------------------------------
    def deliver(self, message: UpdateMessage) -> None:
        """Deliver an UPDATE over the session."""
        if not self.is_established:
            raise SessionError(
                f"cannot deliver UPDATE on a session in state {self.state.value}"
            )
        self.history.append(message)
        self.updates_received += 1
        if self.on_update is not None:
            self.on_update(message)

    def keepalive(self) -> None:
        """Record a KEEPALIVE (liveness signal)."""
        if not self.is_established:
            raise SessionError("cannot send KEEPALIVE on a non-established session")
        self.history.append(KeepaliveMessage(sender_asn=self.peer_asn))
        self.keepalives_received += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BgpSession(AS{self.local_asn}<->AS{self.peer_asn}, "
            f"{self.session_type.value}, {self.state.value})"
        )
