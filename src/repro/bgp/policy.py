"""Route-server import policy.

Implements the "routing hygiene" checks the paper describes for the IXP
route server (§4.3): every member announcement is validated against

* the IRR database (origin must have registered the prefix or a covering
  prefix),
* the bogon list,
* RPKI origin validation (INVALID announcements are rejected; NOT_FOUND is
  accepted, as in production route-server deployments),
* basic sanity checks (prefix-length limits, AS-path sanity, next-hop
  present).

Host routes (/32, /128) are only accepted when they carry a blackholing
community — exactly the exception IXPs configure for RTBH — or when the
policy is explicitly told to accept more specifics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .bogons import BogonFilter
from .irr import IrrDatabase
from .messages import RouteAnnouncement
from .rpki import RpkiValidator, RpkiValidity


class PolicyAction(Enum):
    """Outcome of an import-policy evaluation."""

    ACCEPT = "accept"
    REJECT = "reject"


class RejectReason(Enum):
    """Why an announcement was rejected (used for operator telemetry)."""

    NONE = "none"
    BOGON = "bogon"
    IRR_UNAUTHORIZED = "irr_unauthorized"
    RPKI_INVALID = "rpki_invalid"
    PREFIX_TOO_LONG = "prefix_too_long"
    PREFIX_TOO_SHORT = "prefix_too_short"
    MISSING_NEXT_HOP = "missing_next_hop"
    EMPTY_AS_PATH = "empty_as_path"
    AS_PATH_TOO_LONG = "as_path_too_long"


@dataclass(frozen=True)
class PolicyResult:
    """Result of evaluating one announcement against the import policy."""

    action: PolicyAction
    reason: RejectReason = RejectReason.NONE
    detail: str = ""

    @property
    def accepted(self) -> bool:
        return self.action is PolicyAction.ACCEPT


@dataclass
class ImportPolicy:
    """Configurable route-server import policy."""

    irr: IrrDatabase = field(default_factory=IrrDatabase)
    rpki: RpkiValidator = field(default_factory=RpkiValidator)
    bogons: BogonFilter = field(default_factory=BogonFilter)
    #: Longest prefix accepted for regular (non-blackhole) IPv4 announcements.
    max_ipv4_length: int = 24
    #: Longest prefix accepted for regular (non-blackhole) IPv6 announcements.
    max_ipv6_length: int = 48
    #: Shortest prefix accepted (reject default-route style announcements).
    min_ipv4_length: int = 8
    min_ipv6_length: int = 19
    #: Reject absurdly long AS paths (loop/leak protection).
    max_as_path_length: int = 32
    #: When True, more-specific announcements (up to host routes) are
    #: accepted even without a blackhole community.  The Stellar signaling
    #: path enables this because Advanced Blackholing signals are host
    #: routes tagged with extended communities rather than the RTBH
    #: standard community.
    accept_more_specifics_with_blackhole_only: bool = True
    #: Require IRR authorisation.  Disabled for lab scenarios.
    require_irr: bool = True
    #: Reject RPKI-invalid announcements.
    reject_rpki_invalid: bool = True

    # ------------------------------------------------------------------
    def evaluate(
        self, route: RouteAnnouncement, allow_blackhole_specifics: bool = True
    ) -> PolicyResult:
        """Evaluate a single announcement.

        ``allow_blackhole_specifics`` controls whether host routes tagged
        for blackholing (standard RTBH community or any extended community,
        which is how Stellar requests arrive) bypass the prefix-length
        ceiling.
        """
        attrs = route.attributes
        prefix = route.prefix

        if not attrs.as_path:
            return PolicyResult(PolicyAction.REJECT, RejectReason.EMPTY_AS_PATH)
        if attrs.as_path_length > self.max_as_path_length:
            return PolicyResult(
                PolicyAction.REJECT,
                RejectReason.AS_PATH_TOO_LONG,
                f"AS path length {attrs.as_path_length} exceeds {self.max_as_path_length}",
            )
        if not attrs.next_hop:
            return PolicyResult(PolicyAction.REJECT, RejectReason.MISSING_NEXT_HOP)

        if self.bogons.is_bogon(prefix):
            return PolicyResult(
                PolicyAction.REJECT, RejectReason.BOGON, f"{prefix} is bogon space"
            )

        min_len, max_len = (
            (self.min_ipv4_length, self.max_ipv4_length)
            if prefix.version == 4
            else (self.min_ipv6_length, self.max_ipv6_length)
        )
        if prefix.length < min_len:
            return PolicyResult(
                PolicyAction.REJECT,
                RejectReason.PREFIX_TOO_SHORT,
                f"{prefix} shorter than /{min_len}",
            )
        if prefix.length > max_len:
            is_mitigation_request = (
                attrs.has_blackhole_community or bool(attrs.extended_communities)
            )
            allowed = (
                allow_blackhole_specifics
                and self.accept_more_specifics_with_blackhole_only
                and is_mitigation_request
            ) or not self.accept_more_specifics_with_blackhole_only
            if not allowed:
                return PolicyResult(
                    PolicyAction.REJECT,
                    RejectReason.PREFIX_TOO_LONG,
                    f"{prefix} longer than /{max_len} without a blackhole community",
                )

        origin = attrs.origin_asn
        if self.require_irr and origin is not None:
            if not self.irr.is_authorized(prefix, origin):
                return PolicyResult(
                    PolicyAction.REJECT,
                    RejectReason.IRR_UNAUTHORIZED,
                    f"AS{origin} has no IRR route object covering {prefix}",
                )

        if self.reject_rpki_invalid and origin is not None:
            validity = self.rpki.validate(prefix, origin)
            if validity is RpkiValidity.INVALID:
                return PolicyResult(
                    PolicyAction.REJECT,
                    RejectReason.RPKI_INVALID,
                    f"RPKI invalid for {prefix} origin AS{origin}",
                )

        return PolicyResult(PolicyAction.ACCEPT)


def permissive_policy() -> ImportPolicy:
    """A policy that skips IRR/RPKI checks — used by lab-style scenarios."""
    return ImportPolicy(require_irr=False, reject_rpki_invalid=False)
