"""Routing Information Base (RIB).

Two related structures:

* :class:`RoutingInformationBase` — a multi-path RIB keyed by
  ``(prefix, neighbor ASN, path id)``.  The blackholing controller keeps one
  of these fed over iBGP with ADD-PATH, so it sees *all* paths for a prefix
  rather than only the route server's best path (paper §4.3).
* :class:`RibDiff` — the difference between two RIB snapshots.  The
  controller computes diffs to derive the set of abstract configuration
  changes that must be pushed to the data plane (paper §4.4).

Best-path selection (a simplified RFC 4271 decision process) is provided
for the route server's client RIBs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Optional

from .messages import RouteAnnouncement, RouteWithdrawal
from .prefix import Prefix

#: RIB entries are keyed by (prefix, neighbor ASN, ADD-PATH path id).
RibKey = tuple[Prefix, int, int]


def _key_for(route: RouteAnnouncement) -> RibKey:
    neighbor = route.attributes.neighbor_asn
    if neighbor is None:
        raise ValueError(f"route {route} has an empty AS path")
    return (route.prefix, neighbor, route.path_id)


@dataclass(frozen=True)
class RibDiff:
    """Routes added, removed or replaced between two RIB snapshots."""

    added: tuple[RouteAnnouncement, ...] = ()
    removed: tuple[RouteAnnouncement, ...] = ()
    changed: tuple[tuple[RouteAnnouncement, RouteAnnouncement], ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def __len__(self) -> int:
        return len(self.added) + len(self.removed) + len(self.changed)


class RoutingInformationBase:
    """A multi-path RIB with snapshot/diff support."""

    def __init__(self) -> None:
        self._routes: dict[RibKey, RouteAnnouncement] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, route: RouteAnnouncement) -> None:
        """Insert or replace a route."""
        self._routes[_key_for(route)] = route

    def withdraw(self, withdrawal: RouteWithdrawal, neighbor_asn: int) -> bool:
        """Remove the route matching the withdrawal.  Returns True if found."""
        key = (withdrawal.prefix, neighbor_asn, withdrawal.path_id)
        return self._routes.pop(key, None) is not None

    def remove_route(self, route: RouteAnnouncement) -> bool:
        """Remove a specific route object.  Returns True if found."""
        return self._routes.pop(_key_for(route), None) is not None

    def remove_neighbor(self, neighbor_asn: int) -> int:
        """Drop every route learned from ``neighbor_asn`` (session reset).

        Returns the number of routes removed.
        """
        keys = [key for key in self._routes if key[1] == neighbor_asn]
        for key in keys:
            del self._routes[key]
        return len(keys)

    def clear(self) -> None:
        self._routes.clear()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def routes(self) -> Iterator[RouteAnnouncement]:
        """Iterate over all routes."""
        return iter(self._routes.values())

    def routes_for(self, prefix: Prefix) -> list[RouteAnnouncement]:
        """All routes (from all neighbours / path ids) for an exact prefix."""
        return [route for key, route in self._routes.items() if key[0] == prefix]

    def routes_from(self, neighbor_asn: int) -> list[RouteAnnouncement]:
        """All routes announced by a neighbour ASN."""
        return [route for key, route in self._routes.items() if key[1] == neighbor_asn]

    def covering_routes(self, prefix: Prefix) -> list[RouteAnnouncement]:
        """Routes whose prefix covers (is equal to or less specific than) ``prefix``."""
        return [route for route in self._routes.values() if route.prefix.contains(prefix)]

    def longest_match(self, address: str) -> Optional[RouteAnnouncement]:
        """Longest-prefix-match lookup for a destination address.

        Ties between paths for the same prefix are broken by the best-path
        decision process.
        """
        matching = [
            route
            for route in self._routes.values()
            if route.prefix.contains_address(address)
        ]
        if not matching:
            return None
        longest = max(route.prefix.length for route in matching)
        candidates = [route for route in matching if route.prefix.length == longest]
        return best_path(candidates)

    def prefixes(self) -> set[Prefix]:
        """The set of distinct prefixes present in the RIB."""
        return {key[0] for key in self._routes}

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Prefix) -> bool:
        return any(key[0] == prefix for key in self._routes)

    # ------------------------------------------------------------------
    # Snapshot / diff
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[RibKey, RouteAnnouncement]:
        """Return a shallow copy of the RIB contents (routes are immutable)."""
        return dict(self._routes)

    @staticmethod
    def diff(
        before: dict[RibKey, RouteAnnouncement],
        after: dict[RibKey, RouteAnnouncement],
    ) -> RibDiff:
        """Compute the difference between two snapshots."""
        added = []
        removed = []
        changed = []
        for key, route in after.items():
            if key not in before:
                added.append(route)
            elif before[key] != route:
                changed.append((before[key], route))
        for key, route in before.items():
            if key not in after:
                removed.append(route)
        return RibDiff(
            added=tuple(added), removed=tuple(removed), changed=tuple(changed)
        )


def best_path(routes: Iterable[RouteAnnouncement]) -> Optional[RouteAnnouncement]:
    """Simplified BGP best-path selection.

    Preference order (highest first): LOCAL_PREF, shortest AS path, lowest
    ORIGIN, lowest MED, lowest neighbour ASN (deterministic tie-break).
    Returns ``None`` for an empty candidate set.
    """
    routes = list(routes)
    if not routes:
        return None

    def sort_key(route: RouteAnnouncement):
        attrs = route.attributes
        return (
            -attrs.local_pref,
            attrs.as_path_length,
            attrs.origin.value,
            attrs.med,
            attrs.neighbor_asn if attrs.neighbor_asn is not None else 2**32,
            route.path_id,
        )

    return min(routes, key=sort_key)
