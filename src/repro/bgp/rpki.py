"""RPKI Route Origin Authorization (ROA) validation.

The route server's import policy performs RPKI origin validation in
addition to IRR filtering (paper §4.3).  The model implements RFC 6811
semantics: an announcement is *valid* if a covering ROA authorises the
origin ASN and the prefix length does not exceed the ROA's ``max_length``;
*invalid* if covering ROAs exist but none matches; and *not found* when no
covering ROA exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .prefix import Prefix, parse_prefix


class RpkiValidity(Enum):
    """RFC 6811 origin-validation states."""

    VALID = "valid"
    INVALID = "invalid"
    NOT_FOUND = "not_found"


@dataclass(frozen=True)
class Roa:
    """A Route Origin Authorization."""

    prefix: Prefix
    max_length: int
    asn: int

    def __post_init__(self) -> None:
        limit = 32 if self.prefix.version == 4 else 128
        if not self.prefix.length <= self.max_length <= limit:
            raise ValueError(
                f"max_length {self.max_length} must lie between the prefix length "
                f"{self.prefix.length} and {limit}"
            )
        if self.asn < 0:
            raise ValueError(f"ASN must be non-negative, got {self.asn}")

    def covers(self, prefix: Prefix) -> bool:
        """True if the ROA's prefix covers ``prefix`` (ignoring max_length)."""
        return self.prefix.contains(prefix)

    def authorizes(self, prefix: Prefix, origin_asn: int) -> bool:
        """True if the ROA makes (prefix, origin) a VALID pair."""
        return (
            self.covers(prefix)
            and prefix.length <= self.max_length
            and origin_asn == self.asn
            and self.asn != 0  # AS0 ROAs only ever invalidate
        )


class RpkiValidator:
    """Validated-ROA-payload cache with RFC 6811 validation."""

    def __init__(self) -> None:
        self._roas: list[Roa] = []

    def add_roa(
        self, prefix: "str | Prefix", asn: int, max_length: int | None = None
    ) -> Roa:
        """Add a ROA.  ``max_length`` defaults to the prefix length."""
        prefix = parse_prefix(prefix)
        roa = Roa(
            prefix=prefix,
            max_length=prefix.length if max_length is None else max_length,
            asn=asn,
        )
        self._roas.append(roa)
        return roa

    def roas(self) -> list[Roa]:
        return list(self._roas)

    def validate(self, prefix: "str | Prefix", origin_asn: int) -> RpkiValidity:
        """Classify an announcement per RFC 6811."""
        prefix = parse_prefix(prefix)
        covering = [roa for roa in self._roas if roa.covers(prefix)]
        if not covering:
            return RpkiValidity.NOT_FOUND
        if any(roa.authorizes(prefix, origin_asn) for roa in covering):
            return RpkiValidity.VALID
        return RpkiValidity.INVALID

    def __len__(self) -> int:
        return len(self._roas)
