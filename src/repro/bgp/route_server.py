"""IXP route server.

The route server provides multi-lateral peering: every member maintains a
single eBGP session with it and thereby exchanges routes with all other
route-server users (paper §2.1).  For the reproduction the route server

* validates every member announcement against the import policy
  (IRR / RPKI / bogons / prefix-length hygiene),
* stores accepted routes in a multi-path RIB,
* propagates accepted announcements to the other members' sessions
  (honouring per-announcement policy-control communities such as
  "announce to all except AS x" used in Fig. 3(b)),
* feeds *all* accepted paths to registered southbound consumers (the
  Stellar blackholing controller) over iBGP with ADD-PATH — crucially it
  does **not** reflect Advanced Blackholing signals back to the members
  (paper §4.3).
"""

from __future__ import annotations

import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Optional

from .messages import (
    RouteAnnouncement,
    RouteWithdrawal,
    UpdateMessage,
)
from .policy import ImportPolicy, PolicyResult, permissive_policy
from .prefix import Prefix
from .rib import RoutingInformationBase
from .session import BgpSession, SessionType


@dataclass(frozen=True)
class PolicyControl:
    """Per-announcement export control expressed via IXP action communities.

    ``announce_to_all`` with an ``except_asns`` set models the "All-k"
    categories of Fig. 3(b) (announce to all route-server members except k
    of them); when ``announce_to_all`` is False, ``only_asns`` lists the
    explicit targets.
    """

    announce_to_all: bool = True
    except_asns: frozenset[int] = frozenset()
    only_asns: frozenset[int] = frozenset()

    def targets(self, members: set[int], sender: int) -> set[int]:
        """Resolve the member ASNs this announcement is exported to."""
        candidates = set(members) - {sender}
        if self.announce_to_all:
            return candidates - set(self.except_asns)
        return candidates & set(self.only_asns)

    @property
    def category(self) -> str:
        """The Fig. 3(b) category label for this control."""
        if self.announce_to_all:
            if not self.except_asns:
                return "All"
            return f"All-{len(self.except_asns)}"
        return str(len(self.only_asns))


@dataclass
class RejectedAnnouncement:
    """Book-keeping record of a rejected announcement (operator telemetry)."""

    announcement: RouteAnnouncement
    result: PolicyResult


class RouteServer:
    """Multi-lateral peering route server with import policy."""

    def __init__(
        self,
        ixp_asn: int,
        policy: Optional[ImportPolicy] = None,
        blackhole_next_hop: str = "192.0.2.1",
    ) -> None:
        self.ixp_asn = ixp_asn
        self.policy = policy if policy is not None else permissive_policy()
        #: Next hop installed on blackholed routes (the IXP's null interface).
        self.blackhole_next_hop = blackhole_next_hop
        self.rib = RoutingInformationBase()
        self._member_sessions: dict[int, BgpSession] = {}
        #: Southbound consumers (e.g. the Stellar blackholing controller).
        self._consumers: list[Callable[[UpdateMessage], None]] = []
        self._rejections: list[RejectedAnnouncement] = []
        self._policy_controls: list[tuple[RouteAnnouncement, PolicyControl]] = []
        self._path_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Membership / sessions
    # ------------------------------------------------------------------
    def connect_member(self, member_asn: int) -> BgpSession:
        """Establish (or return) the eBGP session with a member."""
        if member_asn == self.ixp_asn:
            raise ValueError("a member cannot use the IXP's own ASN")
        session = self._member_sessions.get(member_asn)
        if session is None:
            session = BgpSession(
                local_asn=self.ixp_asn,
                peer_asn=member_asn,
                session_type=SessionType.EBGP,
            )
            session.open()
            self._member_sessions[member_asn] = session
        return session

    def disconnect_member(self, member_asn: int) -> int:
        """Tear down a member session and flush its routes.

        Returns the number of routes removed.
        """
        session = self._member_sessions.pop(member_asn, None)
        if session is not None:
            session.close()
        return self.rib.remove_neighbor(member_asn)

    @property
    def member_asns(self) -> set[int]:
        return set(self._member_sessions)

    def session_for(self, member_asn: int) -> Optional[BgpSession]:
        return self._member_sessions.get(member_asn)

    # ------------------------------------------------------------------
    # Southbound consumers (Stellar controller)
    # ------------------------------------------------------------------
    def register_consumer(self, consumer: Callable[[UpdateMessage], None]) -> None:
        """Register a southbound consumer fed with every accepted UPDATE."""
        self._consumers.append(consumer)

    # ------------------------------------------------------------------
    # Announcement processing
    # ------------------------------------------------------------------
    def receive_update(
        self,
        update: UpdateMessage,
        policy_control: Optional[PolicyControl] = None,
    ) -> list[PolicyResult]:
        """Process an UPDATE from a member.

        Returns the per-announcement policy results (in announcement
        order).  Accepted announcements are stored, propagated to the other
        members (per ``policy_control``) and forwarded southbound with a
        fresh ADD-PATH path id.
        """
        sender = update.sender_asn
        if sender not in self._member_sessions:
            self.connect_member(sender)
        control = policy_control if policy_control is not None else PolicyControl()

        results: list[PolicyResult] = []
        accepted: list[RouteAnnouncement] = []
        withdrawn: list[RouteWithdrawal] = []
        for ann in update.announcements:
            result = self.policy.evaluate(ann)
            results.append(result)
            if not result.accepted:
                self._rejections.append(RejectedAnnouncement(ann, result))
                continue
            # Implicit withdraw: a re-announcement of the same prefix by the
            # same member replaces the previously stored path.
            for existing in self.rib.routes_for(ann.prefix):
                if existing.attributes.neighbor_asn == sender:
                    self.rib.remove_route(existing)
                    withdrawn.append(
                        RouteWithdrawal(prefix=existing.prefix, path_id=existing.path_id)
                    )
            stored = RouteAnnouncement(
                prefix=ann.prefix,
                attributes=ann.attributes,
                path_id=next(self._path_ids),
            )
            self.rib.add(stored)
            accepted.append(stored)
            self._policy_controls.append((stored, control))

        for withdrawal in update.withdrawals:
            for route in self.rib.routes_for(withdrawal.prefix):
                if route.attributes.neighbor_asn == sender:
                    self.rib.remove_route(route)
                    withdrawn.append(
                        RouteWithdrawal(prefix=route.prefix, path_id=route.path_id)
                    )

        if accepted or withdrawn:
            self._propagate(sender, accepted, withdrawn, control)
        return results

    def announce(
        self,
        announcement: RouteAnnouncement,
        policy_control: Optional[PolicyControl] = None,
    ) -> PolicyResult:
        """Convenience wrapper: process a single announcement."""
        sender = announcement.attributes.neighbor_asn
        if sender is None:
            raise ValueError("announcement must carry a non-empty AS path")
        update = UpdateMessage(sender_asn=sender, announcements=(announcement,))
        return self.receive_update(update, policy_control)[0]

    def withdraw(self, prefix: Prefix, sender_asn: int) -> None:
        """Convenience wrapper: withdraw a prefix previously announced."""
        update = UpdateMessage(
            sender_asn=sender_asn, withdrawals=(RouteWithdrawal(prefix=prefix),)
        )
        self.receive_update(update)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(
        self,
        sender: int,
        announcements: list[RouteAnnouncement],
        withdrawals: list[RouteWithdrawal],
        control: PolicyControl,
    ) -> None:
        # RTBH semantics: when a member accepts a blackhole announcement,
        # the next hop is rewritten to the IXP's blackholing IP so traffic
        # is dropped at the IXP's null interface (paper §2.2).  Advanced
        # Blackholing signals (extended communities without the RTBH
        # standard community) are *not* reflected to the members at all;
        # they are only forwarded southbound to the controller.
        member_facing: list[RouteAnnouncement] = []
        for ann in announcements:
            if ann.attributes.extended_communities and not ann.is_blackhole_request:
                continue  # Stellar signal: IXP-internal only.
            if ann.is_blackhole_request:
                ann = RouteAnnouncement(
                    prefix=ann.prefix,
                    attributes=ann.attributes.with_next_hop(self.blackhole_next_hop),
                    path_id=ann.path_id,
                )
            member_facing.append(ann)

        if member_facing or withdrawals:
            targets = control.targets(self.member_asns, sender)
            for member_asn in sorted(targets):
                session = self._member_sessions[member_asn]
                if not session.is_established:
                    continue
                session.deliver(
                    UpdateMessage(
                        sender_asn=self.ixp_asn,
                        announcements=tuple(member_facing),
                        withdrawals=tuple(withdrawals),
                    )
                )

        # Southbound: the controller sees every accepted path (ADD-PATH).
        if announcements or withdrawals:
            southbound = UpdateMessage(
                sender_asn=self.ixp_asn,
                announcements=tuple(announcements),
                withdrawals=tuple(withdrawals),
            )
            for consumer in self._consumers:
                consumer(southbound)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def rejections(self) -> list[RejectedAnnouncement]:
        return list(self._rejections)

    def policy_control_log(self) -> list[tuple[RouteAnnouncement, PolicyControl]]:
        """Accepted announcements with their export policy control."""
        return list(self._policy_controls)
