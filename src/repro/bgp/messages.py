"""BGP message model.

The reproduction does not serialise BGP to the wire; instead it models the
message types and their semantic payloads as value objects that flow between
member routers, the route server and Stellar's blackholing controller.  The
UPDATE message is the workhorse: it carries route announcements (NLRI plus
path attributes) and withdrawals.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .attributes import PathAttributes
from .prefix import Prefix

_message_ids = itertools.count(1)


class MessageType(Enum):
    """BGP-4 message types (RFC 4271 §4)."""

    OPEN = 1
    UPDATE = 2
    NOTIFICATION = 3
    KEEPALIVE = 4


@dataclass(frozen=True)
class RouteAnnouncement:
    """A single NLRI (prefix) announced with a set of path attributes.

    ``path_id`` carries the ADD-PATH (RFC 7911) path identifier.  The route
    server uses distinct path identifiers when forwarding routes for the
    same prefix from different members to the blackholing controller so
    that best-path selection does not hide any of them.
    """

    prefix: Prefix
    attributes: PathAttributes
    path_id: int = 0

    @property
    def origin_asn(self) -> Optional[int]:
        return self.attributes.origin_asn

    @property
    def is_blackhole_request(self) -> bool:
        """True if the announcement carries an RTBH community."""
        return self.attributes.has_blackhole_community

    def __str__(self) -> str:
        return f"{self.prefix} via AS{self.attributes.neighbor_asn} (path_id={self.path_id})"


@dataclass(frozen=True)
class RouteWithdrawal:
    """Withdrawal of a previously announced prefix."""

    prefix: Prefix
    path_id: int = 0


@dataclass(frozen=True)
class UpdateMessage:
    """A BGP UPDATE carrying announcements and withdrawals."""

    sender_asn: int
    announcements: tuple[RouteAnnouncement, ...] = ()
    withdrawals: tuple[RouteWithdrawal, ...] = ()
    message_id: int = field(default_factory=lambda: next(_message_ids))

    @property
    def type(self) -> MessageType:
        return MessageType.UPDATE

    @property
    def is_empty(self) -> bool:
        return not self.announcements and not self.withdrawals

    def __len__(self) -> int:
        return len(self.announcements) + len(self.withdrawals)


@dataclass(frozen=True)
class OpenMessage:
    """A BGP OPEN message with the capabilities relevant to the model."""

    sender_asn: int
    hold_time: int = 90
    bgp_identifier: str = "0.0.0.0"
    add_path: bool = False
    ipv6: bool = True

    @property
    def type(self) -> MessageType:
        return MessageType.OPEN


@dataclass(frozen=True)
class KeepaliveMessage:
    """A BGP KEEPALIVE message."""

    sender_asn: int

    @property
    def type(self) -> MessageType:
        return MessageType.KEEPALIVE


@dataclass(frozen=True)
class NotificationMessage:
    """A BGP NOTIFICATION message closing the session with an error."""

    sender_asn: int
    error_code: int
    error_subcode: int = 0
    reason: str = ""

    @property
    def type(self) -> MessageType:
        return MessageType.NOTIFICATION


def announcement(
    prefix: "str | Prefix",
    asn: int,
    next_hop: str = "",
    attributes: Optional[PathAttributes] = None,
    path_id: int = 0,
) -> RouteAnnouncement:
    """Convenience constructor for a single-prefix announcement.

    If explicit ``attributes`` are given they are used as-is (with the AS
    path prepended with ``asn`` when empty); otherwise a minimal attribute
    set originated by ``asn`` is created.
    """
    from .prefix import parse_prefix

    prefix = parse_prefix(prefix)
    if attributes is None:
        attributes = PathAttributes(as_path=(asn,), next_hop=next_hop)
    elif not attributes.as_path:
        attributes = attributes.prepend(asn)
    if next_hop and not attributes.next_hop:
        attributes = attributes.with_next_hop(next_hop)
    return RouteAnnouncement(prefix=prefix, attributes=attributes, path_id=path_id)
