"""BGP community attributes.

Three community flavours are modelled:

* **Standard communities** (RFC 1997) — 32-bit ``ASN:value`` tags.  The
  well-known ``BLACKHOLE`` community (RFC 7999, ``65535:666``) and the IXP
  specific ``IXP_ASN:666`` variant trigger classic RTBH.
* **Extended communities** (RFC 4360) — 64-bit typed values.  Stellar uses a
  dedicated extended-community namespace to encode fine-grained blackholing
  rules (see :mod:`repro.core.community_codec`).
* **Large communities** (RFC 8092) — 96-bit ``ASN:fn:value`` triples, kept
  for completeness of the substrate.

Communities are frozen dataclasses so they can live in sets attached to
routes and be compared structurally.
"""

from __future__ import annotations

from dataclasses import dataclass

#: RFC 7999 well-known BLACKHOLE community.
WELL_KNOWN_BLACKHOLE = (65535, 666)

#: Conventional value used by IXPs for RTBH (``IXP_ASN:666``).
RTBH_COMMUNITY_VALUE = 666

#: RFC 1997 well-known NO_EXPORT community.
NO_EXPORT = (65535, 65281)

#: RFC 1997 well-known NO_ADVERTISE community.
NO_ADVERTISE = (65535, 65282)


def _check_16bit(value: int, label: str) -> None:
    if not 0 <= value <= 0xFFFF:
        raise ValueError(f"{label} must fit in 16 bits, got {value}")


def _check_32bit(value: int, label: str) -> None:
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"{label} must fit in 32 bits, got {value}")


@dataclass(frozen=True)
class StandardCommunity:
    """RFC 1997 community: 16-bit ASN, 16-bit value."""

    asn: int
    value: int

    def __post_init__(self) -> None:
        _check_16bit(self.asn, "asn")
        _check_16bit(self.value, "value")

    @classmethod
    def parse(cls, text: str) -> "StandardCommunity":
        """Parse the canonical ``"ASN:value"`` textual form."""
        try:
            asn_text, value_text = text.split(":")
            return cls(int(asn_text), int(value_text))
        except (ValueError, TypeError) as exc:
            raise ValueError(f"invalid standard community {text!r}") from exc

    @property
    def is_blackhole(self) -> bool:
        """True for RFC 7999 BLACKHOLE or the conventional ``*:666`` tag."""
        return (self.asn, self.value) == WELL_KNOWN_BLACKHOLE or (
            self.value == RTBH_COMMUNITY_VALUE
        )

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


@dataclass(frozen=True)
class ExtendedCommunity:
    """RFC 4360 extended community.

    The 8-byte value is modelled as ``(type, subtype, global_admin,
    local_admin)`` where ``global_admin`` is 16 bits and ``local_admin``
    32 bits (the "two-octet AS specific" encoding used by Stellar).
    """

    type: int
    subtype: int
    global_admin: int
    local_admin: int

    def __post_init__(self) -> None:
        if not 0 <= self.type <= 0xFF:
            raise ValueError(f"type must fit in 8 bits, got {self.type}")
        if not 0 <= self.subtype <= 0xFF:
            raise ValueError(f"subtype must fit in 8 bits, got {self.subtype}")
        _check_16bit(self.global_admin, "global_admin")
        _check_32bit(self.local_admin, "local_admin")

    def pack(self) -> int:
        """Return the community as a single 64-bit integer."""
        return (
            (self.type << 56)
            | (self.subtype << 48)
            | (self.global_admin << 32)
            | self.local_admin
        )

    @classmethod
    def unpack(cls, value: int) -> "ExtendedCommunity":
        """Inverse of :meth:`pack`."""
        _check = 0 <= value <= 0xFFFFFFFFFFFFFFFF
        if not _check:
            raise ValueError(f"extended community must fit in 64 bits, got {value}")
        return cls(
            type=(value >> 56) & 0xFF,
            subtype=(value >> 48) & 0xFF,
            global_admin=(value >> 32) & 0xFFFF,
            local_admin=value & 0xFFFFFFFF,
        )

    def __str__(self) -> str:
        return (
            f"ext:{self.type:#04x}:{self.subtype:#04x}:"
            f"{self.global_admin}:{self.local_admin}"
        )


@dataclass(frozen=True)
class LargeCommunity:
    """RFC 8092 large community: three 32-bit fields."""

    global_admin: int
    local_data_1: int
    local_data_2: int

    def __post_init__(self) -> None:
        _check_32bit(self.global_admin, "global_admin")
        _check_32bit(self.local_data_1, "local_data_1")
        _check_32bit(self.local_data_2, "local_data_2")

    @classmethod
    def parse(cls, text: str) -> "LargeCommunity":
        """Parse the canonical ``"A:B:C"`` textual form."""
        try:
            a, b, c = (int(part) for part in text.split(":"))
            return cls(a, b, c)
        except (ValueError, TypeError) as exc:
            raise ValueError(f"invalid large community {text!r}") from exc

    def __str__(self) -> str:
        return f"{self.global_admin}:{self.local_data_1}:{self.local_data_2}"


def rtbh_community(ixp_asn: int) -> StandardCommunity:
    """Return the IXP specific RTBH community (``IXP_ASN:666``)."""
    return StandardCommunity(ixp_asn, RTBH_COMMUNITY_VALUE)


def blackhole_community() -> StandardCommunity:
    """Return the RFC 7999 well-known BLACKHOLE community (``65535:666``)."""
    return StandardCommunity(*WELL_KNOWN_BLACKHOLE)
