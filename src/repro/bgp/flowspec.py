"""BGP Flowspec (RFC 5575) model.

Flowspec is one of the baselines the paper compares against (§1.1, §4.2.1):
it disseminates fine-grained traffic-flow specifications with traffic
filtering actions over BGP.  The reproduction models the NLRI component
types and actions needed to express the same filters as Advanced
Blackholing rules so the baseline comparison (Table 1 and the signalling
ablation bench) can reason about expressiveness, resource consumption and
cooperation requirements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .prefix import Prefix, parse_prefix


class FlowspecComponentType(Enum):
    """RFC 5575 §4 component types (subset used here)."""

    DEST_PREFIX = 1
    SOURCE_PREFIX = 2
    IP_PROTOCOL = 3
    PORT = 4
    DEST_PORT = 5
    SOURCE_PORT = 6
    ICMP_TYPE = 7
    ICMP_CODE = 8
    TCP_FLAGS = 9
    PACKET_LENGTH = 10
    DSCP = 11
    FRAGMENT = 12


class FlowspecActionType(Enum):
    """Traffic-filtering actions carried as extended communities (RFC 5575 §7)."""

    TRAFFIC_RATE = "traffic-rate"      # rate 0 == drop
    TRAFFIC_ACTION = "traffic-action"
    REDIRECT = "redirect"
    TRAFFIC_MARKING = "traffic-marking"


@dataclass(frozen=True)
class FlowspecAction:
    """One traffic-filtering action."""

    action_type: FlowspecActionType
    #: For TRAFFIC_RATE: the rate limit in bytes/second (0 == discard).
    rate_bytes_per_second: float = 0.0
    #: For REDIRECT: the target route-target / VRF label.
    redirect_target: str = ""

    @property
    def is_discard(self) -> bool:
        return (
            self.action_type is FlowspecActionType.TRAFFIC_RATE
            and self.rate_bytes_per_second == 0.0
        )


@dataclass(frozen=True)
class FlowspecRule:
    """A flow specification: match components plus actions."""

    dest_prefix: Optional[Prefix] = None
    source_prefix: Optional[Prefix] = None
    ip_protocol: Optional[int] = None
    source_port: Optional[int] = None
    dest_port: Optional[int] = None
    packet_length_max: Optional[int] = None
    actions: tuple[FlowspecAction, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in ("source_port", "dest_port"):
            port = getattr(self, name)
            if port is not None and not 0 <= port <= 65535:
                raise ValueError(f"{name} must be a valid L4 port, got {port}")
        if self.ip_protocol is not None and not 0 <= self.ip_protocol <= 255:
            raise ValueError(f"ip_protocol must fit in 8 bits, got {self.ip_protocol}")

    # ------------------------------------------------------------------
    def components(self) -> list[FlowspecComponentType]:
        """The NLRI component types present in this rule (ordered)."""
        present = []
        if self.dest_prefix is not None:
            present.append(FlowspecComponentType.DEST_PREFIX)
        if self.source_prefix is not None:
            present.append(FlowspecComponentType.SOURCE_PREFIX)
        if self.ip_protocol is not None:
            present.append(FlowspecComponentType.IP_PROTOCOL)
        if self.dest_port is not None:
            present.append(FlowspecComponentType.DEST_PORT)
        if self.source_port is not None:
            present.append(FlowspecComponentType.SOURCE_PORT)
        if self.packet_length_max is not None:
            present.append(FlowspecComponentType.PACKET_LENGTH)
        return present

    def matches(
        self,
        dst_ip: str,
        src_ip: str = "",
        protocol: Optional[int] = None,
        src_port: Optional[int] = None,
        dst_port: Optional[int] = None,
        packet_length: Optional[int] = None,
    ) -> bool:
        """Match a flow/packet description against the specification."""
        if self.dest_prefix is not None and not self.dest_prefix.contains_address(dst_ip):
            return False
        if self.source_prefix is not None:
            if not src_ip or not self.source_prefix.contains_address(src_ip):
                return False
        if self.ip_protocol is not None and protocol != self.ip_protocol:
            return False
        if self.source_port is not None and src_port != self.source_port:
            return False
        if self.dest_port is not None and dst_port != self.dest_port:
            return False
        if self.packet_length_max is not None and (
            packet_length is None or packet_length > self.packet_length_max
        ):
            return False
        return True

    @property
    def is_discard(self) -> bool:
        return any(action.is_discard for action in self.actions)


def drop_rule(
    dest_prefix: "str | Prefix",
    source_port: Optional[int] = None,
    ip_protocol: Optional[int] = None,
) -> FlowspecRule:
    """Build a discard rule for traffic towards ``dest_prefix``."""
    return FlowspecRule(
        dest_prefix=parse_prefix(dest_prefix),
        source_port=source_port,
        ip_protocol=ip_protocol,
        actions=(FlowspecAction(FlowspecActionType.TRAFFIC_RATE, 0.0),),
    )


def rate_limit_rule(
    dest_prefix: "str | Prefix",
    rate_bytes_per_second: float,
    source_port: Optional[int] = None,
    ip_protocol: Optional[int] = None,
) -> FlowspecRule:
    """Build a rate-limit rule for traffic towards ``dest_prefix``."""
    if rate_bytes_per_second < 0:
        raise ValueError("rate must be non-negative")
    return FlowspecRule(
        dest_prefix=parse_prefix(dest_prefix),
        source_port=source_port,
        ip_protocol=ip_protocol,
        actions=(
            FlowspecAction(FlowspecActionType.TRAFFIC_RATE, rate_bytes_per_second),
        ),
    )
