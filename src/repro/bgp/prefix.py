"""IP prefix handling for the BGP substrate.

Thin, validated wrappers around :mod:`ipaddress` networks.  Prefixes are
hashable value objects used as RIB keys, IRR/RPKI database entries, and
blackholing-rule destinations.  The paper's blackholing service operates
almost exclusively on IPv4 /32 host routes (98 % of blackholed prefixes),
but the model supports IPv6 as well.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from functools import cached_property, lru_cache, total_ordering
from typing import Union

_IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]
_IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]


@lru_cache(maxsize=1 << 16)
def _address_key(text: str) -> tuple[int, int]:
    """Memoised ``(version, integer value)`` of an IP address string.

    Flow records carry addresses as strings and the data plane matches the
    same addresses against prefixes over and over (one classification per
    flow per interval), so parsing dominates without this cache.
    """
    address = ipaddress.ip_address(text)
    return address.version, int(address)


@total_ordering
@dataclass(frozen=True)
class Prefix:
    """An IPv4 or IPv6 prefix (network address + prefix length)."""

    network: _IPNetwork

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"100.10.10.0/24"`` or a bare address (treated as a host)."""
        text = text.strip()
        if "/" not in text:
            address = ipaddress.ip_address(text)
            length = 32 if address.version == 4 else 128
            text = f"{address}/{length}"
        return cls(ipaddress.ip_network(text, strict=False))

    @classmethod
    def host(cls, address: str | _IPAddress) -> "Prefix":
        """Build the host route (/32 or /128) covering ``address``."""
        addr = ipaddress.ip_address(str(address))
        length = 32 if addr.version == 4 else 128
        return cls(ipaddress.ip_network(f"{addr}/{length}"))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """IP version: 4 or 6."""
        return self.network.version

    @property
    def length(self) -> int:
        """Prefix length in bits."""
        return self.network.prefixlen

    @property
    def is_host_route(self) -> bool:
        """True for /32 (IPv4) or /128 (IPv6) prefixes."""
        return self.length == (32 if self.version == 4 else 128)

    @property
    def address(self) -> str:
        """Network address as a string (without the prefix length)."""
        return str(self.network.network_address)

    @cached_property
    def int_bounds(self) -> tuple[int, int]:
        """``(first, last)`` address of the prefix as integers.

        Cached because the data plane uses the bounds for both the scalar
        :meth:`contains_address` check and the vectorized column matchers.
        """
        return (
            int(self.network.network_address),
            int(self.network.broadcast_address),
        )

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def contains(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        if self.version != other.version:
            return False
        return other.network.subnet_of(self.network)

    def contains_address(self, address: str | _IPAddress) -> bool:
        """True if the address falls inside this prefix."""
        version, value = _address_key(str(address))
        if version != self.version:
            return False
        low, high = self.int_bounds
        return low <= value <= high

    def is_more_specific_than(self, other: "Prefix") -> bool:
        """True if this prefix is a strict subnet of ``other``."""
        return self != other and other.contains(self)

    def supernet(self, new_length: int) -> "Prefix":
        """Return the covering prefix of length ``new_length``."""
        if new_length > self.length:
            raise ValueError(
                f"supernet length {new_length} longer than prefix length {self.length}"
            )
        return Prefix(self.network.supernet(new_prefix=new_length))

    # ------------------------------------------------------------------
    # Ordering / display
    # ------------------------------------------------------------------
    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self.version, int(self.network.network_address), self.length) < (
            other.version,
            int(other.network.network_address),
            other.length,
        )

    def __str__(self) -> str:
        return str(self.network)

    def __repr__(self) -> str:
        return f"Prefix({self.network})"


def parse_prefix(value: "str | Prefix") -> Prefix:
    """Coerce a string or :class:`Prefix` into a :class:`Prefix`."""
    if isinstance(value, Prefix):
        return value
    return Prefix.parse(value)
