"""BGP substrate: prefixes, communities, messages, RIBs, sessions and the
IXP route server with its import policy (IRR / RPKI / bogons)."""

from .attributes import Origin, PathAttributes
from .bogons import BogonFilter
from .communities import (
    ExtendedCommunity,
    LargeCommunity,
    StandardCommunity,
    blackhole_community,
    rtbh_community,
)
from .flowspec import (
    FlowspecAction,
    FlowspecActionType,
    FlowspecComponentType,
    FlowspecRule,
    drop_rule,
    rate_limit_rule,
)
from .irr import IrrDatabase, RouteObject
from .messages import (
    KeepaliveMessage,
    MessageType,
    NotificationMessage,
    OpenMessage,
    RouteAnnouncement,
    RouteWithdrawal,
    UpdateMessage,
    announcement,
)
from .policy import (
    ImportPolicy,
    PolicyAction,
    PolicyResult,
    RejectReason,
    permissive_policy,
)
from .prefix import Prefix, parse_prefix
from .rib import RibDiff, RoutingInformationBase, best_path
from .route_server import PolicyControl, RejectedAnnouncement, RouteServer
from .rpki import Roa, RpkiValidator, RpkiValidity
from .session import BgpSession, SessionError, SessionState, SessionType

__all__ = [
    "Origin",
    "PathAttributes",
    "BogonFilter",
    "ExtendedCommunity",
    "LargeCommunity",
    "StandardCommunity",
    "blackhole_community",
    "rtbh_community",
    "FlowspecAction",
    "FlowspecActionType",
    "FlowspecComponentType",
    "FlowspecRule",
    "drop_rule",
    "rate_limit_rule",
    "IrrDatabase",
    "RouteObject",
    "KeepaliveMessage",
    "MessageType",
    "NotificationMessage",
    "OpenMessage",
    "RouteAnnouncement",
    "RouteWithdrawal",
    "UpdateMessage",
    "announcement",
    "ImportPolicy",
    "PolicyAction",
    "PolicyResult",
    "RejectReason",
    "permissive_policy",
    "Prefix",
    "parse_prefix",
    "RibDiff",
    "RoutingInformationBase",
    "best_path",
    "PolicyControl",
    "RejectedAnnouncement",
    "RouteServer",
    "Roa",
    "RpkiValidator",
    "RpkiValidity",
    "BgpSession",
    "SessionError",
    "SessionState",
    "SessionType",
]
