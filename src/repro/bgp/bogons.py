"""Bogon prefix filtering.

Route servers reject announcements for "bogon" address space: RFC 1918
private ranges, loopback, link-local, documentation prefixes and other
space that must never appear in the global routing table (paper §4.3,
citing Feamster et al.'s empirical bogon study).  The default list below
covers the standard IPv4 and IPv6 special-purpose registries.
"""

from __future__ import annotations

from collections.abc import Iterable

from .prefix import Prefix, parse_prefix

#: Default IPv4 bogon prefixes (IANA special-purpose address registry).
DEFAULT_IPV4_BOGONS = (
    "0.0.0.0/8",        # "this network"
    "10.0.0.0/8",       # RFC 1918
    "100.64.0.0/10",    # carrier-grade NAT (RFC 6598)
    "127.0.0.0/8",      # loopback
    "169.254.0.0/16",   # link local
    "172.16.0.0/12",    # RFC 1918
    "192.0.0.0/24",     # IETF protocol assignments
    "192.0.2.0/24",     # TEST-NET-1
    "192.168.0.0/16",   # RFC 1918
    "198.18.0.0/15",    # benchmarking
    "198.51.100.0/24",  # TEST-NET-2
    "203.0.113.0/24",   # TEST-NET-3
    "224.0.0.0/4",      # multicast
    "240.0.0.0/4",      # reserved
)

#: Default IPv6 bogon prefixes.
DEFAULT_IPV6_BOGONS = (
    "::/8",             # unspecified / v4-mapped space
    "100::/64",         # discard-only
    "2001:db8::/32",    # documentation
    "fc00::/7",         # unique local
    "fe80::/10",        # link local
    "ff00::/8",         # multicast
)


class BogonFilter:
    """Checks whether a prefix falls inside (or equals) bogon space."""

    def __init__(self, bogons: Iterable["str | Prefix"] | None = None) -> None:
        source = (
            list(DEFAULT_IPV4_BOGONS) + list(DEFAULT_IPV6_BOGONS)
            if bogons is None
            else list(bogons)
        )
        self._bogons: list[Prefix] = [parse_prefix(prefix) for prefix in source]

    def add(self, prefix: "str | Prefix") -> None:
        """Add an extra bogon prefix (e.g. unallocated space)."""
        self._bogons.append(parse_prefix(prefix))

    def bogons(self) -> list[Prefix]:
        return list(self._bogons)

    def is_bogon(self, prefix: "str | Prefix") -> bool:
        """True if the prefix overlaps bogon space in either direction.

        Both more-specifics of a bogon block and prefixes covering a bogon
        block are rejected, matching conservative route-server policy.
        """
        prefix = parse_prefix(prefix)
        return any(
            bogon.contains(prefix) or prefix.contains(bogon) for bogon in self._bogons
        )

    def __len__(self) -> int:
        return len(self._bogons)

    def __contains__(self, prefix: "str | Prefix") -> bool:
        return self.is_bogon(prefix)
