"""Deterministic random-number helpers.

Every stochastic component of the reproduction (traffic generation, attack
source selection, RTBH compliance draws) takes an explicit seed or an
explicit ``numpy`` generator, so experiments are reproducible run-to-run.
This module centralises construction of generators and a couple of
distributions used throughout the traffic substrate.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

#: Default seed used when an experiment does not specify one.  Chosen
#: arbitrarily; the value itself is meaningless but must stay fixed so that
#: documented example output remains stable.
DEFAULT_SEED = 20181204  # CoNEXT 2018 started on 2018-12-04.


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded deterministically."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(base_seed: int, *keys: int) -> int:
    """Derive a deterministic child seed from ``base_seed`` and ``keys``.

    Sweeps use this to give every grid point an independent, reproducible
    RNG stream: ``derive_seed(sweep_seed, point_key)`` depends only on its
    inputs, so a sweep point computed in a worker process gets exactly the
    same seed as the same point computed serially or in a later re-run.
    """
    sequence = np.random.SeedSequence([int(base_seed), *(int(key) for key in keys)])
    return int(sequence.generate_state(1, np.uint64)[0] % (2**63 - 1))


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Child generators let concurrent components (e.g. per-peer attack
    sources) draw without interfering with each other's streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def weighted_choice(
    rng: np.random.Generator, items: Sequence, weights: Iterable[float]
):
    """Pick one element of ``items`` with probability proportional to weight."""
    weights = np.asarray(list(weights), dtype=float)
    if len(weights) != len(items):
        raise ValueError("items and weights must have the same length")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    index = rng.choice(len(items), p=weights / total)
    return items[index]


def pareto_bytes(
    rng: np.random.Generator, mean_bytes: float, shape: float = 1.5, size: int = 1
) -> np.ndarray:
    """Draw heavy-tailed flow sizes (bytes) with the requested mean.

    Internet flow sizes are famously heavy tailed; a Pareto with shape
    ``1.5`` is a common modelling choice.  The scale is derived so that the
    distribution's mean equals ``mean_bytes``.
    """
    if mean_bytes <= 0:
        raise ValueError(f"mean_bytes must be positive, got {mean_bytes}")
    if shape <= 1:
        raise ValueError("shape must exceed 1 for a finite mean")
    scale = mean_bytes * (shape - 1) / shape
    return scale * (1 + rng.pareto(shape, size=size))


def exponential_interarrivals(
    rng: np.random.Generator, rate_per_second: float, size: int
) -> np.ndarray:
    """Draw ``size`` Poisson-process inter-arrival times (seconds)."""
    if rate_per_second <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_second}")
    return rng.exponential(1.0 / rate_per_second, size=size)
