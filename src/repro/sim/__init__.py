"""Simulation substrate: clock, event engine and deterministic randomness."""

from .clock import SimulationClock
from .engine import SimulationEngine
from .events import Event, EventLog
from .rng import (
    DEFAULT_SEED,
    derive_seed,
    exponential_interarrivals,
    make_rng,
    pareto_bytes,
    spawn,
    weighted_choice,
)

__all__ = [
    "SimulationClock",
    "SimulationEngine",
    "Event",
    "EventLog",
    "DEFAULT_SEED",
    "derive_seed",
    "make_rng",
    "spawn",
    "weighted_choice",
    "pareto_bytes",
    "exponential_interarrivals",
]
