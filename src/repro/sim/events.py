"""Event primitives for the discrete-event part of the simulation."""

from __future__ import annotations

import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any, Optional

#: Global tie-breaking counter so that events scheduled for the same time
#: fire in scheduling order (a stable, deterministic ordering).
_sequence = itertools.count()


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, sequence)`` so a heap of events
    pops them in chronological order with deterministic tie-breaking.
    """

    time: float
    priority: int = 0
    sequence: int = field(default_factory=lambda: next(_sequence))
    callback: Optional[Callable[..., Any]] = field(default=None, compare=False)
    args: tuple = field(default=(), compare=False)
    kwargs: dict = field(default_factory=dict, compare=False)
    cancelled: bool = field(default=False, compare=False)
    name: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine skips cancelled events."""
        self.cancelled = True

    def fire(self) -> Any:
        """Invoke the callback (if any and not cancelled)."""
        if self.cancelled or self.callback is None:
            return None
        return self.callback(*self.args, **self.kwargs)


class EventLog:
    """A simple append-only record of things that happened during a run.

    Experiments use the event log to collect labelled observations (for
    example "rule installed", "attack started") which the analysis layer
    later turns into the time series plotted in the paper's figures.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[float, str, dict]] = []

    def record(self, time: float, kind: str, **details: Any) -> None:
        """Append an entry at simulation ``time`` with a ``kind`` label."""
        self._entries.append((float(time), kind, dict(details)))

    def entries(self, kind: str | None = None) -> list[tuple[float, str, dict]]:
        """Return all entries, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._entries)
        return [entry for entry in self._entries if entry[1] == kind]

    def times(self, kind: str) -> list[float]:
        """Return the timestamps of all entries of a given ``kind``."""
        return [time for time, entry_kind, _ in self._entries if entry_kind == kind]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()
