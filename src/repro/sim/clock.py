"""Simulation clock.

The reproduction uses a discrete-time / discrete-event hybrid: most
experiments advance time in fixed steps (flow-level traffic simulation),
while the control-plane components (token bucket queues, configuration
deployment) are event driven.  Both share a :class:`SimulationClock` so
that data-plane and control-plane timelines stay consistent.
"""

from __future__ import annotations


class SimulationClock:
    """Monotonically increasing simulation time in seconds.

    The clock never moves backwards.  Components that need the current
    time hold a reference to the shared clock instead of a float so that
    advancing the simulation is visible everywhere.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"simulation time must be non-negative, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Advance the clock by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by a negative delta ({delta})")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to an absolute ``timestamp``.

        Raises :class:`ValueError` if the timestamp is in the past.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock (used between independent experiment runs)."""
        if start < 0:
            raise ValueError(f"simulation time must be non-negative, got {start}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(now={self._now:.3f})"
