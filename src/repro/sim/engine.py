"""Discrete-event simulation engine.

A deliberately small engine: a priority queue of :class:`~repro.sim.events.Event`
objects driven by a shared :class:`~repro.sim.clock.SimulationClock`.  The
control-plane parts of the reproduction (token-bucket dequeueing, rule
deployment latency, BGP propagation delays) are scheduled as events; the
flow-level data plane advances in fixed time steps between events.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Any, Optional

from .clock import SimulationClock
from .events import Event, EventLog


class SimulationEngine:
    """Priority-queue based event scheduler."""

    #: Compact the heap whenever at least this many events are queued and
    #: more than half of them are cancelled corpses.
    _COMPACT_MIN_SIZE = 8
    #: Re-check the corpse fraction every this many pushes, so long-lived
    #: engines with heavy cancel churn stay O(live) without scanning on
    #: every schedule call.
    _COMPACT_PUSH_PERIOD = 256

    def __init__(self, clock: Optional[SimulationClock] = None) -> None:
        self.clock = clock if clock is not None else SimulationClock()
        self.log = EventLog()
        self._queue: list[Event] = []
        self._processed = 0
        self._pushes_since_compact = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        name: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(
            self.clock.now + delay, callback, *args, priority=priority, name=name, **kwargs
        )

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        name: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` to run at absolute simulation ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule an event at {time} before current time {self.clock.now}"
            )
        event = Event(
            time=time,
            priority=priority,
            callback=callback,
            args=args,
            kwargs=kwargs,
            name=name,
        )
        heapq.heappush(self._queue, event)
        self._pushes_since_compact += 1
        if self._pushes_since_compact >= self._COMPACT_PUSH_PERIOD:
            self._pushes_since_compact = 0
            self._compact_if_stale()
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (not cancelled, not yet fired) events.

        Cancelled events still sitting in the heap are not counted; if they
        make up the majority of the heap it is compacted as a side effect,
        so a schedule/cancel-heavy workload cannot leak memory.
        """
        live = sum(1 for event in self._queue if not event.cancelled)
        self._compact_if_stale(live)
        return live

    def compact(self) -> int:
        """Evict cancelled events from the heap; returns how many were removed.

        ``step``/``peek_time`` only pop cancelled events once they reach the
        top of the heap, so a workload that schedules far-future events and
        cancels them would otherwise accumulate corpses indefinitely.
        """
        before = len(self._queue)
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        return before - len(self._queue)

    def _compact_if_stale(self, live: Optional[int] = None) -> None:
        if live is None:
            live = sum(1 for event in self._queue if not event.cancelled)
        if len(self._queue) >= self._COMPACT_MIN_SIZE and live < len(self._queue) // 2:
            self.compact()

    @property
    def processed(self) -> int:
        """Number of events fired so far."""
        return self._processed

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> Optional[Event]:
        """Fire the next event (advancing the clock to it).

        Returns the fired event, or ``None`` if the queue is empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.fire()
            self._processed += 1
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events fired."""
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                break
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if self.step() is not None:
                fired += 1
        if until is not None and self.clock.now < until:
            self.clock.advance_to(until)
        return fired
