"""Hardware Information Base (HIB).

Every network manager has access to a description of the hardware
limitations of the switches it configures — the number of QoS policies
allowed per port, the size of the TCAM pools, the maximum configuration
update rate the control plane sustains (paper §4.4).  The configuration
compiler consults the HIB to perform admission control: a change that would
exceed the hardware limits is rejected before it ever reaches the device,
which is part of the IXP operator's "traffic forwarding must be guaranteed
at all times" constraint (§4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ixp.edge_router import EdgeRouter
from ..ixp.tcam import TcamStatus
from .rules import BlackholingRule


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission-control check."""

    admitted: bool
    status: TcamStatus
    reason: str = ""


@dataclass
class DeviceCapabilities:
    """Static capability description of one device, as stored in the HIB."""

    device_name: str
    port_count: int
    mac_filter_capacity: int
    l3l4_criteria_capacity: int
    max_rules_per_port: int
    max_update_rate_per_second: float

    @classmethod
    def from_router(
        cls, router: EdgeRouter, max_rules_per_port: int = 256
    ) -> "DeviceCapabilities":
        return cls(
            device_name=router.name,
            port_count=router.profile.port_count,
            mac_filter_capacity=router.profile.mac_filter_capacity,
            l3l4_criteria_capacity=router.profile.l3l4_criteria_capacity,
            max_rules_per_port=max_rules_per_port,
            max_update_rate_per_second=router.max_sustainable_update_rate(),
        )


class HardwareInformationBase:
    """Registry of devices, their capabilities and their live resource state."""

    def __init__(self, max_rules_per_port: int = 256) -> None:
        if max_rules_per_port <= 0:
            raise ValueError("max_rules_per_port must be positive")
        self.max_rules_per_port = max_rules_per_port
        self._routers: dict[str, EdgeRouter] = {}
        self._capabilities: dict[str, DeviceCapabilities] = {}
        self._rules_per_port: dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_router(self, router: EdgeRouter) -> DeviceCapabilities:
        capabilities = DeviceCapabilities.from_router(
            router, max_rules_per_port=self.max_rules_per_port
        )
        self._routers[router.name] = router
        self._capabilities[router.name] = capabilities
        return capabilities

    def routers(self) -> list[EdgeRouter]:
        return list(self._routers.values())

    def capabilities(self, device_name: str) -> DeviceCapabilities:
        try:
            return self._capabilities[device_name]
        except KeyError as exc:
            raise KeyError(f"device {device_name!r} is not registered") from exc

    def router_for_member(self, member_asn: int) -> Optional[EdgeRouter]:
        """The registered router that hosts a member's port, if any."""
        for router in self._routers.values():
            if router.has_member(member_asn):
                return router
        return None

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def check_admission(
        self, rule: BlackholingRule, member_asn: int
    ) -> AdmissionDecision:
        """Check whether installing ``rule`` for ``member_asn`` is feasible."""
        router = self.router_for_member(member_asn)
        if router is None:
            return AdmissionDecision(
                admitted=False,
                status=TcamStatus.OK,
                reason=f"AS{member_asn} is not connected to any registered device",
            )
        port = router.port_for(member_asn)
        rules_on_port = len(port.rules())
        if rules_on_port >= self.max_rules_per_port:
            return AdmissionDecision(
                admitted=False,
                status=TcamStatus.OK,
                reason=(
                    f"port of AS{member_asn} already holds {rules_on_port} rules "
                    f"(limit {self.max_rules_per_port})"
                ),
            )
        status = router.check_capacity(rule.to_qos_rule())
        if status is not TcamStatus.OK:
            return AdmissionDecision(
                admitted=False,
                status=status,
                reason=f"TCAM limit {status.value} on {router.name}",
            )
        return AdmissionDecision(admitted=True, status=TcamStatus.OK)

    # ------------------------------------------------------------------
    # Book-keeping used by the network manager
    # ------------------------------------------------------------------
    def note_rule_installed(self, device_name: str, port_id: int) -> None:
        key = (device_name, port_id)
        self._rules_per_port[key] = self._rules_per_port.get(key, 0) + 1

    def note_rule_removed(self, device_name: str, port_id: int) -> None:
        key = (device_name, port_id)
        current = self._rules_per_port.get(key, 0)
        self._rules_per_port[key] = max(0, current - 1)

    def rules_on_port(self, device_name: str, port_id: int) -> int:
        return self._rules_per_port.get((device_name, port_id), 0)
