"""SDN configuration compiler (network-manager option 2).

The second realization of Stellar's network manager targets an SDN/SDX data
plane (paper §4.4 and the SOSR'17 demo [25]): abstract configuration
changes become OpenFlow-style match/action flow-mod messages.  The
reproduction keeps the flow mods as structured dictionaries plus a small
:class:`OpenFlowSwitchSim` that honours them, so the SDN deployment option
can be exercised end-to-end and compared against the QoS option in the
signalling/deployment ablation benches.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..ixp.qos import FilterAction
from ..traffic.flow import FlowRecord
from ..traffic.packet import IpProtocol
from .change_queue import ChangeType, ConfigChange


@dataclass(frozen=True)
class FlowMod:
    """An OpenFlow-like flow modification message."""

    command: str  # "add" | "delete"
    priority: int
    match: dict[str, object]
    instructions: dict[str, object]
    cookie: str = ""

    def matches(self, flow: FlowRecord) -> bool:
        """Evaluate the match fields against a flow record."""
        match = self.match
        if "ipv4_dst" in match:
            from ..bgp.prefix import Prefix

            if not Prefix.parse(str(match["ipv4_dst"])).contains_address(flow.dst_ip):
                return False
        if "ipv4_src" in match:
            from ..bgp.prefix import Prefix

            if not Prefix.parse(str(match["ipv4_src"])).contains_address(flow.src_ip):
                return False
        if "eth_src" in match and flow.src_mac.lower() != str(match["eth_src"]).lower():
            return False
        if "ip_proto" in match and int(flow.protocol) != int(match["ip_proto"]):
            return False
        if "udp_src" in match and not (
            flow.protocol is IpProtocol.UDP and flow.src_port == int(match["udp_src"])
        ):
            return False
        if "udp_dst" in match and not (
            flow.protocol is IpProtocol.UDP and flow.dst_port == int(match["udp_dst"])
        ):
            return False
        if "tcp_src" in match and not (
            flow.protocol is IpProtocol.TCP and flow.src_port == int(match["tcp_src"])
        ):
            return False
        if "tcp_dst" in match and not (
            flow.protocol is IpProtocol.TCP and flow.dst_port == int(match["tcp_dst"])
        ):
            return False
        return True


class SdnConfigurationCompiler:
    """Compiles abstract changes into OpenFlow flow mods."""

    #: Priority assigned to blackholing rules (above the default forwarding).
    BLACKHOLE_PRIORITY = 1000

    def compile(self, change: ConfigChange) -> list[FlowMod]:
        """Compile one abstract change into flow-mod messages."""
        rule = change.rule
        match: dict[str, object] = {"eth_type": 0x0800, "ipv4_dst": str(rule.dst_prefix)}
        if rule.src_prefix is not None:
            match["ipv4_src"] = str(rule.src_prefix)
        if rule.src_mac is not None:
            match["eth_src"] = rule.src_mac
        if rule.protocol is not None:
            match["ip_proto"] = int(rule.protocol)
        if rule.src_port is not None and rule.protocol is not None:
            key = "udp_src" if rule.protocol is IpProtocol.UDP else "tcp_src"
            match[key] = rule.src_port
        if rule.dst_port is not None and rule.protocol is not None:
            key = "udp_dst" if rule.protocol is IpProtocol.UDP else "tcp_dst"
            match[key] = rule.dst_port

        qos_rule = rule.to_qos_rule()
        if qos_rule.action is FilterAction.DROP:
            instructions: dict[str, object] = {"action": "drop"}
        else:
            instructions = {
                "action": "meter",
                "meter_rate_kbps": int(qos_rule.shape_rate_bps / 1000),
                "then": "output:member_port",
            }

        command = (
            "delete" if change.change_type is ChangeType.REMOVE_RULE else "add"
        )
        return [
            FlowMod(
                command=command,
                priority=self.BLACKHOLE_PRIORITY,
                match=match,
                instructions=instructions,
                cookie=rule.rule_id,
            )
        ]


class OpenFlowSwitchSim:
    """A minimal OpenFlow switch honouring the compiled flow mods.

    Used by tests and the SDN-deployment example to validate that the SDN
    compilation path drops/shapes the same traffic as the QoS path.
    """

    def __init__(self, flow_table_capacity: int = 4096) -> None:
        if flow_table_capacity <= 0:
            raise ValueError("flow_table_capacity must be positive")
        self.flow_table_capacity = flow_table_capacity
        self._table: dict[str, FlowMod] = {}

    def apply_flow_mod(self, flow_mod: FlowMod) -> None:
        """Install or delete a flow-table entry."""
        if flow_mod.command == "delete":
            self._table.pop(flow_mod.cookie, None)
            return
        if (
            flow_mod.cookie not in self._table
            and len(self._table) >= self.flow_table_capacity
        ):
            raise RuntimeError("flow table is full")
        self._table[flow_mod.cookie] = flow_mod

    def table_size(self) -> int:
        return len(self._table)

    def entries(self) -> list[FlowMod]:
        return list(self._table.values())

    def classify(self, flow: FlowRecord) -> Optional[FlowMod]:
        """The highest-priority matching entry, or None (default forward)."""
        matching = [entry for entry in self._table.values() if entry.matches(flow)]
        if not matching:
            return None
        return max(matching, key=lambda entry: entry.priority)

    def forward(
        self, flows: Sequence[FlowRecord], interval: float
    ) -> dict[str, list[FlowRecord]]:
        """Split flows into forwarded / dropped / metered per the flow table."""
        result: dict[str, list[FlowRecord]] = {"forward": [], "drop": [], "meter": []}
        metered: dict[str, list[FlowRecord]] = {}
        meter_rates: dict[str, float] = {}
        for flow in flows:
            entry = self.classify(flow)
            if entry is None:
                result["forward"].append(flow)
            elif entry.instructions.get("action") == "drop":
                result["drop"].append(flow)
            else:
                metered.setdefault(entry.cookie, []).append(flow)
                meter_rates[entry.cookie] = (
                    float(entry.instructions.get("meter_rate_kbps", 0)) * 1000
                )
        for cookie, matched in metered.items():
            budget_bits = meter_rates[cookie] * interval
            offered_bits = sum(flow.bits for flow in matched)
            scale = min(1.0, budget_bits / offered_bits) if offered_bits > 0 else 0.0
            result["meter"].extend(flow.scaled(scale) for flow in matched)
        return result
