"""Blackholing rules — the central abstraction of Advanced Blackholing.

A blackholing rule describes *what* traffic towards a member's prefix
should be discarded or shaped (paper §3.2): a combination of L2–L4 header
fields (source MAC / peer, IP protocol, source or destination transport
port) plus an action (drop, or shape to a rate for telemetry).  Rules are
signalled by the member (via BGP extended communities or the customer
portal), tracked by the blackholing controller, and compiled into
hardware-specific QoS or SDN configurations by the network manager.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from ..bgp.prefix import Prefix, parse_prefix
from ..ixp.qos import FilterAction, FlowMatch, QosRule
from ..traffic.packet import IpProtocol

_rule_counter = itertools.count(1)


class RuleAction(Enum):
    """What Stellar does with matching traffic."""

    DROP = "drop"
    SHAPE = "shape"


@dataclass(frozen=True)
class BlackholingRule:
    """One Advanced Blackholing rule requested by an IXP member.

    ``dst_prefix`` is the prefix under attack (owned by ``owner_asn``);
    the remaining match fields narrow the rule to the attack traffic —
    for instance UDP source port 123 for an NTP reflection attack.
    """

    owner_asn: int
    dst_prefix: Prefix
    action: RuleAction = RuleAction.DROP
    protocol: Optional[IpProtocol] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    #: Filter traffic entering through a specific peer (RTBH policy control);
    #: expressed as the peer's MAC address on the peering LAN.
    src_mac: Optional[str] = None
    src_prefix: Optional[Prefix] = None
    #: Only for SHAPE: rate limit in bits per second.
    shape_rate_bps: float = 0.0
    rule_id: str = field(default_factory=lambda: f"bh-{next(_rule_counter):06d}")

    def __post_init__(self) -> None:
        if self.owner_asn <= 0:
            raise ValueError("owner_asn must be positive")
        for name in ("src_port", "dst_port"):
            port = getattr(self, name)
            if port is not None and not 0 <= port <= 65535:
                raise ValueError(f"{name} must be a valid L4 port, got {port}")
        if self.action is RuleAction.SHAPE and self.shape_rate_bps <= 0:
            raise ValueError("SHAPE rules require a positive shape_rate_bps")
        if self.action is RuleAction.DROP and self.shape_rate_bps:
            raise ValueError("DROP rules must not carry a shape rate")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def is_plain_rtbh(self) -> bool:
        """True if the rule has no L3–L4/MAC selectivity (classic RTBH)."""
        return (
            self.protocol is None
            and self.src_port is None
            and self.dst_port is None
            and self.src_mac is None
            and self.src_prefix is None
        )

    def flow_match(self) -> FlowMatch:
        """The data-plane match criteria for this rule."""
        return FlowMatch(
            dst_prefix=self.dst_prefix,
            src_prefix=self.src_prefix,
            src_mac=self.src_mac,
            protocol=self.protocol,
            src_port=self.src_port,
            dst_port=self.dst_port,
        )

    def to_qos_rule(self) -> QosRule:
        """Compile to the vendor-neutral QoS rule installed on the egress port."""
        if self.action is RuleAction.DROP:
            return QosRule(
                match=self.flow_match(), action=FilterAction.DROP, rule_id=self.rule_id
            )
        return QosRule(
            match=self.flow_match(),
            action=FilterAction.SHAPE,
            shape_rate_bps=self.shape_rate_bps,
            rule_id=self.rule_id,
        )

    # ------------------------------------------------------------------
    # Resource footprint (TCAM accounting, Fig. 9)
    # ------------------------------------------------------------------
    @property
    def mac_filter_entries(self) -> int:
        return self.flow_match().mac_filter_entries

    @property
    def l3l4_criteria(self) -> int:
        return self.flow_match().l3l4_criteria

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def drop_udp_source_port(
        cls, owner_asn: int, victim: "str | Prefix", port: int
    ) -> "BlackholingRule":
        """Drop UDP traffic from a given source port towards the victim.

        The canonical Advanced Blackholing rule for reflection attacks
        (e.g. port 123 for NTP, 11211 for memcached).
        """
        return cls(
            owner_asn=owner_asn,
            dst_prefix=parse_prefix(victim),
            action=RuleAction.DROP,
            protocol=IpProtocol.UDP,
            src_port=port,
        )

    @classmethod
    def shape_udp_source_port(
        cls, owner_asn: int, victim: "str | Prefix", port: int, rate_bps: float
    ) -> "BlackholingRule":
        """Shape UDP traffic from a source port to ``rate_bps`` (telemetry)."""
        return cls(
            owner_asn=owner_asn,
            dst_prefix=parse_prefix(victim),
            action=RuleAction.SHAPE,
            protocol=IpProtocol.UDP,
            src_port=port,
            shape_rate_bps=rate_bps,
        )

    @classmethod
    def drop_all(cls, owner_asn: int, victim: "str | Prefix") -> "BlackholingRule":
        """Drop all traffic towards the victim (RTBH-equivalent rule)."""
        return cls(owner_asn=owner_asn, dst_prefix=parse_prefix(victim))

    @classmethod
    def drop_protocol(
        cls, owner_asn: int, victim: "str | Prefix", protocol: IpProtocol
    ) -> "BlackholingRule":
        """Drop all traffic of one IP protocol towards the victim."""
        return cls(
            owner_asn=owner_asn,
            dst_prefix=parse_prefix(victim),
            protocol=protocol,
        )

    def with_action(
        self, action: RuleAction, shape_rate_bps: float = 0.0
    ) -> "BlackholingRule":
        """A copy of the rule with a different action (same identity)."""
        return replace(self, action=action, shape_rate_bps=shape_rate_bps)

    @classmethod
    def fine_grained_set(
        cls,
        owner_asn: int,
        hosts: Sequence[str],
        source_ports: Sequence[int],
        count: int,
        shape_every: int = 0,
        shape_rate_bps: float = 1e6,
        protocol: IpProtocol = IpProtocol.UDP,
    ) -> "list[BlackholingRule]":
        """A fine-grained rule set in the dominant Stellar shape.

        ``count`` rules cycling over the cross product of the victim's
        ``hosts`` (each a /32 destination) and the abused ``source_ports``
        — one :meth:`drop_udp_source_port`-shaped rule per (host, port)
        pair, host-major so consecutive rules cover one host across all
        ports before moving on.  Every ``shape_every``-th rule (if > 0)
        is a SHAPE telemetry rule at ``shape_rate_bps`` instead of a
        DROP.  This is the workload generator of the ``fine_grained``
        scenario: tens of thousands of such rules are what the paper's
        scalability claim (Table 1, §5) says advanced blackholing handles
        and pre-filtering hardware does not.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if not hosts or not source_ports:
            raise ValueError("need at least one host and one source port")
        if count > len(hosts) * len(source_ports):
            raise ValueError(
                f"count {count} exceeds the {len(hosts)} x {len(source_ports)} "
                "distinct (host, port) pairs"
            )
        rules: list[BlackholingRule] = []
        for index in range(count):
            host = hosts[index // len(source_ports)]
            port = source_ports[index % len(source_ports)]
            if shape_every > 0 and (index + 1) % shape_every == 0:
                rules.append(
                    cls.shape_udp_source_port(owner_asn, host, port, shape_rate_bps)
                )
            else:
                rules.append(cls(
                    owner_asn=owner_asn,
                    dst_prefix=parse_prefix(host),
                    action=RuleAction.DROP,
                    protocol=protocol,
                    src_port=port,
                ))
        return rules

    def __str__(self) -> str:
        parts = [f"{self.action.value} -> {self.dst_prefix}"]
        if self.protocol is not None:
            parts.append(f"proto={self.protocol.name}")
        if self.src_port is not None:
            parts.append(f"src_port={self.src_port}")
        if self.dst_port is not None:
            parts.append(f"dst_port={self.dst_port}")
        if self.src_mac is not None:
            parts.append(f"src_mac={self.src_mac}")
        if self.action is RuleAction.SHAPE:
            parts.append(f"rate={self.shape_rate_bps / 1e6:.0f}Mbps")
        return f"BlackholingRule({self.rule_id}: " + ", ".join(parts) + ")"
