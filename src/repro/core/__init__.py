"""Stellar core: Advanced Blackholing rules, signaling, management, filtering."""

from .change_queue import (
    ChangeQueue,
    ChangeType,
    ConfigChange,
    DequeuedChange,
    replay_change_arrivals,
)
from .community_codec import (
    CommunityDecodeError,
    DecodedSignal,
    StellarCommunityCodec,
)
from .controller import BlackholingController, ControllerStats
from .hardware_info import (
    AdmissionDecision,
    DeviceCapabilities,
    HardwareInformationBase,
)
from .manager import (
    DeploymentRecord,
    DeploymentStatus,
    NetworkManager,
    QosNetworkManager,
    SdnNetworkManager,
)
from .portal import CustomerPortal, RuleTemplate, ixp_shared_templates
from .qos_compiler import CompiledQosChange, QosConfigurationCompiler, Vendor
from .rules import BlackholingRule, RuleAction
from .sdn_compiler import FlowMod, OpenFlowSwitchSim, SdnConfigurationCompiler
from .signaling import SignalingLayer, SignalRejectedError, SignalResult
from .stellar import Stellar, StellarIntervalReport
from .telemetry import MemberTelemetryReport, RuleTelemetry, TelemetryCollector

__all__ = [
    "ChangeQueue",
    "ChangeType",
    "ConfigChange",
    "DequeuedChange",
    "replay_change_arrivals",
    "CommunityDecodeError",
    "DecodedSignal",
    "StellarCommunityCodec",
    "BlackholingController",
    "ControllerStats",
    "AdmissionDecision",
    "DeviceCapabilities",
    "HardwareInformationBase",
    "DeploymentRecord",
    "DeploymentStatus",
    "NetworkManager",
    "QosNetworkManager",
    "SdnNetworkManager",
    "CustomerPortal",
    "RuleTemplate",
    "ixp_shared_templates",
    "CompiledQosChange",
    "QosConfigurationCompiler",
    "Vendor",
    "BlackholingRule",
    "RuleAction",
    "FlowMod",
    "OpenFlowSwitchSim",
    "SdnConfigurationCompiler",
    "SignalingLayer",
    "SignalRejectedError",
    "SignalResult",
    "Stellar",
    "StellarIntervalReport",
    "MemberTelemetryReport",
    "RuleTelemetry",
    "TelemetryCollector",
]
