"""The token-bucket configuration-change queue.

The blackholing controller forwards abstract configuration changes to the
network manager through a software queue governed by a token bucket (paper
§4.4): the Maximum Burst Size (MBS) and a long-term change rate bound how
fast the edge routers' control planes are asked to apply changes — the
measured sustainable median is 4.33 rule updates per second (Fig. 10(a)).
Fig. 10(b) reports the resulting queueing delays when replaying the
production RTBH signal trace at dequeue rates of 4/s and 5/s.

:class:`ChangeQueue` reproduces this component: changes are enqueued with a
timestamp, dequeued no faster than the token bucket allows, and the
per-change waiting time is recorded so the delay CDF can be computed.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..ixp.queues import TokenBucket
from .rules import BlackholingRule

_change_ids = itertools.count(1)


class ChangeType(Enum):
    """Abstract configuration change types produced by the RIB diff."""

    ADD_RULE = "add_rule"
    REMOVE_RULE = "remove_rule"
    UPDATE_RULE = "update_rule"


@dataclass(frozen=True)
class ConfigChange:
    """One abstract (hardware-independent) configuration change."""

    change_type: ChangeType
    rule: BlackholingRule
    #: The member whose egress port the change applies to.
    target_member_asn: int
    enqueue_time: float = 0.0
    change_id: int = field(default_factory=lambda: next(_change_ids))


@dataclass(frozen=True)
class DequeuedChange:
    """A change together with its queueing delay."""

    change: ConfigChange
    dequeue_time: float

    @property
    def waiting_time(self) -> float:
        return self.dequeue_time - self.change.enqueue_time


class ChangeQueue:
    """FIFO change queue drained at a token-bucket limited rate."""

    def __init__(
        self,
        rate_per_second: float = 4.33,
        max_burst_size: int = 10,
        max_queue_length: Optional[int] = None,
    ) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")
        if max_burst_size < 1:
            raise ValueError("max_burst_size must be >= 1")
        self.rate_per_second = rate_per_second
        self.max_burst_size = max_burst_size
        self.max_queue_length = max_queue_length
        self._bucket = TokenBucket(rate=rate_per_second, burst=float(max_burst_size))
        self._queue: deque[ConfigChange] = deque()
        self._dequeued: list[DequeuedChange] = []
        self.dropped_changes = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def enqueue(self, change: ConfigChange) -> bool:
        """Add a change; returns False if the queue overflowed (admission control)."""
        if (
            self.max_queue_length is not None
            and len(self._queue) >= self.max_queue_length
        ):
            self.dropped_changes += 1
            return False
        self._queue.append(change)
        return True

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def pending(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def dequeue(self, now: float) -> Optional[DequeuedChange]:
        """Dequeue one change if a token is available at ``now``."""
        if not self._queue:
            return None
        if not self._bucket.try_consume(1.0, now):
            return None
        change = self._queue.popleft()
        dequeued = DequeuedChange(change=change, dequeue_time=now)
        self._dequeued.append(dequeued)
        return dequeued

    def drain(self, now: float, max_changes: Optional[int] = None) -> list[DequeuedChange]:
        """Dequeue as many changes as the bucket allows at ``now``."""
        drained: list[DequeuedChange] = []
        while self._queue:
            if max_changes is not None and len(drained) >= max_changes:
                break
            item = self.dequeue(now)
            if item is None:
                break
            drained.append(item)
        return drained

    def next_dequeue_time(self, now: float) -> Optional[float]:
        """Earliest time at which the next pending change can be dequeued."""
        if not self._queue:
            return None
        return now + self._bucket.time_until_available(1.0, now)

    # ------------------------------------------------------------------
    # Telemetry (Fig. 10(b))
    # ------------------------------------------------------------------
    def dequeued(self) -> list[DequeuedChange]:
        return list(self._dequeued)

    def waiting_times(self) -> list[float]:
        """Waiting times of every change dequeued so far."""
        return [item.waiting_time for item in self._dequeued]


def replay_change_arrivals(
    arrival_times: list[float], dequeue_rate: float, max_burst_size: int = 10
) -> list[float]:
    """Replay a change-arrival trace through a queue drained at ``dequeue_rate``.

    This is the Fig. 10(b) experiment in function form: arrivals are placed
    in the queue at their timestamps; a consumer drains the queue greedily
    (one change whenever a token is available).  Returns the per-change
    waiting times in arrival order.
    """
    if dequeue_rate <= 0:
        raise ValueError("dequeue_rate must be positive")
    arrivals = sorted(arrival_times)
    waiting: list[float] = []
    # The consumer applies one change every 1/rate seconds; a change arriving
    # at an idle consumer (and within the burst allowance) is applied
    # immediately, otherwise it waits for the consumer to become free.
    service_interval = 1.0 / dequeue_rate
    bucket = TokenBucket(rate=dequeue_rate, burst=float(max_burst_size))
    next_free = 0.0
    for arrival in arrivals:
        if next_free <= arrival and bucket.try_consume(1.0, arrival):
            service_time = arrival
        else:
            service_time = max(arrival, next_free)
        next_free = service_time + service_interval
        waiting.append(service_time - arrival)
    return waiting
