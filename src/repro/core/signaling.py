"""The signaling layer.

Members signal Advanced Blackholing requests to the IXP in one of two ways
(paper §4.2.1 / §4.3):

* **In-band, via BGP** — the member re-announces the prefix under attack to
  the route server, tagged with Stellar extended communities encoding the
  blackholing rule (or a reference to a predefined rule).  The route server
  applies its usual import policy ("routing hygiene": IRR, RPKI, bogons) and
  forwards accepted announcements southbound to the blackholing controller
  over iBGP/ADD-PATH.  Crucially the signal is *not* reflected to the other
  members.
* **Out-of-band, via the customer portal API** — mainly used to manage
  predefined rules, but the reproduction also exposes a direct API signal
  path so the signalling-interface ablation can compare the two.

The signaling layer owns authentication/authorisation: a member may only
request blackholing for prefixes it is authorised to originate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..bgp.attributes import PathAttributes
from ..bgp.communities import ExtendedCommunity
from ..bgp.messages import RouteAnnouncement
from ..bgp.prefix import Prefix, parse_prefix
from ..bgp.route_server import PolicyControl, RouteServer
from .community_codec import StellarCommunityCodec
from .controller import BlackholingController
from .portal import CustomerPortal
from .rules import BlackholingRule


class SignalRejectedError(RuntimeError):
    """Raised when a signal fails validation (authorisation or policy)."""


@dataclass(frozen=True)
class SignalResult:
    """Outcome of one signalling operation."""

    accepted: bool
    via: str  # "bgp" | "api"
    rule: Optional[BlackholingRule] = None
    detail: str = ""


class SignalingLayer:
    """Member-facing entry point for Advanced Blackholing signals."""

    def __init__(
        self,
        route_server: RouteServer,
        controller: BlackholingController,
        portal: Optional[CustomerPortal] = None,
        codec: Optional[StellarCommunityCodec] = None,
    ) -> None:
        self.route_server = route_server
        self.controller = controller
        self.portal = portal if portal is not None else controller.portal
        self.codec = codec if codec is not None else controller.codec
        # Wire the controller as a southbound consumer of the route server.
        self.route_server.register_consumer(self.controller.process_update)
        # API signals are distinguished by synthetic ADD-PATH path ids so a
        # member can hold several concurrent rules for the same prefix (one
        # BGP announcement can only carry one rule at a time).
        self._api_path_ids = 1_000_000

    # ------------------------------------------------------------------
    # Authorisation
    # ------------------------------------------------------------------
    def _authorised(self, member_asn: int, prefix: Prefix) -> bool:
        """A member may only blackhole prefixes it is authorised to originate."""
        policy = self.route_server.policy
        if not policy.require_irr:
            return True
        return policy.irr.is_authorized(prefix, member_asn)

    # ------------------------------------------------------------------
    # BGP signalling
    # ------------------------------------------------------------------
    def signal_via_bgp(
        self,
        rule: BlackholingRule,
        next_hop: str = "",
        policy_control: Optional[PolicyControl] = None,
    ) -> SignalResult:
        """Signal a rule by announcing its prefix with Stellar communities."""
        communities = self.codec.encode(rule)
        return self._announce(
            member_asn=rule.owner_asn,
            prefix=rule.dst_prefix,
            communities=communities,
            next_hop=next_hop,
            policy_control=policy_control,
            rule=rule,
        )

    def signal_predefined_via_bgp(
        self,
        member_asn: int,
        prefix: "str | Prefix",
        predefined_rule_id: int,
        next_hop: str = "",
    ) -> SignalResult:
        """Signal a predefined (portal) rule by its identifier."""
        prefix = parse_prefix(prefix)
        # Resolve eagerly so an invalid reference is reported to the member,
        # mirroring the portal's validation, and the caller gets the rule back.
        rule = self.portal.resolve(predefined_rule_id, member_asn, prefix)
        communities = self.codec.encode_predefined(predefined_rule_id)
        return self._announce(
            member_asn=member_asn,
            prefix=prefix,
            communities=communities,
            next_hop=next_hop,
            policy_control=None,
            rule=rule,
        )

    def _announce(
        self,
        member_asn: int,
        prefix: Prefix,
        communities: set[ExtendedCommunity],
        next_hop: str,
        policy_control: Optional[PolicyControl],
        rule: Optional[BlackholingRule],
    ) -> SignalResult:
        if not self._authorised(member_asn, prefix):
            raise SignalRejectedError(
                f"AS{member_asn} is not authorised to blackhole {prefix}"
            )
        attributes = PathAttributes(
            as_path=(member_asn,),
            next_hop=next_hop or f"203.0.113.{member_asn % 250 + 1}",
        ).with_extended_communities(*communities)
        announcement = RouteAnnouncement(prefix=prefix, attributes=attributes)
        result = self.route_server.announce(announcement, policy_control)
        if not result.accepted:
            return SignalResult(
                accepted=False,
                via="bgp",
                rule=rule,
                detail=f"route server rejected the announcement: {result.reason.value}",
            )
        return SignalResult(accepted=True, via="bgp", rule=rule)

    def withdraw_via_bgp(self, member_asn: int, prefix: "str | Prefix") -> SignalResult:
        """Withdraw the signalling announcement (implicitly removing rules)."""
        prefix = parse_prefix(prefix)
        self.route_server.withdraw(prefix, member_asn)
        return SignalResult(accepted=True, via="bgp", detail="withdrawn")

    # ------------------------------------------------------------------
    # API signalling
    # ------------------------------------------------------------------
    def signal_via_api(self, rule: BlackholingRule) -> SignalResult:
        """Signal a rule through the customer-facing API (bypassing BGP).

        The API path still enforces prefix authorisation, then feeds the
        controller directly with a synthetic announcement so that rule
        tracking, diffing and deployment behave identically to the BGP path.
        """
        if not self._authorised(rule.owner_asn, rule.dst_prefix):
            raise SignalRejectedError(
                f"AS{rule.owner_asn} is not authorised to blackhole {rule.dst_prefix}"
            )
        communities = self.codec.encode(rule)
        attributes = PathAttributes(
            as_path=(rule.owner_asn,),
            next_hop=f"203.0.113.{rule.owner_asn % 250 + 1}",
        ).with_extended_communities(*communities)
        self._api_path_ids += 1
        announcement = RouteAnnouncement(
            prefix=rule.dst_prefix, attributes=attributes, path_id=self._api_path_ids
        )
        from ..bgp.messages import UpdateMessage

        self.controller.process_update(
            UpdateMessage(sender_asn=self.route_server.ixp_asn, announcements=(announcement,))
        )
        return SignalResult(accepted=True, via="api", rule=rule)

    def withdraw_via_api(self, member_asn: int, prefix: "str | Prefix") -> SignalResult:
        """Withdraw every rule a member signalled for a prefix via the API."""
        from ..bgp.messages import RouteWithdrawal, UpdateMessage

        prefix = parse_prefix(prefix)
        self.controller.process_update(
            UpdateMessage(
                sender_asn=self.route_server.ixp_asn,
                withdrawals=(RouteWithdrawal(prefix=prefix),),
            )
        )
        return SignalResult(accepted=True, via="api", detail="withdrawn")
