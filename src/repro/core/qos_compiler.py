"""QoS configuration compiler (network-manager option 1).

Compiles abstract configuration changes into the vendor-neutral QoS rules
installed on the victim member's *egress* port (paper §4.5), and renders
them into vendor-specific configuration snippets (Cisco extended ACLs,
Juniper firewall filters, Nokia/Alcatel-Lucent QoS policies) for operators
who want to inspect what would be pushed to the devices.

Stellar filters on egress rather than ingress so that a rule change touches
exactly one port configuration — the victim's — instead of the other
(n − 1) member ports.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..ixp.qos import FilterAction, QosRule
from .change_queue import ChangeType, ConfigChange
from .rules import BlackholingRule


class Vendor(Enum):
    """Vendors for which textual configuration can be rendered."""

    CISCO = "cisco"
    JUNIPER = "juniper"
    NOKIA = "nokia"


@dataclass(frozen=True)
class CompiledQosChange:
    """One hardware-level change: install or remove a QoS rule on a port."""

    operation: str  # "install" | "remove"
    target_member_asn: int
    qos_rule: QosRule
    #: Number of low-level configuration statements this change expands to.
    statement_count: int


class QosConfigurationCompiler:
    """Compiles abstract changes into egress-port QoS configurations."""

    def __init__(self, vendor: Vendor = Vendor.NOKIA) -> None:
        self.vendor = vendor

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self, change: ConfigChange) -> list[CompiledQosChange]:
        """Compile one abstract change into hardware-level operations.

        ADD and UPDATE both become a single "install" (the data plane
        replaces rules by id); REMOVE becomes a single "remove".
        """
        rule = change.rule
        qos_rule = rule.to_qos_rule()
        if change.change_type in (ChangeType.ADD_RULE, ChangeType.UPDATE_RULE):
            operation = "install"
        elif change.change_type is ChangeType.REMOVE_RULE:
            operation = "remove"
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown change type {change.change_type}")
        return [
            CompiledQosChange(
                operation=operation,
                target_member_asn=change.target_member_asn,
                qos_rule=qos_rule,
                statement_count=self._statement_count(qos_rule),
            )
        ]

    @staticmethod
    def _statement_count(qos_rule: QosRule) -> int:
        """How many configuration statements a rule expands to on the device."""
        # One classification statement per match criterion plus one action
        # statement (plus one queue statement for shaping).
        criteria = qos_rule.match.l3l4_criteria + qos_rule.match.mac_filter_entries
        action_statements = 2 if qos_rule.action is FilterAction.SHAPE else 1
        return max(1, criteria) + action_statements

    # ------------------------------------------------------------------
    # Vendor rendering
    # ------------------------------------------------------------------
    def render(self, compiled: CompiledQosChange) -> str:
        """Render a compiled change as a vendor configuration snippet."""
        if self.vendor is Vendor.CISCO:
            return self._render_cisco(compiled)
        if self.vendor is Vendor.JUNIPER:
            return self._render_juniper(compiled)
        return self._render_nokia(compiled)

    @staticmethod
    def _match_terms(qos_rule: QosRule) -> dict[str, object]:
        match = qos_rule.match
        return {
            "dst": str(match.dst_prefix) if match.dst_prefix else "any",
            "src": str(match.src_prefix) if match.src_prefix else "any",
            "proto": match.protocol.name.lower() if match.protocol else "ip",
            "src_port": match.src_port,
            "dst_port": match.dst_port,
            "src_mac": match.src_mac,
        }

    def _render_cisco(self, compiled: CompiledQosChange) -> str:
        terms = self._match_terms(compiled.qos_rule)
        name = f"STELLAR-{compiled.qos_rule.rule_id or 'rule'}"
        lines = [f"ip access-list extended {name}"]
        clause = f" deny {terms['proto']} {terms['src']} {terms['dst']}"
        if terms["src_port"] is not None:
            clause += f" eq {terms['src_port']}"
        lines.append(clause)
        lines.append(" permit ip any any")
        if compiled.operation == "remove":
            lines = [f"no ip access-list extended {name}"]
        return "\n".join(lines)

    def _render_juniper(self, compiled: CompiledQosChange) -> str:
        terms = self._match_terms(compiled.qos_rule)
        name = f"stellar-{compiled.qos_rule.rule_id or 'rule'}"
        if compiled.operation == "remove":
            return f"delete firewall family inet filter {name}"
        lines = [f"set firewall family inet filter {name} term match-attack from"]
        if terms["dst"] != "any":
            lines.append(f"    destination-address {terms['dst']}")
        if terms["proto"] != "ip":
            lines.append(f"    protocol {terms['proto']}")
        if terms["src_port"] is not None:
            lines.append(f"    source-port {terms['src_port']}")
        action = (
            "discard"
            if compiled.qos_rule.action is FilterAction.DROP
            else f"policer shape-{int(compiled.qos_rule.shape_rate_bps / 1e6)}m"
        )
        lines.append(f"set firewall family inet filter {name} term match-attack then {action}")
        return "\n".join(lines)

    def _render_nokia(self, compiled: CompiledQosChange) -> str:
        terms = self._match_terms(compiled.qos_rule)
        rule_id = compiled.qos_rule.rule_id or "rule"
        if compiled.operation == "remove":
            return f"configure qos sap-egress delete entry {rule_id}"
        lines = [f"configure qos sap-egress entry {rule_id} create"]
        lines.append(f"    match protocol {terms['proto']}")
        if terms["dst"] != "any":
            lines.append(f"    match dst-ip {terms['dst']}")
        if terms["src_port"] is not None:
            lines.append(f"    match src-port eq {terms['src_port']}")
        if compiled.qos_rule.action is FilterAction.DROP:
            lines.append("    action queue drop-queue")
        else:
            rate_mbps = int(compiled.qos_rule.shape_rate_bps / 1e6)
            lines.append(f"    action queue shaping-queue rate {rate_mbps} mbps")
        return "\n".join(lines)
