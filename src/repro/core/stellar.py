"""The Stellar system facade.

Wires the three layers of the architecture (paper Fig. 5) together over an
IXP fabric:

* **signaling** — route server + :class:`~repro.core.signaling.SignalingLayer`
  + customer portal,
* **management** — :class:`~repro.core.controller.BlackholingController`,
  token-bucket :class:`~repro.core.change_queue.ChangeQueue`,
  :class:`~repro.core.manager.QosNetworkManager` with its hardware
  information base,
* **filtering** — the per-port QoS policies of the
  :class:`~repro.ixp.fabric.SwitchingFabric`.

The facade exposes the operations experiments and examples need: connect
members, signal/withdraw mitigation requests (via BGP or API), advance the
control plane, push data-plane traffic through the IXP, and query telemetry.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..bgp.policy import ImportPolicy, permissive_policy
from ..bgp.prefix import Prefix, parse_prefix
from ..bgp.route_server import RouteServer
from ..ixp.fabric import FabricIntervalReport, SwitchingFabric
from ..ixp.member import IxpMember
from ..traffic.flow import FlowRecord
from ..traffic.flowtable import FlowTable
from .change_queue import ChangeQueue
from .community_codec import StellarCommunityCodec
from .controller import BlackholingController
from .hardware_info import HardwareInformationBase
from .manager import DeploymentRecord, QosNetworkManager
from .portal import CustomerPortal
from .rules import BlackholingRule
from .signaling import SignalingLayer, SignalResult
from .telemetry import MemberTelemetryReport, TelemetryCollector


@dataclass
class StellarIntervalReport:
    """Combined control-plane + data-plane outcome of one simulation interval."""

    fabric_report: FabricIntervalReport
    deployments: list[DeploymentRecord] = field(default_factory=list)

    @property
    def delivered_bits(self) -> float:
        return self.fabric_report.delivered_bits

    @property
    def filtered_bits(self) -> float:
        return self.fabric_report.filtered_bits


class Stellar:
    """The Advanced Blackholing system deployed at an IXP."""

    def __init__(
        self,
        ixp_asn: int,
        fabric: Optional[SwitchingFabric] = None,
        policy: Optional[ImportPolicy] = None,
        change_rate_per_second: float = 4.33,
        max_burst_size: int = 10,
        translate_rtbh: bool = True,
    ) -> None:
        self.ixp_asn = ixp_asn
        self.fabric = fabric if fabric is not None else SwitchingFabric()
        self.route_server = RouteServer(
            ixp_asn=ixp_asn, policy=policy if policy is not None else permissive_policy()
        )
        self.portal = CustomerPortal()
        self.codec = StellarCommunityCodec(ixp_asn)
        self.change_queue = ChangeQueue(
            rate_per_second=change_rate_per_second, max_burst_size=max_burst_size
        )
        self._now = 0.0
        self.controller = BlackholingController(
            ixp_asn=ixp_asn,
            change_queue=self.change_queue,
            portal=self.portal,
            codec=self.codec,
            translate_rtbh=translate_rtbh,
            clock=lambda: self._now,
        )
        self.hardware_info = HardwareInformationBase()
        for router in self.fabric.edge_routers():
            self.hardware_info.register_router(router)
        self.manager = QosNetworkManager(
            fabric=self.fabric,
            change_queue=self.change_queue,
            hardware_info=self.hardware_info,
        )
        self.signaling = SignalingLayer(
            route_server=self.route_server,
            controller=self.controller,
            portal=self.portal,
            codec=self.codec,
        )
        self.telemetry = TelemetryCollector()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_member(self, member: IxpMember, register_prefixes: bool = True) -> None:
        """Connect a member to the fabric and the route server."""
        self.fabric.connect_member(member)
        if member.uses_route_server:
            self.route_server.connect_member(member.asn)
        if register_prefixes and self.route_server.policy.require_irr:
            self.route_server.policy.irr.register_many(member.prefixes, member.asn)
        # Newly added routers (if the fabric grew) must be known to the HIB.
        known = {router.name for router in self.hardware_info.routers()}
        for router in self.fabric.edge_routers():
            if router.name not in known:
                self.hardware_info.register_router(router)

    def add_members(self, members: Iterable[IxpMember]) -> None:
        for member in members:
            self.add_member(member)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, time: float) -> None:
        """Advance the system clock (control-plane timestamps)."""
        if time < self._now:
            raise ValueError(f"cannot move time backwards from {self._now} to {time}")
        self._now = time

    # ------------------------------------------------------------------
    # Member-facing operations
    # ------------------------------------------------------------------
    def request_mitigation(
        self, rule: BlackholingRule, via: str = "bgp"
    ) -> SignalResult:
        """Signal a blackholing rule (``via`` is ``"bgp"`` or ``"api"``)."""
        if via == "bgp":
            return self.signaling.signal_via_bgp(rule)
        if via == "api":
            return self.signaling.signal_via_api(rule)
        raise ValueError(f"unknown signalling path {via!r}; use 'bgp' or 'api'")

    def request_predefined_mitigation(
        self, member_asn: int, prefix: "str | Prefix", predefined_rule_id: int
    ) -> SignalResult:
        """Signal a predefined (portal) rule by its identifier."""
        return self.signaling.signal_predefined_via_bgp(
            member_asn, prefix, predefined_rule_id
        )

    def withdraw_mitigation(
        self, member_asn: int, prefix: "str | Prefix", via: str = "bgp"
    ) -> SignalResult:
        """Withdraw the mitigation for a prefix."""
        if via == "bgp":
            return self.signaling.withdraw_via_bgp(member_asn, prefix)
        if via == "api":
            return self.signaling.withdraw_via_api(member_asn, prefix)
        raise ValueError(f"unknown signalling path {via!r}; use 'bgp' or 'api'")

    # ------------------------------------------------------------------
    # Control plane / data plane stepping
    # ------------------------------------------------------------------
    def process_control_plane(self, now: Optional[float] = None) -> list[DeploymentRecord]:
        """Deploy pending configuration changes allowed by the token bucket."""
        if now is not None:
            self.advance_to(now)
        return self.manager.process_pending(self._now)

    def deliver_traffic(
        self,
        flows: "Sequence[FlowRecord] | FlowTable",
        interval: float,
        interval_start: Optional[float] = None,
    ) -> StellarIntervalReport:
        """Process one observation interval: control plane first, then traffic.

        The data plane is columnar: record sequences are ingested into a
        :class:`FlowTable` up front, so the fabric and per-port QoS
        classification always take the vectorized path regardless of the
        caller's representation.
        """
        if not isinstance(flows, FlowTable):
            flows = FlowTable.from_records(flows)
        start = self._now if interval_start is None else interval_start
        if interval_start is not None:
            self.advance_to(interval_start)
        deployments = self.process_control_plane()
        fabric_report = self.fabric.deliver(flows, interval, start)
        self._record_telemetry(fabric_report, interval, start)
        self._now = start + interval
        return StellarIntervalReport(fabric_report=fabric_report, deployments=deployments)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _record_telemetry(
        self, report: FabricIntervalReport, interval: float, time: float
    ) -> None:
        # The QoS policies attribute matched/dropped/shaped bits per rule id
        # while classifying, so telemetry folds those stats in directly
        # instead of re-classifying every dropped/shaped flow.
        for member_asn, result in report.results_by_member.items():
            for rule_id, stats in result.rule_stats.items():
                self.telemetry.record_rule_interval(
                    rule_id=rule_id,
                    member_asn=member_asn,
                    matched_bits=stats["matched"],
                    dropped_bits=stats["dropped"],
                    shaped_passed_bits=stats["shaped"],
                    interval=interval,
                    time=time,
                )

    def telemetry_report(self, member_asn: int) -> MemberTelemetryReport:
        """The member-facing telemetry report at the current time."""
        return self.telemetry.report_for_member(member_asn, time=self._now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active_rules(self) -> list[BlackholingRule]:
        return self.controller.active_rules()

    def installed_rule_count(self) -> int:
        """Rules actually installed on the data plane across all routers."""
        return sum(len(router.installed_rules()) for router in self.fabric.edge_routers())
