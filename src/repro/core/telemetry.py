"""Telemetry for Advanced Blackholing users.

One of the design requirements (§3.1) is that the network under attack can
still observe the state of the attack: shaped traffic gives the victim a
bounded live sample, and the IXP exposes statistics about the discarded
traffic so the member can decide when to terminate or tighten the
mitigation.  :class:`TelemetryCollector` aggregates per-rule and per-member
counters from the data-plane results and renders member-facing reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ixp.qos import FilterAction, PortQosResult


@dataclass
class RuleTelemetry:
    """Cumulative counters for one blackholing rule."""

    rule_id: str
    member_asn: int
    matched_bits: float = 0.0
    dropped_bits: float = 0.0
    shaped_passed_bits: float = 0.0
    shaped_dropped_bits: float = 0.0
    last_update: float = 0.0
    #: (time, matched_bits) samples for the member's attack-status view —
    #: raw matched volume per recorded interval, so rates can be derived
    #: for whatever observation interval the caller reports over.
    samples: list[tuple[float, float]] = field(default_factory=list)

    @property
    def filtered_bits(self) -> float:
        return self.dropped_bits + self.shaped_dropped_bits

    def matched_rate_bps(self, interval: float) -> float:
        """Matched traffic rate of the most recent sample over ``interval``.

        Computed from the last sample's matched bits, so the rate really
        reflects the interval the caller asks about (the old behaviour
        baked the recording interval in and silently ignored the
        argument).
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not self.samples:
            return 0.0
        return self.samples[-1][1] / interval

    @property
    def attack_appears_over(self) -> bool:
        """Heuristic the member can use: no matched traffic in the last sample."""
        return bool(self.samples) and self.samples[-1][1] == 0.0


@dataclass
class MemberTelemetryReport:
    """Member-facing summary across all of the member's rules."""

    member_asn: int
    time: float
    rules: list[RuleTelemetry]

    @property
    def total_filtered_bits(self) -> float:
        return sum(rule.filtered_bits for rule in self.rules)

    @property
    def total_shaped_passed_bits(self) -> float:
        return sum(rule.shaped_passed_bits for rule in self.rules)

    @property
    def active_rule_count(self) -> int:
        return len(self.rules)


class TelemetryCollector:
    """Aggregates data-plane results into per-rule telemetry."""

    def __init__(self) -> None:
        self._by_rule: dict[str, RuleTelemetry] = {}

    # ------------------------------------------------------------------
    def record_interval(
        self,
        member_asn: int,
        result: PortQosResult,
        interval: float,
        time: float,
    ) -> None:
        """Fold one interval's :class:`PortQosResult` into the counters."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        matched_bits_by_rule: dict[str, float] = {}
        dropped_bits_by_rule: dict[str, float] = {}
        shaped_bits_by_rule: dict[str, float] = {}

        for flow in result.dropped:
            rule_id = self._rule_id_for(result, flow, FilterAction.DROP)
            matched_bits_by_rule[rule_id] = matched_bits_by_rule.get(rule_id, 0.0) + flow.bits
            dropped_bits_by_rule[rule_id] = dropped_bits_by_rule.get(rule_id, 0.0) + flow.bits
        for flow in result.shaped:
            rule_id = self._rule_id_for(result, flow, FilterAction.SHAPE)
            matched_bits_by_rule[rule_id] = matched_bits_by_rule.get(rule_id, 0.0) + flow.bits
            shaped_bits_by_rule[rule_id] = shaped_bits_by_rule.get(rule_id, 0.0) + flow.bits

        rule_ids = set(matched_bits_by_rule) | set(dropped_bits_by_rule) | set(shaped_bits_by_rule)
        for rule_id in rule_ids:
            telemetry = self._by_rule.setdefault(
                rule_id, RuleTelemetry(rule_id=rule_id, member_asn=member_asn)
            )
            matched = matched_bits_by_rule.get(rule_id, 0.0)
            telemetry.matched_bits += matched
            telemetry.dropped_bits += dropped_bits_by_rule.get(rule_id, 0.0)
            telemetry.shaped_passed_bits += shaped_bits_by_rule.get(rule_id, 0.0)
            telemetry.shaped_dropped_bits += max(
                0.0, result.shaped_dropped_bits if rule_id in shaped_bits_by_rule else 0.0
            )
            telemetry.last_update = time
            telemetry.samples.append((time, matched))

    @staticmethod
    def _rule_id_for(result: PortQosResult, flow: object, action: FilterAction) -> str:
        # The PortQosResult does not retain the per-flow rule attribution, so
        # telemetry groups drops and shapes under synthetic per-action ids
        # unless the caller records per-rule results explicitly.
        return f"{action.value}"

    # ------------------------------------------------------------------
    def record_rule_interval(
        self,
        rule_id: str,
        member_asn: int,
        matched_bits: float,
        dropped_bits: float,
        shaped_passed_bits: float,
        interval: float,
        time: float,
    ) -> RuleTelemetry:
        """Explicit per-rule recording (used by the Stellar facade)."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        telemetry = self._by_rule.setdefault(
            rule_id, RuleTelemetry(rule_id=rule_id, member_asn=member_asn)
        )
        telemetry.matched_bits += matched_bits
        telemetry.dropped_bits += dropped_bits
        telemetry.shaped_passed_bits += shaped_passed_bits
        telemetry.last_update = time
        telemetry.samples.append((time, matched_bits))
        return telemetry

    # ------------------------------------------------------------------
    def telemetry_for_rule(self, rule_id: str) -> Optional[RuleTelemetry]:
        return self._by_rule.get(rule_id)

    def report_for_member(self, member_asn: int, time: float = 0.0) -> MemberTelemetryReport:
        rules = [
            telemetry
            for telemetry in self._by_rule.values()
            if telemetry.member_asn == member_asn
        ]
        return MemberTelemetryReport(member_asn=member_asn, time=time, rules=rules)

    def all_rules(self) -> list[RuleTelemetry]:
        return list(self._by_rule.values())
