"""The blackholing controller.

The controller is the heart of Stellar's management layer (paper §4.4):

* it maintains an iBGP session with the route server (with ADD-PATH, so it
  sees every accepted path rather than only the best one),
* a *BGP parser* consumes the message stream and a *BGP processor*
  interprets the semantics, storing announced routes in a local RIB,
* after every update it derives the set of blackholing rules requested by
  the members (by decoding the Stellar extended communities, resolving
  predefined-rule references through the customer portal, and translating
  plain RTBH announcements into drop-all rules),
* the difference against the previously active rule set yields abstract
  configuration changes, which are pushed into the token-bucket change
  queue towards the network manager.

The controller is *passive*: it never announces routes itself.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Optional

from ..bgp.messages import RouteAnnouncement, UpdateMessage
from ..bgp.prefix import Prefix
from ..bgp.rib import RoutingInformationBase
from ..bgp.session import BgpSession, SessionType
from .change_queue import ChangeQueue, ChangeType, ConfigChange
from .community_codec import CommunityDecodeError, StellarCommunityCodec
from .portal import CustomerPortal
from .rules import BlackholingRule, RuleAction

#: Identity of a blackholing rule, independent of its action: the owner, the
#: victim prefix and the match fields.  Two signals with the same key but a
#: different action are an *update* of the same rule.
RuleKey = tuple[int, str, Optional[int], Optional[int], Optional[int], Optional[str], Optional[str]]


def _rule_key(rule: BlackholingRule) -> RuleKey:
    return (
        rule.owner_asn,
        str(rule.dst_prefix),
        int(rule.protocol) if rule.protocol is not None else None,
        rule.src_port,
        rule.dst_port,
        rule.src_mac,
        str(rule.src_prefix) if rule.src_prefix is not None else None,
    )


@dataclass
class ControllerStats:
    """Operational counters of the controller."""

    updates_processed: int = 0
    announcements_seen: int = 0
    withdrawals_seen: int = 0
    signals_decoded: int = 0
    decode_errors: int = 0
    rules_added: int = 0
    rules_removed: int = 0
    rules_updated: int = 0


class BlackholingController:
    """Tracks blackholing rules signalled by members and emits config changes."""

    def __init__(
        self,
        ixp_asn: int,
        change_queue: Optional[ChangeQueue] = None,
        portal: Optional[CustomerPortal] = None,
        codec: Optional[StellarCommunityCodec] = None,
        translate_rtbh: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.ixp_asn = ixp_asn
        self.codec = codec if codec is not None else StellarCommunityCodec(ixp_asn)
        self.portal = portal if portal is not None else CustomerPortal()
        self.change_queue = change_queue if change_queue is not None else ChangeQueue()
        #: Whether classic RTBH announcements (standard ``:666`` community)
        #: are also translated into drop-all rules on the victim's port.
        self.translate_rtbh = translate_rtbh
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.rib = RoutingInformationBase()
        self.session = BgpSession(
            local_asn=ixp_asn,
            peer_asn=ixp_asn,
            session_type=SessionType.IBGP,
            add_path=True,
            on_update=self.process_update,
        )
        self.session.open()
        self.stats = ControllerStats()
        #: Currently active rules, by identity key.
        self._active_rules: dict[RuleKey, BlackholingRule] = {}
        #: Stable rule ids per identity key (so updates replace in place).
        self._rule_ids: dict[RuleKey, str] = {}

    # ------------------------------------------------------------------
    # BGP parser / processor
    # ------------------------------------------------------------------
    def process_update(self, update: UpdateMessage) -> list[ConfigChange]:
        """Consume one UPDATE from the route server and emit config changes."""
        self.stats.updates_processed += 1
        for announcement in update.announcements:
            self.stats.announcements_seen += 1
            self.rib.add(announcement)
        for withdrawal in update.withdrawals:
            self.stats.withdrawals_seen += 1
            # ADD-PATH: withdrawals carry the path id of the withdrawn path.
            for route in self.rib.routes_for(withdrawal.prefix):
                if withdrawal.path_id and route.path_id != withdrawal.path_id:
                    continue
                if not withdrawal.path_id or route.path_id == withdrawal.path_id:
                    self.rib.remove_route(route)
        return self._reconcile()

    # ------------------------------------------------------------------
    # Signal interpretation
    # ------------------------------------------------------------------
    def _rule_from_announcement(
        self, announcement: RouteAnnouncement
    ) -> Optional[BlackholingRule]:
        """Derive the blackholing rule requested by one announcement, if any."""
        attrs = announcement.attributes
        owner = attrs.origin_asn
        if owner is None:
            return None

        stellar_communities = [
            community
            for community in attrs.extended_communities
            if self.codec.is_stellar_community(community)
        ]
        if stellar_communities:
            try:
                rule, predefined_id = self.codec.to_rule(
                    stellar_communities, owner_asn=owner, dst_prefix=announcement.prefix
                )
            except CommunityDecodeError:
                self.stats.decode_errors += 1
                return None
            self.stats.signals_decoded += 1
            if predefined_id is not None:
                try:
                    return self.portal.resolve(
                        predefined_id, member_asn=owner, dst_prefix=announcement.prefix
                    )
                except (KeyError, PermissionError):
                    self.stats.decode_errors += 1
                    return None
            return rule

        if self.translate_rtbh and attrs.has_blackhole_community:
            # Classic RTBH signal: drop everything towards the prefix at the
            # victim's egress port (no cooperation needed, unlike real RTBH).
            self.stats.signals_decoded += 1
            return BlackholingRule(
                owner_asn=owner,
                dst_prefix=announcement.prefix,
                action=RuleAction.DROP,
            )
        return None

    def desired_rules(self) -> dict[RuleKey, BlackholingRule]:
        """The rule set implied by the current RIB contents."""
        desired: dict[RuleKey, BlackholingRule] = {}
        for route in self.rib.routes():
            rule = self._rule_from_announcement(route)
            if rule is None:
                continue
            key = _rule_key(rule)
            # Preserve a stable rule id across updates of the same rule.
            existing_id = self._rule_ids.get(key)
            if existing_id is not None and rule.rule_id != existing_id:
                rule = BlackholingRule(
                    owner_asn=rule.owner_asn,
                    dst_prefix=rule.dst_prefix,
                    action=rule.action,
                    protocol=rule.protocol,
                    src_port=rule.src_port,
                    dst_port=rule.dst_port,
                    src_mac=rule.src_mac,
                    src_prefix=rule.src_prefix,
                    shape_rate_bps=rule.shape_rate_bps,
                    rule_id=existing_id,
                )
            desired[key] = rule
        return desired

    # ------------------------------------------------------------------
    # Reconciliation (RIB diff → config changes)
    # ------------------------------------------------------------------
    def _reconcile(self) -> list[ConfigChange]:
        now = self._clock()
        desired = self.desired_rules()
        changes: list[ConfigChange] = []

        for key, rule in desired.items():
            if key not in self._active_rules:
                self._rule_ids.setdefault(key, rule.rule_id)
                changes.append(
                    ConfigChange(
                        change_type=ChangeType.ADD_RULE,
                        rule=rule,
                        target_member_asn=rule.owner_asn,
                        enqueue_time=now,
                    )
                )
                self.stats.rules_added += 1
            else:
                active = self._active_rules[key]
                if (
                    active.action != rule.action
                    or active.shape_rate_bps != rule.shape_rate_bps
                ):
                    changes.append(
                        ConfigChange(
                            change_type=ChangeType.UPDATE_RULE,
                            rule=rule,
                            target_member_asn=rule.owner_asn,
                            enqueue_time=now,
                        )
                    )
                    self.stats.rules_updated += 1

        for key, rule in list(self._active_rules.items()):
            if key not in desired:
                changes.append(
                    ConfigChange(
                        change_type=ChangeType.REMOVE_RULE,
                        rule=rule,
                        target_member_asn=rule.owner_asn,
                        enqueue_time=now,
                    )
                )
                self.stats.rules_removed += 1
                self._rule_ids.pop(key, None)

        self._active_rules = desired
        for change in changes:
            self.change_queue.enqueue(change)
        return changes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active_rules(self) -> list[BlackholingRule]:
        """Rules currently requested by the members (post-reconciliation)."""
        return list(self._active_rules.values())

    def active_rule_count(self) -> int:
        return len(self._active_rules)
