"""The network manager.

The network manager dequeues abstract configuration changes from the
token-bucket change queue, compiles them into hardware-specific
configurations (QoS policies or SDN flow mods), performs admission control
against the hardware information base, and deploys the result on the IXP's
edge routers (paper §4.4).  Failures never impact forwarding: a change that
cannot be deployed is recorded and the traffic simply keeps flowing
unfiltered (the resilience constraint of §4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..ixp.fabric import SwitchingFabric
from ..ixp.tcam import TcamExhaustedError
from .change_queue import ChangeQueue, ChangeType, ConfigChange, DequeuedChange
from .hardware_info import HardwareInformationBase
from .qos_compiler import QosConfigurationCompiler
from .sdn_compiler import OpenFlowSwitchSim, SdnConfigurationCompiler


class DeploymentStatus(Enum):
    """Outcome of deploying one configuration change."""

    APPLIED = "applied"
    REJECTED_ADMISSION = "rejected_admission"
    FAILED_HARDWARE = "failed_hardware"
    FAILED_NO_PORT = "failed_no_port"


@dataclass
class DeploymentRecord:
    """Audit-log entry for one attempted deployment."""

    change: ConfigChange
    status: DeploymentStatus
    deploy_time: float
    detail: str = ""

    @property
    def waiting_time(self) -> float:
        return self.deploy_time - self.change.enqueue_time


class NetworkManager:
    """Base class of the two network-manager realizations."""

    def __init__(
        self,
        change_queue: ChangeQueue,
        hardware_info: Optional[HardwareInformationBase] = None,
    ) -> None:
        self.change_queue = change_queue
        self.hardware_info = (
            hardware_info if hardware_info is not None else HardwareInformationBase()
        )
        self.deployment_log: list[DeploymentRecord] = []

    # ------------------------------------------------------------------
    def process_pending(
        self, now: float, max_changes: Optional[int] = None
    ) -> list[DeploymentRecord]:
        """Dequeue and deploy as many changes as the token bucket allows."""
        records = []
        for dequeued in self.change_queue.drain(now, max_changes=max_changes):
            records.append(self.deploy(dequeued))
        return records

    def deploy(self, dequeued: DequeuedChange) -> DeploymentRecord:
        """Deploy one dequeued change (implemented by subclasses)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def records_with_status(self, status: DeploymentStatus) -> list[DeploymentRecord]:
        return [record for record in self.deployment_log if record.status is status]

    @property
    def applied_count(self) -> int:
        return len(self.records_with_status(DeploymentStatus.APPLIED))

    @property
    def failed_count(self) -> int:
        return len(self.deployment_log) - self.applied_count


class QosNetworkManager(NetworkManager):
    """Network-manager option 1: vendor QoS/ACL filters on the edge routers."""

    def __init__(
        self,
        fabric: SwitchingFabric,
        change_queue: ChangeQueue,
        hardware_info: Optional[HardwareInformationBase] = None,
        compiler: Optional[QosConfigurationCompiler] = None,
    ) -> None:
        super().__init__(change_queue=change_queue, hardware_info=hardware_info)
        self.fabric = fabric
        self.compiler = compiler if compiler is not None else QosConfigurationCompiler()
        if hardware_info is None:
            for router in fabric.edge_routers():
                self.hardware_info.register_router(router)

    def deploy(self, dequeued: DequeuedChange) -> DeploymentRecord:
        change = dequeued.change
        member_asn = change.target_member_asn
        try:
            router = self.fabric.router_for_member(member_asn)
            port = router.port_for(member_asn)
        except KeyError:
            record = DeploymentRecord(
                change=change,
                status=DeploymentStatus.FAILED_NO_PORT,
                deploy_time=dequeued.dequeue_time,
                detail=f"AS{member_asn} has no port on the fabric",
            )
            self.deployment_log.append(record)
            return record

        if change.change_type in (ChangeType.ADD_RULE, ChangeType.UPDATE_RULE):
            decision = self.hardware_info.check_admission(change.rule, member_asn)
            if not decision.admitted and change.change_type is ChangeType.ADD_RULE:
                record = DeploymentRecord(
                    change=change,
                    status=DeploymentStatus.REJECTED_ADMISSION,
                    deploy_time=dequeued.dequeue_time,
                    detail=decision.reason,
                )
                self.deployment_log.append(record)
                return record

        status = DeploymentStatus.APPLIED
        detail = ""
        try:
            for compiled in self.compiler.compile(change):
                if compiled.operation == "install":
                    router.install_rule(member_asn, compiled.qos_rule)
                    self.hardware_info.note_rule_installed(router.name, port.port_id)
                else:
                    router.remove_rule(member_asn, compiled.qos_rule.rule_id)
                    self.hardware_info.note_rule_removed(router.name, port.port_id)
        except TcamExhaustedError as exc:
            status = DeploymentStatus.FAILED_HARDWARE
            detail = str(exc)

        record = DeploymentRecord(
            change=change,
            status=status,
            deploy_time=dequeued.dequeue_time,
            detail=detail,
        )
        self.deployment_log.append(record)
        return record


class SdnNetworkManager(NetworkManager):
    """Network-manager option 2: an OpenFlow/SDX data plane."""

    def __init__(
        self,
        change_queue: ChangeQueue,
        switch: Optional[OpenFlowSwitchSim] = None,
        compiler: Optional[SdnConfigurationCompiler] = None,
        hardware_info: Optional[HardwareInformationBase] = None,
    ) -> None:
        super().__init__(change_queue=change_queue, hardware_info=hardware_info)
        self.switch = switch if switch is not None else OpenFlowSwitchSim()
        self.compiler = compiler if compiler is not None else SdnConfigurationCompiler()

    def deploy(self, dequeued: DequeuedChange) -> DeploymentRecord:
        change = dequeued.change
        status = DeploymentStatus.APPLIED
        detail = ""
        try:
            for flow_mod in self.compiler.compile(change):
                self.switch.apply_flow_mod(flow_mod)
        except RuntimeError as exc:
            status = DeploymentStatus.FAILED_HARDWARE
            detail = str(exc)
        record = DeploymentRecord(
            change=change,
            status=status,
            deploy_time=dequeued.dequeue_time,
            detail=detail,
        )
        self.deployment_log.append(record)
        return record
