"""Encoding blackholing rules in BGP extended communities.

Stellar chose BGP extended communities (RFC 4360) as its signalling
interface because they offer a large, structured numbering space while
remaining compatible with every route-server implementation (paper
§4.2.1).  The paper's Internet experiment uses the community ``IXP:2:123``
— "2" selecting *UDP source port* and "123" the port value (§5.3).

This module defines the concrete namespace used by the reproduction and
implements a reversible codec between :class:`~repro.core.rules.BlackholingRule`
objects and sets of :class:`~repro.bgp.communities.ExtendedCommunity`.

Layout
------

Every Stellar community uses ``type=0x80`` (the experimental two-octet-AS
specific type), ``global_admin = IXP ASN``, and a ``subtype`` selecting the
field being communicated:

===========  ==========================  =====================================
subtype      meaning                     local_admin payload (32 bit)
===========  ==========================  =====================================
``0x01``     selector + port             ``selector << 24 | port`` where the
                                          selector follows the paper: 1 = TCP
                                          source port, 2 = UDP source port,
                                          3 = TCP destination port, 4 = UDP
                                          destination port
``0x02``     IP protocol filter          IANA protocol number
``0x03``     action                      1 = drop, 2 = shape
``0x04``     shape rate                  rate in Mbit/s
``0x05``     predefined rule reference   rule id from the customer portal
===========  ==========================  =====================================

A drop rule for UDP source port 123 therefore encodes to exactly two
communities: the selector/port community (``0x01``, ``2<<24 | 123``) and —
only if non-default — the action community.  Plain "drop" is the default
action, so the minimal signal stays a single community, matching the
paper's "single BGP announcement" requirement.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Optional

from ..bgp.communities import ExtendedCommunity
from ..bgp.prefix import Prefix
from ..traffic.packet import IpProtocol
from .rules import BlackholingRule, RuleAction

#: Experimental, two-octet AS specific extended community type.
STELLAR_COMMUNITY_TYPE = 0x80

# Subtypes.
SUBTYPE_PORT_SELECTOR = 0x01
SUBTYPE_PROTOCOL = 0x02
SUBTYPE_ACTION = 0x03
SUBTYPE_SHAPE_RATE = 0x04
SUBTYPE_PREDEFINED_RULE = 0x05

# Port selectors (paper §5.3: "2 refers to UDP source traffic").
SELECTOR_TCP_SRC_PORT = 1
SELECTOR_UDP_SRC_PORT = 2
SELECTOR_TCP_DST_PORT = 3
SELECTOR_UDP_DST_PORT = 4

ACTION_DROP = 1
ACTION_SHAPE = 2


class CommunityDecodeError(ValueError):
    """Raised when a set of extended communities is not a valid Stellar signal."""


@dataclass(frozen=True)
class DecodedSignal:
    """The outcome of decoding a Stellar community set (before binding to a prefix)."""

    action: RuleAction
    protocol: Optional[IpProtocol]
    src_port: Optional[int]
    dst_port: Optional[int]
    shape_rate_bps: float
    predefined_rule_id: Optional[int]


class StellarCommunityCodec:
    """Bidirectional codec between blackholing rules and extended communities."""

    def __init__(self, ixp_asn: int) -> None:
        if not 0 < ixp_asn <= 0xFFFF:
            raise ValueError(
                "the two-octet-AS specific encoding requires a 16-bit IXP ASN, "
                f"got {ixp_asn}"
            )
        self.ixp_asn = ixp_asn

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _community(self, subtype: int, payload: int) -> ExtendedCommunity:
        return ExtendedCommunity(
            type=STELLAR_COMMUNITY_TYPE,
            subtype=subtype,
            global_admin=self.ixp_asn,
            local_admin=payload,
        )

    def is_stellar_community(self, community: ExtendedCommunity) -> bool:
        """True if the community belongs to this IXP's Stellar namespace."""
        return (
            community.type == STELLAR_COMMUNITY_TYPE
            and community.global_admin == self.ixp_asn
        )

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, rule: BlackholingRule) -> set[ExtendedCommunity]:
        """Encode a rule into its extended-community representation.

        The destination prefix is carried by the BGP NLRI, not by the
        communities, so it does not appear here.
        """
        communities: set[ExtendedCommunity] = set()

        if rule.src_port is not None or rule.dst_port is not None:
            if rule.protocol not in (IpProtocol.UDP, IpProtocol.TCP):
                raise ValueError(
                    "port-based rules must specify protocol UDP or TCP to be "
                    "encodable as a Stellar community"
                )
            is_udp = rule.protocol is IpProtocol.UDP
            if rule.src_port is not None:
                selector = SELECTOR_UDP_SRC_PORT if is_udp else SELECTOR_TCP_SRC_PORT
                communities.add(
                    self._community(
                        SUBTYPE_PORT_SELECTOR, (selector << 24) | rule.src_port
                    )
                )
            if rule.dst_port is not None:
                selector = SELECTOR_UDP_DST_PORT if is_udp else SELECTOR_TCP_DST_PORT
                communities.add(
                    self._community(
                        SUBTYPE_PORT_SELECTOR, (selector << 24) | rule.dst_port
                    )
                )
        elif rule.protocol is not None:
            communities.add(self._community(SUBTYPE_PROTOCOL, int(rule.protocol)))

        if rule.action is RuleAction.SHAPE:
            communities.add(self._community(SUBTYPE_ACTION, ACTION_SHAPE))
            rate_mbps = max(1, int(round(rule.shape_rate_bps / 1e6)))
            communities.add(self._community(SUBTYPE_SHAPE_RATE, rate_mbps))
        # Plain DROP is the default and may be omitted; we still emit it for
        # rules with no other community so the signal is never empty.
        elif not communities:
            communities.add(self._community(SUBTYPE_ACTION, ACTION_DROP))
        return communities

    def encode_predefined(self, predefined_rule_id: int) -> set[ExtendedCommunity]:
        """Encode a reference to a portal-defined rule."""
        if predefined_rule_id < 0 or predefined_rule_id > 0xFFFFFFFF:
            raise ValueError("predefined rule id must fit in 32 bits")
        return {self._community(SUBTYPE_PREDEFINED_RULE, predefined_rule_id)}

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, communities: Iterable[ExtendedCommunity]) -> DecodedSignal:
        """Decode a community set into the signalled filter parameters."""
        stellar = [c for c in communities if self.is_stellar_community(c)]
        if not stellar:
            raise CommunityDecodeError("no Stellar extended communities present")

        action = RuleAction.DROP
        protocol: Optional[IpProtocol] = None
        src_port: Optional[int] = None
        dst_port: Optional[int] = None
        shape_rate_bps = 0.0
        predefined: Optional[int] = None

        for community in stellar:
            payload = community.local_admin
            if community.subtype == SUBTYPE_PORT_SELECTOR:
                selector = (payload >> 24) & 0xFF
                port = payload & 0xFFFF
                if selector in (SELECTOR_UDP_SRC_PORT, SELECTOR_UDP_DST_PORT):
                    protocol = IpProtocol.UDP
                elif selector in (SELECTOR_TCP_SRC_PORT, SELECTOR_TCP_DST_PORT):
                    protocol = IpProtocol.TCP
                else:
                    raise CommunityDecodeError(f"unknown port selector {selector}")
                if selector in (SELECTOR_UDP_SRC_PORT, SELECTOR_TCP_SRC_PORT):
                    src_port = port
                else:
                    dst_port = port
            elif community.subtype == SUBTYPE_PROTOCOL:
                try:
                    protocol = IpProtocol(payload)
                except ValueError as exc:
                    raise CommunityDecodeError(
                        f"unknown IP protocol number {payload}"
                    ) from exc
            elif community.subtype == SUBTYPE_ACTION:
                if payload == ACTION_DROP:
                    action = RuleAction.DROP
                elif payload == ACTION_SHAPE:
                    action = RuleAction.SHAPE
                else:
                    raise CommunityDecodeError(f"unknown action code {payload}")
            elif community.subtype == SUBTYPE_SHAPE_RATE:
                shape_rate_bps = float(payload) * 1e6
                action = RuleAction.SHAPE
            elif community.subtype == SUBTYPE_PREDEFINED_RULE:
                predefined = payload
            else:
                raise CommunityDecodeError(
                    f"unknown Stellar community subtype {community.subtype:#04x}"
                )

        if action is RuleAction.SHAPE and shape_rate_bps <= 0:
            raise CommunityDecodeError("shape action signalled without a rate")
        return DecodedSignal(
            action=action,
            protocol=protocol,
            src_port=src_port,
            dst_port=dst_port,
            shape_rate_bps=shape_rate_bps,
            predefined_rule_id=predefined,
        )

    def to_rule(
        self,
        communities: Iterable[ExtendedCommunity],
        owner_asn: int,
        dst_prefix: Prefix,
    ) -> tuple[Optional[BlackholingRule], Optional[int]]:
        """Decode communities and bind them to a prefix/owner.

        Returns ``(rule, predefined_rule_id)``: exactly one of the two is
        non-None — signals referencing a portal-defined rule are resolved by
        the signaling layer, not here.
        """
        signal = self.decode(communities)
        if signal.predefined_rule_id is not None:
            return None, signal.predefined_rule_id
        rule = BlackholingRule(
            owner_asn=owner_asn,
            dst_prefix=dst_prefix,
            action=signal.action,
            protocol=signal.protocol,
            src_port=signal.src_port,
            dst_port=signal.dst_port,
            shape_rate_bps=signal.shape_rate_bps,
        )
        return rule, None
