"""Customer (self-service) portal.

The IXP offers a shared set of predefined blackholing rules for common
attack patterns, and members can define custom rules bound to a numeric
identifier which they later reference from a BGP signal (paper §4.3).
The portal also performs the authorisation step: only the member that
registered a rule may reference it, and rules can only target prefixes the
member is authorised for.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ..bgp.prefix import Prefix
from ..traffic.packet import IpProtocol, WellKnownPort
from .rules import BlackholingRule, RuleAction


@dataclass(frozen=True)
class RuleTemplate:
    """A predefined rule: everything except the destination prefix/owner."""

    name: str
    action: RuleAction = RuleAction.DROP
    protocol: Optional[IpProtocol] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    shape_rate_bps: float = 0.0
    description: str = ""

    def instantiate(self, owner_asn: int, dst_prefix: Prefix) -> BlackholingRule:
        """Bind the template to a concrete victim prefix and owner."""
        return BlackholingRule(
            owner_asn=owner_asn,
            dst_prefix=dst_prefix,
            action=self.action,
            protocol=self.protocol,
            src_port=self.src_port,
            dst_port=self.dst_port,
            shape_rate_bps=self.shape_rate_bps,
        )


def ixp_shared_templates() -> dict[int, RuleTemplate]:
    """The IXP's shared catalogue of predefined rules for common attacks."""
    vectors = {
        1: ("drop-ntp", int(WellKnownPort.NTP), "NTP reflection (UDP/123)"),
        2: ("drop-dns", int(WellKnownPort.DNS), "DNS amplification (UDP/53)"),
        3: ("drop-memcached", int(WellKnownPort.MEMCACHED), "memcached (UDP/11211)"),
        4: ("drop-ldap", int(WellKnownPort.LDAP), "CLDAP amplification (UDP/389)"),
        5: ("drop-chargen", int(WellKnownPort.CHARGEN), "chargen (UDP/19)"),
        6: ("drop-ssdp", int(WellKnownPort.SSDP), "SSDP amplification (UDP/1900)"),
    }
    templates = {
        rule_id: RuleTemplate(
            name=name,
            protocol=IpProtocol.UDP,
            src_port=port,
            description=description,
        )
        for rule_id, (name, port, description) in vectors.items()
    }
    templates[7] = RuleTemplate(
        name="drop-udp-fragments",
        protocol=IpProtocol.UDP,
        src_port=0,
        description="UDP fragments (source port 0)",
    )
    templates[8] = RuleTemplate(
        name="drop-all-udp",
        protocol=IpProtocol.UDP,
        description="all UDP traffic towards the victim",
    )
    return templates


class CustomerPortal:
    """Registry of predefined (shared and member-defined) blackholing rules."""

    #: Member-defined rule identifiers start here; lower ids are IXP shared.
    CUSTOM_RULE_ID_BASE = 1000

    def __init__(self) -> None:
        self._shared: dict[int, RuleTemplate] = ixp_shared_templates()
        self._custom: dict[int, RuleTemplate] = {}
        self._custom_owner: dict[int, int] = {}
        self._ids = itertools.count(self.CUSTOM_RULE_ID_BASE)

    # ------------------------------------------------------------------
    # Catalogue management
    # ------------------------------------------------------------------
    def shared_templates(self) -> dict[int, RuleTemplate]:
        return dict(self._shared)

    def define_custom_rule(self, member_asn: int, template: RuleTemplate) -> int:
        """Register a member-defined template; returns its numeric identifier."""
        if member_asn <= 0:
            raise ValueError("member_asn must be positive")
        rule_id = next(self._ids)
        self._custom[rule_id] = template
        self._custom_owner[rule_id] = member_asn
        return rule_id

    def custom_rules_of(self, member_asn: int) -> dict[int, RuleTemplate]:
        return {
            rule_id: template
            for rule_id, template in self._custom.items()
            if self._custom_owner[rule_id] == member_asn
        }

    def remove_custom_rule(self, member_asn: int, rule_id: int) -> bool:
        """Remove a member-defined rule (only by its owner)."""
        if self._custom_owner.get(rule_id) != member_asn:
            return False
        del self._custom[rule_id]
        del self._custom_owner[rule_id]
        return True

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(
        self, rule_id: int, member_asn: int, dst_prefix: Prefix
    ) -> BlackholingRule:
        """Resolve a predefined-rule reference into a concrete rule.

        Shared templates are available to every member; custom templates
        only to the member that defined them.
        """
        template = self._shared.get(rule_id)
        if template is None:
            template = self._custom.get(rule_id)
            if template is None:
                raise KeyError(f"unknown predefined blackholing rule id {rule_id}")
            if self._custom_owner[rule_id] != member_asn:
                raise PermissionError(
                    f"AS{member_asn} is not authorised to use custom rule {rule_id}"
                )
        return template.instantiate(owner_asn=member_asn, dst_prefix=dst_prefix)
