"""repro — a reproduction of "Stellar: Network Attack Mitigation using
Advanced Blackholing" (Dietzel et al., CoNEXT 2018).

The package is organised bottom-up:

* :mod:`repro.sim` — simulation clock, event engine, deterministic RNG.
* :mod:`repro.bgp` — BGP substrate (prefixes, communities, RIBs, route
  server with IRR/RPKI/bogon policy, Flowspec).
* :mod:`repro.traffic` — flow records, amplification-attack catalogue,
  synthetic IXP trace generation, IPFIX collection.
* :mod:`repro.ixp` — IXP members, ports, TCAM, QoS data plane, edge
  routers, switching fabric.
* :mod:`repro.mitigation` — baselines: RTBH, ACL filters, Flowspec,
  traffic scrubbing, and the qualitative comparison of Table 1.
* :mod:`repro.core` — the paper's contribution: Advanced Blackholing rules,
  extended-community signalling, the blackholing controller, the
  token-bucket change queue, network managers (QoS and SDN), telemetry and
  the :class:`~repro.core.stellar.Stellar` facade.
* :mod:`repro.analysis` — statistics used by the evaluation (Welch's t-test,
  CDFs, collateral-damage and compliance analyses).
* :mod:`repro.experiments` — one driver per table/figure of the paper.

Quick start::

    from repro.core import Stellar, BlackholingRule
    from repro.ixp import IxpMember, SwitchingFabric, EdgeRouter

    fabric = SwitchingFabric()
    fabric.add_edge_router(EdgeRouter("edge-1"))
    stellar = Stellar(ixp_asn=6695, fabric=fabric)
    stellar.add_member(IxpMember(asn=64500, prefixes=["100.10.10.0/24"]))
    rule = BlackholingRule.drop_udp_source_port(64500, "100.10.10.10/32", 123)
    stellar.request_mitigation(rule)
"""

from .core import BlackholingRule, RuleAction, Stellar

__version__ = "1.1.0"

__all__ = ["BlackholingRule", "RuleAction", "Stellar", "__version__"]
