"""TCAM resource model.

The paper identifies the edge routers' Ternary Content-Addressable Memory
as the main resource bottleneck for Advanced Blackholing (§5.1): filter
rules consume MAC (L2) filter entries and L3–L4 filter criteria, both of
which are finite.  Fig. 9 maps the feasible region for three adoption
rates; insufficient resources are labelled *F1* (chassis-wide L3–L4
criteria exhausted) or *F2* (MAC filter entries exhausted).

The model below tracks the two pools explicitly.  Pool sizes come from a
:class:`~repro.ixp.hardware_profiles.HardwareProfile`; the defaults are
calibrated so that the reproduction's Fig. 9 matrices match the paper's
(see the profile docstring for the calibration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class TcamStatus(Enum):
    """Resource check outcome, matching Fig. 9's cell labels."""

    OK = "OK"
    F1 = "F1"  # total L3-L4 filter criteria exceeded
    F2 = "F2"  # MAC filter entries exceeded


class TcamExhaustedError(RuntimeError):
    """Raised when an allocation would exceed the hardware limits."""

    def __init__(self, status: TcamStatus, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class TcamModel:
    """Explicit accounting of MAC and L3–L4 filter resources.

    Both pools are chassis wide (shared across member ports), mirroring the
    behaviour the paper's lab evaluation exposes: increasing the *adoption
    rate* (number of ports with rules) shrinks the per-port headroom.
    """

    #: Chassis-wide capacity of MAC (L2) filter entries.
    mac_filter_capacity: int
    #: Chassis-wide capacity of L3–L4 filter criteria for QoS policies.
    l3l4_criteria_capacity: int
    _mac_used: dict[int, int] = field(default_factory=dict)
    _l3l4_used: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mac_filter_capacity <= 0 or self.l3l4_criteria_capacity <= 0:
            raise ValueError("TCAM capacities must be positive")

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def mac_filters_used(self) -> int:
        return sum(self._mac_used.values())

    @property
    def l3l4_criteria_used(self) -> int:
        return sum(self._l3l4_used.values())

    @property
    def mac_filters_free(self) -> int:
        return self.mac_filter_capacity - self.mac_filters_used

    @property
    def l3l4_criteria_free(self) -> int:
        return self.l3l4_criteria_capacity - self.l3l4_criteria_used

    def usage_for_port(self, port_id: int) -> tuple[int, int]:
        """``(mac_filters, l3l4_criteria)`` consumed by one port."""
        return self._mac_used.get(port_id, 0), self._l3l4_used.get(port_id, 0)

    # ------------------------------------------------------------------
    # Feasibility checks and allocation
    # ------------------------------------------------------------------
    def check(self, mac_filters: int, l3l4_criteria: int) -> TcamStatus:
        """Would allocating the given amounts still fit?

        L3–L4 exhaustion (F1) takes precedence over MAC exhaustion (F2),
        matching how the paper's figure labels cells where both limits are
        exceeded.
        """
        if mac_filters < 0 or l3l4_criteria < 0:
            raise ValueError("resource amounts must be non-negative")
        if self.l3l4_criteria_used + l3l4_criteria > self.l3l4_criteria_capacity:
            return TcamStatus.F1
        if self.mac_filters_used + mac_filters > self.mac_filter_capacity:
            return TcamStatus.F2
        return TcamStatus.OK

    def allocate(self, port_id: int, mac_filters: int, l3l4_criteria: int) -> None:
        """Allocate resources for a port or raise :class:`TcamExhaustedError`."""
        status = self.check(mac_filters, l3l4_criteria)
        if status is not TcamStatus.OK:
            raise TcamExhaustedError(
                status,
                f"allocation of {mac_filters} MAC filters and {l3l4_criteria} "
                f"L3-L4 criteria for port {port_id} exceeds hardware limits "
                f"({status.value})",
            )
        self._mac_used[port_id] = self._mac_used.get(port_id, 0) + mac_filters
        self._l3l4_used[port_id] = self._l3l4_used.get(port_id, 0) + l3l4_criteria

    def release(self, port_id: int, mac_filters: int, l3l4_criteria: int) -> None:
        """Release previously allocated resources."""
        if mac_filters < 0 or l3l4_criteria < 0:
            raise ValueError("resource amounts must be non-negative")
        current_mac = self._mac_used.get(port_id, 0)
        current_l3l4 = self._l3l4_used.get(port_id, 0)
        if mac_filters > current_mac or l3l4_criteria > current_l3l4:
            raise ValueError(
                f"cannot release more resources than allocated for port {port_id}"
            )
        self._mac_used[port_id] = current_mac - mac_filters
        self._l3l4_used[port_id] = current_l3l4 - l3l4_criteria

    def release_port(self, port_id: int) -> None:
        """Release everything allocated to a port."""
        self._mac_used.pop(port_id, None)
        self._l3l4_used.pop(port_id, None)

    def reset(self) -> None:
        self._mac_used.clear()
        self._l3l4_used.clear()
