"""Batched (platform-level) fabric delivery.

``SwitchingFabric.deliver``'s per-member fallback walks the interval's
egress members one at a time: each member costs a full boolean scan of the
egress column, a column-wise sub-table ``select``, one ``qos.apply`` call
and one ``PortQosResult`` with eagerly materialised tables.  At paper
scale — DE-CIX-class fabrics carry traffic for hundreds of member ports
per observation interval (§4.5, footnote 1) — that loop is O(members ×
flows) in Python before any classification happens.

:class:`FabricDeliveryPlan` replaces the loop with one platform-level
pass:

1. **compile** — every connected port's QoS rules are snapshotted into a
   single columnar rule set; each :class:`CompiledRule` is tagged with its
   egress member, and per-port precedence (most-specific-first) is
   preserved inside the global order;
2. **classify** — one vectorized group-by over the whole interval
   :class:`~repro.traffic.flowtable.FlowTable` (``np.unique`` on the
   egress column) plus one vectorized match pass per *rule* assigns every
   row its verdict; per-rule matched bits fall out of a single
   ``bincount``;
3. **scatter** — the verdicts are folded back into per-port
   :class:`~repro.ixp.qos.PortQosResult`\\ s (with deferred table views),
   :class:`~repro.ixp.port.PortCounters`, port history and the
   ``rule_stats`` the telemetry layer ingests.

The engine is bit-for-bit equal to the per-member loop (same float
operations in the same order — ``tests/ixp/test_fabric_delivery.py`` pins
multiset flow verdicts, bit accounting and counters across multi-router
topologies), so experiments can switch engines freely; the per-member
path remains as the parity-tested fallback and the only path for
record-list input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..traffic.flowtable import FlowTable
from .port import MemberPort
from .qos import FilterAction, PortQosResult, QosRule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .fabric import FabricIntervalReport, SwitchingFabric


@dataclass(frozen=True)
class CompiledRule:
    """One port rule inside the platform-level rule set."""

    #: Egress member whose port owns the rule (the implicit match column).
    member_asn: int
    rule: QosRule
    #: Position in the owning port's most-specific-first rule order.
    port_rule_index: int


class FabricDeliveryPlan:
    """Compiled snapshot of a fabric's ports and QoS rules.

    A plan is cheap to build (one walk over the connected ports), so the
    fabric compiles a fresh one per delivery interval — rule installs and
    removals between intervals are picked up automatically.
    """

    def __init__(self, fabric: "SwitchingFabric") -> None:
        self.fabric = fabric
        # Key membership off the fabric's member registry (the same source
        # of truth the per-member engine and the IPFIX export filter use),
        # not off whatever ports the routers happen to carry.
        self._ports: Dict[int, MemberPort] = {
            member.asn: fabric.port_for_member(member.asn)
            for member in fabric.members()
        }
        #: The platform-level rule set, grouped per member in per-port
        #: precedence order (members in ascending ASN order, matching the
        #: sorted group-by the execution pass produces).
        self._rules: List[CompiledRule] = []
        self._rules_by_member: Dict[int, List[int]] = {}
        for asn in sorted(self._ports):
            sorted_rules = self._ports[asn].qos.sorted_rules()
            if not sorted_rules:
                continue
            indices: List[int] = []
            for position, rule in enumerate(sorted_rules):
                indices.append(len(self._rules))
                self._rules.append(
                    CompiledRule(member_asn=asn, rule=rule, port_rule_index=position)
                )
            self._rules_by_member[asn] = indices

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def port_count(self) -> int:
        return len(self._ports)

    @property
    def rule_count(self) -> int:
        return len(self._rules)

    def compiled_rules(self) -> List[CompiledRule]:
        return list(self._rules)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, table: FlowTable, interval: float, interval_start: float = 0.0
    ) -> "FabricIntervalReport":
        """Carry one interval across the platform in a single batched pass."""
        from .fabric import FabricIntervalReport

        if interval <= 0:
            raise ValueError("interval must be positive")
        report = FabricIntervalReport(interval_start=interval_start, interval=interval)
        n = len(table)
        if n == 0:
            return report

        egress = table.egress_asn
        bits = table.bits

        # One platform-wide group-by: member ASNs in ascending order, each
        # group's rows as ascending original-order indices (the stable
        # argsort preserves intra-member row order, which keeps the
        # scattered tables identical to the per-member ``select`` path).
        unique_asns, inverse = np.unique(egress, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        boundaries = np.cumsum(np.bincount(inverse, minlength=len(unique_asns)))[:-1]
        rows_per_group = np.split(order, boundaries)

        assigned, per_rule_bits = self._classify(
            table, bits, unique_asns, rows_per_group
        )

        for group_index, asn in enumerate(unique_asns.tolist()):
            port = self._ports.get(asn)
            if port is None:
                # Unknown egress member: the flow never entered the IXP.
                continue
            rows = rows_per_group[group_index]
            offered = float(bits[rows].sum())
            rule_indices = self._rules_by_member.get(asn)
            if rule_indices is None:
                result = self._passthrough_result(table, rows, offered, port, interval)
            else:
                result = self._filtered_result(
                    table, rows, rule_indices, assigned, bits, per_rule_bits,
                    port, interval,
                )
            port.counters.update(offered, result)
            port.history.append((interval_start, result))
            report.results_by_member[asn] = result
            report.offered_bits += offered
            report.delivered_bits += result.delivered_bits
            report.filtered_bits += result.dropped_bits + result.shaped_dropped_bits
            report.congestion_dropped_bits += result.congestion_dropped_bits
        return report

    # ------------------------------------------------------------------
    def _classify(
        self,
        table: FlowTable,
        bits: np.ndarray,
        unique_asns: np.ndarray,
        rows_per_group,
    ) -> tuple:
        """Assign each row its claiming rule (global index, or -1 = forward).

        Rules of different members are disjoint by the egress column, so
        each filtered member's rules are matched against that member's
        row slice only — O(rules_m × flows_m) summed over the filtered
        members, never O(total rules × total flows).  ``matches_table`` is
        row-wise, so verdicts on the slice equal verdicts on the full
        table.
        """
        if not any(
            asn in self._rules_by_member for asn in unique_asns.tolist()
        ):
            return None, None
        assigned = np.full(len(table), -1, dtype=np.int64)
        for group_index, asn in enumerate(unique_asns.tolist()):
            rule_indices = self._rules_by_member.get(asn)
            if rule_indices is None:
                continue
            rows = rows_per_group[group_index]
            member_table = table.select(rows)
            unmatched = np.ones(len(rows), dtype=bool)
            for global_index in rule_indices:
                if not unmatched.any():
                    break
                rule = self._rules[global_index].rule
                claimed = unmatched & rule.match.matches_table(member_table)
                assigned[rows[claimed]] = global_index
                unmatched &= ~claimed
        matched = assigned >= 0
        per_rule_bits = np.bincount(
            assigned[matched], weights=bits[matched], minlength=len(self._rules)
        )
        return assigned, per_rule_bits

    # ------------------------------------------------------------------
    def _passthrough_result(
        self,
        table: FlowTable,
        rows: np.ndarray,
        offered: float,
        port: MemberPort,
        interval: float,
    ) -> PortQosResult:
        """A port with no rules: everything forwards (then congestion).

        The dominant case at platform scale; the columnar views are
        deferred so an 800-member interval builds zero sub-tables unless a
        consumer actually reads one.
        """
        result = PortQosResult(
            forwarded_bits=offered,
            rule_stats={},
            table_source=lambda: (
                table.select(rows), FlowTable.empty(), FlowTable.empty(),
            ),
        )
        port.qos.apply_congestion(result, interval)
        return result

    def _filtered_result(
        self,
        table: FlowTable,
        rows: np.ndarray,
        rule_indices: List[int],
        assigned: np.ndarray,
        bits: np.ndarray,
        per_rule_bits: np.ndarray,
        port: MemberPort,
        interval: float,
    ) -> PortQosResult:
        """Scatter the platform-level verdicts back into one port's result.

        Mirrors ``PortQosPolicy._apply_table`` operation for operation
        (same accumulation order, same float conversions) so the batched
        engine stays bit-for-bit equal to the fallback.
        """
        qos = port.qos
        assigned_rows = assigned[rows]
        rule_stats: Dict[str, Dict[str, float]] = {}

        def stats_for(rule: QosRule) -> Dict[str, float]:
            return rule_stats.setdefault(
                rule.rule_id, {"matched": 0.0, "dropped": 0.0, "shaped": 0.0}
            )

        forward_mask = assigned_rows < 0
        drop_mask = np.zeros(len(rows), dtype=bool)
        shape_groups: Dict[str, List[int]] = {}
        for global_index in rule_indices:
            selected = assigned_rows == global_index
            if not selected.any():
                continue
            rule = self._rules[global_index].rule
            if rule.action is FilterAction.FORWARD:
                forward_mask |= selected
            elif rule.action is FilterAction.DROP:
                drop_mask |= selected
                matched_bits = float(per_rule_bits[global_index])
                stats = stats_for(rule)
                stats["matched"] += matched_bits
                stats["dropped"] += matched_bits
            else:  # SHAPE — rules sharing a shaper key share its budget.
                shape_groups.setdefault(rule.rule_id or "anon", []).append(global_index)

        shaped_tables: List[FlowTable] = []
        shaped_passed = 0.0
        shaped_dropped = 0.0
        for key, group_indices in shape_groups.items():
            group_mask = np.isin(assigned_rows, group_indices)
            group_rows = rows[group_mask]
            offered_bits = float(bits[group_rows].sum())
            shaper = qos.shaper_for(key)
            if shaper is None:
                passed_bits, dropped_bits = offered_bits, 0.0
            else:
                passed_bits, dropped_bits = shaper.shape(offered_bits, interval)
            scale = passed_bits / offered_bits if offered_bits > 0 else 0.0
            scaled = table.select(group_rows).scaled(scale)
            shaped_tables.append(scaled)
            scaled_bits = scaled.bits
            group_assigned = assigned_rows[group_mask]
            for global_index in group_indices:
                rule_bits = float(scaled_bits[group_assigned == global_index].sum())
                stats = stats_for(self._rules[global_index].rule)
                stats["matched"] += rule_bits
                stats["shaped"] += rule_bits
            shaped_passed += passed_bits
            shaped_dropped += dropped_bits

        forward_rows = rows[forward_mask]
        drop_rows = rows[drop_mask]
        shaped_table = (
            FlowTable.concat(shaped_tables) if shaped_tables else FlowTable.empty()
        )
        result = PortQosResult(
            forwarded_bits=float(bits[forward_rows].sum()),
            dropped_bits=float(bits[drop_rows].sum()),
            shaped_passed_bits=shaped_passed,
            shaped_dropped_bits=shaped_dropped,
            rule_stats=rule_stats,
            table_source=lambda: (
                table.select(forward_rows), table.select(drop_rows), shaped_table,
            ),
        )
        qos.apply_congestion(result, interval)
        return result
