"""Batched (platform-level) fabric delivery.

``SwitchingFabric.deliver``'s per-member fallback walks the interval's
egress members one at a time: each member costs a full boolean scan of the
egress column, a column-wise sub-table ``select``, one ``qos.apply`` call
and one ``PortQosResult`` with eagerly materialised tables.  At paper
scale — DE-CIX-class fabrics carry traffic for hundreds of member ports
per observation interval (§4.5, footnote 1) — that loop is O(members ×
flows) in Python before any classification happens.

:class:`FabricDeliveryPlan` replaces the loop with one platform-level
pass:

1. **compile** — every connected port's QoS rules are snapshotted into a
   single columnar rule set; each :class:`CompiledRule` is tagged with its
   egress member, and per-port precedence (most-specific-first) is
   preserved inside the global order;
2. **classify** — one vectorized group-by over the whole interval
   :class:`~repro.traffic.flowtable.FlowTable` (``np.unique`` on the
   egress column), then each filtered member's slice is classified through
   the port's :meth:`~repro.ixp.qos.PortQosPolicy.assign_table` — the
   compiled :class:`~repro.ixp.ruleindex.RuleMatchIndex` by default, the
   per-rule pass when the port runs the fallback engine; per-rule matched
   bits fall out of a single ``bincount``;
3. **scatter** — the verdicts are folded back into per-port
   :class:`~repro.ixp.qos.PortQosResult`\\ s (with deferred table views),
   :class:`~repro.ixp.port.PortCounters`, port history and the
   ``rule_stats`` the telemetry layer ingests.  The scatter iterates only
   the rules that actually claimed rows, so a port with tens of thousands
   of installed fine-grained rules costs O(claimed), not O(installed).

Plans are cached across intervals: each plan snapshots every port's
rule-set version counter (:attr:`~repro.ixp.qos.PortQosPolicy.rules_version`),
and :meth:`SwitchingFabric.deliver` reuses the plan while
:meth:`FabricDeliveryPlan.is_current` holds — rule installs/removals bump
the counter, so only intervals after a configuration change recompile, and
the per-port match indexes themselves are cached on the policies so
untouched ports never recompile at all.

The engine is bit-for-bit equal to the per-member loop (same float
operations in the same order — ``tests/ixp/test_fabric_delivery.py`` pins
multiset flow verdicts, bit accounting and counters across multi-router
topologies), so experiments can switch engines freely; the per-member
path remains as the parity-tested fallback and the only path for
record-list input.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..traffic.flowtable import FlowTable
from .port import MemberPort
from .qos import (
    _DROP_CODE,
    _FORWARD_CODE,
    FilterAction,
    PortQosResult,
    QosRule,
    _group_rows,
    _shape_rows_by_rank,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .fabric import FabricIntervalReport, SwitchingFabric


@dataclass(frozen=True)
class CompiledRule:
    """One port rule inside the platform-level rule set."""

    #: Egress member whose port owns the rule (the implicit match column).
    member_asn: int
    rule: QosRule
    #: Position in the owning port's most-specific-first rule order.
    port_rule_index: int


class FabricDeliveryPlan:
    """Compiled snapshot of a fabric's ports and QoS rules.

    A plan is cheap to build (one walk over the connected ports), and it
    records every port's rule-set version, so the fabric keeps reusing it
    across delivery intervals until :meth:`is_current` reports that the
    membership or some port's rules changed.
    """

    def __init__(
        self,
        fabric: "SwitchingFabric",
        previous: "FabricDeliveryPlan | None" = None,
    ) -> None:
        self.fabric = fabric
        # Key membership off the fabric's member registry (the same source
        # of truth the per-member engine and the IPFIX export filter use),
        # not off whatever ports the routers happen to carry.
        self._ports: dict[int, MemberPort] = {
            member.asn: fabric.port_for_member(member.asn)
            for member in fabric.members()
        }
        #: The platform-level rule set, grouped per member in per-port
        #: precedence order (members in ascending ASN order, matching the
        #: sorted group-by the execution pass produces).
        self._rules: list[CompiledRule] = []
        #: Each filtered member's contiguous slice of :attr:`_rules`.  The
        #: :class:`CompiledRule` entries are position-independent (global
        #: index = start + port-local rank), so an unchanged port's
        #: segment is reused verbatim when patching a stale plan.
        self._segments: dict[int, list[CompiledRule]] = {}
        #: First global index of each filtered member's contiguous rule
        #: block (global index = start + port-local rank).
        self._member_start: dict[int, int] = {}
        #: Rule-set version of every port at compile time (the cache key).
        self._port_versions: dict[int, int] = {}
        for asn in sorted(self._ports):
            qos = self._ports[asn].qos
            version = qos.rules_version
            self._port_versions[asn] = version
            if previous is not None and previous._port_versions.get(asn) == version:
                # Unchanged port: adopt the previous plan's compiled
                # segment (possibly absent — a rule-less port compiles to
                # no segment on both sides) instead of rebuilding it.
                segment = previous._segments.get(asn, [])
            else:
                segment = [
                    CompiledRule(member_asn=asn, rule=rule, port_rule_index=position)
                    for position, rule in enumerate(qos.sorted_rules())
                ]
            if not segment:
                continue
            self._member_start[asn] = len(self._rules)
            self._segments[asn] = segment
            self._rules.extend(segment)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def port_count(self) -> int:
        return len(self._ports)

    @property
    def rule_count(self) -> int:
        return len(self._rules)

    def compiled_rules(self) -> list[CompiledRule]:
        return list(self._rules)

    def is_current(self) -> bool:
        """True while the plan still matches the fabric's configuration.

        Checked once per delivery interval: the member set must be
        unchanged and every port's rule-set version must equal the
        compile-time snapshot.  O(members) per check, versus an
        O(total rules) recompile.
        """
        if self.fabric.member_asns != set(self._ports):
            return False
        return all(
            port.qos.rules_version == self._port_versions[asn]
            for asn, port in self._ports.items()
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, table: FlowTable, interval: float, interval_start: float = 0.0
    ) -> "FabricIntervalReport":
        """Carry one interval across the platform in a single batched pass."""
        from .fabric import FabricIntervalReport

        if interval <= 0:
            raise ValueError("interval must be positive")
        if not self.is_current():
            # Classification delegates to the live port policies while the
            # scatter indexes this plan's snapshot; running a stale plan
            # would silently attribute bits to the wrong rules.
            raise RuntimeError(
                "delivery plan is stale (rules or membership changed since "
                "compile); rebuild via SwitchingFabric.current_delivery_plan()"
            )
        report = FabricIntervalReport(interval_start=interval_start, interval=interval)
        n = len(table)
        if n == 0:
            return report

        egress = table.egress_asn
        bits = table.bits

        # One platform-wide group-by: member ASNs in ascending order, each
        # group's rows as ascending original-order indices (the stable
        # argsort preserves intra-member row order, which keeps the
        # scattered tables identical to the per-member ``select`` path).
        unique_asns, inverse = np.unique(egress, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        boundaries = np.cumsum(np.bincount(inverse, minlength=len(unique_asns)))[:-1]
        rows_per_group = np.split(order, boundaries)

        assigned, per_rule_bits = self._classify(
            table, bits, unique_asns, rows_per_group
        )

        # Platform totals are collected per member and reduced once after
        # the loop; sum() adds left-to-right in ascending-ASN group order,
        # exactly the sequence the old running `+=` produced, so report
        # payloads stay bit-for-bit identical (RPL006: no float `+=` in
        # loops).
        offered_terms: list[float] = []
        delivered_terms: list[float] = []
        filtered_terms: list[float] = []
        congestion_terms: list[float] = []
        for group_index, asn in enumerate(unique_asns.tolist()):
            port = self._ports.get(asn)
            if port is None:
                # Unknown egress member: the flow never entered the IXP.
                continue
            rows = rows_per_group[group_index]
            offered = float(bits[rows].sum())
            if asn not in self._segments:
                result = self._passthrough_result(table, rows, offered, port, interval)
            else:
                result = self._filtered_result(
                    table, rows, asn, assigned, bits, per_rule_bits, port, interval
                )
            port.counters.update(offered, result)
            if port.retain_history:
                port.history.append((interval_start, result))
            report.results_by_member[asn] = result
            offered_terms.append(offered)
            delivered_terms.append(result.delivered_bits)
            filtered_terms.append(result.dropped_bits + result.shaped_dropped_bits)
            congestion_terms.append(result.congestion_dropped_bits)
        report.offered_bits = float(sum(offered_terms))
        report.delivered_bits = float(sum(delivered_terms))
        report.filtered_bits = float(sum(filtered_terms))
        report.congestion_dropped_bits = float(sum(congestion_terms))
        return report

    # ------------------------------------------------------------------
    def _classify(
        self,
        table: FlowTable,
        bits: np.ndarray,
        unique_asns: np.ndarray,
        rows_per_group: Sequence[np.ndarray],
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Assign each row its claiming rule (global index, or -1 = forward).

        Rules of different members are disjoint by the egress column, so
        each filtered member's rules are matched against that member's
        row slice only, through the port policy's shared
        :meth:`~repro.ixp.qos.PortQosPolicy.assign_table` — the compiled
        rule-match index on the default engine.  ``assign_table`` is
        row-wise, so verdicts on the slice equal verdicts on the full
        table; local ranks map to global rule indices by the member's
        contiguous block offset.
        """
        if not any(
            asn in self._segments for asn in unique_asns.tolist()
        ):
            return None, None
        assigned = np.full(len(table), -1, dtype=np.int64)
        for group_index, asn in enumerate(unique_asns.tolist()):
            if asn not in self._segments:
                continue
            rows = rows_per_group[group_index]
            member_table = table.select(rows)
            ranks = self._ports[asn].qos.assign_table(member_table)
            matched = ranks >= 0
            if matched.any():
                assigned[rows[matched]] = self._member_start[asn] + ranks[matched]
        matched = assigned >= 0
        per_rule_bits = np.bincount(
            assigned[matched], weights=bits[matched], minlength=len(self._rules)
        )
        return assigned, per_rule_bits

    # ------------------------------------------------------------------
    def _passthrough_result(
        self,
        table: FlowTable,
        rows: np.ndarray,
        offered: float,
        port: MemberPort,
        interval: float,
    ) -> PortQosResult:
        """A port with no rules: everything forwards (then congestion).

        The dominant case at platform scale; the columnar views are
        deferred so an 800-member interval builds zero sub-tables unless a
        consumer actually reads one.
        """
        result = PortQosResult(
            forwarded_bits=offered,
            rule_stats={},
            table_source=lambda: (
                table.select(rows), FlowTable.empty(), FlowTable.empty(),
            ),
        )
        port.qos.apply_congestion(result, interval)
        return result

    def _filtered_result(
        self,
        table: FlowTable,
        rows: np.ndarray,
        asn: int,
        assigned: np.ndarray,
        bits: np.ndarray,
        per_rule_bits: np.ndarray,
        port: MemberPort,
        interval: float,
    ) -> PortQosResult:
        """Scatter the platform-level verdicts back into one port's result.

        Mirrors ``PortQosPolicy._apply_table`` operation for operation
        (same accumulation order, same float conversions) so the batched
        engine stays bit-for-bit equal to the fallback.  Only the rules
        that actually claimed rows are visited.
        """
        qos = port.qos
        start = self._member_start[asn]
        # Rules come from the plan's own snapshot (rank -> _rules[start +
        # rank]); the is_current guard in execute() keeps it aligned with
        # the live policy, and this avoids an O(installed) list copy per
        # filtered member per interval.
        assigned_rows = assigned[rows]
        matched = assigned_rows >= 0
        local = (assigned_rows - start).astype(np.int64)
        rule_stats: dict[str, dict[str, float]] = {}

        def stats_for(rule: QosRule) -> dict[str, float]:
            return rule_stats.setdefault(
                rule.rule_id, {"matched": 0.0, "dropped": 0.0, "shaped": 0.0}
            )

        claimed = np.unique(local[matched]).tolist() if bool(matched.any()) else []
        row_actions = np.full(len(rows), _FORWARD_CODE, dtype=np.int8)
        if claimed:
            row_actions[matched] = qos.action_codes()[local[matched]]
        forward_mask = row_actions == _FORWARD_CODE
        drop_mask = row_actions == _DROP_CODE
        shape_groups: dict[str, list[int]] = {}
        for rank in claimed:
            rule = self._rules[start + rank].rule
            if rule.action is FilterAction.DROP:
                matched_bits = float(per_rule_bits[start + rank])
                stats = stats_for(rule)
                stats["matched"] += matched_bits
                stats["dropped"] += matched_bits
            elif rule.action is FilterAction.SHAPE:
                # Rules sharing a shaper key share its budget (anonymous
                # shape rules carry synthetic ids).
                shape_groups.setdefault(rule.rule_id, []).append(rank)

        rows_by_rank = _shape_rows_by_rank(local, row_actions)
        shaped_tables: list[FlowTable] = []
        # Per-shaper terms, reduced once after the loop in the same order
        # the old running `+=` added them (RPL006) — bit-for-bit identical.
        passed_terms: list[float] = []
        dropped_terms: list[float] = []
        for key, group_ranks in shape_groups.items():
            positions = _group_rows(rows_by_rank, group_ranks)
            group_rows = rows[positions]
            offered_bits = float(bits[group_rows].sum())
            shaper = qos.shaper_for(key)
            if shaper is None:
                passed_bits, dropped_bits = offered_bits, 0.0
            else:
                passed_bits, dropped_bits = shaper.shape(offered_bits, interval)
            scale = passed_bits / offered_bits if offered_bits > 0 else 0.0
            scaled = table.select(group_rows).scaled(scale)
            shaped_tables.append(scaled)
            scaled_bits = scaled.bits
            group_local = local[positions]
            for rank in group_ranks:
                rule_bits = float(scaled_bits[group_local == rank].sum())
                stats = stats_for(self._rules[start + rank].rule)
                stats["matched"] += rule_bits
                stats["shaped"] += rule_bits
            passed_terms.append(passed_bits)
            dropped_terms.append(dropped_bits)
        shaped_passed = float(sum(passed_terms))
        shaped_dropped = float(sum(dropped_terms))

        forward_rows = rows[forward_mask]
        drop_rows = rows[drop_mask]
        shaped_table = (
            FlowTable.concat(shaped_tables) if shaped_tables else FlowTable.empty()
        )
        result = PortQosResult(
            forwarded_bits=float(bits[forward_rows].sum()),
            dropped_bits=float(bits[drop_rows].sum()),
            shaped_passed_bits=shaped_passed,
            shaped_dropped_bits=shaped_dropped,
            rule_stats=rule_stats,
            table_source=lambda: (
                table.select(forward_rows), table.select(drop_rows), shaped_table,
            ),
        )
        qos.apply_congestion(result, interval)
        return result
