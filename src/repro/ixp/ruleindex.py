"""Compiled rule-match index: classification at tens-of-thousands of rules.

The paper's central scalability claim (Table 1 / §5) is that advanced
blackholing stays effective with *tens of thousands* of fine-grained rules
— far beyond RTBH/ACL hardware limits.  Matching that in the reproduction
needs more than vectorizing the per-rule pass: one
:meth:`~repro.ixp.qos.FlowMatch.matches_table` scan per rule is
O(rules × flows), so a 10 000-rule port costs 10 000 whole-table passes
per observation interval.

:class:`RuleMatchIndex` compiles a port's most-specific-first rule list
into **signature groups**, keyed by which :class:`~repro.ixp.qos.FlowMatch`
fields are set:

* **Exact groups** — every criterion is an equality test: host (/32)
  ``dst_prefix``/``src_prefix``, ``protocol``, ``src_port``, ``dst_port``.
  This is the dominant Stellar rule shape
  (:meth:`~repro.core.rules.BlackholingRule.drop_udp_source_port` is
  ``dst host + UDP + src_port``).  The group's rule criteria are packed
  into one integer key per rule, and a whole table is matched with a
  single ``np.searchsorted`` over the group's sorted key array —
  O(flows × log rules) per group, independent of the rule count in
  Python terms.
* **Fallback groups** — anything with a broader prefix, an IPv6 prefix, a
  MAC criterion or no criteria at all keeps the per-rule masked pass
  (one ``matches_table`` per rule).

Precedence is resolved *across* groups with a vectorized argmin over rule
ranks: each rule carries its position in the port's most-specific-first
order, every group contributes the per-row rank of its best match, and the
row's verdict is the minimum rank seen — exactly the rule the sequential
first-match loop would have claimed the row with.  The index is therefore
verdict-for-verdict equal to the per-rule pass (pinned in
``tests/ixp/test_ruleindex.py``), which keeps the downstream accounting
bit-for-bit identical.

Indexes are immutable snapshots; :class:`~repro.ixp.qos.PortQosPolicy`
caches one per rule-set version (the counter bumped by ``install`` /
``remove`` / ``clear``), so steady-state intervals never recompile.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..traffic.flowtable import FlowTable

if TYPE_CHECKING:
    from ..bgp.prefix import Prefix
    from .qos import FlowMatch

#: Packing order and bit widths of the exact-match key fields.  A group's
#: key concatenates the fields its signature sets, in this order; the sum
#: of the set widths must fit the 64-bit key (checked per signature).
EXACT_FIELD_WIDTHS: tuple[tuple[str, int], ...] = (
    ("dst_ip", 32),
    ("src_ip", 32),
    ("protocol", 8),
    ("src_port", 16),
    ("dst_port", 16),
)

#: Field kinds a signature distinguishes for the prefix criteria.
_NONE, _HOST, _PREFIX = "none", "host", "prefix"


@dataclass(frozen=True)
class MatchSignature:
    """Which fields of a :class:`~repro.ixp.qos.FlowMatch` are set, and how.

    ``dst``/``src`` record whether the prefix criterion is absent, an IPv4
    host route (an equality test on the address column) or anything
    broader; the L4 fields and the MAC criterion are plain present/absent
    flags.  Rules sharing a signature are matched by the same compiled
    strategy.
    """

    dst: str = _NONE
    src: str = _NONE
    mac: bool = False
    protocol: bool = False
    src_port: bool = False
    dst_port: bool = False

    @classmethod
    def of(cls, match: "FlowMatch") -> "MatchSignature":
        def prefix_kind(prefix: "Optional[Prefix]") -> str:
            if prefix is None:
                return _NONE
            if prefix.version == 4 and prefix.is_host_route:
                return _HOST
            return _PREFIX

        return cls(
            dst=prefix_kind(match.dst_prefix),
            src=prefix_kind(match.src_prefix),
            mac=match.src_mac is not None,
            protocol=match.protocol is not None,
            src_port=match.src_port is not None,
            dst_port=match.dst_port is not None,
        )

    # ------------------------------------------------------------------
    @property
    def exact_fields(self) -> tuple[str, ...]:
        """The packed key fields, in :data:`EXACT_FIELD_WIDTHS` order."""
        present = {
            "dst_ip": self.dst == _HOST,
            "src_ip": self.src == _HOST,
            "protocol": self.protocol,
            "src_port": self.src_port,
            "dst_port": self.dst_port,
        }
        return tuple(name for name, _ in EXACT_FIELD_WIDTHS if present[name])

    @property
    def key_bits(self) -> int:
        widths = dict(EXACT_FIELD_WIDTHS)
        return sum(widths[name] for name in self.exact_fields)

    @property
    def is_exact(self) -> bool:
        """True if every set criterion is an equality test fitting the key.

        MAC criteria and non-host (or IPv6) prefixes force the masked
        fallback, as does the empty (catch-all) signature and the rare
        combination whose packed key would overflow 64 bits (e.g. host
        src + host dst + both ports).
        """
        if self.mac or self.dst == _PREFIX or self.src == _PREFIX:
            return False
        fields = self.exact_fields
        return bool(fields) and self.key_bits <= 64


def _rule_key(match: "FlowMatch", fields: tuple[str, ...]) -> int:
    """Pack one rule's exact criteria into the group's integer key."""
    widths = dict(EXACT_FIELD_WIDTHS)
    key = 0
    for name in fields:
        if name == "dst_ip":
            value = match.dst_prefix.int_bounds[0]
        elif name == "src_ip":
            value = match.src_prefix.int_bounds[0]
        elif name == "protocol":
            value = int(match.protocol)
        else:
            value = int(getattr(match, name))
        key = (key << widths[name]) | value
    return key


class ExactGroup:
    """One exact signature group: sorted packed keys + per-key best rank."""

    __slots__ = ("fields", "keys", "ranks", "rule_count")

    def __init__(self, fields: tuple[str, ...], entries: list[tuple[int, int]]) -> None:
        self.fields = fields
        self.rule_count = len(entries)
        keys = np.fromiter((key for key, _ in entries), dtype=np.uint64, count=len(entries))
        ranks = np.fromiter((rank for _, rank in entries), dtype=np.int32, count=len(entries))
        # Sort by key, then rank; duplicate keys keep the lowest rank (the
        # most specific / earliest-installed rule), matching what the
        # sequential first-match loop would claim.
        order = np.lexsort((ranks, keys))
        keys, ranks = keys[order], ranks[order]
        if len(keys) > 1:
            keep = np.ones(len(keys), dtype=bool)
            keep[1:] = keys[1:] != keys[:-1]
            keys, ranks = keys[keep], ranks[keep]
        self.keys = keys
        self.ranks = ranks

    # ------------------------------------------------------------------
    def flow_keys(self, table: FlowTable) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Pack the group's key fields out of a flow table.

        Returns ``(keys, valid)`` where ``valid`` flags rows whose field
        values fit the packed widths (``None`` when all rows do) — a row
        with an out-of-range value can never equal a validated rule key,
        so it must not alias into another key's lane.
        """
        widths = dict(EXACT_FIELD_WIDTHS)
        keys = np.zeros(len(table), dtype=np.uint64)
        valid: Optional[np.ndarray] = None
        for name in self.fields:
            column = getattr(table, name)
            width = np.uint64(widths[name])
            lane = np.uint64((1 << widths[name]) - 1)
            if column.dtype.kind == "i":  # the L4 port columns are signed
                in_range = (column >= 0) & (column <= int(lane))
                if not bool(in_range.all()):
                    valid = in_range if valid is None else (valid & in_range)
            keys = (keys << width) | (column.astype(np.uint64) & lane)
        return keys, valid

    def best_ranks(self, table: FlowTable, sentinel: int) -> Optional[np.ndarray]:
        """Per-row rank of the group's matching rule (``sentinel`` = none)."""
        if not len(self.keys):
            return None
        keys, valid = self.flow_keys(table)
        positions = np.searchsorted(self.keys, keys)
        positions = np.minimum(positions, len(self.keys) - 1)
        hits = self.keys[positions] == keys
        if valid is not None:
            hits &= valid
        if not bool(hits.any()):
            return None
        return np.where(hits, self.ranks[positions], np.int32(sentinel))


class RuleMatchIndex:
    """Compiled snapshot of one rule list in most-specific-first order.

    ``rules`` must already be sorted the way the sequential classifier
    evaluates them (:meth:`~repro.ixp.qos.PortQosPolicy.sorted_rules`);
    the index assigns each row the *rank* of its claiming rule in that
    order, so callers index back into the same list for actions, shaping
    rates and rule ids.
    """

    def __init__(self, rules: Sequence) -> None:
        self._rules = list(rules)
        exact_entries: dict[tuple[str, ...], list[tuple[int, int]]] = {}
        fallback: dict[MatchSignature, list[tuple[int, object]]] = {}
        for rank, rule in enumerate(self._rules):
            signature = MatchSignature.of(rule.match)
            if signature.is_exact:
                fields = signature.exact_fields
                exact_entries.setdefault(fields, []).append(
                    (_rule_key(rule.match, fields), rank)
                )
            else:
                fallback.setdefault(signature, []).append((rank, rule))
        self._exact_groups = [
            ExactGroup(fields, entries) for fields, entries in exact_entries.items()
        ]
        self._fallback_groups = list(fallback.items())

    # ------------------------------------------------------------------
    # Introspection (docs, tests, telemetry)
    # ------------------------------------------------------------------
    @property
    def rule_count(self) -> int:
        return len(self._rules)

    @property
    def exact_rule_count(self) -> int:
        return sum(group.rule_count for group in self._exact_groups)

    @property
    def fallback_rule_count(self) -> int:
        return sum(len(entries) for _, entries in self._fallback_groups)

    @property
    def exact_group_count(self) -> int:
        return len(self._exact_groups)

    @property
    def fallback_group_count(self) -> int:
        return len(self._fallback_groups)

    def describe(self) -> dict[str, int]:
        """Compact stats of the compiled shape (stable across engines)."""
        return {
            "rules": self.rule_count,
            "exact_rules": self.exact_rule_count,
            "fallback_rules": self.fallback_rule_count,
            "exact_groups": self.exact_group_count,
            "fallback_groups": self.fallback_group_count,
        }

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def assign(self, table: FlowTable) -> np.ndarray:
        """Rank of each row's claiming rule (``-1`` = no rule matches).

        Equal to the sequential first-match loop over the sorted rules:
        the winner is the matching rule with the minimum rank, which the
        exact groups resolve via one sorted-key lookup each and the
        fallback groups via per-rule masked passes, folded together with
        a running elementwise minimum.
        """
        n = len(table)
        sentinel = len(self._rules)
        best = np.full(n, np.int32(sentinel), dtype=np.int32)
        if n == 0 or sentinel == 0:
            return np.full(n, -1, dtype=np.int32)
        for group in self._exact_groups:
            ranks = group.best_ranks(table, sentinel)
            if ranks is not None:
                np.minimum(best, ranks, out=best)
        for _, entries in self._fallback_groups:
            for rank, rule in entries:
                mask = rule.match.matches_table(table)
                if bool(mask.any()):
                    np.minimum(
                        best, np.where(mask, np.int32(rank), np.int32(sentinel)), out=best
                    )
        assigned = best
        assigned[assigned == sentinel] = -1
        return assigned
