"""Compiled rule-match index: classification at tens-of-thousands of rules.

The paper's central scalability claim (Table 1 / §5) is that advanced
blackholing stays effective with *tens of thousands* of fine-grained rules
— far beyond RTBH/ACL hardware limits.  Matching that in the reproduction
needs more than vectorizing the per-rule pass: one
:meth:`~repro.ixp.qos.FlowMatch.matches_table` scan per rule is
O(rules × flows), so a 10 000-rule port costs 10 000 whole-table passes
per observation interval.

:class:`RuleMatchIndex` compiles a port's most-specific-first rule list
into **signature groups**, keyed by which :class:`~repro.ixp.qos.FlowMatch`
fields are set:

* **Exact groups** — every criterion is an equality test: host (/32)
  ``dst_prefix``/``src_prefix``, ``protocol``, ``src_port``, ``dst_port``.
  This is the dominant Stellar rule shape
  (:meth:`~repro.core.rules.BlackholingRule.drop_udp_source_port` is
  ``dst host + UDP + src_port``).  The group's rule criteria are packed
  into one integer key per rule, and a whole table is matched with a
  single ``np.searchsorted`` over the group's sorted key array —
  O(flows × log rules) per group, independent of the rule count in
  Python terms.
* **Fallback groups** — anything with a broader prefix, an IPv6 prefix, a
  MAC criterion or no criteria at all keeps the per-rule masked pass
  (one ``matches_table`` per rule).  Broad IPv4-prefix rules of at least
  :data:`RADIX_BITS` bits are additionally **radix-binned**: the rule is
  filed under the top :data:`RADIX_BITS` bits of its prefix, the table's
  address column is bucketed by the same bits once per assignment, and
  the rule's masked pass runs only over its candidate bin's rows — an
  address outside the bin can never match the prefix, so verdicts are
  unchanged while the O(fallback rules × flows) term collapses to
  O(fallback rules × bin rows).

Precedence is resolved *across* groups with a vectorized argmin over rule
ranks: each rule carries its position in the port's most-specific-first
order, every group contributes the per-row rank of its best match, and the
row's verdict is the minimum rank seen — exactly the rule the sequential
first-match loop would have claimed the row with.  Duplicate exact keys
keep every entry (sorted by rank within the key), and the ``side="left"``
lookup returns the lowest rank — the most specific / earliest-installed
rule, matching the sequential loop.  The index is therefore
verdict-for-verdict equal to the per-rule pass (pinned in
``tests/ixp/test_ruleindex.py``), which keeps the downstream accounting
bit-for-bit identical.

Indexes are immutable snapshots.  :class:`~repro.ixp.qos.PortQosPolicy`
caches one per rule-set version and, under steady churn, *derives the
next snapshot from the previous one*: :meth:`RuleMatchIndex.with_installed`
and :meth:`RuleMatchIndex.with_removed` splice a single rule into / out of
the one signature group it touches (one ``np.searchsorted`` + slice copy
for exact groups, a list splice for fallback groups) and rewrite only the
affected rank range, so a single-rule change costs O(group) array copies
instead of an O(rules) Python recompile.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..traffic.flowtable import FlowTable

if TYPE_CHECKING:
    from ..bgp.prefix import Prefix
    from .qos import FlowMatch, QosRule

#: Packing order and bit widths of the exact-match key fields.  A group's
#: key concatenates the fields its signature sets, in this order; the sum
#: of the set widths must fit the 64-bit key (checked per signature).
EXACT_FIELD_WIDTHS: tuple[tuple[str, int], ...] = (
    ("dst_ip", 32),
    ("src_ip", 32),
    ("protocol", 8),
    ("src_port", 16),
    ("dst_port", 16),
)

#: Top address bits a broad IPv4-prefix fallback rule is binned by.  A
#: rule with a prefix of at least this many bits maps to exactly one bin
#: (its prefix fixes the top bits), so its masked pass only needs the
#: rows whose address column carries the same top bits.  4096 bins keeps
#: the per-assignment bucketing one shift + argsort over the column.
RADIX_BITS = 12

#: Field kinds a signature distinguishes for the prefix criteria.
_NONE, _HOST, _PREFIX = "none", "host", "prefix"


@dataclass(frozen=True)
class MatchSignature:
    """Which fields of a :class:`~repro.ixp.qos.FlowMatch` are set, and how.

    ``dst``/``src`` record whether the prefix criterion is absent, an IPv4
    host route (an equality test on the address column) or anything
    broader; the L4 fields and the MAC criterion are plain present/absent
    flags.  Rules sharing a signature are matched by the same compiled
    strategy.
    """

    dst: str = _NONE
    src: str = _NONE
    mac: bool = False
    protocol: bool = False
    src_port: bool = False
    dst_port: bool = False

    @classmethod
    def of(cls, match: "FlowMatch") -> "MatchSignature":
        def prefix_kind(prefix: "Optional[Prefix]") -> str:
            if prefix is None:
                return _NONE
            if prefix.version == 4 and prefix.is_host_route:
                return _HOST
            return _PREFIX

        return cls(
            dst=prefix_kind(match.dst_prefix),
            src=prefix_kind(match.src_prefix),
            mac=match.src_mac is not None,
            protocol=match.protocol is not None,
            src_port=match.src_port is not None,
            dst_port=match.dst_port is not None,
        )

    # ------------------------------------------------------------------
    @property
    def exact_fields(self) -> tuple[str, ...]:
        """The packed key fields, in :data:`EXACT_FIELD_WIDTHS` order."""
        present = {
            "dst_ip": self.dst == _HOST,
            "src_ip": self.src == _HOST,
            "protocol": self.protocol,
            "src_port": self.src_port,
            "dst_port": self.dst_port,
        }
        return tuple(name for name, _ in EXACT_FIELD_WIDTHS if present[name])

    @property
    def key_bits(self) -> int:
        widths = dict(EXACT_FIELD_WIDTHS)
        return sum(widths[name] for name in self.exact_fields)

    @property
    def is_exact(self) -> bool:
        """True if every set criterion is an equality test fitting the key.

        MAC criteria and non-host (or IPv6) prefixes force the masked
        fallback, as does the empty (catch-all) signature and the rare
        combination whose packed key would overflow 64 bits (e.g. host
        src + host dst + both ports).
        """
        if self.mac or self.dst == _PREFIX or self.src == _PREFIX:
            return False
        fields = self.exact_fields
        return bool(fields) and self.key_bits <= 64


def _rule_key(match: "FlowMatch", fields: tuple[str, ...]) -> int:
    """Pack one rule's exact criteria into the group's integer key."""
    widths = dict(EXACT_FIELD_WIDTHS)
    key = 0
    for name in fields:
        if name == "dst_ip":
            value = match.dst_prefix.int_bounds[0]
        elif name == "src_ip":
            value = match.src_prefix.int_bounds[0]
        elif name == "protocol":
            value = int(match.protocol)
        else:
            value = int(getattr(match, name))
        key = (key << widths[name]) | value
    return key


def _radix_bin(match: "FlowMatch") -> Optional[tuple[str, int]]:
    """The ``(column, bin)`` a fallback rule's prefix pins, if any.

    Destination prefixes are preferred (the Stellar rule shape); an IPv4
    prefix of fewer than :data:`RADIX_BITS` bits spans several bins and
    stays on the unbinned full-table pass, as do IPv6 prefixes and rules
    with no prefix criterion at all (MAC-only, catch-all).
    """
    for column, prefix in (("dst_ip", match.dst_prefix), ("src_ip", match.src_prefix)):
        if prefix is not None and prefix.version == 4 and prefix.length >= RADIX_BITS:
            return column, prefix.int_bounds[0] >> (32 - RADIX_BITS)
    return None


class ExactGroup:
    """One exact signature group: packed keys sorted by (key, rank)."""

    __slots__ = ("fields", "keys", "ranks", "rule_count")

    def __init__(self, fields: tuple[str, ...], entries: list[tuple[int, int]]) -> None:
        self.fields = fields
        self.rule_count = len(entries)
        keys = np.fromiter((key for key, _ in entries), dtype=np.uint64, count=len(entries))
        ranks = np.fromiter((rank for _, rank in entries), dtype=np.int32, count=len(entries))
        # Sort by key, then rank.  Duplicate keys keep every entry: the
        # side="left" lookup in best_ranks lands on the lowest rank (the
        # most specific / earliest-installed rule), matching what the
        # sequential first-match loop would claim — and keeping shadowed
        # duplicates in place is what lets with_removed restore them.
        order = np.lexsort((ranks, keys))
        self.keys = keys[order]
        self.ranks = ranks[order]

    @classmethod
    def _from_arrays(
        cls, fields: tuple[str, ...], keys: np.ndarray, ranks: np.ndarray
    ) -> "ExactGroup":
        """Adopt already-(key, rank)-sorted arrays without re-sorting."""
        group = object.__new__(cls)
        group.fields = fields
        group.keys = keys
        group.ranks = ranks
        group.rule_count = len(keys)
        return group

    # ------------------------------------------------------------------
    # Incremental splices (callers pass already-shifted rank spaces)
    # ------------------------------------------------------------------
    def _position_of(self, key: int, rank: int, ranks: np.ndarray) -> int:
        """The (key, rank) order position of one entry within the group."""
        lo = int(np.searchsorted(self.keys, np.uint64(key), side="left"))
        hi = int(np.searchsorted(self.keys, np.uint64(key), side="right"))
        return lo + int(np.searchsorted(ranks[lo:hi], np.int32(rank)))

    def with_inserted(self, key: int, rank: int, shifted_ranks: np.ndarray) -> "ExactGroup":
        """A copy with ``(key, rank)`` spliced in at its sorted position."""
        pos = self._position_of(key, rank, shifted_ranks)
        return ExactGroup._from_arrays(
            self.fields,
            np.insert(self.keys, pos, np.uint64(key)),
            np.insert(shifted_ranks, pos, np.int32(rank)),
        )

    def with_deleted(self, key: int, rank: int) -> Optional["ExactGroup"]:
        """A copy with the ``(key, rank)`` entry spliced out (None if empty)."""
        pos = self._position_of(key, rank, self.ranks)
        if (
            pos >= len(self.keys)
            or int(self.keys[pos]) != key
            or int(self.ranks[pos]) != rank
        ):
            raise ValueError(
                f"exact group {self.fields} has no entry (key={key}, rank={rank})"
            )
        if len(self.keys) == 1:
            return None
        return ExactGroup._from_arrays(
            self.fields, np.delete(self.keys, pos), np.delete(self.ranks, pos)
        )

    # ------------------------------------------------------------------
    def flow_keys(self, table: FlowTable) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Pack the group's key fields out of a flow table.

        Returns ``(keys, valid)`` where ``valid`` flags rows whose field
        values fit the packed widths (``None`` when all rows do) — a row
        with an out-of-range value can never equal a validated rule key,
        so it must not alias into another key's lane.
        """
        widths = dict(EXACT_FIELD_WIDTHS)
        keys = np.zeros(len(table), dtype=np.uint64)
        valid: Optional[np.ndarray] = None
        for name in self.fields:
            column = getattr(table, name)
            width = np.uint64(widths[name])
            lane = np.uint64((1 << widths[name]) - 1)
            if column.dtype.kind == "i":  # the L4 port columns are signed
                in_range = (column >= 0) & (column <= int(lane))
                if not bool(in_range.all()):
                    valid = in_range if valid is None else (valid & in_range)
            keys = (keys << width) | (column.astype(np.uint64) & lane)
        return keys, valid

    def best_ranks(self, table: FlowTable, sentinel: int) -> Optional[np.ndarray]:
        """Per-row rank of the group's matching rule (``sentinel`` = none)."""
        if not len(self.keys):
            return None
        keys, valid = self.flow_keys(table)
        positions = np.searchsorted(self.keys, keys)
        positions = np.minimum(positions, len(self.keys) - 1)
        hits = self.keys[positions] == keys
        if valid is not None:
            hits &= valid
        if not bool(hits.any()):
            return None
        return np.where(hits, self.ranks[positions], np.int32(sentinel))


def _shift_up(ranks: np.ndarray, rank: int) -> np.ndarray:
    """A copy of ``ranks`` with every entry >= ``rank`` moved up one."""
    shifted = ranks.copy()
    shifted[shifted >= rank] += np.int32(1)
    return shifted


def _shift_down(ranks: np.ndarray, rank: int) -> np.ndarray:
    """A copy of ``ranks`` with every entry > ``rank`` moved down one."""
    shifted = ranks.copy()
    shifted[shifted > rank] -= np.int32(1)
    return shifted


class RuleMatchIndex:
    """Compiled snapshot of one rule list in most-specific-first order.

    ``rules`` must already be sorted the way the sequential classifier
    evaluates them (:meth:`~repro.ixp.qos.PortQosPolicy.sorted_rules`);
    the index assigns each row the *rank* of its claiming rule in that
    order, so callers index back into the same list for actions, shaping
    rates and rule ids.
    """

    def __init__(self, rules: "Sequence[QosRule]") -> None:
        self._rules = list(rules)
        exact_entries: dict[tuple[str, ...], list[tuple[int, int]]] = {}
        fallback: dict[MatchSignature, list["tuple[int, QosRule]"]] = {}
        for rank, rule in enumerate(self._rules):
            signature = MatchSignature.of(rule.match)
            if signature.is_exact:
                fields = signature.exact_fields
                exact_entries.setdefault(fields, []).append(
                    (_rule_key(rule.match, fields), rank)
                )
            else:
                fallback.setdefault(signature, []).append((rank, rule))
        self._exact_groups = [
            ExactGroup(fields, entries) for fields, entries in exact_entries.items()
        ]
        self._fallback_groups = list(fallback.items())
        self._compile_radix()

    def _compile_radix(self) -> None:
        """Partition the fallback entries into radix bins + the full pass.

        Derived from ``_fallback_groups`` (O(fallback rules), no key
        packing or sorting), so the delta constructors simply re-run it
        on the spliced groups.
        """
        binned: dict[tuple[str, int], list["tuple[int, QosRule]"]] = {}
        unbinned: list["tuple[int, QosRule]"] = []
        for _, entries in self._fallback_groups:
            for rank, rule in entries:
                placed = _radix_bin(rule.match)
                if placed is None:
                    unbinned.append((rank, rule))
                else:
                    binned.setdefault(placed, []).append((rank, rule))
        self._radix_groups = binned
        self._unbinned_fallback = unbinned

    # ------------------------------------------------------------------
    # Persistent-snapshot delta ops
    # ------------------------------------------------------------------
    def with_installed(self, rule: "QosRule", rank: Optional[int] = None) -> "RuleMatchIndex":
        """A new snapshot with ``rule`` spliced in at sorted position ``rank``.

        Structurally identical to ``RuleMatchIndex`` compiled from scratch
        over the new rule list (the fuzz suite pins it): only the touched
        signature group gains an entry — one ``searchsorted`` insert and
        slice copy for an exact group, a list splice for a fallback group
        — and the rank arrays of the other groups are shifted in one
        vectorized pass each.
        """
        if rank is None:
            rank = len(self._rules)
        if not 0 <= rank <= len(self._rules):
            raise IndexError(
                f"insert rank {rank} outside 0..{len(self._rules)}"
            )
        signature = MatchSignature.of(rule.match)
        target_fields = signature.exact_fields if signature.is_exact else None
        clone = object.__new__(RuleMatchIndex)
        clone._rules = self._rules[:rank] + [rule] + self._rules[rank:]

        exact_groups: list[ExactGroup] = []
        inserted = False
        for group in self._exact_groups:
            shifted = _shift_up(group.ranks, rank)
            if target_fields is not None and group.fields == target_fields:
                exact_groups.append(
                    group.with_inserted(_rule_key(rule.match, target_fields), rank, shifted)
                )
                inserted = True
            else:
                exact_groups.append(
                    ExactGroup._from_arrays(group.fields, group.keys, shifted)
                )
        if target_fields is not None and not inserted:
            exact_groups.append(
                ExactGroup(target_fields, [(_rule_key(rule.match, target_fields), rank)])
            )
        clone._exact_groups = exact_groups

        fallback_groups: list["tuple[MatchSignature, list[tuple[int, QosRule]]]"] = []
        spliced = False
        for group_signature, entries in self._fallback_groups:
            shifted_entries = [
                (entry_rank + 1 if entry_rank >= rank else entry_rank, entry_rule)
                for entry_rank, entry_rule in entries
            ]
            if target_fields is None and group_signature == signature:
                position = bisect_left(
                    [entry_rank for entry_rank, _ in shifted_entries], rank
                )
                shifted_entries.insert(position, (rank, rule))
                spliced = True
            fallback_groups.append((group_signature, shifted_entries))
        if target_fields is None and not spliced:
            fallback_groups.append((signature, [(rank, rule)]))
        clone._fallback_groups = fallback_groups
        clone._compile_radix()
        return clone

    def with_removed(self, rule_id: str, rank: Optional[int] = None) -> "RuleMatchIndex":
        """A new snapshot with the rule at sorted position ``rank`` spliced out.

        ``rank`` defaults to the first rule carrying ``rule_id``; when
        given, the rule at that rank must carry ``rule_id`` (the change
        journal records both, so replays verify they still agree).
        """
        if rank is None:
            rank = next(
                (
                    position
                    for position, rule in enumerate(self._rules)
                    if rule.rule_id == rule_id
                ),
                None,
            )
            if rank is None:
                raise KeyError(f"no rule with id {rule_id!r} in the index")
        if not 0 <= rank < len(self._rules):
            raise IndexError(f"remove rank {rank} outside 0..{len(self._rules) - 1}")
        rule = self._rules[rank]
        if rule.rule_id != rule_id:
            raise KeyError(
                f"rule at rank {rank} carries id {rule.rule_id!r}, not {rule_id!r}"
            )
        signature = MatchSignature.of(rule.match)
        target_fields = signature.exact_fields if signature.is_exact else None
        clone = object.__new__(RuleMatchIndex)
        clone._rules = self._rules[:rank] + self._rules[rank + 1 :]

        exact_groups: list[ExactGroup] = []
        for group in self._exact_groups:
            if target_fields is not None and group.fields == target_fields:
                remaining = group.with_deleted(_rule_key(rule.match, target_fields), rank)
                if remaining is None:
                    continue
                group = remaining
            exact_groups.append(
                ExactGroup._from_arrays(
                    group.fields, group.keys, _shift_down(group.ranks, rank)
                )
            )
        clone._exact_groups = exact_groups

        fallback_groups: list["tuple[MatchSignature, list[tuple[int, QosRule]]]"] = []
        for group_signature, entries in self._fallback_groups:
            if target_fields is None and group_signature == signature:
                entries = [
                    (entry_rank, entry_rule)
                    for entry_rank, entry_rule in entries
                    if entry_rank != rank
                ]
                if not entries:
                    continue
            fallback_groups.append(
                (
                    group_signature,
                    [
                        (
                            entry_rank - 1 if entry_rank > rank else entry_rank,
                            entry_rule,
                        )
                        for entry_rank, entry_rule in entries
                    ],
                )
            )
        clone._fallback_groups = fallback_groups
        clone._compile_radix()
        return clone

    # ------------------------------------------------------------------
    # Introspection (docs, tests, telemetry)
    # ------------------------------------------------------------------
    @property
    def rule_count(self) -> int:
        return len(self._rules)

    @property
    def exact_rule_count(self) -> int:
        return sum(group.rule_count for group in self._exact_groups)

    @property
    def fallback_rule_count(self) -> int:
        return sum(len(entries) for _, entries in self._fallback_groups)

    @property
    def exact_group_count(self) -> int:
        return len(self._exact_groups)

    @property
    def fallback_group_count(self) -> int:
        return len(self._fallback_groups)

    @property
    def radix_binned_rule_count(self) -> int:
        """Fallback rules matched through a radix bin (not the full pass)."""
        return sum(len(entries) for entries in self._radix_groups.values())

    def describe(self) -> dict[str, int]:
        """Compact stats of the compiled shape (stable across engines).

        Keys are part of the golden-seed result payloads (the
        fine-grained experiment sums them per protected member), so the
        radix-bin split stays on :attr:`radix_binned_rule_count` rather
        than growing this dict.
        """
        return {
            "rules": self.rule_count,
            "exact_rules": self.exact_rule_count,
            "fallback_rules": self.fallback_rule_count,
            "exact_groups": self.exact_group_count,
            "fallback_groups": self.fallback_group_count,
        }

    def structure(self) -> dict[str, object]:
        """Canonical group-by-group content, for structural-equality checks.

        Group *order* is irrelevant to verdicts (the rank fold is an
        elementwise minimum), so groups are keyed by their signature /
        field tuple; two indexes with equal ``structure()`` compile the
        same rule list the same way regardless of how they were built —
        the invariant the fuzz suite holds between incrementally-derived
        snapshots and from-scratch compiles.
        """
        return {
            "rules": list(self._rules),
            "exact": {
                group.fields: (group.keys.tolist(), group.ranks.tolist())
                for group in self._exact_groups
            },
            "fallback": {
                signature: list(entries)
                for signature, entries in self._fallback_groups
            },
        }

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def assign(self, table: FlowTable) -> np.ndarray:
        """Rank of each row's claiming rule (``-1`` = no rule matches).

        Equal to the sequential first-match loop over the sorted rules:
        the winner is the matching rule with the minimum rank, which the
        exact groups resolve via one sorted-key lookup each and the
        fallback groups via per-rule masked passes — radix-binned rules
        over their candidate bin's rows only — folded together with a
        running elementwise minimum.
        """
        n = len(table)
        sentinel = len(self._rules)
        best = np.full(n, np.int32(sentinel), dtype=np.int32)
        if n == 0 or sentinel == 0:
            return np.full(n, -1, dtype=np.int32)
        for group in self._exact_groups:
            ranks = group.best_ranks(table, sentinel)
            if ranks is not None:
                np.minimum(best, ranks, out=best)
        if self._radix_groups:
            shift = np.uint32(32 - RADIX_BITS)
            # One bucketing pass per address column: bin each row, then a
            # stable argsort groups the rows so every bin's candidates are
            # one contiguous slice (ascending original row order).
            bucketed: dict[str, tuple[np.ndarray, np.ndarray]] = {}
            for column in {column for column, _ in self._radix_groups}:
                row_bins = getattr(table, column) >> shift
                order = np.argsort(row_bins, kind="stable")
                bucketed[column] = (order, row_bins[order])
            for (column, bin_value), entries in self._radix_groups.items():
                order, sorted_bins = bucketed[column]
                lo = int(np.searchsorted(sorted_bins, np.uint32(bin_value), side="left"))
                hi = int(np.searchsorted(sorted_bins, np.uint32(bin_value), side="right"))
                if lo == hi:
                    continue
                rows = order[lo:hi]
                candidates = table.select(rows)
                for rank, rule in entries:
                    mask = rule.match.matches_table(candidates)
                    if bool(mask.any()):
                        hit = rows[mask]
                        best[hit] = np.minimum(best[hit], np.int32(rank))
        for rank, rule in self._unbinned_fallback:
            mask = rule.match.matches_table(table)
            if bool(mask.any()):
                np.minimum(
                    best, np.where(mask, np.int32(rank), np.int32(sentinel)), out=best
                )
        assigned = best
        assigned[assigned == sentinel] = -1
        return assigned
