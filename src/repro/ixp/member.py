"""IXP members.

An IXP member is an AS connected to the IXP's switching fabric through one
or more ports.  For the reproduction a member carries the attributes the
experiments need: its ASN, the MAC address of its peering router (MAC
filters are how RTBH policy control is enforced in hardware), its port
capacity, whether it peers via the route server, and — crucial for the
RTBH compliance analysis (§2.4) — whether it honours blackholing signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def default_mac(asn: int) -> str:
    """Deterministic locally administered MAC for a member's router."""
    if asn < 0 or asn > 0xFFFFFFFF:
        raise ValueError(f"ASN out of range: {asn}")
    return (
        f"02:00:{(asn >> 24) & 0xFF:02x}:{(asn >> 16) & 0xFF:02x}:"
        f"{(asn >> 8) & 0xFF:02x}:{asn & 0xFF:02x}"
    )


@dataclass
class IxpMember:
    """One member AS of the IXP."""

    asn: int
    name: str = ""
    #: Capacity of the member's IXP port in bits per second.
    port_capacity_bps: float = 10e9
    #: MAC address of the member's peering router.
    mac: str = ""
    #: Whether the member peers via the route server (multi-lateral peering).
    uses_route_server: bool = True
    #: Whether the member honours RTBH blackholing communities.  The paper
    #: finds that almost 70 % of members do *not* (§2.4).
    honors_rtbh: bool = False
    #: IPv4 prefixes the member originates (used to seed IRR/route server).
    prefixes: list[str] = field(default_factory=list)
    #: Identifier of the edge router / PoP the member connects to.
    pop: str = "pop-1"

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"member ASN must be positive, got {self.asn}")
        if self.port_capacity_bps <= 0:
            raise ValueError("port capacity must be positive")
        if not self.name:
            self.name = f"AS{self.asn}"
        if not self.mac:
            self.mac = default_mac(self.asn)

    def __hash__(self) -> int:
        return hash(self.asn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IxpMember(asn={self.asn}, capacity={self.port_capacity_bps / 1e9:.0f}G, "
            f"honors_rtbh={self.honors_rtbh})"
        )
