"""Member-side clients of the control-plane service.

Two clients with the same operation vocabulary:

* :class:`PortalClient` — the asynchronous client a member coroutine
  uses against a running :class:`~repro.ixp.service.ControlPlaneService`
  (submissions queue, coalesce and pay budget like every other
  member's);
* :class:`ScriptedPortal` — the synchronous direct-call twin that
  applies the same operations straight onto the fabric's routers, one
  rule at a time, with no queueing and no budget.  It is the oracle the
  fuzzing state machine locksteps the async service against: after the
  service fully drains, both fabrics must be in bit-for-bit identical
  states.
"""

from __future__ import annotations

from collections.abc import Sequence

from .fabric import SwitchingFabric
from .qos import QosRule
from .service import ChangeRequest, ControlPlaneService, ServiceResponse


class PortalClient:
    """One member's asynchronous handle on the control-plane service."""

    def __init__(self, service: ControlPlaneService, member_asn: int) -> None:
        self.service = service
        self.member_asn = member_asn

    async def install(self, rule: QosRule, *, at: float = 0.0) -> ServiceResponse:
        return await self._submit("install", rules=(rule,), at=at)

    async def install_many(
        self, rules: Sequence[QosRule], *, at: float = 0.0
    ) -> ServiceResponse:
        return await self._submit("install_many", rules=tuple(rules), at=at)

    async def remove(self, rule_id: str, *, at: float = 0.0) -> ServiceResponse:
        return await self._submit("remove", rule_id=rule_id, at=at)

    async def clear(self, *, at: float = 0.0) -> ServiceResponse:
        return await self._submit("clear", at=at)

    async def telemetry(self, *, at: float = 0.0) -> ServiceResponse:
        return await self._submit("telemetry", at=at)

    async def _submit(
        self,
        op: str,
        *,
        rules: Sequence[QosRule] = (),
        rule_id: str = "",
        at: float = 0.0,
    ) -> ServiceResponse:
        request = self.service.make_request(
            self.member_asn, op, rules=rules, rule_id=rule_id, at=at
        )
        return await self.service.submit(request)

    def make_request(
        self,
        op: str,
        *,
        rules: Sequence[QosRule] = (),
        rule_id: str = "",
        at: float = 0.0,
    ) -> ChangeRequest:
        """Build (but don't submit) a request — for scripted batching."""
        return self.service.make_request(
            self.member_asn, op, rules=rules, rule_id=rule_id, at=at
        )


class ScriptedPortal:
    """Synchronous direct-call portal — the sequential parity oracle.

    Operations hit the routers immediately, rule by rule, exactly like
    the pre-service scenarios installed rules.  TCAM exhaustion
    propagates as :class:`~repro.ixp.tcam.TcamExhaustedError`, matching
    the router contract.
    """

    def __init__(self, fabric: SwitchingFabric) -> None:
        self.fabric = fabric

    def install(self, member_asn: int, rule: QosRule) -> None:
        self.fabric.router_for_member(member_asn).install_rule(member_asn, rule)

    def install_many(self, member_asn: int, rules: Sequence[QosRule]) -> None:
        router = self.fabric.router_for_member(member_asn)
        for rule in rules:
            router.install_rule(member_asn, rule)

    def remove(self, member_asn: int, rule_id: str) -> bool:
        return self.fabric.router_for_member(member_asn).remove_rule(
            member_asn, rule_id
        )

    def clear(self, member_asn: int) -> int:
        return self.fabric.router_for_member(member_asn).clear_rules(member_asn)

    def telemetry(self, member_asn: int) -> dict:
        router = self.fabric.router_for_member(member_asn)
        port = router.port_for(member_asn)
        mac_used, l3l4_used = router.tcam.usage_for_port(port.port_id)
        return {
            "router": router.name,
            "rules_version": port.qos.rules_version,
            "installed_rules": len(port.qos),
            "tcam_mac_entries": mac_used,
            "tcam_l3l4_criteria": l3l4_used,
        }
