"""Queueing primitives used by the filtering layer.

Two kinds of "queues" appear in the reproduction:

* :class:`TokenBucket` — the classic token-bucket rate limiter.  Stellar's
  blackholing manager uses one to limit the rate of configuration changes
  pushed to the hardware (paper §4.4, Fig. 10(b)); the QoS shaping queues
  use one per shaping rule.
* :class:`RateLimiter` — a flow-level abstraction over the token bucket:
  given the aggregate volume offered during an observation interval it
  reports how much passes and how much is dropped, which is what the
  flow-level data plane needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TokenBucket:
    """A token bucket with a long-term ``rate`` and a ``burst`` capacity.

    ``rate`` and ``burst`` are expressed in abstract "tokens"; callers
    decide whether a token is a byte, a packet or a configuration change.
    """

    rate: float
    burst: float
    _tokens: float = field(init=False)
    _last_update: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be non-negative")
        if self.burst <= 0:
            raise ValueError("burst must be positive")
        self._tokens = self.burst

    @property
    def tokens(self) -> float:
        """Tokens currently available (as of the last update)."""
        return self._tokens

    def _refill(self, now: float) -> None:
        if now < self._last_update:
            raise ValueError(
                f"time moved backwards: {now} < {self._last_update}"
            )
        elapsed = now - self._last_update
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last_update = now

    def try_consume(self, amount: float, now: float) -> bool:
        """Consume ``amount`` tokens at time ``now`` if available."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self._refill(now)
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def time_until_available(self, amount: float, now: float) -> float:
        """Seconds from ``now`` until ``amount`` tokens will be available."""
        if amount > self.burst:
            raise ValueError(
                f"requested amount {amount} exceeds burst capacity {self.burst}"
            )
        self._refill(now)
        deficit = amount - self._tokens
        if deficit <= 0:
            return 0.0
        if self.rate == 0:
            return float("inf")
        return deficit / self.rate


@dataclass
class RateLimiter:
    """Flow-level shaping: cap an offered volume at a configured rate.

    Unlike the token bucket this works on whole observation intervals: the
    shaper passes at most ``rate_bps × interval`` bits per interval and
    reports the rest as dropped.  A small burst allowance carries over
    between intervals to avoid artificial cliff effects at interval
    boundaries.
    """

    rate_bps: float
    burst_bits: float = 0.0
    _credit_bits: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.rate_bps < 0:
            raise ValueError("rate_bps must be non-negative")
        if self.burst_bits < 0:
            raise ValueError("burst_bits must be non-negative")
        self._credit_bits = self.burst_bits

    def shape(self, offered_bits: float, interval: float) -> tuple[float, float]:
        """Return ``(passed_bits, dropped_bits)`` for one interval."""
        if offered_bits < 0:
            raise ValueError("offered_bits must be non-negative")
        if interval <= 0:
            raise ValueError("interval must be positive")
        allowance = self.rate_bps * interval + self._credit_bits
        passed = min(offered_bits, allowance)
        dropped = offered_bits - passed
        # Unused allowance (bounded by the burst) carries over.
        self._credit_bits = min(self.burst_bits, allowance - passed)
        return passed, dropped

    def reset(self) -> None:
        self._credit_bits = self.burst_bits
