"""IXP substrate: members, ports, TCAM, QoS data plane, edge routers, fabric."""

from .control_plane import (
    DEFAULT_CPU_LIMIT_PERCENT,
    PAPER_MEDIAN_UPDATE_RATE,
    ControlPlaneCpuModel,
)
from .delivery import CompiledRule, FabricDeliveryPlan
from .edge_router import EdgeRouter, PortNotFoundError, RuleInstallation
from .fabric import DELIVERY_ENGINES, FabricIntervalReport, SwitchingFabric
from .hardware_profiles import (
    PARALLEL_RTBH_95TH_PERCENTILE,
    HardwareProfile,
    l_ixp_edge_router_profile,
    sdn_switch_profile,
    small_ixp_edge_router_profile,
)
from .member import IxpMember, default_mac
from .port import MemberPort, PortCounters
from .qos import (
    CLASSIFICATION_ENGINES,
    FilterAction,
    FlowMatch,
    PortQosPolicy,
    PortQosResult,
    QosRule,
)
from .portal_client import PortalClient, ScriptedPortal
from .queues import RateLimiter, TokenBucket
from .service import (
    CHANGE_OPS,
    SERVICE_OPS,
    AppliedChange,
    ChangeRequest,
    ControlPlaneService,
    ServiceResponse,
    ServiceStats,
    replay_request_log,
)
from .ruleindex import MatchSignature, RuleMatchIndex
from .shard import (
    ShardLookup,
    ShardPlanner,
    ShardSpec,
    columns_to_report_dict,
    merge_interval_columns,
    merge_interval_reports,
    shard_for_member,
)
from .tcam import TcamExhaustedError, TcamModel, TcamStatus
from .topology import (
    PortSpeedMix,
    build_multi_pop_fabric,
    de_cix_class_port_mix,
    make_member_population,
)

__all__ = [
    "DEFAULT_CPU_LIMIT_PERCENT",
    "PAPER_MEDIAN_UPDATE_RATE",
    "ControlPlaneCpuModel",
    "EdgeRouter",
    "PortNotFoundError",
    "RuleInstallation",
    "CompiledRule",
    "FabricDeliveryPlan",
    "DELIVERY_ENGINES",
    "FabricIntervalReport",
    "SwitchingFabric",
    "PARALLEL_RTBH_95TH_PERCENTILE",
    "HardwareProfile",
    "l_ixp_edge_router_profile",
    "sdn_switch_profile",
    "small_ixp_edge_router_profile",
    "IxpMember",
    "default_mac",
    "MemberPort",
    "PortCounters",
    "CLASSIFICATION_ENGINES",
    "FilterAction",
    "FlowMatch",
    "PortQosPolicy",
    "PortQosResult",
    "QosRule",
    "RateLimiter",
    "TokenBucket",
    "PortalClient",
    "ScriptedPortal",
    "CHANGE_OPS",
    "SERVICE_OPS",
    "AppliedChange",
    "ChangeRequest",
    "ControlPlaneService",
    "ServiceResponse",
    "ServiceStats",
    "replay_request_log",
    "MatchSignature",
    "RuleMatchIndex",
    "ShardPlanner",
    "ShardSpec",
    "ShardLookup",
    "columns_to_report_dict",
    "merge_interval_columns",
    "merge_interval_reports",
    "shard_for_member",
    "TcamExhaustedError",
    "TcamModel",
    "TcamStatus",
    "PortSpeedMix",
    "build_multi_pop_fabric",
    "de_cix_class_port_mix",
    "make_member_population",
]
