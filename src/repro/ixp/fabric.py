"""The IXP switching fabric.

The fabric ties everything together on the data plane: members connect to
edge routers (grouped into PoPs), traffic entering through one member's
port crosses the platform and leaves through the destination member's
egress port, where the QoS policy (and thus any Stellar blackholing rule)
is applied.  The fabric also tracks platform-level utilisation, because
the paper's egress-filtering choice is only viable while the platform has
spare capacity to carry attack traffic to the egress port (§4.5).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..traffic.flow import FlowRecord
from ..traffic.flowtable import FlowTable
from ..traffic.ipfix import IpfixCollector, IpfixExporter
from .delivery import FabricDeliveryPlan
from .edge_router import EdgeRouter, PortNotFoundError
from .hardware_profiles import HardwareProfile
from .member import IxpMember
from .port import MemberPort
from .qos import PortQosResult


@dataclass
class FabricIntervalReport:
    """Platform-level outcome of one delivery interval."""

    interval_start: float
    interval: float
    offered_bits: float = 0.0
    delivered_bits: float = 0.0
    filtered_bits: float = 0.0
    congestion_dropped_bits: float = 0.0
    results_by_member: dict[int, PortQosResult] = field(default_factory=dict)

    @property
    def platform_load_bps(self) -> float:
        """Traffic carried across the platform during the interval (bps)."""
        if self.interval <= 0:
            return 0.0
        return self.offered_bits / self.interval

    def to_dict(self) -> dict:
        """Canonical JSON-serializable view of the interval outcome.

        Every number the delivery engines *compute* is included — platform
        totals plus each member's bit accounting and per-rule stats — so
        equality of two reports' ``to_dict()`` is the parity contract
        between the ``batched`` and ``per-member`` engines (the fuzz suite
        asserts it for arbitrary generated topologies and rule sets).
        """
        return {
            "interval_start": self.interval_start,
            "interval": self.interval,
            "offered_bits": self.offered_bits,
            "delivered_bits": self.delivered_bits,
            "filtered_bits": self.filtered_bits,
            "congestion_dropped_bits": self.congestion_dropped_bits,
            "members": {
                str(asn): {
                    "forwarded_bits": result.forwarded_bits,
                    "dropped_bits": result.dropped_bits,
                    "shaped_passed_bits": result.shaped_passed_bits,
                    "shaped_dropped_bits": result.shaped_dropped_bits,
                    "congestion_dropped_bits": result.congestion_dropped_bits,
                    "rule_stats": {
                        rule_id: dict(stats)
                        for rule_id, stats in sorted(result.rule_stats.items())
                    },
                }
                for asn, result in sorted(self.results_by_member.items())
            },
        }

    def to_columns(self) -> dict:
        """Columnar view of the interval outcome, for the shard merge.

        Same numbers as :meth:`to_dict`, but per-member accounting is laid
        out as parallel numpy arrays in ascending-ASN order, so
        :func:`~repro.ixp.shard.merge_interval_columns` reduces shards with
        array concatenation + one argsort instead of per-member dict
        copies.  Sparse ``rule_stats`` stay a nested dict (only members
        with claimed rules carry entries).
        :func:`~repro.ixp.shard.columns_to_report_dict` converts back to
        the :meth:`to_dict` shape bit-for-bit (float64 round-trips
        exactly).
        """
        ordered = sorted(self.results_by_member.items())
        return {
            "interval_start": self.interval_start,
            "interval": self.interval,
            "totals": {
                "offered_bits": self.offered_bits,
                "delivered_bits": self.delivered_bits,
                "filtered_bits": self.filtered_bits,
                "congestion_dropped_bits": self.congestion_dropped_bits,
            },
            "member_asns": np.fromiter(
                (asn for asn, _ in ordered), dtype=np.int64, count=len(ordered)
            ),
            "member_fields": {
                name: np.fromiter(
                    (getattr(result, name) for _, result in ordered),
                    dtype=np.float64,
                    count=len(ordered),
                )
                for name in MEMBER_REPORT_FIELDS
            },
            "rule_stats": {
                str(asn): {
                    rule_id: dict(stats)
                    for rule_id, stats in sorted(result.rule_stats.items())
                }
                for asn, result in ordered
                if result.rule_stats
            },
        }


#: Per-member bit-accounting fields carried by the columnar report view,
#: in the order :meth:`FabricIntervalReport.to_dict` lists them.
MEMBER_REPORT_FIELDS = (
    "forwarded_bits",
    "dropped_bits",
    "shaped_passed_bits",
    "shaped_dropped_bits",
    "congestion_dropped_bits",
)


#: Delivery engines :meth:`SwitchingFabric.deliver` can run.
DELIVERY_ENGINES = ("batched", "per-member")


class SwitchingFabric:
    """The IXP's layer-2 switching platform.

    ``delivery_engine`` selects how an interval's columnar traffic crosses
    the platform: ``"batched"`` (the default) compiles a
    :class:`~repro.ixp.delivery.FabricDeliveryPlan` and runs one
    platform-level group-by + classification pass; ``"per-member"`` is the
    parity-tested fallback that walks egress members one at a time.
    Record-list input always takes the per-member path.
    """

    def __init__(
        self,
        name: str = "l-ixp",
        platform_capacity_bps: float = 25e12,
        ipfix_sampling_rate: int = 1,
        delivery_engine: str = "batched",
        collect_ipfix: bool = True,
        retain_reports: bool = True,
        retain_history: bool = True,
    ) -> None:
        if platform_capacity_bps <= 0:
            raise ValueError("platform capacity must be positive")
        if delivery_engine not in DELIVERY_ENGINES:
            raise ValueError(
                f"unknown delivery engine {delivery_engine!r}; "
                f"known: {', '.join(DELIVERY_ENGINES)}"
            )
        self.name = name
        self.delivery_engine = delivery_engine
        #: Connected member capacity of the platform (25 Tbps at DE-CIX
        #: Frankfurt in 2017, paper footnote 1).
        self.platform_capacity_bps = platform_capacity_bps
        #: Streaming knobs: an hour-long city-scale run delivers thousands
        #: of intervals through one fabric, so accumulating every IPFIX
        #: export, interval report and per-port result history would hold
        #: the whole trace in memory.  Disabling retention changes no
        #: delivered/filtered accounting — reports are still returned to
        #: the caller, just not stored on the fabric.
        self.collect_ipfix = collect_ipfix
        self.retain_reports = retain_reports
        self.retain_history = retain_history
        self._edge_routers: dict[str, EdgeRouter] = {}
        self._members: dict[int, IxpMember] = {}
        self._router_for_member: dict[int, str] = {}
        self.collector = IpfixCollector()
        self._exporter = IpfixExporter(
            exporter_id=f"{name}-fabric", sampling_rate=ipfix_sampling_rate
        )
        self.reports: list[FabricIntervalReport] = []
        self._plan_cache: Optional[FabricDeliveryPlan] = None

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_edge_router(self, router: EdgeRouter) -> EdgeRouter:
        if router.name in self._edge_routers:
            raise ValueError(f"edge router {router.name!r} already exists")
        self._edge_routers[router.name] = router
        return router

    def connect_member(self, member: IxpMember, router_name: Optional[str] = None) -> MemberPort:
        """Connect a member to an edge router (the first one by default)."""
        if not self._edge_routers:
            raise RuntimeError("add an edge router before connecting members")
        if router_name is None:
            # Prefer the router in the member's PoP, else the least loaded one.
            candidates = [
                router for router in self._edge_routers.values() if router.pop == member.pop
            ] or list(self._edge_routers.values())
            router = min(candidates, key=lambda r: len(r.member_asns))
        else:
            router = self._edge_routers[router_name]
        port = router.connect_member(member)
        port.retain_history = self.retain_history
        self._members[member.asn] = member
        self._router_for_member[member.asn] = router.name
        return port

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def members(self) -> list[IxpMember]:
        return list(self._members.values())

    @property
    def member_asns(self) -> set[int]:
        return set(self._members)

    def member(self, asn: int) -> IxpMember:
        try:
            return self._members[asn]
        except KeyError as exc:
            raise KeyError(f"AS{asn} is not a member of {self.name}") from exc

    def edge_routers(self) -> list[EdgeRouter]:
        return list(self._edge_routers.values())

    def router_for_member(self, member_asn: int) -> EdgeRouter:
        try:
            return self._edge_routers[self._router_for_member[member_asn]]
        except KeyError as exc:
            raise PortNotFoundError(f"AS{member_asn} is not connected") from exc

    def port_for_member(self, member_asn: int) -> MemberPort:
        return self.router_for_member(member_asn).port_for(member_asn)

    @property
    def connected_capacity_bps(self) -> float:
        """Sum of member port capacities (the "connected capacity")."""
        return sum(member.port_capacity_bps for member in self._members.values())

    def rules_version_total(self) -> int:
        """Sum of every connected port's ``rules_version``.

        Each bump is one rule-set mutation — and thus one compiled
        match-index (and delivery-plan slice) recompile the next interval
        pays for.  The control-plane service's coalescing exists to keep
        this total low under churn; the ``rule_churn`` scenario and the
        service bench report it as the recompile-amortization metric.
        """
        return sum(
            port.qos.rules_version
            for router in self._edge_routers.values()
            for port in router.ports()
        )

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def compile_delivery_plan(self) -> FabricDeliveryPlan:
        """Snapshot the connected ports + rules into a batched delivery plan."""
        return FabricDeliveryPlan(self)

    def current_delivery_plan(self) -> FabricDeliveryPlan:
        """The cached delivery plan, recompiled only when stale.

        Plans snapshot every port's rule-set version
        (:attr:`~repro.ixp.qos.PortQosPolicy.rules_version`); installs,
        removals and membership changes invalidate the cache, so a
        mid-run configuration change is picked up on the next interval
        while steady-state intervals skip the recompile entirely — and
        the per-port compiled match indexes are cached on the policies
        themselves, so even a recompile only rebuilds touched ports'
        indexes.

        A stale cached plan is *patched*, not rebuilt: the replacement
        plan adopts the previous plan's compiled segment for every port
        whose rule-set version is unchanged, so a single-port install
        re-derives only that port's slice of the platform rule set.
        """
        plan = self._plan_cache
        if plan is None or not plan.is_current():
            plan = FabricDeliveryPlan(self, previous=plan)
            self._plan_cache = plan
        return plan

    def set_classification_engine(self, engine: str) -> None:
        """Switch every connected port's QoS classification engine.

        ``"indexed"`` (the default) or ``"per-rule"`` — the parity knob
        the fine-grained experiments sweep.  Applies to currently
        connected ports; ports connected later use the policy default.
        """
        from .qos import CLASSIFICATION_ENGINES

        if engine not in CLASSIFICATION_ENGINES:
            raise ValueError(
                f"unknown classification engine {engine!r}; "
                f"known: {', '.join(CLASSIFICATION_ENGINES)}"
            )
        for router in self._edge_routers.values():
            for port in router.ports():
                port.qos.classification_engine = engine

    def deliver(
        self,
        flows: Union[Iterable[FlowRecord], FlowTable],
        interval: float,
        interval_start: float = 0.0,
        engine: Optional[str] = None,
    ) -> FabricIntervalReport:
        """Carry one observation interval of traffic across the platform.

        Flows are grouped by their egress member, pushed through that
        member's port QoS policy, and the per-member results plus a
        platform-level summary are returned.  Flows whose egress member is
        unknown are ignored (they never entered the IXP) — including by the
        IPFIX export, which only sees traffic the platform actually
        carried.  A columnar :class:`FlowTable` input runs on the fabric's
        configured ``delivery_engine`` (overridable per call via
        ``engine``); record-list input always takes the per-member path.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        engine = self.delivery_engine if engine is None else engine
        if engine not in DELIVERY_ENGINES:
            raise ValueError(
                f"unknown delivery engine {engine!r}; known: {', '.join(DELIVERY_ENGINES)}"
            )
        if isinstance(flows, FlowTable):
            export_flows: Union[list[FlowRecord], FlowTable] = self._known_egress(flows)
            if engine == "batched":
                report = self.current_delivery_plan().execute(
                    flows, interval, interval_start
                )
            else:
                report = self._deliver_per_member(
                    self._group_table(flows), interval, interval_start
                )
        else:
            flows = list(flows)
            grouped: dict[int, list[FlowRecord]] = defaultdict(list)
            export_flows = []
            for flow in flows:
                if flow.egress_member_asn in self._members:
                    grouped[flow.egress_member_asn].append(flow)
                    export_flows.append(flow)
            report = self._deliver_per_member(dict(grouped), interval, interval_start)

        if self.collect_ipfix:
            self.collector.receive(
                self._exporter.export(export_flows, export_time=interval_start)
            )
        if self.retain_reports:
            self.reports.append(report)
        return report

    def _known_egress(self, flows: FlowTable) -> FlowTable:
        """The rows whose egress member is connected (= traffic the IXP saw)."""
        if not len(flows):
            return flows
        if not self._members:
            return flows.select(np.zeros(len(flows), dtype=bool))
        member_asns = np.fromiter(
            self._members, dtype=np.int64, count=len(self._members)
        )
        known = np.isin(flows.egress_asn, member_asns)
        return flows if bool(known.all()) else flows.select(known)

    def _group_table(self, flows: FlowTable) -> dict[int, FlowTable]:
        """Per-member sub-tables (the per-member engine's group-by)."""
        by_member: dict[int, FlowTable] = {}
        egress = flows.egress_asn
        for member_asn in np.unique(egress).tolist():
            if member_asn in self._members:
                by_member[member_asn] = flows.select(egress == member_asn)
        return by_member

    def _deliver_per_member(
        self,
        by_member: dict[int, Union[list[FlowRecord], FlowTable]],
        interval: float,
        interval_start: float,
    ) -> FabricIntervalReport:
        """The fallback engine: one ``qos.apply`` per egress member."""
        report = FabricIntervalReport(interval_start=interval_start, interval=interval)
        # Platform totals are collected per member and reduced once after
        # the loop; sum() adds left-to-right in member order, exactly the
        # sequence the old running `+=` produced, so report payloads stay
        # bit-for-bit identical (RPL006: no float `+=` in loops).
        offered_terms: list[float] = []
        delivered_terms: list[float] = []
        filtered_terms: list[float] = []
        congestion_terms: list[float] = []
        for member_asn, member_flows in by_member.items():
            router = self.router_for_member(member_asn)
            result = router.deliver(
                {member_asn: member_flows}, interval, interval_start
            )[member_asn]
            report.results_by_member[member_asn] = result
            if isinstance(member_flows, FlowTable):
                offered = float(member_flows.total_bits)
            else:
                offered = float(sum(flow.bits for flow in member_flows))
            offered_terms.append(offered)
            delivered_terms.append(result.delivered_bits)
            filtered_terms.append(result.dropped_bits + result.shaped_dropped_bits)
            congestion_terms.append(result.congestion_dropped_bits)
        report.offered_bits = float(sum(offered_terms))
        report.delivered_bits = float(sum(delivered_terms))
        report.filtered_bits = float(sum(filtered_terms))
        report.congestion_dropped_bits = float(sum(congestion_terms))
        return report

    def platform_overloaded(self, report: FabricIntervalReport) -> bool:
        """True if the interval's load exceeded the platform capacity."""
        return report.platform_load_bps > self.platform_capacity_bps
