"""Partitioning the fabric into per-PoP shards for the parallel pipeline.

The natural sharding boundary of a DE-CIX-class platform is the PoP: a
member's port lives in one PoP, egress classification touches only that
port's rules, and :func:`~repro.ixp.topology.build_multi_pop_fabric` can
rebuild any subset of PoPs router-for-router identical to the full
platform (``pop_indices``).  A :class:`ShardPlanner` groups the connected
members by PoP and packs whole PoPs into a requested number of shards;
each :class:`ShardSpec` then describes a self-contained slice of the
platform that one worker process can simulate independently.

Because egress delivery is per-member and members are disjoint across
shards, the per-shard :class:`~repro.ixp.fabric.FabricIntervalReport`\\ s
reduce losslessly into the platform-level report —
:func:`merge_interval_reports` performs that reduction on the canonical
``to_dict()`` payloads, preserving per-member numbers bit-for-bit.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .fabric import SwitchingFabric
    from .member import IxpMember


def pop_index(pop_name: str) -> int:
    """The numeric index of a ``pop-<n>`` label."""
    prefix, _, suffix = pop_name.partition("-")
    if prefix != "pop" or not suffix.isdigit():
        raise ValueError(f"not a pop-<n> label: {pop_name!r}")
    return int(suffix)


@dataclass(frozen=True)
class ShardSpec:
    """One self-contained slice of the platform: whole PoPs plus their members."""

    index: int
    #: PoP labels this shard owns, ascending by numeric index.
    pops: tuple[str, ...]
    #: Member ASNs connected in those PoPs, ascending.
    member_asns: tuple[int, ...]

    @property
    def pop_indices(self) -> tuple[int, ...]:
        """Numeric PoP indices (what ``build_multi_pop_fabric`` consumes)."""
        return tuple(pop_index(name) for name in self.pops)

    def __len__(self) -> int:
        return len(self.member_asns)


class ShardPlanner:
    """Plan a PoP-granular partition of a fabric's member population.

    Shards never split a PoP: the shard-local fabric for a spec is built
    with ``pop_indices=spec.pop_indices`` and is router-for-router
    identical to those PoPs of the full platform, so per-member placement
    and QoS behaviour cannot depend on which shard a PoP landed in.
    """

    def __init__(self, units: Mapping[str, Sequence[int]]) -> None:
        #: pop label -> ascending member ASNs (empty PoPs allowed).
        self._units: "OrderedDict[str, tuple[int, ...]]" = OrderedDict()
        for pop in sorted(units, key=pop_index):
            self._units[pop] = tuple(sorted(units[pop]))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_fabric(cls, fabric: "SwitchingFabric") -> "ShardPlanner":
        """Plan from a live fabric's actual router placement."""
        units: dict[str, list[int]] = {
            router.pop: [] for router in fabric.edge_routers()
        }
        for member in fabric.members():
            units[fabric.router_for_member(member.asn).pop].append(member.asn)
        return cls(units)

    @classmethod
    def for_members(cls, members: Iterable["IxpMember"], pop_count: int) -> "ShardPlanner":
        """Plan from member PoP assignments, without building a fabric.

        Valid whenever every PoP has at least one router (the
        ``build_multi_pop_fabric`` invariant), in which case
        ``connect_member`` always places a member in its declared PoP and
        this plan equals :meth:`for_fabric` of the built platform.
        """
        units: dict[str, list[int]] = {
            f"pop-{index}": [] for index in range(1, pop_count + 1)
        }
        for member in members:
            if member.pop not in units:
                raise ValueError(
                    f"member AS{member.asn} declares {member.pop!r}, outside "
                    f"1..{pop_count}"
                )
            units[member.pop].append(member.asn)
        return cls(units)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    @property
    def pop_count(self) -> int:
        return len(self._units)

    @property
    def member_count(self) -> int:
        return sum(len(asns) for asns in self._units.values())

    def plan(self, shard_count: int | None = None) -> list[ShardSpec]:
        """Pack the non-empty PoPs into at most ``shard_count`` shards.

        Defaults to one shard per non-empty PoP.  Fewer shards than PoPs
        packs whole PoPs with a deterministic longest-processing-time
        heuristic (largest PoP first into the currently lightest shard),
        so shard sizes stay balanced without ever splitting a PoP.  Empty
        PoPs contribute nothing; an entirely empty fabric plans to zero
        shards.
        """
        occupied = [(pop, asns) for pop, asns in self._units.items() if asns]
        if not occupied:
            return []
        if shard_count is None:
            shard_count = len(occupied)
        if shard_count < 1:
            raise ValueError(f"shard_count must be positive, got {shard_count}")
        bins = min(shard_count, len(occupied))
        # Largest PoP first; ties broken by PoP index so the packing is a
        # pure function of the membership.
        ordered = sorted(
            occupied, key=lambda unit: (-len(unit[1]), pop_index(unit[0]))
        )
        assigned: list[list[tuple[str, tuple[int, ...]]]] = [[] for _ in range(bins)]
        loads = [0] * bins
        for pop, asns in ordered:
            target = min(range(bins), key=lambda b: (loads[b], b))
            assigned[target].append((pop, asns))
            loads[target] += len(asns)
        # Present shards in platform order (by their lowest PoP index).
        assigned.sort(key=lambda units: min(pop_index(pop) for pop, _ in units))
        return [
            ShardSpec(
                index=shard_index,
                pops=tuple(sorted((pop for pop, _ in units), key=pop_index)),
                member_asns=tuple(
                    sorted(asn for _, asns in units for asn in asns)
                ),
            )
            for shard_index, units in enumerate(assigned)
        ]


class ShardLookup:
    """Prebuilt ASN→shard resolution over a plan.

    Building the dict walks the plan once; every lookup after that is a
    plain dict hit.  Anything resolving members repeatedly — per member at
    city scale — should hold one of these instead of re-scanning the plan
    through :func:`shard_for_member`.
    """

    def __init__(self, plan: Sequence[ShardSpec]) -> None:
        self._by_asn: dict[int, ShardSpec] = {
            asn: spec for spec in plan for asn in spec.member_asns
        }

    def __getitem__(self, member_asn: int) -> ShardSpec:
        try:
            return self._by_asn[member_asn]
        except KeyError:
            raise KeyError(f"AS{member_asn} is in no shard of the plan") from None

    def __contains__(self, member_asn: int) -> bool:
        return member_asn in self._by_asn

    def __len__(self) -> int:
        return len(self._by_asn)


def shard_for_member(plan: Sequence[ShardSpec], member_asn: int) -> ShardSpec:
    """The shard owning ``member_asn`` (exactly one, by construction).

    One-off convenience over :class:`ShardLookup`; loops should build the
    lookup once rather than pay the plan walk per call.
    """
    return ShardLookup(plan)[member_asn]


def merge_interval_reports(reports: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Reduce per-shard ``FabricIntervalReport.to_dict()`` payloads.

    Shards partition the member set, so the per-member sections are
    disjoint and merge by union — every member's numbers are bit-for-bit
    what a single-process fabric computes for that member.  The platform
    totals are float sums accumulated in ascending shard order: a fixed,
    deterministic order, so the serial oracle (same shards, same merge,
    no processes) reproduces them exactly at any worker count.
    """
    if not reports:
        raise ValueError("need at least one shard report to merge")
    first = reports[0]
    merged: dict[str, Any] = {
        "interval_start": first["interval_start"],
        "interval": first["interval"],
        "offered_bits": 0.0,
        "delivered_bits": 0.0,
        "filtered_bits": 0.0,
        "congestion_dropped_bits": 0.0,
    }
    members: dict[str, Mapping[str, Any]] = {}
    for report in reports:
        if (
            report["interval_start"] != merged["interval_start"]
            or report["interval"] != merged["interval"]
        ):
            raise ValueError("shard reports describe different intervals")
        for key in (
            "offered_bits",
            "delivered_bits",
            "filtered_bits",
            "congestion_dropped_bits",
        ):
            merged[key] += report[key]
        overlap = members.keys() & report["members"].keys()
        if overlap:
            raise ValueError(f"member(s) {sorted(overlap)} appear in multiple shards")
        members.update(report["members"])
    merged["members"] = {asn: members[asn] for asn in sorted(members, key=int)}
    return merged


#: Platform-total keys, in the order both merge functions accumulate them.
_TOTAL_KEYS = (
    "offered_bits",
    "delivered_bits",
    "filtered_bits",
    "congestion_dropped_bits",
)


def merge_interval_columns(payloads: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Reduce per-shard ``FabricIntervalReport.to_columns()`` payloads.

    The columnar counterpart of :func:`merge_interval_reports`: per-member
    accounting arrives as parallel numpy arrays per shard and merges with
    one concatenation + stable argsort over the ASN column instead of
    O(members) per-member dict copies.  Numbers are bit-for-bit what the
    dict merge produces — totals are float sums in ascending shard order
    (the fixed order that makes the serial oracle reproduce them at any
    worker count), member rows are disjoint across shards (checked) and
    merely reordered.
    """
    if not payloads:
        raise ValueError("need at least one shard report to merge")
    first = payloads[0]
    for payload in payloads:
        if (
            payload["interval_start"] != first["interval_start"]
            or payload["interval"] != first["interval"]
        ):
            raise ValueError("shard reports describe different intervals")
    totals = {
        key: float(sum([payload["totals"][key] for payload in payloads]))
        for key in _TOTAL_KEYS
    }
    asns = np.concatenate([payload["member_asns"] for payload in payloads])
    order = np.argsort(asns, kind="stable")
    sorted_asns = asns[order]
    if len(sorted_asns) > 1:
        duplicates = sorted_asns[1:][sorted_asns[1:] == sorted_asns[:-1]]
        if len(duplicates):
            raise ValueError(
                "member(s) "
                f"{sorted(set(int(asn) for asn in duplicates))} "
                "appear in multiple shards"
            )
    member_fields = {
        name: np.concatenate(
            [payload["member_fields"][name] for payload in payloads]
        )[order]
        for name in first["member_fields"]
    }
    rule_stats: dict[str, Any] = {}
    for payload in payloads:
        rule_stats.update(payload["rule_stats"])
    return {
        "interval_start": first["interval_start"],
        "interval": first["interval"],
        "totals": totals,
        "member_asns": sorted_asns,
        "member_fields": member_fields,
        "rule_stats": rule_stats,
    }


def columns_to_report_dict(columns: Mapping[str, Any]) -> dict[str, Any]:
    """Convert a columnar (merged) payload back to the ``to_dict()`` shape.

    Bit-for-bit: float64 array values round-trip exactly through
    ``tolist``, so converting the columnar merge of shard payloads equals
    :func:`merge_interval_reports` over the same shards'
    ``to_dict()`` payloads — the parity bridge the shard tests pin, and
    what the city-scale experiment digests.
    """
    asns = columns["member_asns"].tolist()
    fields = {name: array.tolist() for name, array in columns["member_fields"].items()}
    rule_stats = columns["rule_stats"]
    members = {}
    for row, asn in enumerate(asns):
        key = str(asn)
        member = {name: values[row] for name, values in fields.items()}
        member["rule_stats"] = rule_stats.get(key, {})
        members[key] = member
    return {
        "interval_start": columns["interval_start"],
        "interval": columns["interval"],
        **{key: columns["totals"][key] for key in _TOTAL_KEYS},
        "members": members,
    }
