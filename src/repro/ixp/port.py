"""Member ports on the IXP edge routers.

A :class:`MemberPort` binds an IXP member to a physical port on an edge
router.  The port owns its QoS policy (Stellar configures egress ports,
§4.5), accumulates traffic counters, and exposes the telemetry the
blackholing users receive (forwarded vs. dropped vs. shaped volumes).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Union

from ..traffic.flow import FlowRecord
from ..traffic.flowtable import FlowTable
from .member import IxpMember
from .qos import PortQosPolicy, PortQosResult, QosRule


@dataclass
class PortCounters:
    """Cumulative byte counters of a member port."""

    offered_bits: float = 0.0
    delivered_bits: float = 0.0
    dropped_bits: float = 0.0
    shaped_passed_bits: float = 0.0
    shaped_dropped_bits: float = 0.0
    congestion_dropped_bits: float = 0.0

    def update(self, offered_bits: float, result: PortQosResult) -> None:
        self.offered_bits += offered_bits
        self.delivered_bits += result.delivered_bits
        self.dropped_bits += result.dropped_bits
        self.shaped_passed_bits += result.shaped_passed_bits
        self.shaped_dropped_bits += result.shaped_dropped_bits
        self.congestion_dropped_bits += result.congestion_dropped_bits

    @property
    def total_filtered_bits(self) -> float:
        """Bits removed by blackholing rules (drop + shaped excess)."""
        return self.dropped_bits + self.shaped_dropped_bits


class MemberPort:
    """A member's port on an edge router, with its egress QoS policy."""

    def __init__(self, member: IxpMember, port_id: int) -> None:
        self.member = member
        self.port_id = port_id
        self.qos = PortQosPolicy(port_capacity_bps=member.port_capacity_bps)
        self.counters = PortCounters()
        #: Per-interval history of (interval_start, PortQosResult).
        self.history: list[tuple[float, PortQosResult]] = []
        #: Whether :attr:`history` accumulates.  Hour-long streaming runs
        #: disable it — each retained result closes over its interval's
        #: flow tables, which would hold the whole trace in RAM.  The
        #: cumulative :attr:`counters` always update.
        self.retain_history: bool = True

    # ------------------------------------------------------------------
    @property
    def asn(self) -> int:
        return self.member.asn

    @property
    def capacity_bps(self) -> float:
        return self.member.port_capacity_bps

    # ------------------------------------------------------------------
    # QoS rule management (delegated to the policy)
    # ------------------------------------------------------------------
    def install_rule(self, rule: QosRule) -> None:
        self.qos.install(rule)

    def remove_rule(self, rule_id: str) -> bool:
        return self.qos.remove(rule_id)

    def rules(self) -> list[QosRule]:
        return self.qos.rules()

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def deliver(
        self,
        flows: Union[Sequence[FlowRecord], FlowTable],
        interval: float,
        interval_start: float = 0.0,
    ) -> PortQosResult:
        """Push one interval of egress traffic through the port."""
        if isinstance(flows, FlowTable):
            offered_bits = float(flows.total_bits)
        else:
            offered_bits = float(sum(flow.bits for flow in flows))
        result = self.qos.apply(flows, interval)
        self.counters.update(offered_bits, result)
        if self.retain_history:
            self.history.append((interval_start, result))
        return result

    def utilisation(self, result: PortQosResult, interval: float) -> float:
        """Egress demand on the port relative to its capacity (can exceed 1).

        The demand is what the QoS policy tried to deliver — the bits that
        made it plus the bits congestion-dropped at the egress queue — so
        an oversubscribed port reports its true ratio (e.g. 8.0 for an 80
        Mbit demand on a 10 Mbit interval budget) instead of silently
        clamping to 1.0.  Presentation layers that want a bounded gauge
        should use :meth:`display_utilisation`.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        demand_bits = result.delivered_bits + result.congestion_dropped_bits
        return demand_bits / (self.capacity_bps * interval)

    def display_utilisation(self, result: PortQosResult, interval: float) -> float:
        """:meth:`utilisation` clamped to [0, 1] for bounded gauges."""
        return min(1.0, self.utilisation(result, interval))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemberPort(port_id={self.port_id}, member=AS{self.member.asn})"
