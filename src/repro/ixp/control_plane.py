"""Edge-router control-plane CPU model.

The paper finds that the limiting factor for the configuration update rate
is the edge router's control-plane CPU (§5.1): the router runs a real-time
OS with a hard 15 % CPU budget for configuration tasks, and the measured
relationship between L3-criteria update rate and CPU usage is linear, with
the 15 % budget corresponding to a median of 4.33 rule updates per second
(Fig. 10(a)).

The model reproduces that relationship as ``cpu = base + slope × rate``
plus Gaussian measurement noise.  Default coefficients are calibrated so
``max_update_rate(15 %) ≈ 4.33/s``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..sim.rng import make_rng

#: Hard CPU budget (percent) the IXP's configuration imposes for config tasks.
DEFAULT_CPU_LIMIT_PERCENT = 15.0

#: Median sustainable update rate the paper reports at the 15 % budget.
PAPER_MEDIAN_UPDATE_RATE = 4.33


@dataclass
class ControlPlaneCpuModel:
    """Linear CPU-usage model of the edge router's configuration daemon."""

    #: CPU percentage consumed with no configuration activity.
    base_percent: float = 1.5
    #: Additional CPU percentage per (rule update / second).
    percent_per_update: float = 3.117
    #: Standard deviation of the measurement noise (percentage points).
    noise_std: float = 0.6
    #: Hard budget for configuration tasks.
    cpu_limit_percent: float = DEFAULT_CPU_LIMIT_PERCENT
    seed: int | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.base_percent < 0 or self.percent_per_update <= 0:
            raise ValueError("base_percent must be >= 0 and percent_per_update > 0")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if not 0 < self.cpu_limit_percent <= 100:
            raise ValueError("cpu_limit_percent must lie in (0, 100]")
        self._rng = make_rng(self.seed)

    # ------------------------------------------------------------------
    def expected_usage(self, updates_per_second: float) -> float:
        """Noise-free CPU usage (percent) at a given update rate."""
        if updates_per_second < 0:
            raise ValueError("updates_per_second must be non-negative")
        return self.base_percent + self.percent_per_update * updates_per_second

    def measure_usage(self, updates_per_second: float) -> float:
        """One noisy CPU-usage measurement, clipped to [0, 100].

        With ``noise_std == 0`` the measurement is exactly
        :meth:`expected_usage` and consumes no RNG state — the
        deterministic mode budget-enforcement code paths (the
        control-plane service) rely on: repeated measurements of the
        same rate are identical and never perturb other seeded draws.
        """
        expected = self.expected_usage(updates_per_second)
        if self.noise_std == 0.0:
            return float(np.clip(expected, 0.0, 100.0))
        noisy = expected + self._rng.normal(0.0, self.noise_std)
        return float(np.clip(noisy, 0.0, 100.0))

    def measure_series(
        self, updates_per_second: Sequence[float], samples_per_rate: int = 1
    ) -> list[tuple[float, float]]:
        """Measure CPU usage for a sweep of update rates.

        Returns ``(rate, cpu_percent)`` pairs — the scatter of Fig. 10(a).
        """
        if samples_per_rate < 1:
            raise ValueError("samples_per_rate must be >= 1")
        observations = []
        for rate in updates_per_second:
            for _ in range(samples_per_rate):
                observations.append((float(rate), self.measure_usage(rate)))
        return observations

    def max_update_rate(self, cpu_limit_percent: float | None = None) -> float:
        """Largest update rate that stays within the CPU budget."""
        limit = self.cpu_limit_percent if cpu_limit_percent is None else cpu_limit_percent
        if limit <= self.base_percent:
            return 0.0
        return (limit - self.base_percent) / self.percent_per_update

    def within_budget(self, updates_per_second: float) -> bool:
        """True if the (noise-free) usage stays within the CPU budget."""
        return self.expected_usage(updates_per_second) <= self.cpu_limit_percent

    @classmethod
    def deterministic(cls, **overrides) -> "ControlPlaneCpuModel":
        """A noise-free model (``noise_std=0``).

        ``measure_usage`` equals ``expected_usage`` exactly, so
        ``max_update_rate`` is a hard, reproducible admission threshold
        rather than a statistical one.  This is the model the
        control-plane service's per-member change budgets run on.
        """
        overrides.setdefault("noise_std", 0.0)
        return cls(**overrides)
