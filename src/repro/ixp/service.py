"""Long-lived control-plane service for concurrent rule churn.

Every scenario before this module installed rules by calling router
methods from a script.  The paper's central scaling bottleneck, though,
is the *control* plane: the edge router's configuration CPU sustains a
median of only ~4.33 rule updates per second within its 15 % budget
(§5.1, Fig. 10(a)), so a platform where thousands of members churn
fine-grained rules concurrently needs admission control, queueing and
batching in front of the routers.

:class:`ControlPlaneService` is that front end.  It multiplexes many
members' concurrent ``install`` / ``install_many`` / ``remove`` /
``clear`` / ``telemetry`` requests against one running
:class:`~repro.ixp.fabric.SwitchingFabric`:

* **per-router FIFO lanes** — each edge router services its queue at the
  deterministic :meth:`ControlPlaneCpuModel.max_update_rate` on a
  *virtual* control-plane clock, so rule-propagation latency is a
  modeled quantity, independent of host wall-clock;
* **coalescing** — consecutive queued installs for the same port are
  drained into a single :meth:`EdgeRouter.install_rules` batch: one
  ``rules_version`` bump per drained batch instead of one per rule (the
  amortization the ``rule_churn`` scenario and ``BENCH_service.json``
  measure).  Since the incremental-compile work in
  :mod:`~repro.ixp.ruleindex`, the per-drain index cost is small even
  uncoalesced — small batches replay as journal deltas into the cached
  snapshot rather than triggering a full recompile — but one bump per
  batch still means one delivery-plan patch per drain;
* **per-member change budgets** — a member may spend at most
  ``rate × window`` configuration operations per budget window, with
  the rate backed by the noise-free CPU model; over-budget requests are
  rejected with an explicit ``retry_after``;
* **backpressure** — each lane caps its queued operations; requests
  beyond the cap are rejected with a ``retry_after`` estimated from the
  backlog.

The service has a synchronous core (:meth:`enqueue` + :meth:`drain_to`)
and an asyncio surface (:meth:`submit` + :meth:`advance`) built on it.
Scripted-sequential scenario runs drive the core directly; the async
mode only adds an event loop, per-router worker tasks and futures — by
construction both produce identical fabric state, identical request
logs and identical accounting, which the ``rule_churn`` scenario tests
bit-for-bit.

Every applied data-plane call is recorded as an :class:`AppliedChange`.
Replaying that log *one rule at a time* through direct router calls
(:func:`replay_request_log`) must reproduce the exact same fabric state
— the parity oracle guarding the coalescing seam.
"""

from __future__ import annotations

import asyncio
import math
from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from .control_plane import ControlPlaneCpuModel
from .edge_router import EdgeRouter, PortNotFoundError
from .fabric import SwitchingFabric
from .qos import QosRule
from .tcam import TcamExhaustedError

#: Operations that mutate a port's rule set (and consume budget/CPU).
CHANGE_OPS = ("install", "install_many", "remove", "clear")

#: Every operation the service accepts.
SERVICE_OPS = CHANGE_OPS + ("telemetry",)

#: Comparison slack for virtual-time horizon checks.
_EPS = 1e-9


@dataclass(frozen=True)
class ChangeRequest:
    """One member request against the control-plane service."""

    member_asn: int
    op: str
    rules: tuple[QosRule, ...] = ()
    rule_id: str = ""
    #: Virtual time the request reaches the service (seconds).
    arrival_time: float = 0.0
    #: Assigned by the service at submission (monotonic per service).
    request_id: int = 0

    def __post_init__(self) -> None:
        if self.op not in SERVICE_OPS:
            raise ValueError(
                f"unknown op {self.op!r}; known: {', '.join(SERVICE_OPS)}"
            )
        if self.op in ("install", "install_many") and not self.rules:
            raise ValueError(f"{self.op} request needs at least one rule")
        if self.op == "install" and len(self.rules) != 1:
            raise ValueError("install carries exactly one rule; use install_many")
        if self.op == "remove" and not self.rule_id:
            raise ValueError("remove request needs a rule_id")

    @property
    def cost(self) -> int:
        """Configuration operations the request spends on the router CPU.

        Installs cost one operation per rule; ``remove`` and ``clear``
        cost one (a single config transaction); telemetry is free (a
        read against state the service already holds).
        """
        if self.op in ("install", "install_many"):
            return len(self.rules)
        if self.op in ("remove", "clear"):
            return 1
        return 0


@dataclass(frozen=True)
class ServiceResponse:
    """The service's answer to one :class:`ChangeRequest`."""

    #: ``"applied"`` | ``"rejected"`` | ``"error"`` | ``"telemetry"``.
    status: str
    request_id: int
    member_asn: int
    op: str
    #: Virtual completion time of the change (``applied`` / ``error``).
    applied_at: Optional[float] = None
    #: ``applied_at - arrival_time`` — the rule-propagation latency.
    latency: Optional[float] = None
    #: Seconds the member should wait before retrying (rejections).
    retry_after: Optional[float] = None
    #: ``"budget"`` | ``"backpressure"`` | ``"unknown-member"`` |
    #: ``"tcam-exhausted"`` | ``"shutdown"`` | ``""``.
    reason: str = ""
    telemetry: Optional[dict] = None

    @property
    def accepted(self) -> bool:
        return self.status == "applied"


@dataclass(frozen=True)
class AppliedChange:
    """One data-plane call the service made (an entry of the request log).

    Coalesced installs appear as a single ``install_many`` entry carrying
    every rule of the drained batch, in queue order.  ``applied_at`` is
    the virtual completion time of the batch's last operation and
    ``horizon`` the drain horizon the batch was applied under (scenario
    replays group entries by it).  The canonical log order is
    ``(applied_at, member_asn)`` — see
    :meth:`ControlPlaneService.sorted_log`.
    """

    member_asn: int
    op: str  # "install_many" | "remove" | "clear"
    rules: tuple[QosRule, ...] = ()
    rule_id: str = ""
    applied_at: float = 0.0
    horizon: float = math.inf
    request_ids: tuple[int, ...] = ()
    #: True when the batch hit the TCAM limit mid-apply; a replay must
    #: attempt the same ops and swallow the same error.
    tcam_exhausted: bool = False


@dataclass
class ServiceStats:
    """Counters the service accumulates (order-independent)."""

    submitted: int = 0
    applied_requests: int = 0
    applied_ops: int = 0
    #: Router calls made (each one rules_version bump at most).
    data_plane_calls: int = 0
    #: Install batches that merged more than one request.
    coalesced_batches: int = 0
    #: Install operations that rode in a coalesced batch.
    coalesced_ops: int = 0
    rejected_budget: int = 0
    rejected_backpressure: int = 0
    rejected_unknown_member: int = 0
    rejected_shutdown: int = 0
    tcam_errors: int = 0
    telemetry_served: int = 0
    max_queue_depth_seen: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            name: getattr(self, name)
            for name in (
                "submitted",
                "applied_requests",
                "applied_ops",
                "data_plane_calls",
                "coalesced_batches",
                "coalesced_ops",
                "rejected_budget",
                "rejected_backpressure",
                "rejected_unknown_member",
                "rejected_shutdown",
                "tcam_errors",
                "telemetry_served",
                "max_queue_depth_seen",
            )
        }


@dataclass
class _Pending:
    """A queued request plus its (async-mode) response future."""

    request: ChangeRequest
    future: Optional[asyncio.Future] = None
    #: Virtual completion time, set when the drain services the request.
    done_at: float = 0.0


class _RouterLane:
    """One edge router's FIFO change queue + virtual control-plane clock."""

    def __init__(self, router: EdgeRouter) -> None:
        self.router = router
        self.queue: deque[_Pending] = deque()
        #: Configuration operations currently queued (backpressure unit).
        self.pending_ops = 0
        #: Virtual time the router's config CPU becomes free.
        self.clock = 0.0
        # Async plumbing, populated by ControlPlaneService.start().
        self.wake: Optional[asyncio.Event] = None
        self.done: Optional[asyncio.Event] = None
        self.task: Optional[asyncio.Task] = None


class ControlPlaneService:
    """Admission control, queueing and coalescing in front of the fabric.

    Parameters
    ----------
    fabric:
        The running switching fabric whose routers the service drives.
    coalesce:
        Merge consecutive queued installs per port into one
        ``install_many`` batch (default).  ``False`` applies every
        request as its own router call — the comparison arm the service
        bench measures recompile amortization against.
    max_queue_depth:
        Per-router cap on queued configuration *operations*; requests
        that would exceed it are rejected with ``reason="backpressure"``.
    max_coalesce:
        Upper bound on operations merged into one install batch.
    budget_window:
        Length (seconds) of the fixed per-member budget window.
    member_update_rate:
        Sustained config-operations/second each member may spend.  The
        default derives it from the *deterministic* CPU model —
        ``max_update_rate(15 %) ≈ 4.33/s``, the paper's median.
    cpu_model:
        Override the CPU model; must be noise-free (``noise_std == 0``)
        so admission decisions are reproducible.
    """

    def __init__(
        self,
        fabric: SwitchingFabric,
        *,
        coalesce: bool = True,
        max_queue_depth: int = 512,
        max_coalesce: int = 256,
        budget_window: float = 10.0,
        member_update_rate: Optional[float] = None,
        cpu_model: Optional[ControlPlaneCpuModel] = None,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive")
        if max_coalesce < 1:
            raise ValueError("max_coalesce must be positive")
        if budget_window <= 0:
            raise ValueError("budget_window must be positive")
        self.fabric = fabric
        self.coalesce = coalesce
        self.max_queue_depth = max_queue_depth
        self.max_coalesce = max_coalesce
        self.budget_window = budget_window
        self.cpu = (
            cpu_model if cpu_model is not None else ControlPlaneCpuModel.deterministic()
        )
        if self.cpu.noise_std != 0.0:
            raise ValueError(
                "budget enforcement needs a deterministic CPU model "
                "(noise_std=0); use ControlPlaneCpuModel.deterministic()"
            )
        self.update_rate = self.cpu.max_update_rate()
        if self.update_rate <= 0:
            raise ValueError("CPU model admits no updates within its budget")
        #: Virtual seconds one configuration operation occupies the CPU.
        self.op_seconds = 1.0 / self.update_rate
        self.member_update_rate = (
            self.update_rate if member_update_rate is None else member_update_rate
        )
        if self.member_update_rate <= 0:
            raise ValueError("member_update_rate must be positive")
        self.window_allowance = self.member_update_rate * budget_window
        self._lanes: dict[str, _RouterLane] = {
            router.name: _RouterLane(router) for router in fabric.edge_routers()
        }
        #: ``(member_asn, window_index) -> operations spent``.
        self._budget_used: dict[tuple[int, int], int] = {}
        self._next_request_id = 1
        self.request_log: list[AppliedChange] = []
        #: Propagation latency of every applied request (virtual seconds).
        self.latencies: list[float] = []
        self.stats = ServiceStats()
        self._started = False
        self._closed = False
        self._horizon: Optional[float] = None

    # ------------------------------------------------------------------
    # Request construction
    # ------------------------------------------------------------------
    def make_request(
        self,
        member_asn: int,
        op: str,
        *,
        rules: Sequence[QosRule] = (),
        rule_id: str = "",
        at: float = 0.0,
    ) -> ChangeRequest:
        """Build a request with the next service-assigned request id."""
        request = ChangeRequest(
            member_asn=member_asn,
            op=op,
            rules=tuple(rules),
            rule_id=rule_id,
            arrival_time=at,
            request_id=self._next_request_id,
        )
        self._next_request_id += 1
        return request

    # ------------------------------------------------------------------
    # Synchronous core: admission
    # ------------------------------------------------------------------
    def enqueue(
        self, request: ChangeRequest, future: Optional[asyncio.Future] = None
    ) -> Optional[ServiceResponse]:
        """Admit one request.

        Returns the immediate response for telemetry and rejections, or
        ``None`` when the request was queued on its router's lane (its
        response comes out of a later :meth:`drain_to`, or resolves the
        given ``future`` in async mode).
        """
        if request.request_id == 0:
            request = replace(request, request_id=self._next_request_id)
            self._next_request_id += 1
        self.stats.submitted += 1
        try:
            router = self.fabric.router_for_member(request.member_asn)
        except PortNotFoundError:
            self.stats.rejected_unknown_member += 1
            return self._reject(request, "unknown-member", retry_after=None)
        lane = self._lanes[router.name]

        if request.op == "telemetry":
            self.stats.telemetry_served += 1
            return self._telemetry_response(request, lane)

        window = int(request.arrival_time // self.budget_window)
        key = (request.member_asn, window)
        used = self._budget_used.get(key, 0)
        if used + request.cost > self.window_allowance + _EPS:
            self.stats.rejected_budget += 1
            window_end = (window + 1) * self.budget_window
            return self._reject(
                request, "budget", retry_after=max(0.0, window_end - request.arrival_time)
            )

        if lane.pending_ops + request.cost > self.max_queue_depth:
            self.stats.rejected_backpressure += 1
            backlog_done = max(lane.clock, request.arrival_time) + (
                lane.pending_ops * self.op_seconds
            )
            return self._reject(
                request,
                "backpressure",
                retry_after=max(self.op_seconds, backlog_done - request.arrival_time),
            )

        self._budget_used[key] = used + request.cost
        lane.queue.append(_Pending(request, future))
        lane.pending_ops += request.cost
        self.stats.max_queue_depth_seen = max(
            self.stats.max_queue_depth_seen, lane.pending_ops
        )
        return None

    def _reject(
        self, request: ChangeRequest, reason: str, retry_after: Optional[float]
    ) -> ServiceResponse:
        return ServiceResponse(
            status="rejected",
            request_id=request.request_id,
            member_asn=request.member_asn,
            op=request.op,
            retry_after=retry_after,
            reason=reason,
        )

    def _telemetry_response(
        self, request: ChangeRequest, lane: _RouterLane
    ) -> ServiceResponse:
        port = lane.router.port_for(request.member_asn)
        mac_used, l3l4_used = lane.router.tcam.usage_for_port(port.port_id)
        return ServiceResponse(
            status="telemetry",
            request_id=request.request_id,
            member_asn=request.member_asn,
            op="telemetry",
            applied_at=request.arrival_time,
            latency=0.0,
            telemetry={
                "router": lane.router.name,
                "rules_version": port.qos.rules_version,
                "installed_rules": len(port.qos),
                "queue_depth_ops": lane.pending_ops,
                "router_clock": lane.clock,
                "tcam_mac_entries": mac_used,
                "tcam_l3l4_criteria": l3l4_used,
            },
        )

    # ------------------------------------------------------------------
    # Synchronous core: draining
    # ------------------------------------------------------------------
    def drain_to(
        self, horizon: Optional[float]
    ) -> list[tuple[ChangeRequest, ServiceResponse]]:
        """Service every lane's queue up to ``horizon`` (``None`` = all).

        Each configuration operation occupies its router's virtual CPU
        for :attr:`op_seconds`; a request completes when its last
        operation does, and stays queued if that completion would pass
        the horizon (strict FIFO — a large head-of-line batch delays
        everything behind it).  Returns the ``(request, response)``
        resolutions in lane order.
        """
        resolved: list[tuple[ChangeRequest, ServiceResponse]] = []
        for name in sorted(self._lanes):
            resolved.extend(self._drain_lane(self._lanes[name], horizon))
        return resolved

    def _drain_lane(
        self, lane: _RouterLane, horizon: Optional[float]
    ) -> list[tuple[ChangeRequest, ServiceResponse]]:
        resolved: list[tuple[ChangeRequest, ServiceResponse]] = []
        # member_asn -> install requests awaiting one coalesced flush.
        buffers: dict[int, list[_Pending]] = {}

        def flush(member_asn: int) -> None:
            batch = buffers.pop(member_asn, None)
            if batch:
                self._apply_install_batch(lane, member_asn, batch, horizon, resolved)

        while lane.queue:
            pending = lane.queue[0]
            request = pending.request
            start = max(lane.clock, request.arrival_time)
            done = start + request.cost * self.op_seconds
            if horizon is not None and done > horizon + _EPS:
                break
            lane.queue.popleft()
            lane.pending_ops -= request.cost
            lane.clock = done
            pending.done_at = done
            if request.op in ("install", "install_many"):
                if self.coalesce:
                    batch = buffers.setdefault(request.member_asn, [])
                    batch.append(pending)
                    if sum(p.request.cost for p in batch) >= self.max_coalesce:
                        flush(request.member_asn)
                else:
                    self._apply_install_batch(
                        lane, request.member_asn, [pending], horizon, resolved
                    )
            elif request.op == "remove":
                # Ordering: a queued remove must see every install queued
                # before it, so the member's buffered batch flushes first.
                flush(request.member_asn)
                lane.router.remove_rule(request.member_asn, request.rule_id)
                self._log_and_resolve(
                    lane, [pending], "remove", horizon, resolved, rule_id=request.rule_id
                )
            elif request.op == "clear":
                flush(request.member_asn)
                lane.router.clear_rules(request.member_asn)
                self._log_and_resolve(lane, [pending], "clear", horizon, resolved)
        for member_asn in list(buffers):
            flush(member_asn)
        return resolved

    def _apply_install_batch(
        self,
        lane: _RouterLane,
        member_asn: int,
        batch: list[_Pending],
        horizon: Optional[float],
        resolved: list[tuple[ChangeRequest, ServiceResponse]],
    ) -> None:
        rules = tuple(
            rule for pending in batch for rule in pending.request.rules
        )
        exhausted = False
        try:
            lane.router.install_rules(member_asn, rules)
        except TcamExhaustedError:
            # install_rules leaves the data plane exactly where sequential
            # installs would have stopped; record the error so the replay
            # oracle attempts (and swallows) the same failure.
            exhausted = True
            self.stats.tcam_errors += len(batch)
        if len(batch) > 1:
            self.stats.coalesced_batches += 1
            self.stats.coalesced_ops += len(rules)
        self._log_and_resolve(
            lane,
            batch,
            "install_many",
            horizon,
            resolved,
            rules=rules,
            tcam_exhausted=exhausted,
        )

    def _log_and_resolve(
        self,
        lane: _RouterLane,
        batch: list[_Pending],
        op: str,
        horizon: Optional[float],
        resolved: list[tuple[ChangeRequest, ServiceResponse]],
        *,
        rules: tuple[QosRule, ...] = (),
        rule_id: str = "",
        tcam_exhausted: bool = False,
    ) -> None:
        applied_at = batch[-1].done_at
        self.request_log.append(
            AppliedChange(
                member_asn=batch[0].request.member_asn,
                op=op,
                rules=rules,
                rule_id=rule_id,
                applied_at=applied_at,
                horizon=math.inf if horizon is None else horizon,
                request_ids=tuple(p.request.request_id for p in batch),
                tcam_exhausted=tcam_exhausted,
            )
        )
        self.stats.data_plane_calls += 1
        for pending in batch:
            request = pending.request
            latency = pending.done_at - request.arrival_time
            if tcam_exhausted:
                response = ServiceResponse(
                    status="error",
                    request_id=request.request_id,
                    member_asn=request.member_asn,
                    op=request.op,
                    applied_at=pending.done_at,
                    latency=latency,
                    reason="tcam-exhausted",
                )
            else:
                response = ServiceResponse(
                    status="applied",
                    request_id=request.request_id,
                    member_asn=request.member_asn,
                    op=request.op,
                    applied_at=pending.done_at,
                    latency=latency,
                )
                self.stats.applied_requests += 1
                self.stats.applied_ops += request.cost
                self.latencies.append(latency)
            resolved.append((request, response))
            if pending.future is not None and not pending.future.done():
                pending.future.set_result(response)

    def close(self) -> list[tuple[ChangeRequest, ServiceResponse]]:
        """Reject everything still queued (service shutdown).

        Returns the shutdown rejections in lane order; async mode also
        resolves their futures.
        """
        resolved: list[tuple[ChangeRequest, ServiceResponse]] = []
        for name in sorted(self._lanes):
            lane = self._lanes[name]
            while lane.queue:
                pending = lane.queue.popleft()
                lane.pending_ops -= pending.request.cost
                self.stats.rejected_shutdown += 1
                response = self._reject(pending.request, "shutdown", retry_after=None)
                resolved.append((pending.request, response))
                if pending.future is not None and not pending.future.done():
                    pending.future.set_result(response)
        self._closed = True
        return resolved

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def sorted_log(self) -> list[AppliedChange]:
        """The request log in canonical replay order.

        Async workers append lane-interleaved, the scripted core
        lane-by-lane — but ``(applied_at, member_asn)`` is identical in
        both modes (virtual clocks only depend on per-lane queue order),
        and one member's entries have strictly increasing ``applied_at``,
        so this sort is a total, execution-independent order.
        """
        return sorted(
            self.request_log, key=lambda entry: (entry.applied_at, entry.member_asn)
        )

    def queue_depth(self) -> int:
        """Total configuration operations currently queued."""
        return sum(lane.pending_ops for lane in self._lanes.values())

    def latency_percentiles(
        self, percentiles: Sequence[float] = (50.0, 90.0, 99.0)
    ) -> dict[str, float]:
        """Propagation-latency percentiles over every applied request."""
        if not self.latencies:
            return {f"p{p:g}": 0.0 for p in percentiles} | {"max": 0.0}
        values = np.asarray(self.latencies, dtype=np.float64)
        out = {
            f"p{p:g}": float(np.percentile(values, p)) for p in percentiles
        }
        out["max"] = float(values.max())
        return out

    # ------------------------------------------------------------------
    # Async surface
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn one worker task per router lane (needs a running loop)."""
        if self._started:
            return
        loop = asyncio.get_running_loop()
        for name in sorted(self._lanes):
            lane = self._lanes[name]
            lane.wake = asyncio.Event()
            lane.done = asyncio.Event()
            lane.done.set()
            lane.task = loop.create_task(self._worker(lane), name=f"lane-{name}")
        self._started = True

    async def _worker(self, lane: _RouterLane) -> None:
        while True:
            await lane.wake.wait()
            lane.wake.clear()
            if self._closed:
                break
            self._drain_lane(lane, self._horizon)
            lane.done.set()

    async def submit(self, request: ChangeRequest) -> ServiceResponse:
        """Submit one request; resolves when it is rejected or applied.

        Accepted change requests only complete during a later
        :meth:`advance` (the service is paced by virtual time, not the
        wall clock), so callers run under ``asyncio.gather`` alongside
        the scenario loop driving :meth:`advance`.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        immediate = self.enqueue(request, future)
        if immediate is not None:
            return immediate
        return await future

    async def advance(self, horizon: Optional[float] = None) -> None:
        """Drain every lane up to ``horizon`` and wait for the workers."""
        if not self._started:
            self.start()
        # One scheduling slot before draining: submit() tasks created
        # right before this call run to their first await and reach
        # their queues, so `create_task(submit(...)); advance(t)` admits
        # the request into this drain instead of racing the workers.
        await asyncio.sleep(0)
        self._horizon = horizon
        for lane in self._lanes.values():
            lane.done.clear()
            lane.wake.set()
        for name in sorted(self._lanes):
            await self._lanes[name].done.wait()
        # One extra scheduling slot so submitters whose futures just
        # resolved observe their responses before the caller proceeds.
        await asyncio.sleep(0)

    async def aclose(self) -> None:
        """Stop the workers and shutdown-reject everything still queued."""
        self.close()
        for lane in self._lanes.values():
            if lane.wake is not None:
                lane.wake.set()
        tasks = [lane.task for lane in self._lanes.values() if lane.task is not None]
        if tasks:
            await asyncio.gather(*tasks)
        self._started = False

    async def __aenter__(self) -> "ControlPlaneService":
        self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()


# ----------------------------------------------------------------------
# The replay oracle
# ----------------------------------------------------------------------
def replay_request_log(
    fabric: SwitchingFabric,
    entries: Iterable[AppliedChange],
    *,
    sequential: bool = True,
) -> int:
    """Apply a service request log to a fabric through direct router calls.

    With ``sequential=True`` (the scripted-sequential oracle) every
    coalesced ``install_many`` entry is applied *one rule at a time* via
    :meth:`EdgeRouter.install_rule` — the fabric state after the replay
    must be bit-for-bit identical to the live service's, which is the
    end-to-end guarantee that batching is purely an amortization, never
    a semantic change.  ``sequential=False`` replays batches as batches.
    Returns the number of entries applied.
    """
    applied = 0
    for entry in entries:
        router = fabric.router_for_member(entry.member_asn)
        if entry.op == "install_many":
            try:
                if sequential:
                    for rule in entry.rules:
                        router.install_rule(entry.member_asn, rule)
                else:
                    router.install_rules(entry.member_asn, entry.rules)
            except TcamExhaustedError:
                if not entry.tcam_exhausted:
                    raise
        elif entry.op == "remove":
            router.remove_rule(entry.member_asn, entry.rule_id)
        elif entry.op == "clear":
            router.clear_rules(entry.member_asn)
        else:  # pragma: no cover - log entries only carry the three ops
            raise ValueError(f"unknown log op {entry.op!r}")
        applied += 1
    return applied
