"""IXP edge routers.

An edge router serves a set of member ports, owns the TCAM that backs its
QoS policies, and exposes a control plane whose CPU budget limits the
configuration update rate (paper §5.1).  Rule installation goes through the
router so TCAM accounting and update-rate accounting stay consistent.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional, Union

from ..traffic.flow import FlowRecord
from ..traffic.flowtable import FlowTable
from .control_plane import ControlPlaneCpuModel
from .hardware_profiles import HardwareProfile, l_ixp_edge_router_profile
from .member import IxpMember
from .port import MemberPort
from .qos import PortQosResult, QosRule
from .tcam import TcamExhaustedError, TcamModel, TcamStatus


class PortNotFoundError(KeyError):
    """Raised when traffic or configuration targets an unknown member port."""


@dataclass
class RuleInstallation:
    """Book-keeping for an installed rule (needed to release TCAM on removal)."""

    rule: QosRule
    port_id: int
    mac_filters: int
    l3l4_criteria: int


class EdgeRouter:
    """One edge router of the IXP's distributed switching platform."""

    def __init__(
        self,
        name: str,
        profile: Optional[HardwareProfile] = None,
        pop: str = "pop-1",
        seed: int | None = None,
    ) -> None:
        self.name = name
        self.pop = pop
        self.profile = profile if profile is not None else l_ixp_edge_router_profile()
        self.tcam: TcamModel = self.profile.make_tcam()
        self.cpu: ControlPlaneCpuModel = self.profile.make_cpu_model(seed=seed)
        self._ports_by_asn: dict[int, MemberPort] = {}
        # Keyed by (port_id, rule_id): rule ids are scoped to one member
        # port's policy, so the same id on two ports of this router is two
        # independent installations, not a replacement.
        self._installations: dict[tuple[int, str], RuleInstallation] = {}
        self._next_port_id = 1
        #: Total number of configuration (rule add/remove) operations applied.
        self.config_operations = 0

    # ------------------------------------------------------------------
    # Port management
    # ------------------------------------------------------------------
    def connect_member(self, member: IxpMember) -> MemberPort:
        """Attach a member to the next free port."""
        if member.asn in self._ports_by_asn:
            return self._ports_by_asn[member.asn]
        if len(self._ports_by_asn) >= self.profile.port_count:
            raise RuntimeError(
                f"edge router {self.name} has no free ports "
                f"(capacity {self.profile.port_count})"
            )
        port = MemberPort(member=member, port_id=self._next_port_id)
        self._next_port_id += 1
        self._ports_by_asn[member.asn] = port
        return port

    def port_for(self, member_asn: int) -> MemberPort:
        try:
            return self._ports_by_asn[member_asn]
        except KeyError as exc:
            raise PortNotFoundError(
                f"no port for AS{member_asn} on edge router {self.name}"
            ) from exc

    def has_member(self, member_asn: int) -> bool:
        return member_asn in self._ports_by_asn

    def ports(self) -> list[MemberPort]:
        return list(self._ports_by_asn.values())

    @property
    def member_asns(self) -> set[int]:
        return set(self._ports_by_asn)

    # ------------------------------------------------------------------
    # Configuration (consumes TCAM + control-plane budget)
    # ------------------------------------------------------------------
    def install_rule(self, member_asn: int, rule: QosRule) -> TcamStatus:
        """Install a QoS rule on a member's egress port.

        Returns :data:`TcamStatus.OK` on success; raises
        :class:`TcamExhaustedError` when the hardware limits are exceeded.
        """
        port = self.port_for(member_asn)
        mac_filters = rule.match.mac_filter_entries
        l3l4 = rule.match.l3l4_criteria
        if rule.rule_id and (port.port_id, rule.rule_id) in self._installations:
            # Replacing an existing rule on this port: release the old
            # footprint first.
            self.remove_rule(member_asn, rule.rule_id)
        self.tcam.allocate(port.port_id, mac_filters, l3l4)
        port.install_rule(rule)
        if rule.rule_id:
            self._installations[(port.port_id, rule.rule_id)] = RuleInstallation(
                rule=rule, port_id=port.port_id, mac_filters=mac_filters, l3l4_criteria=l3l4
            )
        self.config_operations += 1
        return TcamStatus.OK

    def install_rules(self, member_asn: int, rules: Sequence[QosRule]) -> TcamStatus:
        """Install a batch of rules on one member port in a single pass.

        TCAM is allocated (and replaced ids released) rule by rule, so the
        accounting equals sequential :meth:`install_rule` calls, but the
        port policy ingests the batch through
        :meth:`~repro.ixp.qos.PortQosPolicy.install_many` — one re-sort
        and one rule-set version bump instead of one per rule, which is
        what makes staging tens of thousands of fine-grained rules
        tractable.
        """
        port = self.port_for(member_asn)
        rules = list(rules)
        allocated = 0
        try:
            for rule in rules:
                mac_filters = rule.match.mac_filter_entries
                l3l4 = rule.match.l3l4_criteria
                # Replacements release the old footprint directly (the
                # data-plane side is handled by install_many's same-id
                # replacement) — going through remove_rule here would cost
                # one full policy re-sort per replaced rule.
                old = (
                    self._installations.pop((port.port_id, rule.rule_id), None)
                    if rule.rule_id
                    else None
                )
                if old is not None:
                    self.tcam.release(
                        old.port_id, old.mac_filters, old.l3l4_criteria
                    )
                try:
                    self.tcam.allocate(port.port_id, mac_filters, l3l4)
                except Exception:
                    if old is not None and port.qos.remove(rule.rule_id):
                        # Sequential install_rule removes the replaced rule
                        # from the data plane before the failing allocate.
                        self.config_operations += 1
                    raise
                if old is not None:
                    self.config_operations += 1
                allocated += 1
                if rule.rule_id:
                    self._installations[(port.port_id, rule.rule_id)] = RuleInstallation(
                        rule=rule,
                        port_id=port.port_id,
                        mac_filters=mac_filters,
                        l3l4_criteria=l3l4,
                    )
        finally:
            # On TCAM exhaustion mid-batch, the rules allocated so far must
            # still reach the data plane — exactly where sequential
            # install_rule calls would have left the router.
            if allocated:
                port.qos.install_many(rules[:allocated])
                self.config_operations += allocated
        return TcamStatus.OK

    def remove_rule(self, member_asn: int, rule_id: str) -> bool:
        """Remove a rule and release its TCAM footprint."""
        port = self.port_for(member_asn)
        removed = port.remove_rule(rule_id)
        installation = self._installations.pop((port.port_id, rule_id), None)
        if installation is not None:
            self.tcam.release(
                installation.port_id,
                installation.mac_filters,
                installation.l3l4_criteria,
            )
        if removed:
            self.config_operations += 1
        return removed

    def clear_rules(self, member_asn: int) -> int:
        """Remove every rule on a member's port and release its TCAM.

        The TCAM pool is released wholesale via ``release_port``, which
        also frees the footprint of anonymous (id-less) rules that never
        got a :class:`RuleInstallation` record — going through per-rule
        :meth:`remove_rule` calls would leak those.  Returns the number of
        rules removed; clearing an empty port is a no-op (no config
        operations, no policy version bump).
        """
        port = self.port_for(member_asn)
        removed = len(port.qos)
        port.qos.clear()
        self.tcam.release_port(port.port_id)
        self._installations = {
            key: installation
            for key, installation in self._installations.items()
            if installation.port_id != port.port_id
        }
        self.config_operations += removed
        return removed

    def check_capacity(self, rule: QosRule) -> TcamStatus:
        """Feasibility check without installing (used by admission control)."""
        return self.tcam.check(rule.match.mac_filter_entries, rule.match.l3l4_criteria)

    def installed_rules(self) -> list[QosRule]:
        return [installation.rule for installation in self._installations.values()]

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def deliver(
        self,
        flows_by_member: dict[int, Union[Sequence[FlowRecord], FlowTable]],
        interval: float,
        interval_start: float = 0.0,
    ) -> dict[int, PortQosResult]:
        """Deliver one interval of egress traffic, per destination member."""
        results: dict[int, PortQosResult] = {}
        for member_asn, flows in flows_by_member.items():
            port = self.port_for(member_asn)
            results[member_asn] = port.deliver(flows, interval, interval_start)
        return results

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def cpu_usage_for_rate(self, updates_per_second: float) -> float:
        """Noisy CPU-usage measurement for a configuration update rate."""
        return self.cpu.measure_usage(updates_per_second)

    def max_sustainable_update_rate(self) -> float:
        """Update rate that saturates the configuration CPU budget."""
        return self.cpu.max_update_rate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EdgeRouter({self.name}, pop={self.pop}, "
            f"ports={len(self._ports_by_asn)}/{self.profile.port_count})"
        )
