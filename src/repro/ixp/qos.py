"""QoS classification and queueing (the filtering layer's data plane).

Stellar's filtering layer compiles blackholing rules into per-member-port
QoS policies (paper §4.5, Fig. 8).  Each policy classifies the packet
stream leaving the IXP towards the member into one of three actions:

* ``DROP`` — redirect to a zero-length queue (immediate discard),
* ``SHAPE`` — pass through a shaping queue with a configurable rate (used
  for telemetry: the victim still sees a bounded sample of the attack),
* ``FORWARD`` — the default; enqueue on the member port's egress queue,
  which is itself limited by the port capacity.

The reproduction models this at flow level per observation interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from ..bgp.prefix import Prefix, parse_prefix
from ..traffic.flow import FlowRecord
from ..traffic.packet import IpProtocol
from .queues import RateLimiter


class FilterAction(Enum):
    """What happens to traffic matching a classification rule."""

    DROP = "drop"
    SHAPE = "shape"
    FORWARD = "forward"


@dataclass(frozen=True)
class FlowMatch:
    """L2–L4 match criteria of a classification rule.

    Every field is optional; ``None`` means "any".  The resource footprint
    properties report how many TCAM entries of each pool a rule with this
    match consumes (one MAC entry if a MAC is matched; one L3–L4 criterion
    per L3/L4 field).
    """

    dst_prefix: Optional[Prefix] = None
    src_prefix: Optional[Prefix] = None
    src_mac: Optional[str] = None
    protocol: Optional[IpProtocol] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("src_port", "dst_port"):
            port = getattr(self, name)
            if port is not None and not 0 <= port <= 65535:
                raise ValueError(f"{name} must be a valid L4 port, got {port}")

    # ------------------------------------------------------------------
    @property
    def mac_filter_entries(self) -> int:
        """MAC (L2) TCAM entries consumed by this match."""
        return 1 if self.src_mac is not None else 0

    @property
    def l3l4_criteria(self) -> int:
        """L3–L4 TCAM criteria consumed by this match."""
        return sum(
            1
            for value in (
                self.dst_prefix,
                self.src_prefix,
                self.protocol,
                self.src_port,
                self.dst_port,
            )
            if value is not None
        )

    @property
    def is_catch_all(self) -> bool:
        """True if the match has no criteria at all (matches everything)."""
        return self.mac_filter_entries == 0 and self.l3l4_criteria == 0

    # ------------------------------------------------------------------
    def matches(self, flow: FlowRecord) -> bool:
        """Check a flow record against the criteria."""
        if self.dst_prefix is not None and not self.dst_prefix.contains_address(flow.dst_ip):
            return False
        if self.src_prefix is not None and not self.src_prefix.contains_address(flow.src_ip):
            return False
        if self.src_mac is not None and flow.src_mac.lower() != self.src_mac.lower():
            return False
        if self.protocol is not None and flow.protocol != self.protocol:
            return False
        if self.src_port is not None and flow.src_port != self.src_port:
            return False
        if self.dst_port is not None and flow.dst_port != self.dst_port:
            return False
        return True

    @property
    def specificity(self) -> int:
        """More specific matches win when several rules match a flow."""
        score = self.l3l4_criteria + self.mac_filter_entries
        if self.dst_prefix is not None:
            score += self.dst_prefix.length / 128
        if self.src_prefix is not None:
            score += self.src_prefix.length / 128
        return int(score * 1000)


@dataclass(frozen=True)
class QosRule:
    """One classification rule: match criteria + action (+ shaping rate)."""

    match: FlowMatch
    action: FilterAction
    #: Only meaningful for SHAPE: the shaping rate in bits per second.
    shape_rate_bps: float = 0.0
    #: Identifier of the blackholing rule this was compiled from (telemetry).
    rule_id: str = ""

    def __post_init__(self) -> None:
        if self.action is FilterAction.SHAPE and self.shape_rate_bps <= 0:
            raise ValueError("SHAPE rules require a positive shape_rate_bps")
        if self.action is not FilterAction.SHAPE and self.shape_rate_bps:
            raise ValueError("shape_rate_bps is only valid for SHAPE rules")


@dataclass
class PortQosResult:
    """Outcome of pushing one interval of traffic through a port's QoS policy."""

    forwarded: List[FlowRecord] = field(default_factory=list)
    dropped: List[FlowRecord] = field(default_factory=list)
    shaped: List[FlowRecord] = field(default_factory=list)
    forwarded_bits: float = 0.0
    dropped_bits: float = 0.0
    shaped_passed_bits: float = 0.0
    shaped_dropped_bits: float = 0.0
    congestion_dropped_bits: float = 0.0

    @property
    def delivered_bits(self) -> float:
        """Bits actually delivered to the member (forwarded + shaped that passed)."""
        return self.forwarded_bits + self.shaped_passed_bits

    @property
    def total_dropped_bits(self) -> float:
        return self.dropped_bits + self.shaped_dropped_bits + self.congestion_dropped_bits


class PortQosPolicy:
    """The QoS policy configured on one member (egress) port."""

    def __init__(self, port_capacity_bps: float) -> None:
        if port_capacity_bps <= 0:
            raise ValueError("port capacity must be positive")
        self.port_capacity_bps = port_capacity_bps
        self._rules: List[QosRule] = []
        self._shapers: Dict[str, RateLimiter] = {}

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------
    def install(self, rule: QosRule) -> None:
        """Install a rule (replacing any existing rule with the same id)."""
        if rule.rule_id:
            self._rules = [
                existing for existing in self._rules if existing.rule_id != rule.rule_id
            ]
            self._shapers.pop(rule.rule_id, None)
        self._rules.append(rule)
        if rule.action is FilterAction.SHAPE:
            shaper_key = rule.rule_id or f"anon-{len(self._rules)}"
            self._shapers[shaper_key] = RateLimiter(rate_bps=rule.shape_rate_bps)

    def remove(self, rule_id: str) -> bool:
        """Remove the rule with the given id.  Returns True if found."""
        before = len(self._rules)
        self._rules = [rule for rule in self._rules if rule.rule_id != rule_id]
        self._shapers.pop(rule_id, None)
        return len(self._rules) != before

    def rules(self) -> List[QosRule]:
        return list(self._rules)

    def clear(self) -> None:
        self._rules.clear()
        self._shapers.clear()

    def __len__(self) -> int:
        return len(self._rules)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify(self, flow: FlowRecord) -> QosRule | None:
        """Return the most specific matching rule, or ``None`` (forward)."""
        matching = [rule for rule in self._rules if rule.match.matches(flow)]
        if not matching:
            return None
        return max(matching, key=lambda rule: rule.match.specificity)

    def apply(self, flows: Sequence[FlowRecord], interval: float) -> PortQosResult:
        """Push one observation interval of traffic through the policy."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        result = PortQosResult()
        shaped_by_rule: Dict[str, List[FlowRecord]] = {}

        for flow in flows:
            rule = self.classify(flow)
            if rule is None or rule.action is FilterAction.FORWARD:
                result.forwarded.append(flow)
                result.forwarded_bits += flow.bits
            elif rule.action is FilterAction.DROP:
                result.dropped.append(flow)
                result.dropped_bits += flow.bits
            else:  # SHAPE
                key = rule.rule_id or "anon"
                shaped_by_rule.setdefault(key, []).append(flow)

        # Shaping queues: the flows matching one shaping rule share that
        # rule's rate limit (paper §5.2).
        for key, shaped_flows in shaped_by_rule.items():
            shaper = self._shapers.get(key)
            offered_bits = sum(flow.bits for flow in shaped_flows)
            if shaper is None:
                passed_bits, dropped_bits = float(offered_bits), 0.0
            else:
                passed_bits, dropped_bits = shaper.shape(offered_bits, interval)
            scale = passed_bits / offered_bits if offered_bits > 0 else 0.0
            result.shaped.extend(flow.scaled(scale) for flow in shaped_flows)
            result.shaped_passed_bits += passed_bits
            result.shaped_dropped_bits += dropped_bits

        # Egress queue: forwarded + shaped traffic shares the port capacity;
        # anything beyond it is congestion loss at the member port.
        capacity_bits = self.port_capacity_bps * interval
        delivered = result.forwarded_bits + result.shaped_passed_bits
        if delivered > capacity_bits:
            result.congestion_dropped_bits = delivered - capacity_bits
            overload = capacity_bits / delivered if delivered > 0 else 0.0
            result.forwarded_bits *= overload
            result.shaped_passed_bits *= overload
        return result
