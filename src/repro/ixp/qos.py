"""QoS classification and queueing (the filtering layer's data plane).

Stellar's filtering layer compiles blackholing rules into per-member-port
QoS policies (paper §4.5, Fig. 8).  Each policy classifies the packet
stream leaving the IXP towards the member into one of three actions:

* ``DROP`` — redirect to a zero-length queue (immediate discard),
* ``SHAPE`` — pass through a shaping queue with a configurable rate (used
  for telemetry: the victim still sees a bounded sample of the attack),
* ``FORWARD`` — the default; enqueue on the member port's egress queue,
  which is itself limited by the port capacity.

The reproduction models this at flow level per observation interval.  The
policy accepts both representations of an interval's traffic: a sequence of
:class:`FlowRecord` objects (classified flow by flow) or a columnar
:class:`~repro.traffic.flowtable.FlowTable`, which is classified with
vectorized column matchers — the fast path the attack experiments run on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..bgp.prefix import Prefix, parse_prefix
from ..traffic.flow import FlowRecord
from ..traffic.flowtable import FlowTable, derived_mac, ingress_peers, population_bits
from ..traffic.packet import IpProtocol
from .queues import RateLimiter


class FilterAction(Enum):
    """What happens to traffic matching a classification rule."""

    DROP = "drop"
    SHAPE = "shape"
    FORWARD = "forward"


@dataclass(frozen=True)
class FlowMatch:
    """L2–L4 match criteria of a classification rule.

    Every field is optional; ``None`` means "any".  The resource footprint
    properties report how many TCAM entries of each pool a rule with this
    match consumes (one MAC entry if a MAC is matched; one L3–L4 criterion
    per L3/L4 field).
    """

    dst_prefix: Optional[Prefix] = None
    src_prefix: Optional[Prefix] = None
    src_mac: Optional[str] = None
    protocol: Optional[IpProtocol] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("src_port", "dst_port"):
            port = getattr(self, name)
            if port is not None and not 0 <= port <= 65535:
                raise ValueError(f"{name} must be a valid L4 port, got {port}")

    # ------------------------------------------------------------------
    @property
    def mac_filter_entries(self) -> int:
        """MAC (L2) TCAM entries consumed by this match."""
        return 1 if self.src_mac is not None else 0

    @property
    def l3l4_criteria(self) -> int:
        """L3–L4 TCAM criteria consumed by this match."""
        return sum(
            1
            for value in (
                self.dst_prefix,
                self.src_prefix,
                self.protocol,
                self.src_port,
                self.dst_port,
            )
            if value is not None
        )

    @property
    def is_catch_all(self) -> bool:
        """True if the match has no criteria at all (matches everything)."""
        return self.mac_filter_entries == 0 and self.l3l4_criteria == 0

    # ------------------------------------------------------------------
    def matches(self, flow: FlowRecord) -> bool:
        """Check a flow record against the criteria."""
        if self.dst_prefix is not None and not self.dst_prefix.contains_address(flow.dst_ip):
            return False
        if self.src_prefix is not None and not self.src_prefix.contains_address(flow.src_ip):
            return False
        if self.src_mac is not None and flow.src_mac.lower() != self.src_mac.lower():
            return False
        if self.protocol is not None and flow.protocol != self.protocol:
            return False
        if self.src_port is not None and flow.src_port != self.src_port:
            return False
        if self.dst_port is not None and flow.dst_port != self.dst_port:
            return False
        return True

    def matches_table(self, table: FlowTable) -> np.ndarray:
        """Vectorized :meth:`matches` over a columnar flow batch."""
        n = len(table)
        mask = np.ones(n, dtype=bool)
        for prefix, column in ((self.dst_prefix, table.dst_ip), (self.src_prefix, table.src_ip)):
            if prefix is None:
                continue
            if prefix.version != 4:
                return np.zeros(n, dtype=bool)
            low, high = prefix.int_bounds
            mask &= (column >= low) & (column <= high)
        if self.src_mac is not None:
            target = self.src_mac.lower()
            if table.src_mac is None:
                # Generator-produced tables carry the derived-MAC convention,
                # so a MAC match reduces to an ingress-ASN membership test.
                unique = np.unique(table.ingress_asn)
                matching = [asn for asn in unique.tolist() if derived_mac(asn) == target]
                mask &= np.isin(table.ingress_asn, matching)
            else:
                mask &= np.fromiter(
                    (mac.lower() == target for mac in table.src_mac), dtype=bool, count=n
                )
        if self.protocol is not None:
            mask &= table.protocol == int(self.protocol)
        if self.src_port is not None:
            mask &= table.src_port == self.src_port
        if self.dst_port is not None:
            mask &= table.dst_port == self.dst_port
        return mask

    @property
    def specificity(self) -> int:
        """More specific matches win when several rules match a flow."""
        score = self.l3l4_criteria + self.mac_filter_entries
        if self.dst_prefix is not None:
            score += self.dst_prefix.length / 128
        if self.src_prefix is not None:
            score += self.src_prefix.length / 128
        return int(score * 1000)


@dataclass(frozen=True)
class QosRule:
    """One classification rule: match criteria + action (+ shaping rate)."""

    match: FlowMatch
    action: FilterAction
    #: Only meaningful for SHAPE: the shaping rate in bits per second.
    shape_rate_bps: float = 0.0
    #: Identifier of the blackholing rule this was compiled from (telemetry).
    rule_id: str = ""

    def __post_init__(self) -> None:
        if self.action is FilterAction.SHAPE and self.shape_rate_bps <= 0:
            raise ValueError("SHAPE rules require a positive shape_rate_bps")
        if self.action is not FilterAction.SHAPE and self.shape_rate_bps:
            raise ValueError("shape_rate_bps is only valid for SHAPE rules")


class PortQosResult:
    """Outcome of pushing one interval of traffic through a port's QoS policy.

    The per-action flow populations are available both as columnar tables
    (``forwarded_table`` etc., when the vectorized path produced them) and
    as lazily materialised record lists (``forwarded`` etc.), so legacy
    consumers keep working while the hot paths stay columnar.
    ``rule_stats`` attributes matched/dropped/shaped bits to the rule id
    that classified them, which is what the telemetry layer reports.

    ``table_source`` defers the columnar views themselves: the batched
    fabric delivery engine accounts for hundreds of ports per interval and
    hands each result a callable producing ``(forwarded, dropped, shaped)``
    tables, which only runs if a consumer actually asks for a per-flow
    view — the bit counters and ``rule_stats`` are always eager.
    """

    def __init__(
        self,
        forwarded: Optional[List[FlowRecord]] = None,
        dropped: Optional[List[FlowRecord]] = None,
        shaped: Optional[List[FlowRecord]] = None,
        forwarded_bits: float = 0.0,
        dropped_bits: float = 0.0,
        shaped_passed_bits: float = 0.0,
        shaped_dropped_bits: float = 0.0,
        congestion_dropped_bits: float = 0.0,
        forwarded_table: Optional[FlowTable] = None,
        dropped_table: Optional[FlowTable] = None,
        shaped_table: Optional[FlowTable] = None,
        rule_stats: Optional[Dict[str, Dict[str, float]]] = None,
        table_source: Optional[
            Callable[[], tuple[FlowTable, FlowTable, FlowTable]]
        ] = None,
    ) -> None:
        self._forwarded = forwarded
        self._dropped = dropped
        self._shaped = shaped
        self._forwarded_table = forwarded_table
        self._dropped_table = dropped_table
        self._shaped_table = shaped_table
        self._table_source = table_source
        self.forwarded_bits = forwarded_bits
        self.dropped_bits = dropped_bits
        self.shaped_passed_bits = shaped_passed_bits
        self.shaped_dropped_bits = shaped_dropped_bits
        self.congestion_dropped_bits = congestion_dropped_bits
        self.rule_stats: Dict[str, Dict[str, float]] = (
            rule_stats if rule_stats is not None else {}
        )

    # ------------------------------------------------------------------
    # Columnar views (lazy when a table_source was deferred)
    # ------------------------------------------------------------------
    def _materialise_tables(self) -> None:
        if self._table_source is not None:
            source, self._table_source = self._table_source, None
            self._forwarded_table, self._dropped_table, self._shaped_table = source()

    @property
    def forwarded_table(self) -> Optional[FlowTable]:
        self._materialise_tables()
        return self._forwarded_table

    @forwarded_table.setter
    def forwarded_table(self, table: Optional[FlowTable]) -> None:
        self._forwarded_table = table

    @property
    def dropped_table(self) -> Optional[FlowTable]:
        self._materialise_tables()
        return self._dropped_table

    @dropped_table.setter
    def dropped_table(self, table: Optional[FlowTable]) -> None:
        self._dropped_table = table

    @property
    def shaped_table(self) -> Optional[FlowTable]:
        self._materialise_tables()
        return self._shaped_table

    @shaped_table.setter
    def shaped_table(self, table: Optional[FlowTable]) -> None:
        self._shaped_table = table

    # ------------------------------------------------------------------
    # Record views (lazy when columnar tables are present)
    # ------------------------------------------------------------------
    @property
    def forwarded(self) -> List[FlowRecord]:
        if self._forwarded is None:
            self._forwarded = (
                self.forwarded_table.to_records() if self.forwarded_table is not None else []
            )
        return self._forwarded

    @property
    def dropped(self) -> List[FlowRecord]:
        if self._dropped is None:
            self._dropped = (
                self.dropped_table.to_records() if self.dropped_table is not None else []
            )
        return self._dropped

    @property
    def shaped(self) -> List[FlowRecord]:
        if self._shaped is None:
            self._shaped = (
                self.shaped_table.to_records() if self.shaped_table is not None else []
            )
        return self._shaped

    # ------------------------------------------------------------------
    @property
    def delivered_bits(self) -> float:
        """Bits actually delivered to the member (forwarded + shaped that passed)."""
        return self.forwarded_bits + self.shaped_passed_bits

    @property
    def total_dropped_bits(self) -> float:
        return self.dropped_bits + self.shaped_dropped_bits + self.congestion_dropped_bits

    # ------------------------------------------------------------------
    # Columnar-aware summaries (used by the experiment drivers)
    # ------------------------------------------------------------------
    def delivered_peer_asns(self) -> set[int]:
        """Distinct ingress members whose traffic still reaches the member."""
        return ingress_peers(self.forwarded_table, self._forwarded) | ingress_peers(
            self.shaped_table, self._shaped, positive_bytes=True
        )

    def delivered_attack_bits(self) -> float:
        """Attack bits among forwarded + shaped traffic (pre-congestion)."""
        return population_bits(
            self.forwarded_table, self._forwarded, attack=True
        ) + population_bits(self.shaped_table, self._shaped, attack=True)


class PortQosPolicy:
    """The QoS policy configured on one member (egress) port."""

    def __init__(self, port_capacity_bps: float) -> None:
        if port_capacity_bps <= 0:
            raise ValueError("port capacity must be positive")
        self.port_capacity_bps = port_capacity_bps
        self._rules: List[QosRule] = []
        self._sorted_rules: List[QosRule] = []
        self._shapers: Dict[str, RateLimiter] = {}

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------
    def _resort(self) -> None:
        # Stable sort: ties keep installation order, so the first match in
        # sorted order equals the most specific (earliest-installed) rule.
        self._sorted_rules = sorted(
            self._rules, key=lambda rule: rule.match.specificity, reverse=True
        )

    def install(self, rule: QosRule) -> None:
        """Install a rule (replacing any existing rule with the same id)."""
        if rule.rule_id:
            self._rules = [
                existing for existing in self._rules if existing.rule_id != rule.rule_id
            ]
            self._shapers.pop(rule.rule_id, None)
        self._rules.append(rule)
        if rule.action is FilterAction.SHAPE:
            # Anonymous shape rules share the "anon" shaper, matching how
            # apply() groups their traffic.
            shaper_key = rule.rule_id or "anon"
            self._shapers[shaper_key] = RateLimiter(rate_bps=rule.shape_rate_bps)
        self._resort()

    def remove(self, rule_id: str) -> bool:
        """Remove the rule with the given id.  Returns True if found."""
        before = len(self._rules)
        self._rules = [rule for rule in self._rules if rule.rule_id != rule_id]
        self._shapers.pop(rule_id, None)
        self._resort()
        return len(self._rules) != before

    def rules(self) -> List[QosRule]:
        return list(self._rules)

    def sorted_rules(self) -> List[QosRule]:
        """The rules in classification (most-specific-first) order.

        The batched fabric delivery engine compiles these into its
        platform-level rule set; the order is exactly the order
        :meth:`classify` / ``_apply_table`` evaluate them in.
        """
        return list(self._sorted_rules)

    def shaper_for(self, key: str) -> Optional[RateLimiter]:
        """The stateful shaper behind a SHAPE rule id (``"anon"`` for
        anonymous shape rules), shared with the batched delivery engine so
        both engines drain the same token state."""
        return self._shapers.get(key)

    def clear(self) -> None:
        self._rules.clear()
        self._sorted_rules.clear()
        self._shapers.clear()

    def __len__(self) -> int:
        return len(self._rules)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify(self, flow: FlowRecord) -> QosRule | None:
        """Return the most specific matching rule, or ``None`` (forward)."""
        for rule in self._sorted_rules:
            if rule.match.matches(flow):
                return rule
        return None

    def apply(
        self, flows: Union[Sequence[FlowRecord], FlowTable], interval: float
    ) -> PortQosResult:
        """Push one observation interval of traffic through the policy."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if isinstance(flows, FlowTable):
            return self._apply_table(flows, interval)
        return self._apply_records(flows, interval)

    # ------------------------------------------------------------------
    def _apply_records(self, flows: Sequence[FlowRecord], interval: float) -> PortQosResult:
        result = PortQosResult(forwarded=[], dropped=[], shaped=[])
        shaped_by_rule: Dict[str, List[FlowRecord]] = {}
        shaped_assignment: Dict[str, List[QosRule]] = {}

        def stats_for(rule: QosRule) -> Dict[str, float]:
            return result.rule_stats.setdefault(
                rule.rule_id, {"matched": 0.0, "dropped": 0.0, "shaped": 0.0}
            )

        for flow in flows:
            rule = self.classify(flow)
            if rule is None or rule.action is FilterAction.FORWARD:
                result.forwarded.append(flow)
                result.forwarded_bits += flow.bits
            elif rule.action is FilterAction.DROP:
                result.dropped.append(flow)
                result.dropped_bits += flow.bits
                stats = stats_for(rule)
                stats["matched"] += flow.bits
                stats["dropped"] += flow.bits
            else:  # SHAPE
                key = rule.rule_id or "anon"
                shaped_by_rule.setdefault(key, []).append(flow)
                shaped_assignment.setdefault(key, []).append(rule)

        # Shaping queues: the flows matching one shaping rule share that
        # rule's rate limit (paper §5.2).
        for key, shaped_flows in shaped_by_rule.items():
            shaper = self._shapers.get(key)
            offered_bits = sum(flow.bits for flow in shaped_flows)
            if shaper is None:
                passed_bits, dropped_bits = float(offered_bits), 0.0
            else:
                passed_bits, dropped_bits = shaper.shape(offered_bits, interval)
            scale = passed_bits / offered_bits if offered_bits > 0 else 0.0
            for flow, rule in zip(shaped_flows, shaped_assignment[key]):
                scaled = flow.scaled(scale)
                result.shaped.append(scaled)
                stats = stats_for(rule)
                stats["matched"] += scaled.bits
                stats["shaped"] += scaled.bits
            result.shaped_passed_bits += passed_bits
            result.shaped_dropped_bits += dropped_bits

        self.apply_congestion(result, interval)
        return result

    def _apply_table(self, table: FlowTable, interval: float) -> PortQosResult:
        n = len(table)
        rule_stats: Dict[str, Dict[str, float]] = {}
        if not self._sorted_rules or n == 0:
            result = PortQosResult(
                forwarded_table=table,
                dropped_table=FlowTable.empty(),
                shaped_table=FlowTable.empty(),
                forwarded_bits=float(table.total_bits),
                rule_stats=rule_stats,
            )
            self.apply_congestion(result, interval)
            return result

        # Assign each row to its most specific matching rule (rules are kept
        # sorted by specificity, so the first rule to claim a row wins).
        assigned = np.full(n, -1, dtype=np.int32)
        unmatched = np.ones(n, dtype=bool)
        for index, rule in enumerate(self._sorted_rules):
            if not unmatched.any():
                break
            claimed = rule.match.matches_table(table) & unmatched
            assigned[claimed] = index
            unmatched &= ~claimed

        bits = table.bits
        forward_mask = assigned < 0
        drop_mask = np.zeros(n, dtype=bool)
        shape_groups: Dict[str, List[int]] = {}

        def stats_for(rule: QosRule) -> Dict[str, float]:
            return rule_stats.setdefault(
                rule.rule_id, {"matched": 0.0, "dropped": 0.0, "shaped": 0.0}
            )

        for index, rule in enumerate(self._sorted_rules):
            selected = assigned == index
            if not selected.any():
                continue
            if rule.action is FilterAction.FORWARD:
                forward_mask |= selected
            elif rule.action is FilterAction.DROP:
                drop_mask |= selected
                matched_bits = float(bits[selected].sum())
                stats = stats_for(rule)
                stats["matched"] += matched_bits
                stats["dropped"] += matched_bits
            else:  # SHAPE — group rules sharing a shaper key, as in the record path.
                shape_groups.setdefault(rule.rule_id or "anon", []).append(index)

        shaped_tables: List[FlowTable] = []
        shaped_passed = 0.0
        shaped_dropped = 0.0
        for key, rule_indices in shape_groups.items():
            group_mask = np.isin(assigned, rule_indices)
            offered_bits = float(bits[group_mask].sum())
            shaper = self._shapers.get(key)
            if shaper is None:
                passed_bits, dropped_bits = offered_bits, 0.0
            else:
                passed_bits, dropped_bits = shaper.shape(offered_bits, interval)
            scale = passed_bits / offered_bits if offered_bits > 0 else 0.0
            scaled = table.select(group_mask).scaled(scale)
            shaped_tables.append(scaled)
            scaled_bits = scaled.bits
            group_assigned = assigned[group_mask]
            for index in rule_indices:
                rule_bits = float(scaled_bits[group_assigned == index].sum())
                stats = stats_for(self._sorted_rules[index])
                stats["matched"] += rule_bits
                stats["shaped"] += rule_bits
            shaped_passed += passed_bits
            shaped_dropped += dropped_bits

        result = PortQosResult(
            forwarded_table=table.select(forward_mask),
            dropped_table=table.select(drop_mask),
            shaped_table=FlowTable.concat(shaped_tables) if shaped_tables else FlowTable.empty(),
            forwarded_bits=float(bits[forward_mask].sum()),
            dropped_bits=float(bits[drop_mask].sum()),
            shaped_passed_bits=shaped_passed,
            shaped_dropped_bits=shaped_dropped,
            rule_stats=rule_stats,
        )
        self.apply_congestion(result, interval)
        return result

    def apply_congestion(self, result: PortQosResult, interval: float) -> None:
        # Egress queue: forwarded + shaped traffic shares the port capacity;
        # anything beyond it is congestion loss at the member port.
        capacity_bits = self.port_capacity_bps * interval
        delivered = result.forwarded_bits + result.shaped_passed_bits
        if delivered > capacity_bits:
            result.congestion_dropped_bits = delivered - capacity_bits
            overload = capacity_bits / delivered if delivered > 0 else 0.0
            result.forwarded_bits *= overload
            result.shaped_passed_bits *= overload
