"""QoS classification and queueing (the filtering layer's data plane).

Stellar's filtering layer compiles blackholing rules into per-member-port
QoS policies (paper §4.5, Fig. 8).  Each policy classifies the packet
stream leaving the IXP towards the member into one of three actions:

* ``DROP`` — redirect to a zero-length queue (immediate discard),
* ``SHAPE`` — pass through a shaping queue with a configurable rate (used
  for telemetry: the victim still sees a bounded sample of the attack),
* ``FORWARD`` — the default; enqueue on the member port's egress queue,
  which is itself limited by the port capacity.

The reproduction models this at flow level per observation interval.  The
policy accepts both representations of an interval's traffic: a sequence of
:class:`FlowRecord` objects (classified flow by flow) or a columnar
:class:`~repro.traffic.flowtable.FlowTable`, which is classified with
vectorized column matchers — the fast path the attack experiments run on.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, replace
from enum import Enum
from typing import Optional, Union

import numpy as np

from ..bgp.prefix import Prefix, parse_prefix
from ..traffic.flow import FlowRecord
from ..traffic.flowtable import (
    FlowTable,
    derived_mac,
    ingress_peers,
    population_bits,
    prefix_mask,
)
from ..traffic.packet import IpProtocol
from .queues import RateLimiter
from .ruleindex import RuleMatchIndex

#: Classification engines :meth:`PortQosPolicy.assign_table` can run:
#: ``"indexed"`` (the default) classifies through the compiled
#: :class:`~repro.ixp.ruleindex.RuleMatchIndex`; ``"per-rule"`` is the
#: parity-tested fallback running one vectorized match pass per rule.
CLASSIFICATION_ENGINES = ("indexed", "per-rule")

#: Journal entries kept between compiles.  A cached index older than the
#: journal's reach is recompiled from scratch; 64 entries comfortably
#: covers the control-plane service's per-drain churn while bounding how
#: many splices one :meth:`PortQosPolicy.compiled_index` call can replay.
_JOURNAL_LIMIT = 64

#: Largest :meth:`PortQosPolicy.install_many` batch maintained as splices.
#: Past this, one full re-sort + recompile is cheaper than per-rule
#: insertion — the staging path for tens of thousands of rules keeps its
#: O(R log R) bulk behaviour.
_BATCH_DELTA_LIMIT = 32


class FilterAction(Enum):
    """What happens to traffic matching a classification rule."""

    DROP = "drop"
    SHAPE = "shape"
    FORWARD = "forward"


@dataclass(frozen=True)
class FlowMatch:
    """L2–L4 match criteria of a classification rule.

    Every field is optional; ``None`` means "any".  The resource footprint
    properties report how many TCAM entries of each pool a rule with this
    match consumes (one MAC entry if a MAC is matched; one L3–L4 criterion
    per L3/L4 field).
    """

    dst_prefix: Optional[Prefix] = None
    src_prefix: Optional[Prefix] = None
    src_mac: Optional[str] = None
    protocol: Optional[IpProtocol] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("src_port", "dst_port"):
            port = getattr(self, name)
            if port is not None and not 0 <= port <= 65535:
                raise ValueError(f"{name} must be a valid L4 port, got {port}")

    # ------------------------------------------------------------------
    @property
    def mac_filter_entries(self) -> int:
        """MAC (L2) TCAM entries consumed by this match."""
        return 1 if self.src_mac is not None else 0

    @property
    def l3l4_criteria(self) -> int:
        """L3–L4 TCAM criteria consumed by this match."""
        return sum(
            1
            for value in (
                self.dst_prefix,
                self.src_prefix,
                self.protocol,
                self.src_port,
                self.dst_port,
            )
            if value is not None
        )

    @property
    def is_catch_all(self) -> bool:
        """True if the match has no criteria at all (matches everything)."""
        return self.mac_filter_entries == 0 and self.l3l4_criteria == 0

    # ------------------------------------------------------------------
    def matches(self, flow: FlowRecord) -> bool:
        """Check a flow record against the criteria."""
        if self.dst_prefix is not None and not self.dst_prefix.contains_address(flow.dst_ip):
            return False
        if self.src_prefix is not None and not self.src_prefix.contains_address(flow.src_ip):
            return False
        if self.src_mac is not None and flow.src_mac.lower() != self.src_mac.lower():
            return False
        if self.protocol is not None and flow.protocol != self.protocol:
            return False
        if self.src_port is not None and flow.src_port != self.src_port:
            return False
        if self.dst_port is not None and flow.dst_port != self.dst_port:
            return False
        return True

    def matches_table(self, table: FlowTable) -> np.ndarray:
        """Vectorized :meth:`matches` over a columnar flow batch."""
        n = len(table)
        mask = np.ones(n, dtype=bool)
        for prefix, column in ((self.dst_prefix, table.dst_ip), (self.src_prefix, table.src_ip)):
            if prefix is None:
                continue
            mask &= prefix_mask(column, prefix)
            if not mask.any():
                return mask
        if self.src_mac is not None:
            target = self.src_mac.lower()
            if table.src_mac is None:
                # Generator-produced tables carry the derived-MAC convention,
                # so a MAC match reduces to an ingress-ASN membership test.
                unique = np.unique(table.ingress_asn)
                matching = [asn for asn in unique.tolist() if derived_mac(asn) == target]
                mask &= np.isin(table.ingress_asn, matching)
            else:
                mask &= np.fromiter(
                    (mac.lower() == target for mac in table.src_mac), dtype=bool, count=n
                )
        if self.protocol is not None:
            mask &= table.protocol == int(self.protocol)
        if self.src_port is not None:
            mask &= table.src_port == self.src_port
        if self.dst_port is not None:
            mask &= table.dst_port == self.dst_port
        return mask

    @property
    def specificity(self) -> int:
        """More specific matches win when several rules match a flow."""
        score = self.l3l4_criteria + self.mac_filter_entries
        if self.dst_prefix is not None:
            score += self.dst_prefix.length / 128
        if self.src_prefix is not None:
            score += self.src_prefix.length / 128
        return int(score * 1000)


@dataclass(frozen=True)
class QosRule:
    """One classification rule: match criteria + action (+ shaping rate)."""

    match: FlowMatch
    action: FilterAction
    #: Only meaningful for SHAPE: the shaping rate in bits per second.
    shape_rate_bps: float = 0.0
    #: Identifier of the blackholing rule this was compiled from (telemetry).
    rule_id: str = ""

    def __post_init__(self) -> None:
        if self.action is FilterAction.SHAPE and self.shape_rate_bps <= 0:
            raise ValueError("SHAPE rules require a positive shape_rate_bps")
        if self.action is not FilterAction.SHAPE and self.shape_rate_bps:
            raise ValueError("shape_rate_bps is only valid for SHAPE rules")


class PortQosResult:
    """Outcome of pushing one interval of traffic through a port's QoS policy.

    The per-action flow populations are available both as columnar tables
    (``forwarded_table`` etc., when the vectorized path produced them) and
    as lazily materialised record lists (``forwarded`` etc.), so legacy
    consumers keep working while the hot paths stay columnar.
    ``rule_stats`` attributes matched/dropped/shaped bits to the rule id
    that classified them, which is what the telemetry layer reports.

    ``table_source`` defers the columnar views themselves: the batched
    fabric delivery engine accounts for hundreds of ports per interval and
    hands each result a callable producing ``(forwarded, dropped, shaped)``
    tables, which only runs if a consumer actually asks for a per-flow
    view — the bit counters and ``rule_stats`` are always eager.
    """

    def __init__(
        self,
        forwarded: Optional[list[FlowRecord]] = None,
        dropped: Optional[list[FlowRecord]] = None,
        shaped: Optional[list[FlowRecord]] = None,
        forwarded_bits: float = 0.0,
        dropped_bits: float = 0.0,
        shaped_passed_bits: float = 0.0,
        shaped_dropped_bits: float = 0.0,
        congestion_dropped_bits: float = 0.0,
        forwarded_table: Optional[FlowTable] = None,
        dropped_table: Optional[FlowTable] = None,
        shaped_table: Optional[FlowTable] = None,
        rule_stats: Optional[dict[str, dict[str, float]]] = None,
        table_source: Optional[
            Callable[[], tuple[FlowTable, FlowTable, FlowTable]]
        ] = None,
    ) -> None:
        self._forwarded = forwarded
        self._dropped = dropped
        self._shaped = shaped
        self._forwarded_table = forwarded_table
        self._dropped_table = dropped_table
        self._shaped_table = shaped_table
        self._table_source = table_source
        self.forwarded_bits = forwarded_bits
        self.dropped_bits = dropped_bits
        self.shaped_passed_bits = shaped_passed_bits
        self.shaped_dropped_bits = shaped_dropped_bits
        self.congestion_dropped_bits = congestion_dropped_bits
        self.rule_stats: dict[str, dict[str, float]] = (
            rule_stats if rule_stats is not None else {}
        )

    # ------------------------------------------------------------------
    # Columnar views (lazy when a table_source was deferred)
    # ------------------------------------------------------------------
    def _materialise_tables(self) -> None:
        if self._table_source is not None:
            source, self._table_source = self._table_source, None
            self._forwarded_table, self._dropped_table, self._shaped_table = source()

    @property
    def forwarded_table(self) -> Optional[FlowTable]:
        self._materialise_tables()
        return self._forwarded_table

    @forwarded_table.setter
    def forwarded_table(self, table: Optional[FlowTable]) -> None:
        self._forwarded_table = table

    @property
    def dropped_table(self) -> Optional[FlowTable]:
        self._materialise_tables()
        return self._dropped_table

    @dropped_table.setter
    def dropped_table(self, table: Optional[FlowTable]) -> None:
        self._dropped_table = table

    @property
    def shaped_table(self) -> Optional[FlowTable]:
        self._materialise_tables()
        return self._shaped_table

    @shaped_table.setter
    def shaped_table(self, table: Optional[FlowTable]) -> None:
        self._shaped_table = table

    # ------------------------------------------------------------------
    # Record views (lazy when columnar tables are present)
    # ------------------------------------------------------------------
    @property
    def forwarded(self) -> list[FlowRecord]:
        if self._forwarded is None:
            self._forwarded = (
                self.forwarded_table.to_records() if self.forwarded_table is not None else []
            )
        return self._forwarded

    @property
    def dropped(self) -> list[FlowRecord]:
        if self._dropped is None:
            self._dropped = (
                self.dropped_table.to_records() if self.dropped_table is not None else []
            )
        return self._dropped

    @property
    def shaped(self) -> list[FlowRecord]:
        if self._shaped is None:
            self._shaped = (
                self.shaped_table.to_records() if self.shaped_table is not None else []
            )
        return self._shaped

    # ------------------------------------------------------------------
    @property
    def delivered_bits(self) -> float:
        """Bits actually delivered to the member (forwarded + shaped that passed)."""
        return self.forwarded_bits + self.shaped_passed_bits

    @property
    def total_dropped_bits(self) -> float:
        return self.dropped_bits + self.shaped_dropped_bits + self.congestion_dropped_bits

    # ------------------------------------------------------------------
    # Columnar-aware summaries (used by the experiment drivers)
    # ------------------------------------------------------------------
    def delivered_peer_asns(self) -> set[int]:
        """Distinct ingress members whose traffic still reaches the member."""
        return ingress_peers(self.forwarded_table, self._forwarded) | ingress_peers(
            self.shaped_table, self._shaped, positive_bytes=True
        )

    def delivered_attack_bits(self) -> float:
        """Attack bits among forwarded + shaped traffic (pre-congestion)."""
        return population_bits(
            self.forwarded_table, self._forwarded, attack=True
        ) + population_bits(self.shaped_table, self._shaped, attack=True)


#: Compact action codes used by the vectorized verdict scatter.
_FORWARD_CODE, _DROP_CODE, _SHAPE_CODE = np.int8(0), np.int8(1), np.int8(2)
_ACTION_CODES = {
    FilterAction.FORWARD: _FORWARD_CODE,
    FilterAction.DROP: _DROP_CODE,
    FilterAction.SHAPE: _SHAPE_CODE,
}


def _shape_rows_by_rank(
    assigned: np.ndarray, row_actions: np.ndarray
) -> dict[int, np.ndarray]:
    """Rows claimed by each SHAPE rule rank, ascending within each rank.

    One stable group-by over the shaped rows replaces a per-shape-rule
    ``np.isin`` scan of the whole interval — with thousands of installed
    shape rules that scan was itself O(rules × flows).  Shared by the
    per-member and batched delivery scatters.
    """
    shape_rows = np.flatnonzero(row_actions == _SHAPE_CODE)
    if not len(shape_rows):
        return {}
    ranks = assigned[shape_rows]
    order = np.argsort(ranks, kind="stable")
    sorted_rows = shape_rows[order]
    sorted_ranks = ranks[order]
    unique, starts = np.unique(sorted_ranks, return_index=True)
    return dict(zip(unique.tolist(), np.split(sorted_rows, starts[1:])))


def _group_rows(rows_by_rank: dict[int, np.ndarray], rule_indices: list[int]) -> np.ndarray:
    """Rows of a shaper group's rules, in ascending (original) row order."""
    if len(rule_indices) == 1:
        return rows_by_rank[rule_indices[0]]
    return np.sort(np.concatenate([rows_by_rank[index] for index in rule_indices]))


class PortQosPolicy:
    """The QoS policy configured on one member (egress) port.

    ``classification_engine`` selects how columnar intervals are
    classified: ``"indexed"`` (the default) compiles the sorted rules into
    a :class:`~repro.ixp.ruleindex.RuleMatchIndex` cached behind
    :attr:`rules_version` (the counter bumped by every :meth:`install` /
    :meth:`remove` / :meth:`clear`), ``"per-rule"`` runs the parity-tested
    one-pass-per-rule fallback.  Both produce identical verdicts.
    """

    def __init__(
        self, port_capacity_bps: float, classification_engine: str = "indexed"
    ) -> None:
        if port_capacity_bps <= 0:
            raise ValueError("port capacity must be positive")
        if classification_engine not in CLASSIFICATION_ENGINES:
            raise ValueError(
                f"unknown classification engine {classification_engine!r}; "
                f"known: {', '.join(CLASSIFICATION_ENGINES)}"
            )
        self.port_capacity_bps = port_capacity_bps
        self.classification_engine = classification_engine
        self._rules: list[QosRule] = []
        self._sorted_rules: list[QosRule] = []
        #: Negated specificity of each sorted rule (ascending), so a
        #: bisect_right lands a new rule exactly where the stable
        #: most-specific-first sort would have placed it.
        self._sorted_specs: list[int] = []
        self._shapers: dict[str, RateLimiter] = {}
        #: Monotonic rule-set version; every mutation bumps it, and the
        #: compiled index / fabric delivery plan caches key off it.
        self._version = 0
        #: Change journal between versions: ``(version_after, deltas)``
        #: entries where each delta is ``("install", rule, rank)`` or
        #: ``("remove", rule_id, rank)`` against the sorted order at the
        #: time the delta was recorded.  :meth:`compiled_index` replays it
        #: to patch the previous cached snapshot forward instead of
        #: recompiling; a full re-sort (or overflow past the journal
        #: limit) resets it and the next compile falls back to scratch.
        self._journal: list[tuple[int, tuple]] = []
        #: Lowest version a cached index may hold and still be patched
        #: forward by replaying the journal.
        self._journal_base = 0
        self._index: Optional[RuleMatchIndex] = None
        self._index_version = -1
        self._action_codes: Optional[np.ndarray] = None
        self._anon_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------
    def _bump(self) -> None:
        self._version += 1
        self._action_codes = None

    def _record(self, deltas: list[tuple]) -> None:
        """Journal the deltas that produced the current version."""
        self._journal.append((self._version, tuple(deltas)))
        while len(self._journal) > _JOURNAL_LIMIT:
            del self._journal[0]
            self._journal_base = self._journal[0][0] - 1

    def _insert_sorted(self, rule: QosRule) -> int:
        """Splice one appended rule into the sorted views; returns its rank."""
        spec = -rule.match.specificity
        position = bisect_right(self._sorted_specs, spec)
        self._sorted_rules.insert(position, rule)
        self._sorted_specs.insert(position, spec)
        return position

    def _resort(self) -> None:
        # Stable sort: ties keep installation order, so the first match in
        # sorted order equals the most specific (earliest-installed) rule.
        self._sorted_rules = sorted(
            self._rules, key=lambda rule: rule.match.specificity, reverse=True
        )
        self._sorted_specs = [-rule.match.specificity for rule in self._sorted_rules]
        self._bump()
        # A full re-sort rebuilds the order wholesale; the journal can no
        # longer describe the change as splices, so patching restarts here.
        self._journal = []
        self._journal_base = self._version

    def _normalise(self, rule: QosRule, taken: Optional[set] = None) -> QosRule:
        """Give anonymous SHAPE rules a unique synthetic id.

        Every SHAPE rule needs its own :class:`RateLimiter`; keying the
        shaper (and the shaped-traffic grouping) off a per-policy
        ``anon-<n>`` id means two anonymous rules with different rates can
        no longer silently share one token bucket.  Synthetic ids skip any
        id already installed (or pending in the same batch via ``taken``),
        so a caller-supplied rule literally named ``anon-<n>`` is never
        silently replaced by a later anonymous install.
        """
        if rule.action is FilterAction.SHAPE and not rule.rule_id:
            existing = {existing.rule_id for existing in self._rules}
            if taken:
                existing |= taken
            while True:
                rule_id = f"anon-{next(self._anon_ids)}"
                if rule_id not in existing:
                    return replace(rule, rule_id=rule_id)
        return rule

    def _attach(self, rule: QosRule) -> None:
        self._rules.append(rule)
        if rule.action is FilterAction.SHAPE:
            self._shapers[rule.rule_id] = RateLimiter(rate_bps=rule.shape_rate_bps)

    def install(self, rule: QosRule) -> None:
        """Install a rule (replacing any existing rule with the same id).

        Maintained as splices: the replaced rule (if any) and the new rule
        each touch one position of the sorted views, and the change is
        journalled so the next :meth:`compiled_index` call patches the
        cached snapshot instead of recompiling O(rules) from scratch.
        """
        rule = self._normalise(rule)
        deltas: list[tuple] = []
        if rule.rule_id:
            self._remove_sorted(rule.rule_id, deltas)
            self._rules = [
                existing for existing in self._rules if existing.rule_id != rule.rule_id
            ]
            self._shapers.pop(rule.rule_id, None)
        self._attach(rule)
        deltas.append(("install", rule, self._insert_sorted(rule)))
        self._bump()
        self._record(deltas)

    def _remove_sorted(self, rule_id: str, deltas: list[tuple]) -> None:
        """Splice every rule carrying ``rule_id`` out of the sorted views.

        Ranks are journalled in descending order so each recorded rank is
        valid against the sorted order the moment its delta is replayed.
        """
        ranks = [
            rank
            for rank, existing in enumerate(self._sorted_rules)
            if existing.rule_id == rule_id
        ]
        for rank in reversed(ranks):
            del self._sorted_rules[rank]
            del self._sorted_specs[rank]
            deltas.append(("remove", rule_id, rank))

    def install_many(self, rules: Iterable[QosRule]) -> None:
        """Install a batch of rules with one re-sort and one version bump.

        Semantically equivalent to calling :meth:`install` per rule (same
        id-replacement behaviour, later duplicates win), but O(R log R)
        for the whole batch instead of O(R² log R) — the path the
        fine-grained scenario uses to stage tens of thousands of rules.
        """
        normalised: list[QosRule] = []
        taken: set[str] = set()
        for rule in rules:
            rule = self._normalise(rule, taken)
            if rule.rule_id:
                taken.add(rule.rule_id)
            normalised.append(rule)
        batch: list[QosRule] = []
        seen: set[str] = set()
        for rule in reversed(normalised):
            if rule.rule_id:
                if rule.rule_id in seen:
                    continue
                seen.add(rule.rule_id)
            batch.append(rule)
        batch.reverse()
        if not batch:
            return
        if seen:
            self._rules = [rule for rule in self._rules if rule.rule_id not in seen]
            for rule_id in seen:
                self._shapers.pop(rule_id, None)
        if len(batch) > _BATCH_DELTA_LIMIT:
            # Bulk staging: one stable sort beats thousands of splices.
            # _resort resets the journal, so the next compile is scratch.
            for rule in batch:
                self._attach(rule)
            self._resort()
            return
        deltas: list[tuple] = []
        for rule_id in seen:
            self._remove_sorted(rule_id, deltas)
        for rule in batch:
            self._attach(rule)
            # Sequential bisect insertion of the appended batch equals the
            # stable most-specific-first sort of the combined list: each
            # appended rule lands after every equal-specificity rule
            # already placed, exactly its stable-sort position.
            deltas.append(("install", rule, self._insert_sorted(rule)))
        self._bump()
        self._record(deltas)

    def remove(self, rule_id: str) -> bool:
        """Remove the rule with the given id.  Returns True if found.

        Removing an unknown id is a no-op: the rule-set version is *not*
        bumped, so the compiled index and the fabric's cached delivery
        plan stay warm instead of recompiling for a change that never
        happened.
        """
        remaining = [rule for rule in self._rules if rule.rule_id != rule_id]
        if len(remaining) == len(self._rules):
            return False
        self._rules = remaining
        self._shapers.pop(rule_id, None)
        deltas: list[tuple] = []
        self._remove_sorted(rule_id, deltas)
        self._bump()
        self._record(deltas)
        return True

    def rules(self) -> list[QosRule]:
        return list(self._rules)

    def rule_ids(self) -> list[str]:
        """Installed rule ids in install order.

        Anonymous SHAPE rules appear under the synthetic ``anon-<n>`` id
        they were given at install time; anonymous DROP/FORWARD rules
        appear as ``""``.  The control-plane service's telemetry (and the
        lockstep fuzz machine) compare policies through this view.
        """
        return [rule.rule_id for rule in self._rules]

    def sorted_rules(self) -> list[QosRule]:
        """The rules in classification (most-specific-first) order.

        The batched fabric delivery engine compiles these into its
        platform-level rule set; the order is exactly the order
        :meth:`classify` / ``_apply_table`` evaluate them in, and the rank
        order :meth:`assign_table` reports.
        """
        return list(self._sorted_rules)

    def shaper_for(self, key: str) -> Optional[RateLimiter]:
        """The stateful shaper behind a SHAPE rule id, shared with the
        batched delivery engine so both engines drain the same token
        state.  Anonymous shape rules are keyed by their synthetic
        ``anon-<n>`` id assigned at install time."""
        return self._shapers.get(key)

    def clear(self) -> None:
        """Drop every rule.  Clearing an already-empty policy is a no-op
        (no version bump), mirroring :meth:`remove` on an unknown id."""
        if not self._rules:
            return
        self._rules.clear()
        self._sorted_rules.clear()
        self._sorted_specs.clear()
        self._shapers.clear()
        self._bump()
        # Cheaper to compile the empty set than to replay N removals.
        self._journal = []
        self._journal_base = self._version

    def __len__(self) -> int:
        return len(self._rules)

    # ------------------------------------------------------------------
    # Compiled-index cache
    # ------------------------------------------------------------------
    @property
    def rules_version(self) -> int:
        """Monotonic counter bumped by every rule-set mutation.

        The compiled rule-match index and the fabric's cached delivery
        plan are both keyed off it, so a mid-run ``install``/``remove`` is
        picked up on the next interval without recompiling untouched
        ports.
        """
        return self._version

    def compiled_index(self) -> RuleMatchIndex:
        """The rule-match index for the current rule set (cached per version).

        When the change journal still covers the cached snapshot's
        version, the deltas recorded since are replayed through
        :meth:`~repro.ixp.ruleindex.RuleMatchIndex.with_installed` /
        :meth:`~repro.ixp.ruleindex.RuleMatchIndex.with_removed` — each an
        O(touched group) splice — instead of recompiling the whole rule
        set; a re-sort, a :meth:`clear` or journal overflow falls back to
        the from-scratch compile.  Either way the result is structurally
        identical (the fuzz suite pins it).
        """
        if self._index is not None and self._index_version != self._version:
            if self._index_version >= self._journal_base:
                index = self._index
                for version_after, deltas in self._journal:
                    if version_after <= self._index_version:
                        continue
                    for delta in deltas:
                        if delta[0] == "install":
                            index = index.with_installed(delta[1], delta[2])
                        else:
                            index = index.with_removed(delta[1], delta[2])
                self._index = index
                self._index_version = self._version
            else:
                self._index = None
        if self._index is None or self._index_version != self._version:
            self._index = RuleMatchIndex(self._sorted_rules)
            self._index_version = self._version
        return self._index

    def action_codes(self) -> np.ndarray:
        """Per-sorted-rule action codes (forward/drop/shape) for the scatter."""
        if self._action_codes is None or len(self._action_codes) != len(self._sorted_rules):
            self._action_codes = np.fromiter(
                (_ACTION_CODES[rule.action] for rule in self._sorted_rules),
                dtype=np.int8,
                count=len(self._sorted_rules),
            )
        return self._action_codes

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify(self, flow: FlowRecord) -> QosRule | None:
        """Return the most specific matching rule, or ``None`` (forward)."""
        for rule in self._sorted_rules:
            if rule.match.matches(flow):
                return rule
        return None

    def assign_table(self, table: FlowTable) -> np.ndarray:
        """Rank of each row's claiming rule in :meth:`sorted_rules` order.

        ``-1`` means no rule matches (forward).  The configured
        ``classification_engine`` decides how the ranks are computed; the
        two engines are pinned verdict-for-verdict equal, so downstream
        accounting is bit-for-bit identical either way.  This is the
        shared classification entry point of both delivery engines: the
        per-member loop calls it from ``_apply_table`` and the batched
        fabric plan calls it per member slice.
        """
        n = len(table)
        if not self._sorted_rules or n == 0:
            return np.full(n, -1, dtype=np.int32)
        if self.classification_engine == "indexed":
            return self.compiled_index().assign(table)
        if self.classification_engine != "per-rule":
            raise ValueError(
                f"unknown classification engine {self.classification_engine!r}; "
                f"known: {', '.join(CLASSIFICATION_ENGINES)}"
            )
        # Per-rule fallback: one vectorized match pass per rule, first
        # (most specific) match claims the row.
        assigned = np.full(n, -1, dtype=np.int32)
        unmatched = np.ones(n, dtype=bool)
        for index, rule in enumerate(self._sorted_rules):
            if not unmatched.any():
                break
            claimed = rule.match.matches_table(table) & unmatched
            assigned[claimed] = index
            unmatched &= ~claimed
        return assigned

    def apply(
        self, flows: Union[Sequence[FlowRecord], FlowTable], interval: float
    ) -> PortQosResult:
        """Push one observation interval of traffic through the policy."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if isinstance(flows, FlowTable):
            return self._apply_table(flows, interval)
        return self._apply_records(flows, interval)

    # ------------------------------------------------------------------
    def _apply_records(self, flows: Sequence[FlowRecord], interval: float) -> PortQosResult:
        result = PortQosResult(forwarded=[], dropped=[], shaped=[])
        shaped_by_rule: dict[str, list[FlowRecord]] = {}
        shaped_assignment: dict[str, list[QosRule]] = {}

        def stats_for(rule: QosRule) -> dict[str, float]:
            return result.rule_stats.setdefault(
                rule.rule_id, {"matched": 0.0, "dropped": 0.0, "shaped": 0.0}
            )

        for flow in flows:
            rule = self.classify(flow)
            if rule is None or rule.action is FilterAction.FORWARD:
                result.forwarded.append(flow)
                result.forwarded_bits += flow.bits
            elif rule.action is FilterAction.DROP:
                result.dropped.append(flow)
                result.dropped_bits += flow.bits
                stats = stats_for(rule)
                stats["matched"] += flow.bits
                stats["dropped"] += flow.bits
            else:  # SHAPE (anonymous shape rules carry synthetic ids)
                key = rule.rule_id
                shaped_by_rule.setdefault(key, []).append(flow)
                shaped_assignment.setdefault(key, []).append(rule)

        # Shaping queues: the flows matching one shaping rule share that
        # rule's rate limit (paper §5.2).
        for key, shaped_flows in shaped_by_rule.items():
            shaper = self._shapers.get(key)
            offered_bits = sum(flow.bits for flow in shaped_flows)
            if shaper is None:
                passed_bits, dropped_bits = float(offered_bits), 0.0
            else:
                passed_bits, dropped_bits = shaper.shape(offered_bits, interval)
            scale = passed_bits / offered_bits if offered_bits > 0 else 0.0
            for flow, rule in zip(shaped_flows, shaped_assignment[key]):
                scaled = flow.scaled(scale)
                result.shaped.append(scaled)
                stats = stats_for(rule)
                stats["matched"] += scaled.bits
                stats["shaped"] += scaled.bits
            result.shaped_passed_bits += passed_bits
            result.shaped_dropped_bits += dropped_bits

        self.apply_congestion(result, interval)
        return result

    def _apply_table(self, table: FlowTable, interval: float) -> PortQosResult:
        n = len(table)
        rule_stats: dict[str, dict[str, float]] = {}
        if not self._sorted_rules or n == 0:
            result = PortQosResult(
                forwarded_table=table,
                dropped_table=FlowTable.empty(),
                shaped_table=FlowTable.empty(),
                forwarded_bits=float(table.total_bits),
                rule_stats=rule_stats,
            )
            self.apply_congestion(result, interval)
            return result

        # Assign each row to its most specific matching rule (the compiled
        # index or the per-rule fallback, both rank-equivalent).
        assigned = self.assign_table(table)

        bits = table.bits
        matched = assigned >= 0
        # Per-rule matched bits and the set of rules that actually claimed
        # rows fall out of one bincount/unique pass, so the verdict
        # scatter below is O(claimed rules), not O(installed rules).
        per_rank_bits = np.bincount(
            assigned[matched], weights=bits[matched], minlength=len(self._sorted_rules)
        )
        claimed = np.unique(assigned[matched]).tolist()
        row_actions = np.full(n, _FORWARD_CODE, dtype=np.int8)
        if claimed:
            row_actions[matched] = self.action_codes()[assigned[matched]]
        forward_mask = row_actions == _FORWARD_CODE
        drop_mask = row_actions == _DROP_CODE
        shape_groups: dict[str, list[int]] = {}

        def stats_for(rule: QosRule) -> dict[str, float]:
            return rule_stats.setdefault(
                rule.rule_id, {"matched": 0.0, "dropped": 0.0, "shaped": 0.0}
            )

        for index in claimed:
            rule = self._sorted_rules[index]
            if rule.action is FilterAction.DROP:
                matched_bits = float(per_rank_bits[index])
                stats = stats_for(rule)
                stats["matched"] += matched_bits
                stats["dropped"] += matched_bits
            elif rule.action is FilterAction.SHAPE:
                # Group rules sharing a shaper key, as in the record path
                # (anonymous shape rules carry synthetic ids).
                shape_groups.setdefault(rule.rule_id, []).append(index)

        rows_by_rank = _shape_rows_by_rank(assigned, row_actions)
        shaped_tables: list[FlowTable] = []
        # Collected per-group and reduced once after the loop: a single
        # left-to-right sum() is bit-for-bit the running += it replaces,
        # and keeps the accumulation order explicit (see RPL006 in
        # docs/STATIC_ANALYSIS.md).
        passed_terms: list[float] = []
        dropped_terms: list[float] = []
        for key, rule_indices in shape_groups.items():
            group_rows = _group_rows(rows_by_rank, rule_indices)
            offered_bits = float(bits[group_rows].sum())
            shaper = self._shapers.get(key)
            if shaper is None:
                passed_bits, dropped_bits = offered_bits, 0.0
            else:
                passed_bits, dropped_bits = shaper.shape(offered_bits, interval)
            scale = passed_bits / offered_bits if offered_bits > 0 else 0.0
            scaled = table.select(group_rows).scaled(scale)
            shaped_tables.append(scaled)
            scaled_bits = scaled.bits
            group_assigned = assigned[group_rows]
            for index in rule_indices:
                rule_bits = float(scaled_bits[group_assigned == index].sum())
                stats = stats_for(self._sorted_rules[index])
                stats["matched"] += rule_bits
                stats["shaped"] += rule_bits
            passed_terms.append(passed_bits)
            dropped_terms.append(dropped_bits)

        shaped_passed = float(sum(passed_terms))
        shaped_dropped = float(sum(dropped_terms))
        result = PortQosResult(
            forwarded_table=table.select(forward_mask),
            dropped_table=table.select(drop_mask),
            shaped_table=FlowTable.concat(shaped_tables) if shaped_tables else FlowTable.empty(),
            forwarded_bits=float(bits[forward_mask].sum()),
            dropped_bits=float(bits[drop_mask].sum()),
            shaped_passed_bits=shaped_passed,
            shaped_dropped_bits=shaped_dropped,
            rule_stats=rule_stats,
        )
        self.apply_congestion(result, interval)
        return result

    def apply_congestion(self, result: PortQosResult, interval: float) -> None:
        # Egress queue: forwarded + shaped traffic shares the port capacity;
        # anything beyond it is congestion loss at the member port.
        capacity_bits = self.port_capacity_bps * interval
        delivered = result.forwarded_bits + result.shaped_passed_bits
        if delivered > capacity_bits:
            result.congestion_dropped_bits = delivered - capacity_bits
            overload = capacity_bits / delivered if delivered > 0 else 0.0
            result.forwarded_bits *= overload
            result.shaped_passed_bits *= overload
