"""Multi-PoP IXP topology construction.

The paper's platform is not a single switch: DE-CIX-class fabrics span
multiple datacenter PoPs, each housing several edge routers, with the
members' ports spread across them (§2.1; footnote 1 puts the 2017
platform at ~25 Tbps of connected capacity across hundreds of member
ports).  This module builds such topologies for the paper-scale
experiments: a :class:`PortSpeedMix` describes a realistic distribution
of member port capacities, :func:`build_multi_pop_fabric` lays out the
PoPs and edge routers, and :func:`make_member_population` draws a seeded
member population over both.

Members connect through :meth:`~repro.ixp.fabric.SwitchingFabric.
connect_member`, which prefers a router in the member's PoP and
balances load inside the PoP, so the resulting port placement is
deterministic per seed.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sim.rng import make_rng
from .edge_router import EdgeRouter
from .fabric import SwitchingFabric
from .hardware_profiles import HardwareProfile, l_ixp_edge_router_profile
from .member import IxpMember


@dataclass(frozen=True)
class PortSpeedMix:
    """A categorical distribution over member port capacities."""

    speeds_bps: Sequence[float]
    weights: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.speeds_bps) != len(self.weights) or not self.speeds_bps:
            raise ValueError("speeds_bps and weights must be equal-length, non-empty")
        if any(speed <= 0 for speed in self.speeds_bps):
            raise ValueError("port speeds must be positive")
        total = float(sum(self.weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` port capacities (bps)."""
        weights = np.asarray(self.weights, dtype=np.float64)
        return rng.choice(
            np.asarray(self.speeds_bps, dtype=np.float64),
            size=count,
            p=weights / weights.sum(),
        )


def de_cix_class_port_mix() -> PortSpeedMix:
    """A DE-CIX-class access-speed mix.

    Public IXP member lists of the era are dominated by 1G and 10G access
    ports with a substantial 100G tail carrying most of the capacity —
    consistent with ~25 Tbps of connected capacity over hundreds of
    member ports (paper footnote 1).
    """
    return PortSpeedMix(
        speeds_bps=(1e9, 10e9, 100e9),
        weights=(0.35, 0.50, 0.15),
    )


def build_multi_pop_fabric(
    pop_count: int = 4,
    routers_per_pop: int = 2,
    name: str = "l-ixp",
    platform_capacity_bps: float = 25e12,
    profile: Optional[HardwareProfile] = None,
    delivery_engine: str = "batched",
    seed: Optional[int] = None,
    pop_indices: Optional[Sequence[int]] = None,
    collect_ipfix: bool = True,
    retain_reports: bool = True,
    retain_history: bool = True,
) -> SwitchingFabric:
    """A fabric with ``pop_count`` PoPs of ``routers_per_pop`` edge routers.

    Routers are named ``edge-<pop>-<index>`` and assigned to PoPs
    ``pop-1`` … ``pop-<pop_count>`` (the PoP naming
    :meth:`~repro.ixp.fabric.SwitchingFabric.connect_member` keys
    placement on).

    ``pop_indices`` restricts construction to a subset of the PoPs while
    keeping every router's name, PoP label and per-router seed identical
    to the full build — a shard-local fabric built for PoPs ``(2, 5)`` of
    a ten-PoP platform is indistinguishable, router for router, from
    those PoPs inside the full fabric.  The streaming knobs pass through
    to :class:`~repro.ixp.fabric.SwitchingFabric`.
    """
    if pop_count < 1 or routers_per_pop < 1:
        raise ValueError("pop_count and routers_per_pop must be positive")
    if pop_indices is None:
        pop_indices = range(1, pop_count + 1)
    else:
        pop_indices = sorted(int(index) for index in pop_indices)
        if not pop_indices:
            raise ValueError("pop_indices must be non-empty when given")
        if pop_indices[0] < 1 or pop_indices[-1] > pop_count:
            raise ValueError(
                f"pop_indices must fall within 1..{pop_count}, got {pop_indices}"
            )
    fabric = SwitchingFabric(
        name=name,
        platform_capacity_bps=platform_capacity_bps,
        delivery_engine=delivery_engine,
        collect_ipfix=collect_ipfix,
        retain_reports=retain_reports,
        retain_history=retain_history,
    )
    profile = profile if profile is not None else l_ixp_edge_router_profile()
    for pop_index in pop_indices:
        for router_index in range(1, routers_per_pop + 1):
            fabric.add_edge_router(
                EdgeRouter(
                    name=f"edge-{pop_index}-{router_index}",
                    profile=profile,
                    pop=f"pop-{pop_index}",
                    seed=None if seed is None else seed + pop_index * 100 + router_index,
                )
            )
    return fabric


def make_member_population(
    member_count: int,
    pop_count: int = 4,
    base_asn: int = 65000,
    port_mix: Optional[PortSpeedMix] = None,
    honors_rtbh_fraction: float = 0.30,
    seed: Optional[int] = None,
) -> list[IxpMember]:
    """Draw a seeded member population spread over the PoPs.

    Port capacities come from ``port_mix`` (DE-CIX-class by default), PoP
    assignment is uniform, and ``honors_rtbh_fraction`` of the members
    honour RTBH signals (the paper's §2.4 compliance finding: ~70 % do
    not).
    """
    if member_count < 1:
        raise ValueError("member_count must be positive")
    if not 0.0 <= honors_rtbh_fraction <= 1.0:
        raise ValueError("honors_rtbh_fraction must be within [0, 1]")
    rng = make_rng(seed)
    mix = port_mix if port_mix is not None else de_cix_class_port_mix()
    capacities = mix.sample(rng, member_count)
    pops = rng.integers(1, pop_count + 1, size=member_count)
    honors = rng.random(member_count) < honors_rtbh_fraction
    return [
        IxpMember(
            asn=base_asn + index,
            name=f"member-{index}",
            port_capacity_bps=float(capacities[index]),
            pop=f"pop-{int(pops[index])}",
            honors_rtbh=bool(honors[index]),
        )
        for index in range(member_count)
    ]
