"""Hardware profiles of IXP edge routers.

A :class:`HardwareProfile` bundles the resource limits of one router model:
how many member ports it serves, the TCAM pool sizes, and the control-plane
CPU coefficients.  Stellar's hardware information base
(:mod:`repro.core.hardware_info`) is built from these profiles.

Calibration of the default L-IXP profile
----------------------------------------

Fig. 9 of the paper expresses filter counts in units of *N*, the 95th
percentile of parallel RTBH rules per port, and sweeps MAC filters per port
from 0 to 10 N and L3–L4 criteria per port from 0 to 4 N for adoption rates
of 20 %, 60 % and 100 % of the member ports.  The reported feasibility
matrix implies chassis-wide pool sizes (P = number of ports):

* MAC pool: 60 % × P × 10 N fails but 60 % × P × 8 N fits, and
  100 % × P × 6 N fails but 100 % × P × 4 N fits ⇒ pool ∈ [4.8, 6) · P · N.
  We use **5 · P · N**.
* L3–L4 pool: 60 % × P × 4 N fails but 60 % × P × 3 N fits, and
  100 % × P × 2 N fails but 100 % × P × N fits ⇒ pool ∈ [1.8, 2) · P · N.
  We use **1.9 · P · N**.

With the documented N = 16 and P = 350 these evaluate to 28 000 MAC entries
and 10 640 L3–L4 criteria — plausible TCAM partition sizes for a large
chassis router.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .control_plane import ControlPlaneCpuModel
from .tcam import TcamModel

#: N — the 95th percentile of parallel RTBH rules any member holds on any
#: port (paper §5.1).  The absolute value is not disclosed; 16 is used as a
#: representative value and all Fig. 9 axes are expressed in multiples of it.
PARALLEL_RTBH_95TH_PERCENTILE = 16


@dataclass(frozen=True)
class HardwareProfile:
    """Resource description of one edge-router model."""

    name: str
    port_count: int
    mac_filter_capacity: int
    l3l4_criteria_capacity: int
    #: Default member port speed in bits per second.
    port_capacity_bps: float = 10e9
    #: Control-plane CPU model coefficients.
    cpu_base_percent: float = 1.5
    cpu_percent_per_update: float = 3.117
    cpu_limit_percent: float = 15.0

    def __post_init__(self) -> None:
        if self.port_count <= 0:
            raise ValueError("port_count must be positive")
        if self.mac_filter_capacity <= 0 or self.l3l4_criteria_capacity <= 0:
            raise ValueError("TCAM capacities must be positive")

    # ------------------------------------------------------------------
    def make_tcam(self) -> TcamModel:
        """Instantiate a fresh TCAM with this profile's capacities."""
        return TcamModel(
            mac_filter_capacity=self.mac_filter_capacity,
            l3l4_criteria_capacity=self.l3l4_criteria_capacity,
        )

    def make_cpu_model(self, seed: int | None = None) -> ControlPlaneCpuModel:
        """Instantiate the control-plane CPU model."""
        return ControlPlaneCpuModel(
            base_percent=self.cpu_base_percent,
            percent_per_update=self.cpu_percent_per_update,
            cpu_limit_percent=self.cpu_limit_percent,
            seed=seed,
        )


def l_ixp_edge_router_profile(
    port_count: int = 350,
    parallel_rtbh_n: int = PARALLEL_RTBH_95TH_PERCENTILE,
) -> HardwareProfile:
    """The production-density edge router used in the paper's lab evaluation."""
    return HardwareProfile(
        name="l-ixp-edge-router",
        port_count=port_count,
        mac_filter_capacity=int(5.0 * port_count * parallel_rtbh_n),
        l3l4_criteria_capacity=int(1.9 * port_count * parallel_rtbh_n),
    )


def small_ixp_edge_router_profile(port_count: int = 48) -> HardwareProfile:
    """A smaller edge switch used by examples exploring small IXPs."""
    return HardwareProfile(
        name="small-ixp-edge-router",
        port_count=port_count,
        mac_filter_capacity=4096,
        l3l4_criteria_capacity=1024,
        port_capacity_bps=10e9,
    )


def sdn_switch_profile(port_count: int = 48) -> HardwareProfile:
    """An OpenFlow switch profile (flow-table entries instead of QoS TCAM)."""
    return HardwareProfile(
        name="sdn-switch",
        port_count=port_count,
        mac_filter_capacity=8192,
        l3l4_criteria_capacity=8192,
        port_capacity_bps=10e9,
        cpu_base_percent=1.0,
        cpu_percent_per_update=1.2,
    )
