"""``python -m repro`` — the experiment command-line interface.

Three subcommands drive the registry:

``list``
    Enumerate the registered experiments (name, paper reference, knobs).

``run <name>``
    Run one experiment.  Every field of the experiment's config dataclass
    is exposed as a ``--field-name`` option (``--peer-count 120``,
    ``--attack-peak-bps 2e9``); ``--quick`` applies the registered smoke
    overrides and ``--json`` writes the full serialized result.

``sweep <name> --grid field=v1,v2,...``
    Run a grid of config points, optionally in parallel (``--jobs``) and
    incrementally against an artifact store (``--store``).

Examples::

    python -m repro list
    python -m repro run fig10c --peer-count 120 --json out.json
    python -m repro run fig9 --quick
    python -m repro sweep fig3c --grid peer_count=20,40 --grid attack_peak_bps=5e8,1e9 --jobs 8
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence
from typing import Any, Optional

from .experiments.registry import ExperimentSpec, all_experiments, get_experiment
from .experiments.results import ResultStore, to_jsonable
from .experiments.sweep import Sweep, run_sweep

#: Config fields whose defaults are not scalars (hardware profiles,
#: category-share dicts) are not settable from the command line.
_SCALAR_TYPES = (bool, int, float, str)


def _option_name(field_name: str) -> str:
    return "--" + field_name.replace("_", "-")


def _settable_fields(spec: ExperimentSpec) -> dict[str, Any]:
    """``field name -> default`` for every CLI-settable config field.

    A field is settable when its default is a scalar or a flat sequence of
    scalars (the latter is parsed from a comma-separated list).
    """
    settable: dict[str, Any] = {}
    config = spec.config_cls()
    for field in spec.config_fields():
        default = getattr(config, field.name)
        if isinstance(default, _SCALAR_TYPES):
            settable[field.name] = default
        elif (
            isinstance(default, (tuple, list))
            and default
            and all(isinstance(item, (int, float)) for item in default)
        ):
            settable[field.name] = default
    return settable


def _convert(field_name: str, default: Any, text: str) -> Any:
    """Parse a CLI string against the field's default-value type."""
    try:
        if isinstance(default, bool):
            lowered = text.lower()
            if lowered in ("true", "1", "yes", "on"):
                return True
            if lowered in ("false", "0", "no", "off"):
                return False
            raise ValueError(f"expected a boolean, got {text!r}")
        if isinstance(default, int):
            try:
                return int(text, 0)
            except ValueError:
                value = float(text)  # accept 2e3 for integer fields
                if value.is_integer():
                    return int(value)
                raise ValueError(f"expected an integer, got {text!r}")
        if isinstance(default, float):
            return float(text)
        if isinstance(default, (tuple, list)):
            element_type = float if any(isinstance(i, float) for i in default) else int
            return tuple(element_type(part) for part in text.split(","))
        return text
    except ValueError as error:
        raise SystemExit(f"error: invalid value for {_option_name(field_name)}: {error}")


def _parse_overrides(spec: ExperimentSpec, tokens: Sequence[str]) -> dict[str, Any]:
    """Parse ``--field-name value`` / ``--field-name=value`` token pairs."""
    settable = _settable_fields(spec)
    overrides: dict[str, Any] = {}
    queue = list(tokens)
    while queue:
        token = queue.pop(0)
        if not token.startswith("--"):
            raise SystemExit(f"error: unexpected argument {token!r}")
        body = token[2:]
        if "=" in body:
            key_part, value = body.split("=", 1)
        else:
            key_part, value = body, None
        field_name = key_part.replace("-", "_")
        if field_name not in settable:
            options = ", ".join(_option_name(name) for name in settable)
            raise SystemExit(
                f"error: unknown option --{key_part} for {spec.name} "
                f"(config options: {options})"
            )
        if value is None:
            if not queue:
                raise SystemExit(f"error: option --{key_part} needs a value")
            value = queue.pop(0)
        overrides[field_name] = _convert(field_name, settable[field_name], value)
    return overrides


def _write_json(payload: Any, destination: Optional[str]) -> None:
    text = json.dumps(to_jsonable(payload), indent=2, sort_keys=False)
    if destination is None or destination == "-":
        print(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {destination}")


def _print_summary(summary: dict[str, Any]) -> None:
    if not summary:
        print("(no summary)")
        return
    width = max(len(str(key)) for key in summary)
    for key, value in summary.items():
        if isinstance(value, float):
            rendered = f"{value:.6g}"
        else:
            rendered = str(value)
        print(f"  {str(key).ljust(width)}  {rendered}")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    specs = all_experiments()
    if args.json:
        payload = [
            {
                "name": spec.name,
                "figure": spec.figure,
                "title": spec.title,
                "aliases": list(spec.aliases),
                "config_fields": spec.config_field_names(),
            }
            for spec in specs
        ]
        print(json.dumps(payload, indent=2))
        return 0
    name_width = max(len(spec.name) for spec in specs)
    figure_width = max(len(spec.figure) for spec in specs)
    for spec in specs:
        print(f"{spec.name.ljust(name_width)}  {spec.figure.ljust(figure_width)}  {spec.title}")
    print()
    print("run one with: python -m repro run <name> [--quick] [--json out.json] [config options]")
    return 0


def _cmd_run(args: argparse.Namespace, extra: list[str]) -> int:
    spec = get_experiment(args.experiment)
    overrides = _parse_overrides(spec, extra)
    config = spec.make_config(quick=args.quick, **overrides)
    result = spec.run(config)
    print(f"{spec.name} ({spec.figure}) — {spec.title}")
    print(f"config: {config}")
    summary = result.summary() if hasattr(result, "summary") else {}
    print("summary:")
    _print_summary(to_jsonable(summary))
    if args.json is not None:
        _write_json(result.to_dict(), args.json)
    return 0


def _parse_grid(spec: ExperimentSpec, grid_args: list[str]) -> dict[str, tuple[Any, ...]]:
    settable = _settable_fields(spec)
    grid: dict[str, tuple[Any, ...]] = {}
    for item in grid_args:
        if "=" not in item:
            raise SystemExit(
                f"error: --grid expects field=v1,v2,... (got {item!r})"
            )
        field_name, values_text = item.split("=", 1)
        field_name = field_name.replace("-", "_")
        if field_name not in settable:
            raise SystemExit(f"error: unknown grid field {field_name!r} for {spec.name}")
        default = settable[field_name]
        if not isinstance(default, _SCALAR_TYPES):
            # A sequence-typed field (e.g. dequeue_rates): the comma list is
            # one value, not a grid axis — there is no syntax for a grid of
            # tuples, so apply it to every point instead.
            raise SystemExit(
                f"error: {field_name} is a sequence-valued field and cannot be "
                f"a grid axis; pass it as a per-point override instead "
                f"({_option_name(field_name)} {values_text})"
            )
        grid[field_name] = tuple(
            _convert(field_name, default, part) for part in values_text.split(",")
        )
    return grid


def _cmd_sweep(args: argparse.Namespace, extra: list[str]) -> int:
    spec = get_experiment(args.experiment)
    grid = _parse_grid(spec, args.grid or [])
    base = _parse_overrides(spec, extra)
    sweep = Sweep(
        experiment=spec.name,
        grid=grid,
        base=base,
        seed=args.seed_base,
        quick=args.quick,
    )
    store = ResultStore(args.store) if args.store else None
    result = run_sweep(sweep, jobs=args.jobs, store=store)
    print(
        f"{spec.name}: {len(result)} point(s), "
        f"{result.cached_points} cached, jobs={result.jobs}"
    )
    for point, summary in zip(result.points, result.summaries()):
        label = ", ".join(f"{key}={value}" for key, value in point.items()) or "(defaults)"
        headline = ", ".join(
            f"{key}={value:.6g}" if isinstance(value, float) else f"{key}={value}"
            for key, value in list(summary.items())[:3]
        )
        print(f"  [{label}] {headline}")
    if args.json is not None:
        _write_json(result.to_dict(), args.json)
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    # allow_abbrev=False everywhere: config overrides are parsed from the
    # leftover tokens, so argparse must not swallow e.g. --seed (a config
    # field on most experiments) as an abbreviation of --seed-base.
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the paper's experiments from the declarative registry.",
        allow_abbrev=False,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list registered experiments", allow_abbrev=False
    )
    list_parser.add_argument("--json", action="store_true", help="emit JSON")

    run_parser = subparsers.add_parser(
        "run",
        help="run one experiment",
        description="Run one experiment; any config field is settable as "
        "--field-name VALUE (see `list` for names).",
        allow_abbrev=False,
    )
    run_parser.add_argument("experiment", help="registry name or alias (e.g. fig10c)")
    run_parser.add_argument("--quick", action="store_true", help="apply quick/smoke overrides")
    run_parser.add_argument(
        "--json", metavar="PATH", nargs="?", const="-",
        help="write the full result as JSON to PATH (or stdout with no value)",
    )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a config grid, optionally in parallel",
        description="Cartesian-product sweep over config fields; extra "
        "--field-name VALUE options apply to every point.",
        allow_abbrev=False,
    )
    sweep_parser.add_argument("experiment", help="registry name or alias")
    sweep_parser.add_argument(
        "--grid", action="append", metavar="FIELD=V1,V2,...",
        help="one grid axis (repeatable)",
    )
    sweep_parser.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    sweep_parser.add_argument(
        "--seed-base", type=int, default=None,
        help="derive an independent per-point seed from this base",
    )
    sweep_parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="artifact-store directory for incremental re-runs",
    )
    sweep_parser.add_argument("--quick", action="store_true", help="apply quick/smoke overrides")
    sweep_parser.add_argument(
        "--json", metavar="PATH", nargs="?", const="-",
        help="write the sweep result as JSON to PATH (or stdout with no value)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args, extra = parser.parse_known_args(argv)
    try:
        if args.command == "list":
            if extra:
                parser.error(f"unrecognized arguments: {' '.join(extra)}")
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args, extra)
        if args.command == "sweep":
            return _cmd_sweep(args, extra)
    except BrokenPipeError:
        # The downstream reader (e.g. `... | head`) closed the pipe; point
        # stdout at devnull so the interpreter's shutdown flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
