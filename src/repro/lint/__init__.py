"""repro-lint: static enforcement of the reproduction's correctness contracts.

The dynamic oracles — sharded-vs-serial parity, the Hypothesis state
machines, golden-seed digests — catch contract violations *after* a
simulation runs.  This package catches the same violation classes at
review time, from the AST alone.  See ``docs/STATIC_ANALYSIS.md`` for
the rule catalog and ``python -m repro.lint --help`` for the CLI.
"""

from __future__ import annotations

from .engine import (
    BASELINE_NAME,
    DEFAULT_ROOTS,
    Finding,
    LintReport,
    ParsedModule,
    apply_baseline,
    format_json,
    format_text,
    iter_python_files,
    lint_files,
    load_baseline,
    run_lint,
    write_baseline,
)
from .rules import LintRule, default_rules

__all__ = [
    "BASELINE_NAME",
    "DEFAULT_ROOTS",
    "Finding",
    "LintReport",
    "LintRule",
    "ParsedModule",
    "apply_baseline",
    "default_rules",
    "format_json",
    "format_text",
    "iter_python_files",
    "lint_files",
    "load_baseline",
    "run_lint",
    "write_baseline",
]
