"""CLI for repro-lint: ``python -m repro.lint [--json] [--baseline write] [paths…]``.

Exit codes: 0 — clean (every finding baselined, no stale entries);
1 — new findings and/or stale baseline entries; 2 — unparseable files
or usage errors.  The default run loads ``lint-baseline.json`` from the
scan root, reports only findings *not* in it, and fails on baseline
entries that no longer match anything (the baseline may only shrink).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import (
    BASELINE_NAME,
    DEFAULT_ROOTS,
    format_json,
    format_text,
    load_baseline,
    run_lint,
    write_baseline,
)
from .rules import default_rules


def _find_root(start: Path) -> Path:
    """The repo root: nearest ancestor with a pyproject.toml."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based checks of the reproduction's correctness contracts.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to lint (default: {', '.join(DEFAULT_ROOTS)})",
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--baseline",
        choices=("apply", "write", "ignore"),
        default="apply",
        help=(
            "apply (default): filter findings through the baseline and fail "
            "on stale entries; write: rewrite the baseline from the current "
            "findings; ignore: report every finding, baseline untouched"
        ),
    )
    parser.add_argument(
        "--baseline-file",
        type=Path,
        default=None,
        help=f"baseline path (default: <root>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root for relative paths (default: nearest pyproject.toml)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            scope = ", ".join(rule.paths) if rule.paths else "all scanned files"
            print(f"{rule.rule_id}  {rule.title}  [{scope}]")
        return 0

    root = (args.root or _find_root(Path.cwd())).resolve()
    paths = (
        [Path(p) if Path(p).is_absolute() else root / p for p in args.paths]
        if args.paths
        else [root / rel for rel in DEFAULT_ROOTS]
    )
    baseline_file = args.baseline_file or root / BASELINE_NAME

    entries = (
        load_baseline(baseline_file) if args.baseline == "apply" else []
    )
    report = run_lint(paths, rules, root, baseline_entries=entries)

    if args.baseline == "write":
        write_baseline(report.findings, baseline_file)
        print(
            f"wrote {baseline_file} with {len(report.findings)} finding(s) "
            f"from {report.checked_files} files"
        )
        return 0 if not report.errors else 2

    print(format_json(report) if args.json else format_text(report))
    if report.errors:
        return 2
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
