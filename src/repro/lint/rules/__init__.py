"""The repro-lint rule registry.

One module per contract; :func:`default_rules` is the extension point —
a new checker is one class and one line here.
"""

from __future__ import annotations

from .base import ImportMap, LintRule, dotted_name
from .determinism import DeterminismRule
from .floataccounting import FloatAccountingRule
from .sharedmem import SharedMemoryLifecycleRule
from .spawnsafety import SpawnSafetyRule
from .vectorization import VectorizationRule
from .versioning import VersionBumpRule


def default_rules() -> list[LintRule]:
    """All registered rules, in rule-id order."""
    return [
        DeterminismRule(),
        VersionBumpRule(),
        SharedMemoryLifecycleRule(),
        VectorizationRule(),
        SpawnSafetyRule(),
        FloatAccountingRule(),
    ]


__all__ = [
    "DeterminismRule",
    "FloatAccountingRule",
    "ImportMap",
    "LintRule",
    "SharedMemoryLifecycleRule",
    "SpawnSafetyRule",
    "VectorizationRule",
    "VersionBumpRule",
    "default_rules",
    "dotted_name",
]
