"""RPL006 — no bare float ``+=`` bit accounting inside Python loops.

Bit counters are the observable output of the whole pipeline: platform
conservation checks, parity digests and golden-seed hashes all reduce to
"the bits add up, identically, every time".  Accumulating them with a
bare float ``+=`` inside a Python loop has two failure modes: the
numeric one (incremental rounding drifts away from the vectorized
``.sum()`` the other engine computes, breaking bit-for-bit parity
between code paths that iterate in different orders) and the structural
one (the loop itself is usually a sign the accounting should have been a
single vectorized reduction).  The sanctioned shapes are integer
accumulation, a NumPy reduction over the whole column, or collecting
per-iteration terms and reducing once (``sum``/``math.fsum``) after the
loop — which also makes the summation order explicit and auditable.
Per-record compatibility shims (functions with ``record`` in the name)
are the sanctioned slow path and allow-listed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import Finding, ParsedModule
from .base import LintRule

_COUNTER_FRAGMENTS = ("bits", "bytes")


def _target_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _mentions_bits(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name: str | None = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and "bits" in name.lower():
            return True
    return False


class FloatAccountingRule(LintRule):
    rule_id = "RPL006"
    title = "bit counters must not accumulate via bare float += in loops"
    paths = (
        "src/repro/ixp/",
        "src/repro/traffic/",
        "src/repro/mitigation/",
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AugAssign) or not isinstance(node.op, ast.Add):
                continue
            target = _target_name(node.target)
            if target is None:
                continue
            lowered = target.lower()
            is_counter = any(fragment in lowered for fragment in _COUNTER_FRAGMENTS)
            if not is_counter and not _mentions_bits(node.value):
                continue
            if isinstance(node.value, ast.Call) and _target_name(node.value.func) == "int":
                continue
            if not self._inside_loop(module, node):
                continue
            if self._allow_listed(module, node):
                continue
            yield module.finding(
                self.rule_id,
                node,
                f"float `{target} +=` inside a loop accumulates rounding "
                "error iteration by iteration; collect the terms and reduce "
                "once (sum/math.fsum/np.sum) or use integer counters",
            )

    @staticmethod
    def _inside_loop(module: ParsedModule, node: ast.AST) -> bool:
        function = module.enclosing_function(node)
        for ancestor in module.ancestors(node):
            if ancestor is function:
                return False
            if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
                return True
        return False

    @staticmethod
    def _allow_listed(module: ParsedModule, node: ast.AST) -> bool:
        function = module.enclosing_function(node)
        while function is not None:
            if "record" in function.name.lower():
                return True
            function = module.enclosing_function(function)
        return False
