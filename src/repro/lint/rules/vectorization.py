"""RPL004 — no per-row Python loops over FlowTable columns in the data plane.

The whole performance story of the reproduction (PR 1's columnar
FlowTable, PR 4's batched delivery, PR 5's compiled rule index) rests on
the data-plane modules never iterating rows in Python: one stray
``for port in table.dst_port`` re-introduces the O(rows) interpreter
loop the benchmarks exist to keep out, and at city scale (hundreds of
thousands of rows per interval) it dominates the interval cost.  This
rule flags ``for`` loops and comprehensions whose iterable reaches into
per-row data — a FlowTable column attribute, ``.to_records()``, or a
``zip`` over columns — inside ``ixp/delivery.py``, ``ixp/ruleindex.py``
and ``mitigation/``.  The per-record compatibility shims (functions with
``record`` in their name) are the sanctioned slow path and allow-listed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import Finding, ParsedModule
from .base import LintRule

#: FlowTable column attributes plus the derived per-row vectors.
_COLUMN_ATTRS = {
    "src_ip",
    "dst_ip",
    "protocol",
    "src_port",
    "dst_port",
    "start",
    "duration",
    "bytes",
    "packets",
    "ingress_asn",
    "egress_asn",
    "is_attack",
    "bits",
    "src_mac",
}


def _touches_rows(iterable: ast.AST) -> str | None:
    """Why ``iterable`` walks per-row data, or ``None`` if it doesn't."""
    for node in ast.walk(iterable):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "to_records":
                return "iterates `.to_records()` materialised rows"
        if isinstance(node, ast.Attribute) and node.attr in _COLUMN_ATTRS:
            # `table.bits` as (part of) the iterable: a per-row walk.
            return f"iterates the `{node.attr}` column row by row"
    return None


def _allow_listed(module: ParsedModule, node: ast.AST) -> bool:
    function = module.enclosing_function(node)
    while function is not None:
        if "record" in function.name.lower():
            return True
        function = module.enclosing_function(function)
    return False


class VectorizationRule(LintRule):
    rule_id = "RPL004"
    title = "data-plane modules must not loop over FlowTable rows in Python"
    paths = (
        "src/repro/ixp/delivery.py",
        "src/repro/ixp/ruleindex.py",
        "src/repro/mitigation/*.py",
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            iterables: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                reason = _touches_rows(iterable)
                if reason is None or _allow_listed(module, node):
                    continue
                yield module.finding(
                    self.rule_id,
                    node,
                    f"per-row Python loop in a data-plane module ({reason}); "
                    "use vectorized column operations, or move the loop into "
                    "a *_records shim",
                )
