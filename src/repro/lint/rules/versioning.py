"""RPL002 — every rule-set mutation must bump ``rules_version``.

``PortQosPolicy.rules_version`` keys two caches: the compiled
:class:`~repro.ixp.ruleindex.RuleMatchIndex` and the fabric's
:class:`~repro.ixp.delivery.FabricDeliveryPlan`.  A mutation of
``self._rules`` / ``self._sorted_rules`` that forgets the bump leaves
both caches silently serving a stale rule set — the exact bug class the
``RuleStateMachine`` fuzz found dynamically in PR 6 (and its inverse:
no-op mutations that bumped spuriously).  Since the incremental-compile
PR, the change journal ``self._journal`` is a rule container too: its
entries are what :meth:`~repro.ixp.qos.PortQosPolicy.compiled_index`
replays into the cached snapshot, so a journal append that skips the
bump desynchronises the journal from the version counter and the next
patch replays deltas the container state never saw.  This rule checks
the invariant *structurally*, on any class that manages a ``_version``
counter next to a ``_rules`` list:

- a method that mutates the rule containers (``_rules``,
  ``_sorted_rules`` or ``_journal``) must bump ``self._version`` in its
  own body or call an in-class method that (transitively) does;
- a private mutator helper is exempt iff every in-class caller is
  bump-reachable (the ``_attach`` pattern: callers end with
  ``_resort()``; the ``_record`` pattern: callers bump before
  journalling);
- ``__init__`` / ``__setstate__`` construct rather than mutate.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import Finding, ParsedModule
from .base import LintRule, is_self_attribute, walk_scope

_RULE_CONTAINERS = {"_rules", "_sorted_rules", "_journal"}
_VERSION_ATTRS = {"_version"}
_LIST_MUTATORS = {"append", "extend", "insert", "pop", "remove", "clear", "sort", "reverse"}
_CONSTRUCTORS = {"__init__", "__new__", "__setstate__"}


def _mutations(method: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.AST]:
    """Nodes in ``method`` that mutate ``self._rules``/``self._sorted_rules``."""
    sites: list[ast.AST] = []
    for node in walk_scope(method):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if is_self_attribute(target, _RULE_CONTAINERS):
                    sites.append(node)
                elif isinstance(target, ast.Subscript) and is_self_attribute(
                    target.value, _RULE_CONTAINERS
                ):
                    sites.append(node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and is_self_attribute(
                    target.value, _RULE_CONTAINERS
                ):
                    sites.append(node)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _LIST_MUTATORS
                and is_self_attribute(func.value, _RULE_CONTAINERS)
            ):
                sites.append(node)
    return sites


def _bumps_version(method: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in walk_scope(method):
        if isinstance(node, ast.AugAssign) and is_self_attribute(
            node.target, _VERSION_ATTRS
        ):
            return True
        if isinstance(node, ast.Assign) and any(
            is_self_attribute(target, _VERSION_ATTRS) for target in node.targets
        ):
            return True
    return False


def _self_calls(method: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    calls: set[str] = set()
    for node in walk_scope(method):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            calls.add(node.func.attr)
    return calls


def _references_version(cls: ast.ClassDef) -> bool:
    for node in ast.walk(cls):
        if is_self_attribute(node, _VERSION_ATTRS):
            return True
    return False


class VersionBumpRule(LintRule):
    rule_id = "RPL002"
    title = "rule-set mutations must bump rules_version"
    paths = ("src/repro/",)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef) or not _references_version(cls):
                continue
            methods = {
                item.name: item
                for item in cls.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            calls = {name: _self_calls(method) for name, method in methods.items()}
            # Transitive closure of "bumps self._version".
            bumping = {name for name, method in methods.items() if _bumps_version(method)}
            changed = True
            while changed:
                changed = False
                for name, callees in calls.items():
                    if name not in bumping and callees & bumping:
                        bumping.add(name)
                        changed = True
            for name, method in methods.items():
                if name in _CONSTRUCTORS or name in bumping:
                    continue
                sites = _mutations(method)
                if not sites:
                    continue
                callers = [
                    caller for caller, callees in calls.items() if name in callees
                ]
                if callers and all(caller in bumping for caller in callers):
                    # Mutator helper: every call path ends in a bump.
                    continue
                for site in sites:
                    yield module.finding(
                        self.rule_id,
                        site,
                        f"`{cls.name}.{name}` mutates the rule containers "
                        "without bumping self._version — the compiled index "
                        "and cached delivery plan will serve stale rules",
                    )
