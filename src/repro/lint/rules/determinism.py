"""RPL001 — all randomness and time must flow through ``sim.rng`` / the clock.

The reproduction's headline guarantee is bit-for-bit determinism: the
sharded pipeline is pinned equal to its serial oracle, the service's
scripted execution replays to the same digest, and golden-seed tests pin
SHA-256 hashes of whole result payloads.  One ``time.time()`` or
unseeded ``np.random.default_rng()`` anywhere in the simulation packages
silently breaks every one of those contracts — and only shows up later,
as a flaky parity test.  This rule bans the wall clock, the global
(process-state) NumPy RNG, the stdlib ``random`` module, and unseeded
generator construction inside ``sim/``, ``traffic/``, ``ixp/`` and
``experiments/``; explicit seeds and :mod:`repro.sim.rng` helpers are
the sanctioned sources.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import Finding, ParsedModule
from .base import ImportMap, LintRule, call_name

#: Wall-clock and date sources banned outright in simulation code.
_BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock date",
    "datetime.datetime.utcnow": "wall-clock date",
    "datetime.datetime.today": "wall-clock date",
    "datetime.date.today": "wall-clock date",
}

#: ``numpy.random`` attributes that construct/describe generators and are
#: therefore allowed (when seeded).  Everything lowercase outside this set
#: is a legacy global-state distribution call (``np.random.seed``,
#: ``np.random.uniform``, …) and banned.
_NUMPY_ALLOWED = {"default_rng"}


class DeterminismRule(LintRule):
    rule_id = "RPL001"
    title = "simulation code must draw randomness/time through sim.rng"
    paths = (
        "src/repro/sim/",
        "src/repro/traffic/",
        "src/repro/ixp/",
        "src/repro/experiments/",
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, imports)
            if name is None:
                continue
            if name in _BANNED_CALLS:
                yield module.finding(
                    self.rule_id,
                    node,
                    f"{_BANNED_CALLS[name]} `{name}()` is non-deterministic; "
                    "derive times from the simulation clock / interval grid",
                )
                continue
            if name.startswith("random."):
                yield module.finding(
                    self.rule_id,
                    node,
                    f"stdlib `{name}()` uses hidden global RNG state; draw "
                    "through an explicit np.random.Generator from repro.sim.rng",
                )
                continue
            if name.startswith("numpy.random."):
                attr = name.removeprefix("numpy.random.")
                if attr == "default_rng" and not node.args and not node.keywords:
                    yield module.finding(
                        self.rule_id,
                        node,
                        "unseeded `np.random.default_rng()` draws from OS "
                        "entropy; pass an explicit seed (see repro.sim.rng.make_rng)",
                    )
                elif "." not in attr and attr not in _NUMPY_ALLOWED and attr[:1].islower():
                    yield module.finding(
                        self.rule_id,
                        node,
                        f"legacy global-state `np.random.{attr}()` is "
                        "non-reproducible across processes; use an explicit "
                        "np.random.Generator from repro.sim.rng",
                    )
